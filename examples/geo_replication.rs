//! Geo-replication shoot-out: the paper's motivating scenario.
//!
//! Deploys ezBFT and the three baselines across the Experiment-1 regions
//! and shows how the primary's location dominates client latency for
//! single-leader protocols — and why a leaderless protocol sidesteps the
//! problem entirely (paper §I, Table I, Figure 4).
//!
//! ```text
//! cargo run --example geo_replication
//! ```

use ezbft::harness::{ClusterBuilder, ProtocolKind};
use ezbft::simnet::Topology;
use ezbft::smr::ReplicaId;

fn main() {
    let topology = Topology::exp1();
    let regions: Vec<&str> = topology.regions().map(|r| topology.name(r)).collect();
    let n = regions.len();

    println!("== Single-leader pain: Zyzzyva latency as the primary moves ==\n");
    print!("{:<12}", "client \\ primary");
    for r in &regions {
        print!("{r:>12}");
    }
    println!();
    let mut matrices = Vec::new();
    for primary in 0..n {
        let report = ClusterBuilder::new(ProtocolKind::Zyzzyva)
            .topology(topology.clone())
            .primary(ReplicaId::new(primary as u8))
            .clients_per_region(&vec![1; n])
            .requests_per_client(10)
            .seed(primary as u64)
            .run();
        matrices.push(
            (0..n)
                .map(|c| report.mean_latency_ms(c))
                .collect::<Vec<_>>(),
        );
    }
    for client in 0..n {
        print!("{:<12}", regions[client]);
        for m in matrices.iter() {
            print!("{:>12.0}", m[client]);
        }
        println!();
    }

    println!("\n== Leaderless: ezBFT serves every region locally ==\n");
    let report = ClusterBuilder::new(ProtocolKind::EzBft)
        .topology(topology.clone())
        .clients_per_region(&vec![1; n])
        .requests_per_client(10)
        .run();
    for (i, r) in regions.iter().enumerate() {
        println!("  {r:<12} {:>7.0} ms", report.mean_latency_ms(i));
    }

    println!("\n== Full comparison (primary = Virginia) ==\n");
    print!("{:<10}", "protocol");
    for r in &regions {
        print!("{r:>12}");
    }
    println!();
    for (kind, label) in [
        (ProtocolKind::Pbft, "PBFT"),
        (ProtocolKind::Fab, "FaB"),
        (ProtocolKind::Zyzzyva, "Zyzzyva"),
        (ProtocolKind::EzBft, "ezBFT"),
    ] {
        let report = ClusterBuilder::new(kind)
            .topology(topology.clone())
            .primary(ReplicaId::new(0))
            .clients_per_region(&vec![1; n])
            .requests_per_client(10)
            .run();
        print!("{label:<10}");
        for c in 0..n {
            print!("{:>12.0}", report.mean_latency_ms(c));
        }
        println!();
    }
}
