//! A replicated bank on the KV store: transfers between accounts use
//! compare-and-swap, deposits use blind increments (which commute — the
//! paper's example of mutative-yet-commutative operations, §VI).
//!
//! Demonstrates how command interference shapes performance: deposits to
//! different accounts — and even concurrent blind deposits to the *same*
//! account — stay on the fast path, while read-modify-write transfers on
//! a shared account interfere and pay the slow path.
//!
//! ```text
//! cargo run --example kv_bank
//! ```

use std::collections::VecDeque;

use ezbft::core::{Client, EzConfig, Msg, Replica};
use ezbft::crypto::{CryptoKind, KeyStore};
use ezbft::kv::{Key, KvOp, KvResponse, KvStore};
use ezbft::simnet::{Region, SimConfig, SimNet, Topology};
use ezbft::smr::{
    Actions, ClientId, ClientNode, ClusterConfig, Micros, NodeId, ProtocolNode, ReplicaId, TimerId,
};

type KvMsg = Msg<KvOp, KvResponse>;

/// Account ids are just keys.
fn account(id: u64) -> Key {
    Key(0xBA_0000 + id)
}

struct ScriptedClient {
    inner: Client<KvOp, KvResponse>,
    script: VecDeque<KvOp>,
}

impl ScriptedClient {
    fn pump(&mut self, out: &mut Actions<KvMsg, KvResponse>) {
        if !self.inner.in_flight() {
            if let Some(op) = self.script.pop_front() {
                self.inner.submit(op, out);
            }
        }
    }
}

impl ProtocolNode for ScriptedClient {
    type Message = KvMsg;
    type Response = KvResponse;

    fn id(&self) -> NodeId {
        ProtocolNode::id(&self.inner)
    }
    fn on_start(&mut self, out: &mut Actions<KvMsg, KvResponse>) {
        self.pump(out);
    }
    fn on_message(&mut self, from: NodeId, msg: KvMsg, out: &mut Actions<KvMsg, KvResponse>) {
        self.inner.on_message(from, msg, out);
        self.pump(out);
    }
    fn on_timer(&mut self, id: TimerId, out: &mut Actions<KvMsg, KvResponse>) {
        self.inner.on_timer(id, out);
        self.pump(out);
    }
}

fn main() {
    let cluster = ClusterConfig::for_faults(1);
    let cfg = EzConfig::new(cluster);

    // Two tellers in different regions.
    let tellers = [
        (ClientId::new(0), ReplicaId::new(0), 0),
        (ClientId::new(1), ReplicaId::new(3), 3),
    ];
    let mut nodes: Vec<NodeId> = cluster.replicas().map(NodeId::Replica).collect();
    for (c, ..) in &tellers {
        nodes.push(NodeId::Client(*c));
    }
    let mut stores = KeyStore::cluster(CryptoKind::Mac, b"kv-bank", &nodes);
    let client_stores = stores.split_off(cluster.n());

    let mut sim: SimNet<KvMsg, KvResponse> = SimNet::new(Topology::exp1(), SimConfig::default());
    for (i, rid) in cluster.replicas().enumerate() {
        sim.add_node(
            Region(i),
            Box::new(Replica::new(rid, cfg, stores.remove(0), KvStore::new())),
        );
    }

    // Teller 0 (Virginia): blind deposits into the shared account — these
    // commute with teller 1's deposits.
    let deposits: VecDeque<KvOp> = (0..5)
        .map(|_| KvOp::Bump {
            key: account(1),
            by: 100,
        })
        .collect();
    // Teller 1 (Australia): deposits into the same account, plus an audit
    // read at the end (the read interferes with the deposits).
    let mut audit: VecDeque<KvOp> = (0..5)
        .map(|_| KvOp::Bump {
            key: account(1),
            by: 7,
        })
        .collect();
    audit.push_back(KvOp::Incr {
        key: account(1),
        by: 0,
    }); // read the total

    let total = deposits.len() + audit.len();
    for (((c, nearest, region), keys), script) in
        tellers.iter().zip(client_stores).zip([deposits, audit])
    {
        let client = Client::new(*c, cfg, keys, *nearest);
        sim.add_node(
            Region(*region),
            Box::new(ScriptedClient {
                inner: client,
                script,
            }),
        );
    }

    sim.run_until_deliveries(total);
    let settle = sim.now() + Micros::from_secs(2);
    sim.run_until_time(settle);

    let fast = sim
        .deliveries()
        .iter()
        .filter(|d| d.delivery.fast_path)
        .count();
    println!("{total} banking operations completed ({fast} on the fast path)");
    println!();
    println!("note: ten concurrent deposits to ONE shared account still ran");
    println!("mostly fast — blind increments commute, so ezBFT does not");
    println!("serialise them; only the audit read forces an order.");
    println!();

    let expected = 5 * 100 + 5 * 7;
    for r in 0..4u8 {
        let replica = sim
            .inspect(NodeId::Replica(ReplicaId::new(r)))
            .unwrap()
            .downcast_ref::<Replica<KvStore>>()
            .unwrap();
        let raw = replica.app().get(account(1)).unwrap_or_default();
        let mut bytes = [0u8; 8];
        bytes[..raw.len().min(8)].copy_from_slice(&raw[..raw.len().min(8)]);
        let balance = u64::from_le_bytes(bytes);
        println!("replica R{r} balance of account 1: {balance} (expected {expected})");
        assert_eq!(balance, expected as u64);
    }
}
