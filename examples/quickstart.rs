//! Quickstart: replicate a key-value store with ezBFT across four
//! simulated AWS regions and print what a client in each region observes.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ezbft::harness::{ClusterBuilder, ProtocolKind};
use ezbft::simnet::Topology;

fn main() {
    // Four replicas in the paper's Experiment-1 regions (Virginia, Japan,
    // India, Australia), one client co-located with each replica, twenty
    // requests per client, no contention.
    let report = ClusterBuilder::new(ProtocolKind::EzBft)
        .topology(Topology::exp1())
        .clients_per_region(&[1, 1, 1, 1])
        .requests_per_client(20)
        .run();

    println!("protocol: {}", report.protocol);
    println!("requests completed: {}", report.completed());
    println!("fast-path fraction: {:.0}%", report.fast_fraction() * 100.0);
    println!();
    println!("mean client latency by region:");
    for (i, name) in report.region_names.iter().enumerate() {
        println!("  {name:<10} {:>7.1} ms", report.mean_latency_ms(i));
    }
    println!();
    println!(
        "Every client pays only its own region's worst round trip — no \
         request detours through a distant primary."
    );
}
