//! Byzantine fault injection: a command-leader that equivocates, the
//! client that catches it, and the owner change that removes it
//! (paper §IV-D, §IV-E).
//!
//! ```text
//! cargo run --example byzantine_faults
//! ```

use std::collections::VecDeque;

use ezbft::core::{Behaviour, ByzantineReplica, Client, EzConfig, Msg, Replica};
use ezbft::crypto::{CryptoKind, KeyStore};
use ezbft::kv::{Key, KvOp, KvResponse, KvStore};
use ezbft::simnet::{Region, SimConfig, SimNet, Topology};
use ezbft::smr::{
    Actions, ClientId, ClientNode, ClusterConfig, Micros, NodeId, ProtocolNode, ReplicaId, TimerId,
};

type KvMsg = Msg<KvOp, KvResponse>;

/// Submits a fixed script of operations, one at a time.
struct ScriptedClient {
    inner: Client<KvOp, KvResponse>,
    script: VecDeque<KvOp>,
}

impl ScriptedClient {
    fn pump(&mut self, out: &mut Actions<KvMsg, KvResponse>) {
        if !self.inner.in_flight() {
            if let Some(op) = self.script.pop_front() {
                self.inner.submit(op, out);
            }
        }
    }
}

impl ProtocolNode for ScriptedClient {
    type Message = KvMsg;
    type Response = KvResponse;

    fn id(&self) -> NodeId {
        ProtocolNode::id(&self.inner)
    }
    fn on_start(&mut self, out: &mut Actions<KvMsg, KvResponse>) {
        self.pump(out);
    }
    fn on_message(&mut self, from: NodeId, msg: KvMsg, out: &mut Actions<KvMsg, KvResponse>) {
        self.inner.on_message(from, msg, out);
        self.pump(out);
    }
    fn on_timer(&mut self, id: TimerId, out: &mut Actions<KvMsg, KvResponse>) {
        self.inner.on_timer(id, out);
        self.pump(out);
    }
}

fn main() {
    let cluster = ClusterConfig::for_faults(1);
    let cfg = EzConfig::new(cluster);
    let byzantine_replica = ReplicaId::new(1);

    let client_id = ClientId::new(0);
    let mut nodes: Vec<NodeId> = cluster.replicas().map(NodeId::Replica).collect();
    nodes.push(NodeId::Client(client_id));
    let mut stores = KeyStore::cluster(CryptoKind::Mac, b"byzantine-example", &nodes);
    let client_keys = stores.pop().unwrap();
    // The byzantine wrapper re-signs what it mutates with its own key.
    let mut byz_keys = Some({
        let extra = KeyStore::cluster(CryptoKind::Mac, b"byzantine-example", &nodes);
        extra.into_iter().nth(byzantine_replica.index()).unwrap()
    });

    let mut sim: SimNet<KvMsg, KvResponse> = SimNet::new(Topology::exp1(), SimConfig::default());
    for (i, rid) in cluster.replicas().enumerate() {
        let replica = Replica::new(rid, cfg, stores.remove(0), KvStore::new());
        if rid == byzantine_replica {
            println!("replica {rid} is byzantine: it will assign different sequence");
            println!("numbers to different peers for the commands it leads\n");
            let wrapper = ByzantineReplica::new(
                replica,
                byz_keys.take().expect("one byzantine replica"),
                Behaviour::EquivocateSeq,
                cluster.n(),
            );
            sim.add_node(Region(i), Box::new(wrapper));
        } else {
            sim.add_node(Region(i), Box::new(replica));
        }
    }

    // The client's nearest replica is — unluckily — the byzantine one.
    let script: VecDeque<KvOp> = (0..4)
        .map(|i| KvOp::Put {
            key: Key(i),
            value: vec![i as u8; 16],
        })
        .collect();
    let total = script.len();
    let client = Client::new(client_id, cfg, client_keys, byzantine_replica);
    sim.add_node(
        Region(1),
        Box::new(ScriptedClient {
            inner: client,
            script,
        }),
    );

    sim.run_until_deliveries(total);
    let settle = sim.now() + Micros::from_secs(3);
    sim.run_until_time(settle);

    println!("all {total} requests completed despite the equivocating leader:");
    for d in sim.deliveries() {
        println!(
            "  ts {:?} at {:?} via the {} path",
            d.delivery.ts,
            d.at,
            if d.delivery.fast_path { "fast" } else { "slow" }
        );
    }

    println!("\ncorrect replicas' view:");
    for r in [0u8, 2, 3] {
        let replica = sim
            .inspect(NodeId::Replica(ReplicaId::new(r)))
            .unwrap()
            .downcast_ref::<Replica<KvStore>>()
            .unwrap();
        let stats = replica.stats();
        println!(
            "  R{r}: executed={} poms_received={} owner_changes={} (space R1 owner now {:?})",
            stats.executed,
            stats.poms,
            stats.owner_changes,
            replica.space_owner(byzantine_replica)
        );
    }
}
