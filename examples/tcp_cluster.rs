//! Run a real ezBFT cluster over TCP loopback sockets — the same state
//! machines the simulator drives, on actual wires.
//!
//! ```text
//! cargo run --example tcp_cluster
//! ```

use std::net::TcpListener;
use std::time::{Duration, Instant};

use ezbft::core::{Client, EzConfig, Msg, Replica};
use ezbft::crypto::{CryptoKind, KeyStore};
use ezbft::kv::{Key, KvOp, KvResponse, KvStore};
use ezbft::smr::{ClientId, ClientNode, ClusterConfig, NodeId, ReplicaId};
use ezbft::transport::{AddressBook, NodeHandle};

type KvMsg = Msg<KvOp, KvResponse>;

fn main() {
    let cluster = ClusterConfig::for_faults(1);
    let cfg = EzConfig::new(cluster);
    let client_id = ClientId::new(0);
    let mut nodes: Vec<NodeId> = cluster.replicas().map(NodeId::Replica).collect();
    nodes.push(NodeId::Client(client_id));
    let mut stores = KeyStore::cluster(CryptoKind::Mac, b"tcp-example", &nodes);
    let client_keys = stores.pop().unwrap();

    // Bind every listener first so the complete address book exists before
    // any node starts.
    let mut book = AddressBook::new();
    let mut listeners = Vec::new();
    for node in &nodes {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        book.insert(*node, listener.local_addr().expect("addr"));
        listeners.push(listener);
    }
    let client_listener = listeners.pop().expect("client listener");

    println!("starting 4 ezBFT replicas on loopback:");
    let mut handles: Vec<NodeHandle<KvMsg, Replica<KvStore>>> = Vec::new();
    for (rid, listener) in cluster.replicas().zip(listeners) {
        println!("  {rid} @ {}", listener.local_addr().unwrap());
        let replica = Replica::new(rid, cfg, stores.remove(0), KvStore::new());
        handles
            .push(NodeHandle::spawn_with_listener(replica, book.clone(), listener).expect("spawn"));
    }

    let client: Client<KvOp, KvResponse> =
        Client::new(client_id, cfg, client_keys, ReplicaId::new(0));
    let client_handle =
        NodeHandle::spawn_with_listener(client, book.clone(), client_listener).expect("spawn");

    println!("\nissuing 10 PUTs through the real network:");
    for i in 0..10u64 {
        let started = Instant::now();
        client_handle
            .with_node(move |c, out| {
                c.submit(
                    KvOp::Put {
                        key: Key(i),
                        value: vec![i as u8; 16],
                    },
                    out,
                );
            })
            .expect("submit");
        let delivery = client_handle
            .recv_delivery(Duration::from_secs(5))
            .expect("request completes");
        println!(
            "  put#{i}: {:?} in {:?} ({})",
            delivery.response,
            started.elapsed(),
            if delivery.fast_path {
                "fast path"
            } else {
                "slow path"
            }
        );
    }

    std::thread::sleep(Duration::from_millis(300));
    println!("\nshutting down; final replica states:");
    for h in handles {
        let replica = h.shutdown().expect("state machine");
        println!(
            "  {:?}: executed {} commands, state fingerprint {:#018x}",
            ezbft::smr::ProtocolNode::id(&replica),
            replica.executed_count(),
            replica.app().fingerprint()
        );
    }
    drop(client_handle.shutdown());
}
