//! Demonstrate SPECORDER request batching (DESIGN.md §3): the same
//! follower-bound workload at batch sizes 1, 8 and 32.
//!
//! ```text
//! cargo run --release --example batched_throughput
//! ```

use ezbft::harness::{ClusterBuilder, CostParams, ProtocolKind};
use ezbft::simnet::Topology;
use ezbft::smr::Micros;

fn main() {
    println!("ezBFT simulated throughput vs SPECORDER batch size");
    println!("(LAN topology, 24 closed-loop clients, follower-bound cost model)\n");
    println!(
        "{:>10}  {:>12}  {:>10}  {:>9}",
        "batch", "ops/s", "completed", "fast-path"
    );
    for batch in [1usize, 8, 32] {
        let report = ClusterBuilder::new(ProtocolKind::EzBft)
            .topology(Topology::lan(4))
            .clients_per_region(&[6, 6, 6, 6])
            .requests_per_client(100_000)
            .cost_model(CostParams {
                order_msg_us: 100,
                order_req_us: 200,
                follow_msg_us: 250,
                follow_req_us: 50,
                commit_us: 60,
                other_us: 80,
            })
            .batch_size(batch)
            .batch_delay(Micros::from_millis(1))
            .time_limit(Micros::from_secs(3))
            .seed(11)
            .run();
        println!(
            "{:>10}  {:>12.0}  {:>10}  {:>8.0}%",
            batch,
            report.throughput(),
            report.completed(),
            report.fast_fraction() * 100.0
        );
    }
    println!("\nOne SPECORDER now carries a whole batch: followers verify, order and");
    println!("sign once per batch instead of once per request, and the broadcast");
    println!("itself is serialized once per fan-out (see DESIGN.md §3).");
}
