//! Demonstrate SPECORDER request batching (DESIGN.md §3) and instance-level
//! commit aggregation (DESIGN.md §7): the same follower-bound workload at
//! batch sizes 1, 8 and 32, with client-driven and replica-driven
//! commitment side by side.
//!
//! ```text
//! cargo run --release --example batched_throughput
//! ```

use ezbft::harness::experiments::commit_traffic::COMMIT_KINDS;
use ezbft::harness::{ClusterBuilder, CostParams, ProtocolKind};
use ezbft::simnet::Topology;
use ezbft::smr::Micros;

fn main() {
    println!("ezBFT simulated throughput vs SPECORDER batch size");
    println!("(LAN topology, 24 closed-loop clients, follower-bound cost model)\n");
    println!(
        "{:>10}  {:>14}  {:>12}  {:>10}  {:>9}  {:>12}",
        "batch", "commitment", "ops/s", "completed", "fast-path", "commit m/req"
    );
    for batch in [1usize, 8, 32] {
        for aggregated in [false, true] {
            let report = ClusterBuilder::new(ProtocolKind::EzBft)
                .topology(Topology::lan(4))
                .clients_per_region(&[6, 6, 6, 6])
                .requests_per_client(100_000)
                .cost_model(CostParams {
                    order_msg_us: 100,
                    order_req_us: 200,
                    follow_msg_us: 250,
                    follow_req_us: 50,
                    commit_us: 60,
                    ack_us: 40,
                    other_us: 80,
                })
                .batch_size(batch)
                .batch_delay(Micros::from_millis(1))
                .commit_aggregation(aggregated)
                .time_limit(Micros::from_secs(3))
                .seed(11)
                .run();
            println!(
                "{:>10}  {:>14}  {:>12.0}  {:>10}  {:>8.0}%  {:>12.2}",
                batch,
                if aggregated {
                    "aggregated"
                } else {
                    "client-driven"
                },
                report.throughput(),
                report.completed(),
                report.fast_fraction() * 100.0,
                report.commit_msgs_per_request(COMMIT_KINDS),
            );
        }
    }
    println!("\nOne SPECORDER carries a whole batch (followers verify, order and sign");
    println!("once per batch), and with commit aggregation the command leader collects");
    println!("one SPECACK per follower and broadcasts one certificate per batch instead");
    println!("of every client broadcasting its own COMMITFAST (DESIGN.md §3, §7).");

    println!("\nParallel final execution on a mostly-commuting workload (DESIGN.md §8)");
    println!("(90% blind counter bumps, 400µs/command modelled execution cost)\n");
    println!(
        "{:>12}  {:>12}  {:>10}  {:>9}",
        "exec workers", "ops/s", "completed", "fast-path"
    );
    let mut base = 0.0f64;
    for workers in [1usize, 4] {
        let report = ClusterBuilder::new(ProtocolKind::EzBft)
            .topology(Topology::lan(4))
            .clients_per_region(&[6, 6, 6, 6])
            .requests_per_client(100_000)
            .cost_model(CostParams {
                order_msg_us: 40,
                order_req_us: 30,
                follow_msg_us: 40,
                follow_req_us: 20,
                commit_us: 20,
                ack_us: 15,
                other_us: 30,
            })
            .batch_size(8)
            .batch_delay(Micros::from_millis(1))
            .commit_aggregation(true)
            .commuting_pct(90)
            .exec_engine(workers, 400)
            .time_limit(Micros::from_secs(2))
            .seed(17)
            .run();
        if workers == 1 {
            base = report.throughput();
        }
        println!(
            "{:>12}  {:>12.0}  {:>10}  {:>8.0}%   ({:.2}x)",
            workers,
            report.throughput(),
            report.completed(),
            report.fast_fraction() * 100.0,
            if base > 0.0 {
                report.throughput() / base
            } else {
                0.0
            },
        );
    }
    println!("\nWith execution on the replicas' critical path, the conflict-keyed worker");
    println!("pool drains commuting commands concurrently; the speedup is whatever the");
    println!("wave's conflict structure allows — interfering commands still serialise.");
}
