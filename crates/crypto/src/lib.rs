//! Authentication substrate for the ezBFT workspace.
//!
//! The paper authenticates messages with HMAC and ECDSA (§V). This crate
//! provides the equivalent building blocks without external dependencies:
//!
//! - [`mod@sha256`]: a from-scratch SHA-256, validated against the NIST vectors;
//! - [`hmac`]: HMAC-SHA256, validated against RFC 4231;
//! - [`auth`]: PBFT-style pairwise MAC authenticators (the "HMAC" half);
//! - [`wots`] + [`merkle`]: a hash-based Winternitz/Merkle many-time
//!   signature scheme — the true-asymmetric substitute for ECDSA (no
//!   elliptic-curve crate exists in the allowed offline set; hash-based
//!   signatures provide the same property the protocols rely on:
//!   unforgeability by byzantine nodes, with third-party verifiability);
//! - [`agg`]: a hash-based multi-signature shim — constant-size aggregate
//!   certificates with a BLS-shaped interface (aggregate + verify against
//!   a signer set);
//! - [`provider`]: the [`KeyStore`] facade protocols use to sign and verify,
//!   with `Null` / `Mac` / `HashSig` / `Agg` providers selectable at
//!   cluster setup.
//!
//! # Example
//!
//! ```
//! use ezbft_crypto::{KeyStore, CryptoKind, Audience};
//! use ezbft_smr::{NodeId, ReplicaId, ClientId};
//!
//! let nodes = vec![
//!     NodeId::Replica(ReplicaId::new(0)),
//!     NodeId::Replica(ReplicaId::new(1)),
//!     NodeId::Client(ClientId::new(0)),
//! ];
//! let mut stores = KeyStore::cluster(CryptoKind::Mac, b"seed", &nodes);
//! let sig = stores[0].sign(b"hello", &Audience::nodes(nodes.clone()));
//! assert!(stores[2].verify(nodes[0], b"hello", &sig).is_ok());
//! assert!(stores[2].verify(nodes[1], b"hello", &sig).is_err());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod agg;
pub mod auth;
pub mod digest;
pub mod hmac;
pub mod merkle;
pub mod provider;
pub mod sha256;
pub mod wots;

pub use agg::{AggSignature, SignerBitmap};
pub use auth::{MacAuthenticator, PairwiseKeys};
pub use digest::Digest;
pub use hmac::{hmac_sha256, HmacKey};
pub use merkle::{MerkleKeychain, MerklePublicKey, MerkleSignature};
pub use provider::{Audience, AuthError, CryptoKind, KeyStore, Signature};
pub use sha256::{sha256, Sha256};
pub use wots::{WotsKeypair, WotsPublicKey, WotsSignature};
