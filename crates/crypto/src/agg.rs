//! Aggregate (multi-)signatures: constant-size quorum certificates.
//!
//! A BLS-style multi-signature lets a collector compress `k` partial
//! signatures over the *same* message into one constant-size aggregate
//! that verifies against the set of signers. No elliptic-curve crate
//! exists in the allowed offline dependency set, so this module provides
//! a hash-based *shim* with the same interface, size and cost profile:
//!
//! - each node's partial signature is `HMAC(seed_i, msg)` (32 bytes);
//! - aggregation is limb-wise wrapping addition of the partials —
//!   commutative and associative, so collection order does not matter,
//!   and (unlike XOR) duplicated partials do not cancel out;
//! - verification recomputes the expected partial of every claimed
//!   signer and compares sums — `O(k)` cheap HMACs against one 32-byte
//!   value, versus `k` full signature verifications for a vote vector.
//!
//! Like the `Null` provider, the shim is **not** cryptographically
//! sound against the directory holders themselves: aggregation keys are
//! distributed to the whole cluster at trusted setup, so any replica
//! could forge another's partial. The protocols treat it exactly as they
//! would BLS — what is exercised (and measured) is certificate *size*
//! and *verification shape*, which is what the reproduction studies.

use serde::{Deserialize, Serialize};

/// The set of replicas contributing to an aggregate, as a bitmap over
/// replica indices (bounded at 64 replicas — far above any `3f + 1`
/// cluster this workspace simulates).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub struct SignerBitmap(u64);

impl SignerBitmap {
    /// The empty signer set.
    pub const EMPTY: SignerBitmap = SignerBitmap(0);

    /// Builds a bitmap from replica indices.
    ///
    /// # Panics
    ///
    /// Panics if an index is ≥ 64.
    pub fn from_indices(indices: impl IntoIterator<Item = usize>) -> Self {
        let mut b = SignerBitmap::EMPTY;
        for i in indices {
            b.insert(i);
        }
        b
    }

    /// Adds a replica index to the set.
    ///
    /// # Panics
    ///
    /// Panics if `index` is ≥ 64.
    pub fn insert(&mut self, index: usize) {
        assert!(index < 64, "signer bitmap holds at most 64 replicas");
        self.0 |= 1u64 << index;
    }

    /// Whether the set contains a replica index.
    pub fn contains(&self, index: usize) -> bool {
        index < 64 && self.0 & (1u64 << index) != 0
    }

    /// Number of signers in the set.
    pub fn count(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether two signer sets share no replica.
    pub fn is_disjoint(&self, other: &SignerBitmap) -> bool {
        self.0 & other.0 == 0
    }

    /// The replica indices in the set, ascending.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..64).filter(move |i| self.contains(*i))
    }
}

/// A constant-size aggregate of partial signatures over one message.
///
/// 32 bytes regardless of how many partials were combined — the whole
/// point versus a `Vec<Signature>` vote vector.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct AggSignature {
    /// Limb-wise wrapping sum of the 32-byte partials.
    sum: [u64; 4],
}

impl AggSignature {
    /// The aggregate of zero partials (the additive identity).
    pub fn identity() -> Self {
        AggSignature { sum: [0; 4] }
    }

    /// Folds one 32-byte partial into the aggregate.
    pub fn absorb(&mut self, partial: &[u8; 32]) {
        for (limb, chunk) in self.sum.iter_mut().zip(partial.chunks_exact(8)) {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(chunk);
            *limb = limb.wrapping_add(u64::from_le_bytes(bytes));
        }
    }

    /// Combines two aggregates (commutative, associative).
    pub fn combine(&mut self, other: &AggSignature) {
        for (limb, o) in self.sum.iter_mut().zip(other.sum.iter()) {
            *limb = limb.wrapping_add(*o);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_round_trip() {
        let b = SignerBitmap::from_indices([0, 3, 63]);
        assert_eq!(b.count(), 3);
        assert!(b.contains(0) && b.contains(3) && b.contains(63));
        assert!(!b.contains(1));
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![0, 3, 63]);
    }

    #[test]
    fn bitmap_disjointness() {
        let a = SignerBitmap::from_indices([0, 1]);
        let b = SignerBitmap::from_indices([2, 3]);
        let c = SignerBitmap::from_indices([1, 2]);
        assert!(a.is_disjoint(&b));
        assert!(!a.is_disjoint(&c));
        assert!(SignerBitmap::EMPTY.is_disjoint(&a));
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn bitmap_rejects_out_of_range() {
        SignerBitmap::from_indices([64]);
    }

    #[test]
    fn aggregation_is_order_independent() {
        let p1 = [1u8; 32];
        let p2 = [7u8; 32];
        let p3 = [42u8; 32];
        let mut a = AggSignature::identity();
        a.absorb(&p1);
        a.absorb(&p2);
        a.absorb(&p3);
        let mut b = AggSignature::identity();
        b.absorb(&p3);
        b.absorb(&p1);
        b.absorb(&p2);
        assert_eq!(a, b);
    }

    #[test]
    fn duplicates_do_not_cancel() {
        // XOR-based combination would make p ⊕ p vanish; wrapping-add
        // keeps duplicated partials visible so a forged certificate
        // cannot reuse one partial twice.
        let p = [9u8; 32];
        let mut once = AggSignature::identity();
        once.absorb(&p);
        let mut twice = AggSignature::identity();
        twice.absorb(&p);
        twice.absorb(&p);
        assert_ne!(once, twice);
        assert_ne!(twice, AggSignature::identity());
    }

    #[test]
    fn combine_matches_absorb() {
        let p1 = [3u8; 32];
        let p2 = [5u8; 32];
        let mut both = AggSignature::identity();
        both.absorb(&p1);
        both.absorb(&p2);
        let mut left = AggSignature::identity();
        left.absorb(&p1);
        let mut right = AggSignature::identity();
        right.absorb(&p2);
        left.combine(&right);
        assert_eq!(left, both);
    }
}
