//! The 256-bit digest newtype used throughout the workspace.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A 32-byte digest (SHA-256 output).
///
/// The paper uses digests for request identity (`d = H(m)`, §IV-A) and for
/// instance-space summaries (`h`); Zyzzyva additionally chains them into
/// history hashes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct Digest([u8; 32]);

impl Digest {
    /// The all-zero digest (used as the empty-history root).
    pub const ZERO: Digest = Digest([0; 32]);

    /// Wraps raw bytes as a digest.
    pub const fn from_bytes(bytes: [u8; 32]) -> Self {
        Digest(bytes)
    }

    /// The raw bytes.
    pub const fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Digest of `data` (convenience re-export of [`fn@crate::sha256`]).
    pub fn of(data: &[u8]) -> Self {
        crate::sha256::sha256(data)
    }

    /// Chained digest: `H(self || other)` — used for history hashes and
    /// Merkle-tree interior nodes.
    pub fn chain(&self, other: &Digest) -> Digest {
        let mut h = crate::sha256::Sha256::new();
        h.update(&self.0);
        h.update(&other.0);
        h.finalize()
    }

    /// Short hex prefix, handy in traces.
    pub fn short_hex(&self) -> String {
        self.0[..4].iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.short_hex())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; 32]> for Digest {
    fn from(bytes: [u8; 32]) -> Self {
        Digest(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn of_matches_sha256() {
        assert_eq!(Digest::of(b"abc"), crate::sha256::sha256(b"abc"));
    }

    #[test]
    fn chain_is_order_sensitive() {
        let a = Digest::of(b"a");
        let b = Digest::of(b"b");
        assert_ne!(a.chain(&b), b.chain(&a));
        assert_ne!(a.chain(&b), a);
    }

    #[test]
    fn display_is_full_hex() {
        let d = Digest::ZERO;
        assert_eq!(d.to_string(), "0".repeat(64));
        assert_eq!(format!("{d:?}"), "#00000000");
    }

    #[test]
    fn roundtrip_bytes() {
        let mut raw = [0u8; 32];
        raw[0] = 0xab;
        let d = Digest::from_bytes(raw);
        assert_eq!(d.as_bytes(), &raw);
        assert_eq!(Digest::from(raw), d);
        assert_eq!(d.as_ref(), &raw[..]);
        assert_eq!(d.short_hex(), "ab000000");
    }
}
