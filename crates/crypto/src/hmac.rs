//! HMAC-SHA256 (RFC 2104), validated against the RFC 4231 test vectors.

use crate::digest::Digest;
use crate::sha256::{sha256, Sha256};

const BLOCK: usize = 64;

/// A reusable HMAC key (pre-computed inner/outer pads).
#[derive(Clone)]
pub struct HmacKey {
    ipad: [u8; BLOCK],
    opad: [u8; BLOCK],
}

impl std::fmt::Debug for HmacKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.write_str("HmacKey(..)")
    }
}

impl HmacKey {
    /// Derives pads from raw key bytes (keys longer than one block are
    /// hashed first, per the RFC).
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; BLOCK];
        if key.len() > BLOCK {
            k[..32].copy_from_slice(sha256(key).as_bytes());
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0x36u8; BLOCK];
        let mut opad = [0x5cu8; BLOCK];
        for i in 0..BLOCK {
            ipad[i] ^= k[i];
            opad[i] ^= k[i];
        }
        HmacKey { ipad, opad }
    }

    /// Computes `HMAC(key, msg)`.
    pub fn mac(&self, msg: &[u8]) -> Digest {
        let mut inner = Sha256::new();
        inner.update(&self.ipad);
        inner.update(msg);
        let inner_digest = inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad);
        outer.update(inner_digest.as_bytes());
        outer.finalize()
    }

    /// Computes a truncated 16-byte tag, the size carried in MAC
    /// authenticators (PBFT uses 10-byte tags; 16 is comfortably above).
    pub fn tag(&self, msg: &[u8]) -> [u8; 16] {
        let full = self.mac(msg);
        let mut t = [0u8; 16];
        t.copy_from_slice(&full.as_bytes()[..16]);
        t
    }
}

/// One-shot `HMAC-SHA256(key, msg)`.
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> Digest {
    HmacKey::new(key).mac(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &Digest) -> String {
        d.as_bytes().iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let d = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&d),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    // RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case2() {
        let d = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&d),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    // RFC 4231 test case 3: 20x 0xaa key, 50x 0xdd data.
    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let d = hmac_sha256(&key, &data);
        assert_eq!(
            hex(&d),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    // RFC 4231 test case 6: key longer than the block size.
    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaau8; 131];
        let d = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&d),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn tag_is_prefix_of_mac() {
        let k = HmacKey::new(b"key");
        let full = k.mac(b"msg");
        assert_eq!(&k.tag(b"msg")[..], &full.as_bytes()[..16]);
    }

    #[test]
    fn different_keys_different_macs() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
        assert_ne!(hmac_sha256(b"k", b"m1"), hmac_sha256(b"k", b"m2"));
    }

    #[test]
    fn debug_hides_key_material() {
        assert_eq!(format!("{:?}", HmacKey::new(b"secret")), "HmacKey(..)");
    }
}
