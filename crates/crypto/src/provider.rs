//! The [`KeyStore`] facade protocols use to sign and verify messages.
//!
//! Three providers, selectable per cluster:
//!
//! - [`CryptoKind::Null`] — no authentication; for pure latency studies
//!   where the cost model accounts for crypto separately.
//! - [`CryptoKind::Mac`] — pairwise HMAC authenticators (the paper's HMAC
//!   mode). Cheap, but verifiable only by the audience.
//! - [`CryptoKind::HashSig`] — Merkle/WOTS hash-based signatures (the
//!   paper's ECDSA substitute): anyone holding the signer's 32-byte public
//!   key can verify, so certificates transfer between parties.
//! - [`CryptoKind::Agg`] — aggregatable partial signatures: a collector
//!   compresses a quorum's partials into one constant-size
//!   [`AggSignature`] (see [`crate::agg`] for the scheme and its
//!   security caveat).

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use ezbft_smr::NodeId;

use crate::agg::AggSignature;
use crate::auth::{MacAuthenticator, PairwiseKeys};
use crate::digest::Digest;
use crate::hmac::HmacKey;
use crate::merkle::{self, MerkleKeychain, MerklePublicKey, MerkleSignature};

/// Which provider a cluster uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum CryptoKind {
    /// No authentication (signatures are empty and always verify).
    Null,
    /// Pairwise HMAC authenticators.
    Mac,
    /// Hash-based many-time signatures with `2^height` capacity per node.
    HashSig {
        /// Merkle tree height (capacity = `2^height` signatures per node).
        height: u32,
    },
    /// Aggregatable partial signatures (constant-size quorum
    /// certificates; see [`crate::agg`]).
    Agg,
}

/// The set of nodes that must be able to verify a signature.
///
/// Only meaningful for the MAC provider; hash signatures are universally
/// verifiable and the null provider ignores it.
#[derive(Clone, Debug, Default)]
pub struct Audience {
    nodes: Vec<NodeId>,
}

impl Audience {
    /// An audience of exactly these nodes.
    pub fn nodes(nodes: impl IntoIterator<Item = NodeId>) -> Self {
        Audience {
            nodes: nodes.into_iter().collect(),
        }
    }

    /// Every replica of a cluster with `n` replicas.
    pub fn replicas(n: usize) -> Self {
        Audience {
            nodes: (0..n as u8)
                .map(|i| NodeId::Replica(ezbft_smr::ReplicaId::new(i)))
                .collect(),
        }
    }

    /// Extends the audience with one more node (builder style).
    pub fn and(mut self, node: impl Into<NodeId>) -> Self {
        self.nodes.push(node.into());
        self
    }

    /// The audience members.
    pub fn members(&self) -> &[NodeId] {
        &self.nodes
    }
}

/// A signature produced by a [`KeyStore`].
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize, Default)]
pub enum Signature {
    /// Null-provider signature.
    #[default]
    Null,
    /// MAC authenticator.
    Mac(MacAuthenticator),
    /// Hash-based signature.
    Hash(Box<MerkleSignature>),
    /// Aggregatable partial signature (32-byte HMAC over the message;
    /// combine with [`KeyStore::aggregate`]).
    Agg([u8; 32]),
}

/// Why verification failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AuthError {
    /// The signature does not verify for the claimed signer and message.
    BadSignature,
    /// The claimed signer is not known to this keystore (no public key).
    UnknownSigner,
    /// Signature kind does not match the cluster's provider.
    WrongKind,
    /// The signing keychain ran out of one-time leaves.
    Exhausted,
}

impl fmt::Display for AuthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuthError::BadSignature => write!(f, "signature verification failed"),
            AuthError::UnknownSigner => write!(f, "unknown signer"),
            AuthError::WrongKind => write!(f, "signature kind does not match provider"),
            AuthError::Exhausted => write!(f, "signing key exhausted"),
        }
    }
}

impl std::error::Error for AuthError {}

enum Inner {
    Null,
    Mac(PairwiseKeys),
    Hash {
        chain: MerkleKeychain,
        directory: HashMap<NodeId, MerklePublicKey>,
    },
    Agg {
        directory: HashMap<NodeId, HmacKey>,
    },
}

/// One node's view of the cluster's keys: its own signing key plus whatever
/// is needed to verify every other node.
pub struct KeyStore {
    me: NodeId,
    inner: Inner,
}

impl fmt::Debug for KeyStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.inner {
            Inner::Null => "Null",
            Inner::Mac(_) => "Mac",
            Inner::Hash { .. } => "HashSig",
            Inner::Agg { .. } => "Agg",
        };
        f.debug_struct("KeyStore")
            .field("me", &self.me)
            .field("kind", &kind)
            .finish()
    }
}

impl KeyStore {
    /// Builds one keystore per node for a whole cluster, from a master seed.
    ///
    /// The returned stores are in the same order as `nodes`. For the
    /// hash-signature provider this generates every node's keychain and
    /// distributes the public keys — exactly the trusted-setup step a real
    /// deployment performs out of band.
    pub fn cluster(kind: CryptoKind, master_seed: &[u8], nodes: &[NodeId]) -> Vec<KeyStore> {
        match kind {
            CryptoKind::Null => nodes
                .iter()
                .map(|&me| KeyStore {
                    me,
                    inner: Inner::Null,
                })
                .collect(),
            CryptoKind::Mac => nodes
                .iter()
                .map(|&me| KeyStore {
                    me,
                    inner: Inner::Mac(PairwiseKeys::new(me, master_seed)),
                })
                .collect(),
            CryptoKind::HashSig { height } => {
                let master = HmacKey::new(master_seed);
                let chains: Vec<(NodeId, MerkleKeychain)> = nodes
                    .iter()
                    .map(|&me| {
                        let mut tag = Vec::new();
                        tag.extend_from_slice(b"node-seed");
                        tag.extend_from_slice(&format!("{me:?}").into_bytes());
                        let seed = master.mac(&tag);
                        (me, MerkleKeychain::from_seed(seed.as_bytes(), height))
                    })
                    .collect();
                let directory: HashMap<NodeId, MerklePublicKey> =
                    chains.iter().map(|(id, c)| (*id, c.public_key())).collect();
                chains
                    .into_iter()
                    .map(|(me, chain)| KeyStore {
                        me,
                        inner: Inner::Hash {
                            chain,
                            directory: directory.clone(),
                        },
                    })
                    .collect()
            }
            CryptoKind::Agg => {
                let master = HmacKey::new(master_seed);
                let directory: HashMap<NodeId, HmacKey> = nodes
                    .iter()
                    .map(|&me| {
                        let mut tag = Vec::new();
                        tag.extend_from_slice(b"agg-node-seed");
                        tag.extend_from_slice(&format!("{me:?}").into_bytes());
                        (me, HmacKey::new(master.mac(&tag).as_bytes()))
                    })
                    .collect();
                nodes
                    .iter()
                    .map(|&me| KeyStore {
                        me,
                        inner: Inner::Agg {
                            directory: directory.clone(),
                        },
                    })
                    .collect()
            }
        }
    }

    /// A single null-provider keystore (for unit tests and examples).
    pub fn null(me: NodeId) -> KeyStore {
        KeyStore {
            me,
            inner: Inner::Null,
        }
    }

    /// The node this keystore belongs to.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Signs `msg` so that every member of `audience` (and, for hash
    /// signatures, anyone) can verify it.
    ///
    /// # Panics
    ///
    /// Panics if a hash-signature keychain is exhausted — a configuration
    /// error in this workspace (size keychains to the workload).
    pub fn sign(&mut self, msg: &[u8], audience: &Audience) -> Signature {
        match &mut self.inner {
            Inner::Null => Signature::Null,
            Inner::Mac(keys) => Signature::Mac(MacAuthenticator::compute(
                keys,
                msg,
                audience.members().iter().copied(),
            )),
            Inner::Hash { chain, .. } => {
                let digest = Digest::of(msg);
                let sig = chain.sign(&digest).expect("signing keychain exhausted");
                Signature::Hash(Box::new(sig))
            }
            Inner::Agg { directory } => {
                let key = directory.get(&self.me).expect("own aggregation key");
                Signature::Agg(*key.mac(msg).as_bytes())
            }
        }
    }

    /// Verifies that `signer` produced `sig` over `msg`.
    pub fn verify(&mut self, signer: NodeId, msg: &[u8], sig: &Signature) -> Result<(), AuthError> {
        match (&mut self.inner, sig) {
            (Inner::Null, Signature::Null) => Ok(()),
            (Inner::Null, _) | (_, Signature::Null) => Err(AuthError::WrongKind),
            (Inner::Mac(keys), Signature::Mac(auth)) => {
                if auth.verify(keys, signer, msg) {
                    Ok(())
                } else {
                    Err(AuthError::BadSignature)
                }
            }
            (Inner::Hash { directory, .. }, Signature::Hash(sig)) => {
                let pk = directory.get(&signer).ok_or(AuthError::UnknownSigner)?;
                if merkle::verify(pk, &Digest::of(msg), sig) {
                    Ok(())
                } else {
                    Err(AuthError::BadSignature)
                }
            }
            (Inner::Agg { directory }, Signature::Agg(partial)) => {
                let key = directory.get(&signer).ok_or(AuthError::UnknownSigner)?;
                if key.mac(msg).as_bytes() == partial {
                    Ok(())
                } else {
                    Err(AuthError::BadSignature)
                }
            }
            _ => Err(AuthError::WrongKind),
        }
    }

    /// Whether this keystore's provider supports signature aggregation
    /// ([`KeyStore::aggregate`] / [`KeyStore::verify_agg`]).
    pub fn supports_aggregation(&self) -> bool {
        matches!(self.inner, Inner::Agg { .. })
    }

    /// Compresses partial signatures (all over the *same* message) into
    /// one constant-size [`AggSignature`].
    ///
    /// Fails with [`AuthError::WrongKind`] if any input is not an
    /// aggregatable partial, or with [`AuthError::BadSignature`] on an
    /// empty input (an empty certificate proves nothing).
    pub fn aggregate(&self, sigs: &[&Signature]) -> Result<AggSignature, AuthError> {
        if sigs.is_empty() {
            return Err(AuthError::BadSignature);
        }
        let mut agg = AggSignature::identity();
        for sig in sigs {
            match sig {
                Signature::Agg(partial) => agg.absorb(partial),
                _ => return Err(AuthError::WrongKind),
            }
        }
        Ok(agg)
    }

    /// Verifies that `agg` is the aggregate of exactly `signers`'
    /// partial signatures over `msg`.
    ///
    /// Recomputes every claimed signer's expected partial and compares
    /// sums — `O(k)` HMACs against one 32-byte value. Duplicate entries
    /// in `signers` are rejected ([`AuthError::BadSignature`]): a quorum
    /// is a *set*, and the additive combination would otherwise let one
    /// signer be counted twice.
    pub fn verify_agg(
        &self,
        signers: &[NodeId],
        msg: &[u8],
        agg: &AggSignature,
    ) -> Result<(), AuthError> {
        let Inner::Agg { directory } = &self.inner else {
            return Err(AuthError::WrongKind);
        };
        if signers.is_empty() {
            return Err(AuthError::BadSignature);
        }
        let mut expected = AggSignature::identity();
        for (i, signer) in signers.iter().enumerate() {
            if signers[..i].contains(signer) {
                return Err(AuthError::BadSignature);
            }
            let key = directory.get(signer).ok_or(AuthError::UnknownSigner)?;
            expected.absorb(key.mac(msg).as_bytes());
        }
        if expected == *agg {
            Ok(())
        } else {
            Err(AuthError::BadSignature)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezbft_smr::{ClientId, ReplicaId};

    fn nodes() -> Vec<NodeId> {
        vec![
            NodeId::Replica(ReplicaId::new(0)),
            NodeId::Replica(ReplicaId::new(1)),
            NodeId::Replica(ReplicaId::new(2)),
            NodeId::Client(ClientId::new(0)),
        ]
    }

    #[test]
    fn null_provider_accepts_everything_of_its_kind() {
        let ns = nodes();
        let mut stores = KeyStore::cluster(CryptoKind::Null, b"s", &ns);
        let sig = stores[0].sign(b"m", &Audience::nodes(ns.clone()));
        assert!(stores[1].verify(ns[0], b"m", &sig).is_ok());
        // Even a "forged" claim passes — that's the point of Null.
        assert!(stores[1].verify(ns[2], b"other", &sig).is_ok());
    }

    #[test]
    fn mac_provider_end_to_end() {
        let ns = nodes();
        let mut stores = KeyStore::cluster(CryptoKind::Mac, b"s", &ns);
        let audience = Audience::replicas(3).and(ClientId::new(0));
        let sig = stores[0].sign(b"m", &audience);
        for store in stores.iter_mut().take(4).skip(1) {
            let signer = ns[0];
            assert!(store.verify(signer, b"m", &sig).is_ok());
            assert_eq!(
                store.verify(signer, b"x", &sig),
                Err(AuthError::BadSignature)
            );
            assert_eq!(
                store.verify(ns[1], b"m", &sig),
                Err(AuthError::BadSignature)
            );
        }
    }

    #[test]
    fn hashsig_provider_end_to_end() {
        let ns = nodes();
        let mut stores = KeyStore::cluster(CryptoKind::HashSig { height: 2 }, b"s", &ns);
        let sig = stores[0].sign(b"m", &Audience::default());
        assert!(stores[1].verify(ns[0], b"m", &sig).is_ok());
        assert_eq!(
            stores[1].verify(ns[0], b"x", &sig),
            Err(AuthError::BadSignature)
        );
        assert_eq!(
            stores[1].verify(ns[1], b"m", &sig),
            Err(AuthError::BadSignature)
        );
        let stranger = NodeId::Client(ClientId::new(99));
        assert_eq!(
            stores[1].verify(stranger, b"m", &sig),
            Err(AuthError::UnknownSigner)
        );
    }

    #[test]
    fn kind_mismatch_rejected() {
        let ns = nodes();
        let mut mac_stores = KeyStore::cluster(CryptoKind::Mac, b"s", &ns);
        let mut null_store = KeyStore::null(ns[0]);
        let mac_sig = mac_stores[0].sign(b"m", &Audience::nodes(ns.clone()));
        assert_eq!(
            null_store.verify(ns[0], b"m", &mac_sig),
            Err(AuthError::WrongKind)
        );
        let null_sig = null_store.sign(b"m", &Audience::default());
        assert_eq!(
            mac_stores[1].verify(ns[0], b"m", &null_sig),
            Err(AuthError::WrongKind)
        );
    }

    #[test]
    fn agg_provider_partials_verify_individually() {
        let ns = nodes();
        let mut stores = KeyStore::cluster(CryptoKind::Agg, b"s", &ns);
        let sig = stores[0].sign(b"m", &Audience::default());
        assert!(stores[1].verify(ns[0], b"m", &sig).is_ok());
        assert_eq!(
            stores[1].verify(ns[0], b"x", &sig),
            Err(AuthError::BadSignature)
        );
        assert_eq!(
            stores[1].verify(ns[1], b"m", &sig),
            Err(AuthError::BadSignature)
        );
    }

    #[test]
    fn agg_round_trip() {
        let ns = nodes();
        let mut stores = KeyStore::cluster(CryptoKind::Agg, b"s", &ns);
        let partials: Vec<Signature> = (0..3)
            .map(|i| stores[i].sign(b"m", &Audience::default()))
            .collect();
        let agg = stores[3]
            .aggregate(&partials.iter().collect::<Vec<_>>())
            .unwrap();
        assert!(stores[3].verify_agg(&ns[..3], b"m", &agg).is_ok());
        // Wrong message.
        assert_eq!(
            stores[3].verify_agg(&ns[..3], b"x", &agg),
            Err(AuthError::BadSignature)
        );
        // Wrong signer set (subset and superset).
        assert_eq!(
            stores[3].verify_agg(&ns[..2], b"m", &agg),
            Err(AuthError::BadSignature)
        );
        assert_eq!(
            stores[3].verify_agg(&ns[..4], b"m", &agg),
            Err(AuthError::BadSignature)
        );
    }

    #[test]
    fn agg_rejects_forgeries_and_duplicates() {
        let ns = nodes();
        let mut stores = KeyStore::cluster(CryptoKind::Agg, b"s", &ns);
        let p0 = stores[0].sign(b"m", &Audience::default());
        let p1 = stores[1].sign(b"m", &Audience::default());
        // Forged aggregate (arbitrary bytes).
        let forged = AggSignature::identity();
        assert_eq!(
            stores[2].verify_agg(&ns[..2], b"m", &forged),
            Err(AuthError::BadSignature)
        );
        // One partial counted twice must not pass for a two-signer set.
        let doubled = stores[2].aggregate(&[&p0, &p0]).unwrap();
        assert_eq!(
            stores[2].verify_agg(&ns[..2], b"m", &doubled),
            Err(AuthError::BadSignature)
        );
        // Duplicate signer claims are structurally rejected.
        let agg = stores[2].aggregate(&[&p0, &p1]).unwrap();
        assert_eq!(
            stores[2].verify_agg(&[ns[0], ns[0]], b"m", &agg),
            Err(AuthError::BadSignature)
        );
        // Unknown signer.
        let stranger = NodeId::Client(ClientId::new(99));
        assert_eq!(
            stores[2].verify_agg(&[ns[0], stranger], b"m", &agg),
            Err(AuthError::UnknownSigner)
        );
    }

    #[test]
    fn agg_kind_mismatches_rejected() {
        let ns = nodes();
        let mut agg_stores = KeyStore::cluster(CryptoKind::Agg, b"s", &ns);
        let mut mac_stores = KeyStore::cluster(CryptoKind::Mac, b"s", &ns);
        let mac_sig = mac_stores[0].sign(b"m", &Audience::nodes(ns.clone()));
        assert_eq!(
            agg_stores[1].verify(ns[0], b"m", &mac_sig),
            Err(AuthError::WrongKind)
        );
        // Aggregating non-Agg partials fails, as does an empty set.
        assert_eq!(
            agg_stores[0].aggregate(&[&mac_sig]),
            Err(AuthError::WrongKind)
        );
        assert_eq!(agg_stores[0].aggregate(&[]), Err(AuthError::BadSignature));
        // verify_agg on a non-Agg keystore.
        let p = agg_stores[0].sign(b"m", &Audience::default());
        let agg = agg_stores[0].aggregate(&[&p]).unwrap();
        assert_eq!(
            mac_stores[0].verify_agg(&ns[..1], b"m", &agg),
            Err(AuthError::WrongKind)
        );
        assert!(!mac_stores[0].supports_aggregation());
        assert!(agg_stores[0].supports_aggregation());
    }

    #[test]
    fn audience_builders() {
        let a = Audience::replicas(2).and(ClientId::new(7));
        assert_eq!(a.members().len(), 3);
        assert!(a.members().contains(&NodeId::Client(ClientId::new(7))));
    }
}
