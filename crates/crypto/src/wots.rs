//! Winternitz one-time signatures (WOTS) over SHA-256.
//!
//! This is the one-time building block of the [`crate::merkle`] many-time
//! scheme. Parameters: Winternitz `w = 16` (4-bit digits), message digests
//! of 32 bytes → 64 message digits + 3 checksum digits = 67 hash chains.
//!
//! Security intuition (sufficient for the BFT threat model here): signing
//! reveals intermediate chain values; forging a signature for a different
//! message requires *inverting* SHA-256 on at least one chain because the
//! checksum guarantees some digit must decrease.

use serde::{Deserialize, Serialize};

use crate::digest::Digest;
use crate::hmac::HmacKey;
use crate::sha256::Sha256;

/// Number of 4-bit message digits in a 32-byte digest.
const MSG_DIGITS: usize = 64;
/// Number of checksum digits (max checksum = 64 * 15 = 960 < 16^3).
const CSUM_DIGITS: usize = 3;
/// Total hash chains.
pub(crate) const CHAINS: usize = MSG_DIGITS + CSUM_DIGITS;
/// Chain length − 1 (digits range over `0..=15`).
const W_MAX: u8 = 15;

/// Applies the chain function `steps` times: `H(tag || chain_idx || value)`.
fn chain(value: &[u8; 32], chain_idx: u8, from: u8, steps: u8) -> [u8; 32] {
    let mut v = *value;
    for step in from..from + steps {
        let mut h = Sha256::new();
        h.update(b"wots-chain");
        h.update(&[chain_idx, step]);
        h.update(&v);
        v = *h.finalize().as_bytes();
    }
    v
}

/// Splits a digest into 67 base-16 digits (64 message + 3 checksum).
fn digits(msg: &Digest) -> [u8; CHAINS] {
    let mut out = [0u8; CHAINS];
    for (i, b) in msg.as_bytes().iter().enumerate() {
        out[2 * i] = b >> 4;
        out[2 * i + 1] = b & 0x0f;
    }
    let csum: u32 = out[..MSG_DIGITS].iter().map(|&d| (W_MAX - d) as u32).sum();
    out[MSG_DIGITS] = ((csum >> 8) & 0x0f) as u8;
    out[MSG_DIGITS + 1] = ((csum >> 4) & 0x0f) as u8;
    out[MSG_DIGITS + 2] = (csum & 0x0f) as u8;
    out
}

/// A WOTS public key: the digest of all chain tops.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct WotsPublicKey(pub Digest);

/// A WOTS signature: one intermediate chain value per digit.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct WotsSignature {
    values: Vec<[u8; 32]>,
}

impl WotsSignature {
    /// Serialized size in bytes (values only).
    pub fn size(&self) -> usize {
        self.values.len() * 32
    }

    /// Recomputes the candidate public key this signature corresponds to
    /// for digest `msg`. Verification succeeds iff the result equals the
    /// signer's public key.
    pub fn recover_public_key(&self, msg: &Digest) -> Option<WotsPublicKey> {
        if self.values.len() != CHAINS {
            return None;
        }
        let d = digits(msg);
        let mut h = Sha256::new();
        h.update(b"wots-pk");
        for (i, &di) in d.iter().enumerate() {
            let top = chain(&self.values[i], i as u8, di, W_MAX - di);
            h.update(&top);
        }
        Some(WotsPublicKey(h.finalize()))
    }
}

/// A WOTS keypair. **One-time**: signing two different digests with the same
/// keypair breaks its security (the Merkle layer enforces single use).
#[derive(Clone)]
pub struct WotsKeypair {
    secrets: Vec<[u8; 32]>,
    public: WotsPublicKey,
}

impl std::fmt::Debug for WotsKeypair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WotsKeypair")
            .field("public", &self.public)
            .finish_non_exhaustive()
    }
}

impl WotsKeypair {
    /// Deterministically derives a keypair from `seed` (secret chain starts
    /// are `HMAC(seed, chain_index)`).
    pub fn from_seed(seed: &[u8]) -> Self {
        let k = HmacKey::new(seed);
        let mut secrets = Vec::with_capacity(CHAINS);
        for i in 0..CHAINS {
            secrets.push(*k.mac(&[i as u8]).as_bytes());
        }
        let mut h = Sha256::new();
        h.update(b"wots-pk");
        for (i, s) in secrets.iter().enumerate() {
            h.update(&chain(s, i as u8, 0, W_MAX));
        }
        WotsKeypair {
            secrets,
            public: WotsPublicKey(h.finalize()),
        }
    }

    /// The public key.
    pub fn public_key(&self) -> WotsPublicKey {
        self.public
    }

    /// Signs digest `msg`.
    pub fn sign(&self, msg: &Digest) -> WotsSignature {
        let d = digits(msg);
        let values = (0..CHAINS)
            .map(|i| chain(&self.secrets[i], i as u8, 0, d[i]))
            .collect();
        WotsSignature { values }
    }
}

/// Verifies `sig` over `msg` against `pk`.
pub fn verify(pk: &WotsPublicKey, msg: &Digest, sig: &WotsSignature) -> bool {
    sig.recover_public_key(msg)
        .is_some_and(|candidate| candidate == *pk)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let kp = WotsKeypair::from_seed(b"seed-1");
        let msg = Digest::of(b"hello");
        let sig = kp.sign(&msg);
        assert!(verify(&kp.public_key(), &msg, &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let kp = WotsKeypair::from_seed(b"seed-1");
        let sig = kp.sign(&Digest::of(b"hello"));
        assert!(!verify(&kp.public_key(), &Digest::of(b"other"), &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let kp1 = WotsKeypair::from_seed(b"seed-1");
        let kp2 = WotsKeypair::from_seed(b"seed-2");
        let msg = Digest::of(b"hello");
        let sig = kp1.sign(&msg);
        assert!(!verify(&kp2.public_key(), &msg, &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let kp = WotsKeypair::from_seed(b"seed-1");
        let msg = Digest::of(b"hello");
        let mut sig = kp.sign(&msg);
        sig.values[10][0] ^= 0xff;
        assert!(!verify(&kp.public_key(), &msg, &sig));
    }

    #[test]
    fn truncated_signature_rejected() {
        let kp = WotsKeypair::from_seed(b"seed-1");
        let msg = Digest::of(b"hello");
        let mut sig = kp.sign(&msg);
        sig.values.pop();
        assert!(!verify(&kp.public_key(), &msg, &sig));
    }

    #[test]
    fn deterministic_from_seed() {
        let a = WotsKeypair::from_seed(b"same");
        let b = WotsKeypair::from_seed(b"same");
        assert_eq!(a.public_key(), b.public_key());
    }

    #[test]
    fn digits_checksum_in_range() {
        let d = digits(&Digest::of(b"x"));
        assert_eq!(d.len(), CHAINS);
        assert!(d.iter().all(|&v| v <= W_MAX));
    }

    #[test]
    fn signature_size_is_67_chains() {
        let kp = WotsKeypair::from_seed(b"s");
        let sig = kp.sign(&Digest::of(b"m"));
        assert_eq!(sig.size(), 67 * 32);
    }
}
