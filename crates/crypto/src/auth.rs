//! PBFT-style pairwise MAC authenticators.
//!
//! Instead of one public-key signature, a sender attaches a *vector* of
//! truncated HMAC tags — one per intended verifier — each computed under the
//! symmetric key it shares with that verifier. Verification is a single
//! HMAC. This is the message-authentication mode the paper's implementation
//! uses between replicas ("We used the HMAC … algorithms … to authenticate
//! the messages exchanged by the clients and the replicas", §V).
//!
//! Caveat (inherited from PBFT): a MAC authenticator convinces only its
//! audience. Certificates that third parties must check (commit
//! certificates, proofs of misbehaviour) must carry entries for every
//! possible checker — the [`crate::provider::KeyStore`] handles audience
//! selection.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use ezbft_smr::NodeId;

use crate::hmac::HmacKey;

/// Stable byte encoding of a node id for key derivation.
fn node_tag(id: NodeId) -> [u8; 9] {
    let mut out = [0u8; 9];
    match id {
        NodeId::Replica(r) => {
            out[0] = 0;
            out[1] = r.as_u8();
        }
        NodeId::Client(c) => {
            out[0] = 1;
            out[1..9].copy_from_slice(&c.as_u64().to_le_bytes());
        }
    }
    out
}

/// The pairwise symmetric keys one node shares with every other node.
///
/// Keys are derived from a cluster master secret as
/// `HMAC(master, min(a,b) || max(a,b))`, so both endpoints derive the same
/// key. In a real deployment the pairwise keys would be distributed out of
/// band; derivation from a master secret is a simulation convenience (a
/// byzantine node in the simulator only ever holds its own `PairwiseKeys`).
#[derive(Clone)]
pub struct PairwiseKeys {
    me: NodeId,
    keys: HashMap<NodeId, HmacKey>,
    master: HmacKey,
}

impl std::fmt::Debug for PairwiseKeys {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PairwiseKeys")
            .field("me", &self.me)
            .field("cached", &self.keys.len())
            .finish_non_exhaustive()
    }
}

impl PairwiseKeys {
    /// Creates the key table for node `me` from the cluster master secret.
    pub fn new(me: NodeId, master_secret: &[u8]) -> Self {
        PairwiseKeys {
            me,
            keys: HashMap::new(),
            master: HmacKey::new(master_secret),
        }
    }

    /// The node these keys belong to.
    pub fn me(&self) -> NodeId {
        self.me
    }

    fn derive(&self, peer: NodeId) -> HmacKey {
        let (lo, hi) = if self.me <= peer {
            (self.me, peer)
        } else {
            (peer, self.me)
        };
        let mut material = Vec::with_capacity(18);
        material.extend_from_slice(&node_tag(lo));
        material.extend_from_slice(&node_tag(hi));
        HmacKey::new(self.master.mac(&material).as_bytes())
    }

    /// The key shared with `peer`, deriving and caching it on first use.
    pub fn shared_with(&mut self, peer: NodeId) -> &HmacKey {
        if !self.keys.contains_key(&peer) {
            let k = self.derive(peer);
            self.keys.insert(peer, k);
        }
        &self.keys[&peer]
    }
}

/// A vector of per-verifier MAC tags over one message.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize, Default)]
pub struct MacAuthenticator {
    entries: Vec<(NodeId, [u8; 16])>,
}

impl MacAuthenticator {
    /// Computes an authenticator over `msg` for each verifier in `audience`.
    pub fn compute(
        keys: &mut PairwiseKeys,
        msg: &[u8],
        audience: impl IntoIterator<Item = NodeId>,
    ) -> Self {
        let entries = audience
            .into_iter()
            .map(|peer| (peer, keys.shared_with(peer).tag(msg)))
            .collect();
        MacAuthenticator { entries }
    }

    /// Verifies the entry addressed to `keys.me()`, authenticating `signer`
    /// as the sender. Returns `false` if no entry for us exists or the tag
    /// mismatches.
    pub fn verify(&self, keys: &mut PairwiseKeys, signer: NodeId, msg: &[u8]) -> bool {
        let me = keys.me();
        let Some((_, tag)) = self.entries.iter().find(|(peer, _)| *peer == me) else {
            return false;
        };
        // The tag was produced under key(signer, me).
        let expected = keys.shared_with(signer).tag(msg);
        // Constant-time-ish comparison; branch-free fold.
        tag.iter()
            .zip(expected.iter())
            .fold(0u8, |acc, (a, b)| acc | (a ^ b))
            == 0
    }

    /// Number of audience entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the authenticator has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezbft_smr::{ClientId, ReplicaId};

    fn replica(i: u8) -> NodeId {
        NodeId::Replica(ReplicaId::new(i))
    }
    fn client(i: u64) -> NodeId {
        NodeId::Client(ClientId::new(i))
    }

    #[test]
    fn shared_key_is_symmetric() {
        let mut a = PairwiseKeys::new(replica(0), b"master");
        let mut b = PairwiseKeys::new(replica(1), b"master");
        let ka = a.shared_with(replica(1)).mac(b"x");
        let kb = b.shared_with(replica(0)).mac(b"x");
        assert_eq!(ka, kb);
    }

    #[test]
    fn distinct_pairs_distinct_keys() {
        let mut a = PairwiseKeys::new(replica(0), b"master");
        let k01 = a.shared_with(replica(1)).mac(b"x");
        let k02 = a.shared_with(replica(2)).mac(b"x");
        let k0c = a.shared_with(client(1)).mac(b"x");
        assert_ne!(k01, k02);
        assert_ne!(k01, k0c);
    }

    #[test]
    fn authenticator_verifies_for_audience() {
        let mut signer = PairwiseKeys::new(replica(0), b"master");
        let audience = vec![replica(1), replica(2), client(5)];
        let auth = MacAuthenticator::compute(&mut signer, b"msg", audience);
        assert_eq!(auth.len(), 3);

        let mut v1 = PairwiseKeys::new(replica(1), b"master");
        let mut vc = PairwiseKeys::new(client(5), b"master");
        assert!(auth.verify(&mut v1, replica(0), b"msg"));
        assert!(auth.verify(&mut vc, replica(0), b"msg"));
    }

    #[test]
    fn non_audience_member_cannot_verify() {
        let mut signer = PairwiseKeys::new(replica(0), b"master");
        let auth = MacAuthenticator::compute(&mut signer, b"msg", vec![replica(1)]);
        let mut v3 = PairwiseKeys::new(replica(3), b"master");
        assert!(!auth.verify(&mut v3, replica(0), b"msg"));
    }

    #[test]
    fn wrong_message_or_signer_rejected() {
        let mut signer = PairwiseKeys::new(replica(0), b"master");
        let auth = MacAuthenticator::compute(&mut signer, b"msg", vec![replica(1)]);
        let mut v1 = PairwiseKeys::new(replica(1), b"master");
        assert!(!auth.verify(&mut v1, replica(0), b"other"));
        // Claiming the authenticator came from replica 2 fails: the tag was
        // made under key(0,1), not key(2,1).
        assert!(!auth.verify(&mut v1, replica(2), b"msg"));
    }

    #[test]
    fn forgery_by_third_party_fails() {
        // Replica 3 (byzantine) tries to forge an authenticator "from
        // replica 0" to replica 1 using its own keys.
        let mut byz = PairwiseKeys::new(replica(3), b"master");
        let forged = MacAuthenticator::compute(&mut byz, b"msg", vec![replica(1)]);
        let mut v1 = PairwiseKeys::new(replica(1), b"master");
        assert!(!forged.verify(&mut v1, replica(0), b"msg"));
    }

    #[test]
    fn empty_authenticator() {
        let auth = MacAuthenticator::default();
        assert!(auth.is_empty());
        let mut v = PairwiseKeys::new(replica(1), b"master");
        assert!(!auth.verify(&mut v, replica(0), b"msg"));
    }
}
