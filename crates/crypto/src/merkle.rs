//! A Merkle many-time signature scheme over WOTS leaves (an XMSS-like
//! construction).
//!
//! A [`MerkleKeychain`] holds `2^h` one-time [`crate::wots`] keypairs; the
//! public key is the Merkle root over their public keys. Each signature
//! consumes one leaf and carries the leaf index plus the authentication
//! path, so any third party holding only the 32-byte root can verify —
//! exactly the property ECDSA gives the paper's protocols for commit
//! certificates and proofs of misbehaviour.

use serde::{Deserialize, Serialize};

use crate::digest::Digest;
use crate::hmac::HmacKey;
use crate::wots::{self, WotsKeypair, WotsSignature};

/// A many-time public key: the Merkle root.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct MerklePublicKey(pub Digest);

/// A many-time signature: leaf index, one-time signature and auth path.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct MerkleSignature {
    leaf: u32,
    wots: WotsSignature,
    path: Vec<Digest>,
}

impl MerkleSignature {
    /// Serialized size in bytes (approximate; values + path).
    pub fn size(&self) -> usize {
        4 + self.wots.size() + self.path.len() * 32
    }

    /// The leaf index used.
    pub fn leaf_index(&self) -> u32 {
        self.leaf
    }
}

/// Hash of a leaf (a WOTS public key) in the tree.
fn leaf_digest(pk: &wots::WotsPublicKey) -> Digest {
    let mut h = crate::sha256::Sha256::new();
    h.update(b"merkle-leaf");
    h.update(pk.0.as_bytes());
    h.finalize()
}

/// A keychain of `2^height` one-time keys.
#[derive(Clone)]
pub struct MerkleKeychain {
    keys: Vec<WotsKeypair>,
    /// Full tree, level by level: `levels[0]` = leaf digests, last = [root].
    levels: Vec<Vec<Digest>>,
    next_leaf: u32,
}

impl std::fmt::Debug for MerkleKeychain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MerkleKeychain")
            .field("capacity", &self.keys.len())
            .field("used", &self.next_leaf)
            .finish_non_exhaustive()
    }
}

impl MerkleKeychain {
    /// Deterministically generates a keychain of `2^height` one-time keys
    /// from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `height > 16` (65 536 leaves) — beyond that, generation
    /// cost is prohibitive for this workspace's use cases.
    pub fn from_seed(seed: &[u8], height: u32) -> Self {
        assert!(height <= 16, "keychain height {height} too large");
        let count = 1usize << height;
        let master = HmacKey::new(seed);
        let keys: Vec<WotsKeypair> = (0..count)
            .map(|i| {
                let leaf_seed = master.mac(&(i as u32).to_be_bytes());
                WotsKeypair::from_seed(leaf_seed.as_bytes())
            })
            .collect();

        let mut levels = Vec::with_capacity(height as usize + 1);
        levels.push(
            keys.iter()
                .map(|k| leaf_digest(&k.public_key()))
                .collect::<Vec<_>>(),
        );
        while levels.last().unwrap().len() > 1 {
            let prev = levels.last().unwrap();
            let next: Vec<Digest> = prev.chunks(2).map(|pair| pair[0].chain(&pair[1])).collect();
            levels.push(next);
        }
        MerkleKeychain {
            keys,
            levels,
            next_leaf: 0,
        }
    }

    /// The many-time public key (Merkle root).
    pub fn public_key(&self) -> MerklePublicKey {
        MerklePublicKey(self.levels.last().unwrap()[0])
    }

    /// Remaining signature capacity.
    pub fn remaining(&self) -> usize {
        self.keys.len() - self.next_leaf as usize
    }

    /// Signs digest `msg`, consuming one leaf.
    ///
    /// Returns `None` when the keychain is exhausted; callers in this
    /// workspace size keychains generously and treat exhaustion as a fatal
    /// configuration error.
    pub fn sign(&mut self, msg: &Digest) -> Option<MerkleSignature> {
        let leaf = self.next_leaf;
        if leaf as usize >= self.keys.len() {
            return None;
        }
        self.next_leaf += 1;
        let wots_sig = self.keys[leaf as usize].sign(msg);
        let mut path = Vec::with_capacity(self.levels.len() - 1);
        let mut idx = leaf as usize;
        for level in &self.levels[..self.levels.len() - 1] {
            path.push(level[idx ^ 1]);
            idx >>= 1;
        }
        Some(MerkleSignature {
            leaf,
            wots: wots_sig,
            path,
        })
    }
}

/// Verifies `sig` over `msg` against the many-time public key `pk`.
pub fn verify(pk: &MerklePublicKey, msg: &Digest, sig: &MerkleSignature) -> bool {
    let Some(candidate) = sig.wots.recover_public_key(msg) else {
        return false;
    };
    let mut node = leaf_digest(&candidate);
    let mut idx = sig.leaf as usize;
    for sibling in &sig.path {
        node = if idx & 1 == 0 {
            node.chain(sibling)
        } else {
            sibling.chain(&node)
        };
        idx >>= 1;
    }
    node == pk.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let mut kc = MerkleKeychain::from_seed(b"seed", 2);
        let pk = kc.public_key();
        for i in 0..4u8 {
            let msg = Digest::of(&[i]);
            let sig = kc.sign(&msg).expect("capacity");
            assert!(verify(&pk, &msg, &sig), "leaf {i}");
        }
        assert_eq!(kc.remaining(), 0);
        assert!(kc.sign(&Digest::of(b"over")).is_none());
    }

    #[test]
    fn wrong_message_rejected() {
        let mut kc = MerkleKeychain::from_seed(b"seed", 1);
        let pk = kc.public_key();
        let sig = kc.sign(&Digest::of(b"a")).unwrap();
        assert!(!verify(&pk, &Digest::of(b"b"), &sig));
    }

    #[test]
    fn wrong_root_rejected() {
        let mut kc1 = MerkleKeychain::from_seed(b"seed-1", 1);
        let kc2 = MerkleKeychain::from_seed(b"seed-2", 1);
        let msg = Digest::of(b"m");
        let sig = kc1.sign(&msg).unwrap();
        assert!(!verify(&kc2.public_key(), &msg, &sig));
    }

    #[test]
    fn tampered_path_rejected() {
        let mut kc = MerkleKeychain::from_seed(b"seed", 2);
        let pk = kc.public_key();
        let msg = Digest::of(b"m");
        let mut sig = kc.sign(&msg).unwrap();
        sig.path[0] = Digest::of(b"bogus");
        assert!(!verify(&pk, &msg, &sig));
    }

    #[test]
    fn tampered_leaf_index_rejected() {
        let mut kc = MerkleKeychain::from_seed(b"seed", 2);
        let pk = kc.public_key();
        let msg = Digest::of(b"m");
        let mut sig = kc.sign(&msg).unwrap();
        sig.leaf = 3;
        assert!(!verify(&pk, &msg, &sig));
    }

    #[test]
    fn deterministic_public_key() {
        let a = MerkleKeychain::from_seed(b"same", 2);
        let b = MerkleKeychain::from_seed(b"same", 2);
        assert_eq!(a.public_key(), b.public_key());
        let c = MerkleKeychain::from_seed(b"different", 2);
        assert_ne!(a.public_key(), c.public_key());
    }

    #[test]
    fn remaining_decrements() {
        let mut kc = MerkleKeychain::from_seed(b"seed", 2);
        assert_eq!(kc.remaining(), 4);
        kc.sign(&Digest::of(b"x")).unwrap();
        assert_eq!(kc.remaining(), 3);
    }
}
