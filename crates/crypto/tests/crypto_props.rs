//! Property tests for the crypto substrate: the primitives must behave
//! like the ideal objects the protocols assume.

use ezbft_crypto::{
    hmac_sha256, sha256, Audience, CryptoKind, Digest, KeyStore, MerkleKeychain, Sha256,
    WotsKeypair,
};
use ezbft_smr::{ClientId, NodeId, ReplicaId};
use proptest::prelude::*;

proptest! {
    /// Streaming and one-shot SHA-256 agree for every chunking.
    #[test]
    fn sha256_streaming_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        chunk in 1usize..257,
    ) {
        let mut h = Sha256::new();
        for piece in data.chunks(chunk) {
            h.update(piece);
        }
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    /// Distinct inputs produce distinct digests (collision would be a bug
    /// in this implementation, not a cryptanalytic event).
    #[test]
    fn sha256_injective_on_samples(a in any::<Vec<u8>>(), b in any::<Vec<u8>>()) {
        if a != b {
            prop_assert_ne!(sha256(&a), sha256(&b));
        }
    }

    /// HMAC separates keys and messages.
    #[test]
    fn hmac_separates_keys_and_messages(
        k1 in proptest::collection::vec(any::<u8>(), 1..64),
        k2 in proptest::collection::vec(any::<u8>(), 1..64),
        m in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        if k1 != k2 {
            prop_assert_ne!(hmac_sha256(&k1, &m), hmac_sha256(&k2, &m));
        }
        prop_assert_eq!(hmac_sha256(&k1, &m), hmac_sha256(&k1, &m));
    }

    /// WOTS: valid signatures verify; any single-bit flip in the message
    /// digest breaks verification.
    #[test]
    fn wots_bitflip_rejected(seed in any::<u64>(), flip_byte in 0usize..32, flip_bit in 0u8..8) {
        let kp = WotsKeypair::from_seed(&seed.to_le_bytes());
        let msg = Digest::of(&seed.to_be_bytes());
        let sig = kp.sign(&msg);
        prop_assert!(ezbft_crypto::wots::verify(&kp.public_key(), &msg, &sig));
        let mut tampered = *msg.as_bytes();
        tampered[flip_byte] ^= 1 << flip_bit;
        let tampered = Digest::from_bytes(tampered);
        prop_assert!(!ezbft_crypto::wots::verify(&kp.public_key(), &tampered, &sig));
    }

    /// Merkle many-time signatures: every leaf verifies against the root,
    /// and signatures do not transfer between messages.
    #[test]
    fn merkle_leaves_verify_and_do_not_transfer(seed in any::<u64>()) {
        let mut kc = MerkleKeychain::from_seed(&seed.to_le_bytes(), 2);
        let pk = kc.public_key();
        let m1 = Digest::of(b"one");
        let m2 = Digest::of(b"two");
        let s1 = kc.sign(&m1).unwrap();
        prop_assert!(ezbft_crypto::merkle::verify(&pk, &m1, &s1));
        prop_assert!(!ezbft_crypto::merkle::verify(&pk, &m2, &s1));
    }

    /// The MAC keystore: only the genuine signer verifies, for every
    /// audience member; non-members always fail.
    #[test]
    fn keystore_mac_unforgeability(msg in proptest::collection::vec(any::<u8>(), 0..128)) {
        let nodes = vec![
            NodeId::Replica(ReplicaId::new(0)),
            NodeId::Replica(ReplicaId::new(1)),
            NodeId::Replica(ReplicaId::new(2)),
            NodeId::Client(ClientId::new(7)),
        ];
        let mut stores = KeyStore::cluster(CryptoKind::Mac, b"prop", &nodes);
        let audience = Audience::nodes(vec![nodes[1], nodes[3]]);
        let sig = stores[0].sign(&msg, &audience);
        // Audience members verify against the true signer...
        prop_assert!(stores[1].verify(nodes[0], &msg, &sig).is_ok());
        prop_assert!(stores[3].verify(nodes[0], &msg, &sig).is_ok());
        // ...but not against an impostor.
        prop_assert!(stores[1].verify(nodes[2], &msg, &sig).is_err());
        // Non-members cannot verify at all.
        prop_assert!(stores[2].verify(nodes[0], &msg, &sig).is_err());
    }
}
