//! The server-side processing-cost model.
//!
//! Latency experiments (§V-A) run without a cost model: WAN propagation
//! dominates and the paper's own analysis treats processing as negligible.
//! The client-scalability and throughput experiments (§V-B, §V-C) are
//! *about* server capacity, so there each replica is a FIFO server and
//! every received message costs service time.
//!
//! Calibration (documented in EXPERIMENTS.md): the dominant cost in the
//! paper's setup is client-request admission (ECDSA verification plus
//! ordering and per-peer authentication of the ordering message, ~1-3 ms in
//! 2019-era Go), while follower-side processing uses cheap HMACs. The
//! defaults below land single-leader throughput in the few-hundreds-per-
//! second range the paper reports without batching.
//!
//! Costs decompose into **per-message** and **per-request** terms: a
//! batched ordering message pays its fixed envelope cost once but its
//! signature-verification and execution cost per request it carries. With
//! batch size 1 the sums equal the pre-decomposition flat costs, so the
//! paper-reproduction figures are unchanged — and figures 6/7 can show
//! batching effects without a custom cost profile.

use ezbft_smr::{Micros, NodeId};

/// Per-message-kind service times, in microseconds, split into fixed
/// per-message and per-carried-request terms.
#[derive(Clone, Copy, Debug)]
pub struct CostParams {
    /// Fixed cost of admitting one ordering-request message (envelope
    /// authentication, queueing).
    pub order_msg_us: u64,
    /// Per-request admission cost (client signature verification plus
    /// ordering work) — the dominant term in the paper's setup.
    pub order_req_us: u64,
    /// Fixed cost of processing one ordering message as a follower.
    pub follow_msg_us: u64,
    /// Per-request follower cost (verify digest + speculative execution +
    /// reply signing).
    pub follow_req_us: u64,
    /// Processing a commit-phase vote or certificate.
    pub commit_us: u64,
    /// Processing one instance-level commit acknowledgement at its
    /// collector (ezBFT's SPECACK at the command-leader under commit
    /// aggregation: one signature check plus a tally update — cheaper
    /// than a full certificate).
    pub ack_us: u64,
    /// Any other protocol message.
    pub other_us: u64,
}

impl Default for CostParams {
    fn default() -> Self {
        // Batch-of-1 sums match the historical flat costs (2600 / 120).
        CostParams {
            order_msg_us: 200,
            order_req_us: 2_400,
            follow_msg_us: 70,
            follow_req_us: 50,
            commit_us: 60,
            ack_us: 40,
            other_us: 80,
        }
    }
}

impl CostParams {
    /// Cost of a message carrying `requests` application requests,
    /// classified into the buckets. Protocol families map their message
    /// kinds onto the buckets and report each message's batch size.
    pub fn cost(&self, bucket: CostBucket, requests: usize) -> Micros {
        let n = requests as u64;
        match bucket {
            CostBucket::Order => Micros(self.order_msg_us + self.order_req_us * n),
            CostBucket::Follow => Micros(self.follow_msg_us + self.follow_req_us * n),
            CostBucket::Commit => Micros(self.commit_us),
            CostBucket::Ack => Micros(self.ack_us),
            CostBucket::Other => Micros(self.other_us),
            CostBucket::Free => Micros::ZERO,
        }
    }

    /// Single-request convenience (every unbatched protocol message).
    pub fn classify(&self, bucket: CostBucket) -> Micros {
        self.cost(bucket, 1)
    }

    /// Convenience: cost for clients is always zero (the paper's clients
    /// are not the bottleneck; they run one request at a time).
    pub fn for_node(&self, node: NodeId, bucket: CostBucket, requests: usize) -> Micros {
        if node.is_client() {
            Micros::ZERO
        } else {
            self.cost(bucket, requests)
        }
    }
}

/// The cost bucket a message falls into.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CostBucket {
    /// Client-request admission and ordering.
    Order,
    /// Follower-side ordering-message processing.
    Follow,
    /// Commit-phase processing.
    Commit,
    /// Instance-level commit acknowledgements (collector side).
    Ack,
    /// Miscellaneous protocol messages.
    Other,
    /// Not charged (client-side messages).
    Free,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezbft_smr::{ClientId, ReplicaId};

    #[test]
    fn buckets_map_to_configured_costs() {
        let p = CostParams {
            order_msg_us: 40,
            order_req_us: 60,
            follow_msg_us: 12,
            follow_req_us: 8,
            commit_us: 10,
            ack_us: 7,
            other_us: 5,
        };
        assert_eq!(p.classify(CostBucket::Order), Micros(100));
        assert_eq!(p.classify(CostBucket::Follow), Micros(20));
        assert_eq!(p.classify(CostBucket::Commit), Micros(10));
        assert_eq!(p.classify(CostBucket::Ack), Micros(7));
        assert_eq!(p.classify(CostBucket::Other), Micros(5));
        assert_eq!(p.classify(CostBucket::Free), Micros::ZERO);
    }

    #[test]
    fn batched_messages_amortise_the_fixed_term() {
        let p = CostParams::default();
        let one = p.cost(CostBucket::Follow, 1);
        let eight = p.cost(CostBucket::Follow, 8);
        // The per-request share falls with the batch size...
        assert!(eight.as_micros() < one.as_micros() * 8);
        // ...by exactly the fixed envelope term.
        assert_eq!(eight.as_micros(), p.follow_msg_us + p.follow_req_us * 8);
        // Commit/other messages carry no requests and stay flat.
        assert_eq!(p.cost(CostBucket::Commit, 8), p.cost(CostBucket::Commit, 1));
    }

    #[test]
    fn defaults_preserve_historical_flat_costs_at_batch_one() {
        let p = CostParams::default();
        assert_eq!(p.classify(CostBucket::Order), Micros(2_600));
        assert_eq!(p.classify(CostBucket::Follow), Micros(120));
    }

    #[test]
    fn clients_are_free() {
        let p = CostParams::default();
        assert_eq!(
            p.for_node(NodeId::Client(ClientId::new(1)), CostBucket::Order, 1),
            Micros::ZERO
        );
        assert_ne!(
            p.for_node(NodeId::Replica(ReplicaId::new(1)), CostBucket::Order, 1),
            Micros::ZERO
        );
    }
}
