//! The server-side processing-cost model.
//!
//! Latency experiments (§V-A) run without a cost model: WAN propagation
//! dominates and the paper's own analysis treats processing as negligible.
//! The client-scalability and throughput experiments (§V-B, §V-C) are
//! *about* server capacity, so there each replica is a FIFO server and
//! every received message costs service time.
//!
//! Calibration (documented in EXPERIMENTS.md): the dominant cost in the
//! paper's setup is client-request admission (ECDSA verification plus
//! ordering and per-peer authentication of the ordering message, ~1-3 ms in
//! 2019-era Go), while follower-side processing uses cheap HMACs. The
//! defaults below land single-leader throughput in the few-hundreds-per-
//! second range the paper reports without batching.

use ezbft_smr::{Micros, NodeId};

/// Per-message-kind service times, in microseconds.
#[derive(Clone, Copy, Debug)]
pub struct CostParams {
    /// Admitting and ordering a client request (leader/primary work).
    pub order_us: u64,
    /// Processing an ordering message as a follower (verify + speculative
    /// execute + reply).
    pub follow_us: u64,
    /// Processing a commit-phase vote or certificate.
    pub commit_us: u64,
    /// Any other protocol message.
    pub other_us: u64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            order_us: 2_600,
            follow_us: 120,
            commit_us: 60,
            other_us: 80,
        }
    }
}

impl CostParams {
    /// Cost of a message classified into the four buckets. Protocol
    /// families map their message kinds onto the buckets.
    pub fn classify(&self, bucket: CostBucket) -> Micros {
        match bucket {
            CostBucket::Order => Micros(self.order_us),
            CostBucket::Follow => Micros(self.follow_us),
            CostBucket::Commit => Micros(self.commit_us),
            CostBucket::Other => Micros(self.other_us),
            CostBucket::Free => Micros::ZERO,
        }
    }

    /// Convenience: cost for clients is always zero (the paper's clients
    /// are not the bottleneck; they run one request at a time).
    pub fn for_node(&self, node: NodeId, bucket: CostBucket) -> Micros {
        if node.is_client() {
            Micros::ZERO
        } else {
            self.classify(bucket)
        }
    }
}

/// The cost bucket a message falls into.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CostBucket {
    /// Client-request admission and ordering.
    Order,
    /// Follower-side ordering-message processing.
    Follow,
    /// Commit-phase processing.
    Commit,
    /// Miscellaneous protocol messages.
    Other,
    /// Not charged (client-side messages).
    Free,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezbft_smr::{ClientId, ReplicaId};

    #[test]
    fn buckets_map_to_configured_costs() {
        let p = CostParams {
            order_us: 100,
            follow_us: 20,
            commit_us: 10,
            other_us: 5,
        };
        assert_eq!(p.classify(CostBucket::Order), Micros(100));
        assert_eq!(p.classify(CostBucket::Follow), Micros(20));
        assert_eq!(p.classify(CostBucket::Commit), Micros(10));
        assert_eq!(p.classify(CostBucket::Other), Micros(5));
        assert_eq!(p.classify(CostBucket::Free), Micros::ZERO);
    }

    #[test]
    fn clients_are_free() {
        let p = CostParams::default();
        assert_eq!(
            p.for_node(NodeId::Client(ClientId::new(1)), CostBucket::Order),
            Micros::ZERO
        );
        assert_ne!(
            p.for_node(NodeId::Replica(ReplicaId::new(1)), CostBucket::Order),
            Micros::ZERO
        );
    }
}
