//! Scraper client for the transport's live introspection plane
//! (DESIGN.md §9b): fetches `/metrics` (Prometheus text exposition) and
//! `/status` (a [`HealthReport`] JSON snapshot) from a node's
//! introspection socket and parses them back into typed form.
//!
//! The parser is hand-rolled like every other harness codec so the
//! workspace stays dependency-free; it understands exactly the grammar
//! `ezbft_obs::MemRecorder::render_exposition` emits (unlabelled and
//! `{label="…"}` samples, `_bucket{le="…"}` cumulative histograms).

use std::collections::BTreeMap;
use std::io::{self, Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use ezbft_obs::HealthReport;

/// One parsed `/metrics` scrape.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Every non-histogram sample, keyed by its full series name
    /// (including any `{label="…"}` suffix).
    pub samples: BTreeMap<String, u64>,
    /// Cumulative histogram buckets per family: `(le, cumulative count)`
    /// in ascending `le` order, `u64::MAX` standing in for `+Inf`.
    pub histograms: BTreeMap<String, Vec<(u64, u64)>>,
}

impl MetricsSnapshot {
    /// Parses the text exposition format.
    pub fn parse(text: &str) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            // `name value` or `name{labels} value`; values are integers.
            let Some((series, value)) = line.rsplit_once(' ') else {
                continue;
            };
            let Ok(value) = value.parse::<u64>() else {
                continue;
            };
            if let Some((family, le)) = split_bucket(series) {
                snap.histograms.entry(family).or_default().push((le, value));
            } else {
                snap.samples.insert(series.to_string(), value);
            }
        }
        for buckets in snap.histograms.values_mut() {
            buckets.sort_by_key(|&(le, _)| le);
        }
        snap
    }

    /// The value of an unlabelled series, 0 when absent.
    pub fn value(&self, series: &str) -> u64 {
        self.samples.get(series).copied().unwrap_or(0)
    }

    /// Total observation count of histogram `family`
    /// (e.g. `ezbft_stage_e2e`).
    pub fn histogram_count(&self, family: &str) -> u64 {
        self.value(&format!("{family}_count"))
    }

    /// Approximate `q`-quantile of histogram `family` in the histogram's
    /// native unit: the upper bound of the first cumulative bucket
    /// covering the target rank (the same resolution
    /// `ezbft_obs::Log2Histogram::quantile` offers). `None` when the
    /// family is absent or empty.
    pub fn histogram_quantile(&self, family: &str, q: f64) -> Option<u64> {
        let buckets = self.histograms.get(family)?;
        let total = buckets.last()?.1;
        if total == 0 {
            return None;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        buckets
            .iter()
            .find(|&&(_, cum)| cum >= rank)
            .map(|&(le, _)| le)
    }
}

/// Splits `name_bucket{le="…"}` into `(name, le)`; `+Inf` maps to
/// `u64::MAX`.
fn split_bucket(series: &str) -> Option<(String, u64)> {
    let (name, rest) = series.split_once("_bucket{le=\"")?;
    let le = rest.strip_suffix("\"}")?;
    let le = if le == "+Inf" {
        u64::MAX
    } else {
        le.parse().ok()?
    };
    Some((name.to_string(), le))
}

/// Issues one HTTP/1.0 GET against a node's introspection socket and
/// returns `(status code, body)`.
///
/// # Errors
///
/// Propagates connect/read/write failures and malformed responses as
/// [`io::Error`].
pub fn fetch(addr: SocketAddr, path: &str) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    stream.write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing header terminator"))?;
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing status code"))?;
    Ok((status, body.to_string()))
}

/// Scrapes and parses `/metrics` from `addr`.
///
/// # Errors
///
/// Fails on transport errors or a non-200 response.
pub fn scrape_metrics(addr: SocketAddr) -> io::Result<MetricsSnapshot> {
    let (status, body) = fetch(addr, "/metrics")?;
    if status != 200 {
        return Err(io::Error::other(format!("/metrics returned {status}")));
    }
    Ok(MetricsSnapshot::parse(&body))
}

/// Scrapes and parses `/status` from `addr`.
///
/// # Errors
///
/// Fails on transport errors, a non-200 response, or malformed JSON.
pub fn scrape_status(addr: SocketAddr) -> io::Result<HealthReport> {
    let (status, body) = fetch(addr, "/status")?;
    if status != 200 {
        return Err(io::Error::other(format!("/status returned {status}")));
    }
    HealthReport::from_json(&body).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_counters_gauges_and_labelled_series() {
        let text = "\
# TYPE ezbft_net_frame_encodes counter
ezbft_net_frame_encodes 12
ezbft_sim_sent{kind=\"SpecOrder\"} 4
# TYPE ezbft_exec_queue_depth gauge
ezbft_exec_queue_depth 3
ezbft_exec_queue_depth_max 9
";
        let snap = MetricsSnapshot::parse(text);
        assert_eq!(snap.value("ezbft_net_frame_encodes"), 12);
        assert_eq!(snap.value("ezbft_sim_sent{kind=\"SpecOrder\"}"), 4);
        assert_eq!(snap.value("ezbft_exec_queue_depth_max"), 9);
        assert_eq!(snap.value("no_such_series"), 0);
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn parses_histograms_and_answers_quantiles() {
        let text = "\
# TYPE ezbft_stage_e2e histogram
ezbft_stage_e2e_bucket{le=\"1\"} 1
ezbft_stage_e2e_bucket{le=\"3\"} 3
ezbft_stage_e2e_bucket{le=\"7\"} 4
ezbft_stage_e2e_bucket{le=\"+Inf\"} 4
ezbft_stage_e2e_sum 14
ezbft_stage_e2e_count 4
";
        let snap = MetricsSnapshot::parse(text);
        assert_eq!(snap.histogram_count("ezbft_stage_e2e"), 4);
        assert_eq!(snap.histogram_quantile("ezbft_stage_e2e", 0.50), Some(3));
        assert_eq!(snap.histogram_quantile("ezbft_stage_e2e", 0.99), Some(7));
        assert_eq!(snap.histogram_quantile("ezbft_stage_e2e", 0.0), Some(1));
        assert_eq!(snap.histogram_quantile("absent", 0.5), None);
    }

    #[test]
    fn bucket_splitter_handles_inf_and_rejects_non_buckets() {
        assert_eq!(
            split_bucket("f_bucket{le=\"+Inf\"}"),
            Some(("f".into(), u64::MAX))
        );
        assert_eq!(split_bucket("f_bucket{le=\"31\"}"), Some(("f".into(), 31)));
        assert_eq!(split_bucket("f{kind=\"x\"}"), None);
        assert_eq!(split_bucket("f_count"), None);
    }
}
