//! Plain-text table rendering for experiment reports.

use std::fmt::Write as _;

/// A simple aligned text table.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:<width$}", cell, width = widths[i] + 2);
                let _ = if i + 1 == cols { writeln!(out) } else { Ok(()) };
            }
        };
        line(&self.header, &mut out);
        let rule: usize = widths.iter().map(|w| w + 2).sum();
        let _ = writeln!(out, "{}", "-".repeat(rule));
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }
}

/// Formats milliseconds with one decimal.
pub fn ms(value: f64) -> String {
    format!("{value:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].starts_with("long-name"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        TextTable::new(&["a", "b"]).row(vec!["only-one".into()]);
    }

    #[test]
    fn ms_formats_one_decimal() {
        assert_eq!(ms(199.96), "200.0");
        assert_eq!(ms(3.15), "3.1");
    }
}
