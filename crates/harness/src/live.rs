//! A real ezBFT cluster over TCP loopback with the introspection plane
//! enabled on every replica (DESIGN.md §9b): the deployment behind the
//! `scrape_overhead` experiment and the `ezbft-top` viewer.
//!
//! Unlike [`crate::cluster::ClusterBuilder`] — which runs the protocol
//! inside the deterministic WAN simulator — this module spawns the
//! threaded TCP runtime, so throughput and scrape cost are measured in
//! wall-clock time on real sockets.

use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::time::Duration;

use ezbft_core::{Client, EzConfig, Msg, Replica};
use ezbft_crypto::{CryptoKind, KeyStore};
use ezbft_kv::{Key, KvOp, KvResponse, KvStore};
use ezbft_obs::{MemRecorder, Recorder, Stage};
use ezbft_smr::{ClientId, ClientNode as _, ClusterConfig, NodeId, ReplicaId};
use ezbft_transport::{AddressBook, NodeHandle};

/// The wire message of a KV-replicating ezBFT deployment.
pub type KvMsg = Msg<KvOp, KvResponse>;

/// A running introspectable cluster: `3f + 1` replica nodes plus one
/// closed-loop client, all on loopback TCP.
#[derive(Debug)]
pub struct LiveCluster {
    /// Replica runtime handles, in replica-id order.
    pub replicas: Vec<NodeHandle<KvMsg, Replica<KvStore>>>,
    /// Each replica's in-memory telemetry sink (same order).
    pub recorders: Vec<Arc<MemRecorder>>,
    /// The client runtime handle.
    pub client: NodeHandle<KvMsg, Client<KvOp, KvResponse>>,
    submitted: u64,
    pending: bool,
}

impl LiveCluster {
    /// Spawns a fault-tolerance-`f` cluster (MAC authentication,
    /// checkpointing every `checkpoint_interval` commands when non-zero)
    /// with every replica's introspection endpoint live.
    ///
    /// # Panics
    ///
    /// Panics if loopback sockets cannot be bound or nodes fail to spawn.
    pub fn start(faults: usize, checkpoint_interval: u64) -> LiveCluster {
        let cluster = ClusterConfig::for_faults(faults);
        let mut cfg = EzConfig::new(cluster);
        if checkpoint_interval > 0 {
            cfg = cfg.with_checkpointing(checkpoint_interval);
        }
        // A live deployment wants availability over rotation purity: the
        // client sticks to whichever replica actually serves a rotated
        // request (see EzConfig::sticky_rotation).
        cfg.sticky_rotation = true;
        let client_id = ClientId::new(0);
        let mut nodes: Vec<NodeId> = cluster.replicas().map(NodeId::Replica).collect();
        nodes.push(NodeId::Client(client_id));
        let mut stores = KeyStore::cluster(CryptoKind::Mac, b"live-cluster", &nodes);
        let client_keys = stores.pop().expect("client keys");

        let mut book = AddressBook::new();
        let mut listeners = Vec::new();
        for node in &nodes {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
            book.insert(*node, listener.local_addr().expect("local addr"));
            listeners.push(listener);
        }
        let client_listener = listeners.pop().expect("client listener");

        let mut replicas = Vec::new();
        let mut recorders = Vec::new();
        for (rid, listener) in cluster.replicas().zip(listeners) {
            let rec = Arc::new(MemRecorder::new());
            // A live node's recorder must stay bounded: retire spans at
            // the last stage a replica records, and skip the per-record
            // event log (the scrape endpoint only reads aggregates).
            rec.set_evict_at(Some(Stage::ExecDone));
            rec.set_event_log(false);
            let replica = Replica::new(rid, cfg, stores.remove(0), KvStore::new())
                .with_recorder(rec.clone() as Arc<dyn Recorder>);
            let intro = TcpListener::bind("127.0.0.1:0").expect("bind introspection");
            replicas.push(
                NodeHandle::spawn_introspected(replica, book.clone(), listener, rec.clone(), intro)
                    .expect("spawn replica"),
            );
            recorders.push(rec);
        }
        let client: Client<KvOp, KvResponse> =
            Client::new(client_id, cfg, client_keys, ReplicaId::new(0));
        let client =
            NodeHandle::spawn_with_listener(client, book, client_listener).expect("spawn client");
        LiveCluster {
            replicas,
            recorders,
            client,
            submitted: 0,
            pending: false,
        }
    }

    /// Every replica's introspection address, in replica-id order.
    pub fn intro_addrs(&self) -> Vec<SocketAddr> {
        self.replicas
            .iter()
            .map(|h| h.intro_addr().expect("spawned introspected"))
            .collect()
    }

    /// Submits one closed-loop `Put` and waits for its delivery.
    /// Returns `false` when the request times out; a timed-out request
    /// stays pending, and the next call waits for it instead of
    /// double-submitting into a client that is still in flight.
    pub fn submit_and_wait(&mut self, timeout: Duration) -> bool {
        if self.pending {
            if self.client.recv_delivery(timeout).is_none() {
                return false;
            }
            self.pending = false;
        }
        let i = self.submitted;
        self.submitted += 1;
        if self
            .client
            .with_node(move |c, out| {
                c.submit(
                    KvOp::Put {
                        key: Key(i % 64),
                        value: vec![(i % 251) as u8; 32],
                    },
                    out,
                );
            })
            .is_err()
        {
            return false;
        }
        self.pending = true;
        let delivered = self.client.recv_delivery(timeout).is_some();
        if delivered {
            self.pending = false;
        }
        delivered
    }

    /// Shuts every node down and returns the final replica state
    /// machines (in replica-id order).
    pub fn shutdown(self) -> Vec<Replica<KvStore>> {
        drop(self.client.shutdown());
        self.replicas
            .into_iter()
            .filter_map(NodeHandle::shutdown)
            .collect()
    }
}
