//! Protocol families: a uniform constructor/cost interface over ezBFT and
//! the three baselines, all replicating the KV store.

use std::sync::Arc;

use ezbft_crypto::KeyStore;
use ezbft_kv::{KvOp, KvResponse, KvStore};
use ezbft_obs::Recorder;
use ezbft_smr::{
    Actions, ClientId, ClientNode, ClusterConfig, Micros, NodeId, ProtocolNode, ReplicaId,
};

use crate::cost::{CostBucket, CostParams};

/// Everything a family needs to instantiate nodes.
#[derive(Clone, Copy, Debug)]
pub struct Setup {
    /// The cluster.
    pub cluster: ClusterConfig,
    /// Primary/leader of view 0 (ignored by the leaderless family).
    pub primary: ReplicaId,
    /// SPECORDER batch size (ezBFT only; 1 = the paper's unbatched mode).
    pub batch_size: usize,
    /// How long an ezBFT command-leader holds an under-full batch open.
    pub batch_delay: Micros,
    /// ezBFT checkpoint barrier interval in executed commands
    /// (0 = disabled, the paper's unbounded-log behaviour).
    pub checkpoint_interval: u64,
    /// ezBFT instance-level commit aggregation (DESIGN.md §7; ignored by
    /// the baselines, `false` = the paper's client-driven commitment).
    pub commit_aggregation: bool,
    /// ezBFT compact O(1) certificates (DESIGN.md §10; ignored by the
    /// baselines, `false` = explicit vote vectors everywhere). Requires an
    /// aggregation-capable crypto provider to take effect.
    pub compact_certs: bool,
    /// ezBFT execution-engine worker count (DESIGN.md §8; ignored by the
    /// baselines, 1 = the sequential engine).
    pub exec_workers: usize,
    /// Modelled per-command final-execution cost in microseconds, charged
    /// to the replica's service time via [`ezbft_smr::Action::Work`]
    /// (0 = execution is free, the historical behaviour).
    pub exec_cost_us: u64,
}

/// Object-safe client interface used by the workload driver.
pub trait DynClient<M>: ProtocolNode<Message = M, Response = KvResponse> {
    /// Submits one KV operation.
    fn submit_op(&mut self, op: KvOp, out: &mut Actions<M, KvResponse>);
    /// Whether a request is in flight.
    fn idle(&self) -> bool;
}

impl<M, T> DynClient<M> for T
where
    T: ClientNode<Message = M, Response = KvResponse, Command = KvOp>,
{
    fn submit_op(&mut self, op: KvOp, out: &mut Actions<M, KvResponse>) {
        self.submit(op, out);
    }
    fn idle(&self) -> bool {
        !self.in_flight()
    }
}

/// A protocol family: replica/client constructors plus the cost
/// classification of its messages.
pub trait ProtocolFamily: 'static {
    /// Display name (reports).
    const NAME: &'static str;
    /// The wire message type. The `Serialize` bound lets the harness
    /// estimate per-frame byte sizes (`net.bytes_*` counters) with the
    /// same encoding the TCP transport would use.
    type Msg: Clone + Send + serde::Serialize + 'static;

    /// Builds a replica node.
    fn replica(
        setup: Setup,
        id: ReplicaId,
        keys: KeyStore,
    ) -> Box<dyn ProtocolNode<Message = Self::Msg, Response = KvResponse>>;

    /// Builds a client node; `nearest` is the replica co-located with the
    /// client (used by the leaderless family).
    fn client(
        setup: Setup,
        id: ClientId,
        keys: KeyStore,
        nearest: ReplicaId,
    ) -> Box<dyn DynClient<Self::Msg>>;

    /// Builds a replica with a telemetry sink attached. Families without
    /// instrumentation ignore the recorder (the default), which keeps the
    /// stage-latency harness uniform across protocols.
    fn replica_observed(
        setup: Setup,
        id: ReplicaId,
        keys: KeyStore,
        _recorder: &Arc<dyn Recorder>,
    ) -> Box<dyn ProtocolNode<Message = Self::Msg, Response = KvResponse>> {
        Self::replica(setup, id, keys)
    }

    /// Builds a client with a telemetry sink attached (see
    /// [`ProtocolFamily::replica_observed`]).
    fn client_observed(
        setup: Setup,
        id: ClientId,
        keys: KeyStore,
        nearest: ReplicaId,
        _recorder: &Arc<dyn Recorder>,
    ) -> Box<dyn DynClient<Self::Msg>> {
        Self::client(setup, id, keys, nearest)
    }

    /// Classifies a message for the cost model.
    fn cost_bucket(msg: &Self::Msg) -> CostBucket;

    /// How many application requests a message carries (drives the
    /// per-request cost term). Unbatched protocols leave the default.
    fn batch_len(_msg: &Self::Msg) -> usize {
        1
    }

    /// Short kind tag of a message (simulator per-kind traffic counters).
    fn msg_kind(msg: &Self::Msg) -> &'static str;

    /// Cost-model closure for the simulator.
    fn cost_fn(params: CostParams) -> impl FnMut(NodeId, &Self::Msg) -> Micros + Send + 'static {
        move |node, msg| params.for_node(node, Self::cost_bucket(msg), Self::batch_len(msg))
    }
}

/// The ezBFT family (leaderless: clients talk to their nearest replica).
#[derive(Debug)]
pub struct EzBftFamily;

impl ProtocolFamily for EzBftFamily {
    const NAME: &'static str = "ezBFT";
    type Msg = ezbft_core::Msg<KvOp, KvResponse>;

    fn replica(
        setup: Setup,
        id: ReplicaId,
        keys: KeyStore,
    ) -> Box<dyn ProtocolNode<Message = Self::Msg, Response = KvResponse>> {
        let mut cfg = ezbft_core::EzConfig::new(setup.cluster)
            .with_batching(setup.batch_size, setup.batch_delay)
            .with_exec_workers(setup.exec_workers.max(1), setup.exec_cost_us);
        cfg.checkpoint_interval = setup.checkpoint_interval;
        cfg.commit_aggregation = setup.commit_aggregation;
        cfg.compact_certs = setup.compact_certs;
        Box::new(ezbft_core::Replica::new(id, cfg, keys, KvStore::new()))
    }

    fn client(
        setup: Setup,
        id: ClientId,
        keys: KeyStore,
        nearest: ReplicaId,
    ) -> Box<dyn DynClient<Self::Msg>> {
        let mut cfg = ezbft_core::EzConfig::new(setup.cluster)
            .with_batching(setup.batch_size, setup.batch_delay);
        cfg.commit_aggregation = setup.commit_aggregation;
        cfg.compact_certs = setup.compact_certs;
        Box::new(ezbft_core::Client::<KvOp, KvResponse>::new(
            id, cfg, keys, nearest,
        ))
    }

    fn cost_bucket(msg: &Self::Msg) -> CostBucket {
        use ezbft_core::Msg as M;
        match msg {
            M::Request(_) | M::ResendReq(_) => CostBucket::Order,
            M::SpecOrder(_) => CostBucket::Follow,
            M::CommitFast(_) | M::Commit(_) | M::CommitAgg(_) => CostBucket::Commit,
            M::SpecAck(_) => CostBucket::Ack,
            M::SpecReply(_) | M::CommitReply(_) | M::CommitConfirm(_) => CostBucket::Free,
            _ => CostBucket::Other,
        }
    }

    fn batch_len(msg: &Self::Msg) -> usize {
        use ezbft_core::Msg as M;
        match msg {
            // A batched SPECORDER pays the per-request term per carried
            // request (a barrier carries none: envelope cost only).
            M::SpecOrder(so) => so.reqs.len(),
            _ => 1,
        }
    }

    fn msg_kind(msg: &Self::Msg) -> &'static str {
        msg.kind()
    }

    fn replica_observed(
        setup: Setup,
        id: ReplicaId,
        keys: KeyStore,
        recorder: &Arc<dyn Recorder>,
    ) -> Box<dyn ProtocolNode<Message = Self::Msg, Response = KvResponse>> {
        let mut cfg = ezbft_core::EzConfig::new(setup.cluster)
            .with_batching(setup.batch_size, setup.batch_delay)
            .with_exec_workers(setup.exec_workers.max(1), setup.exec_cost_us);
        cfg.checkpoint_interval = setup.checkpoint_interval;
        cfg.commit_aggregation = setup.commit_aggregation;
        cfg.compact_certs = setup.compact_certs;
        Box::new(
            ezbft_core::Replica::new(id, cfg, keys, KvStore::new())
                .with_recorder(Arc::clone(recorder)),
        )
    }

    fn client_observed(
        setup: Setup,
        id: ClientId,
        keys: KeyStore,
        nearest: ReplicaId,
        recorder: &Arc<dyn Recorder>,
    ) -> Box<dyn DynClient<Self::Msg>> {
        let mut cfg = ezbft_core::EzConfig::new(setup.cluster)
            .with_batching(setup.batch_size, setup.batch_delay);
        cfg.commit_aggregation = setup.commit_aggregation;
        cfg.compact_certs = setup.compact_certs;
        Box::new(
            ezbft_core::Client::<KvOp, KvResponse>::new(id, cfg, keys, nearest)
                .with_recorder(Arc::clone(recorder)),
        )
    }
}

/// The PBFT family.
#[derive(Debug)]
pub struct PbftFamily;

impl ProtocolFamily for PbftFamily {
    const NAME: &'static str = "PBFT";
    type Msg = ezbft_pbft::Msg<KvOp, KvResponse>;

    fn replica(
        setup: Setup,
        id: ReplicaId,
        keys: KeyStore,
    ) -> Box<dyn ProtocolNode<Message = Self::Msg, Response = KvResponse>> {
        let cfg = ezbft_pbft::PbftConfig::new(setup.cluster, setup.primary);
        Box::new(ezbft_pbft::PbftReplica::new(id, cfg, keys, KvStore::new()))
    }

    fn client(
        setup: Setup,
        id: ClientId,
        keys: KeyStore,
        _nearest: ReplicaId,
    ) -> Box<dyn DynClient<Self::Msg>> {
        let cfg = ezbft_pbft::PbftConfig::new(setup.cluster, setup.primary);
        Box::new(ezbft_pbft::PbftClient::<KvOp, KvResponse>::new(
            id, cfg, keys,
        ))
    }

    fn cost_bucket(msg: &Self::Msg) -> CostBucket {
        use ezbft_pbft::Msg as M;
        match msg {
            M::Request(_) | M::RequestBroadcast(_) => CostBucket::Order,
            M::PrePrepare(_) => CostBucket::Follow,
            M::Prepare(_) | M::Commit(_) => CostBucket::Commit,
            M::Reply(_) => CostBucket::Free,
            _ => CostBucket::Other,
        }
    }

    fn msg_kind(msg: &Self::Msg) -> &'static str {
        msg.kind()
    }
}

/// The Zyzzyva family.
#[derive(Debug)]
pub struct ZyzzyvaFamily;

impl ProtocolFamily for ZyzzyvaFamily {
    const NAME: &'static str = "Zyzzyva";
    type Msg = ezbft_zyzzyva::Msg<KvOp, KvResponse>;

    fn replica(
        setup: Setup,
        id: ReplicaId,
        keys: KeyStore,
    ) -> Box<dyn ProtocolNode<Message = Self::Msg, Response = KvResponse>> {
        let cfg = ezbft_zyzzyva::ZyzzyvaConfig::new(setup.cluster, setup.primary);
        Box::new(ezbft_zyzzyva::ZyzzyvaReplica::new(
            id,
            cfg,
            keys,
            KvStore::new(),
        ))
    }

    fn client(
        setup: Setup,
        id: ClientId,
        keys: KeyStore,
        _nearest: ReplicaId,
    ) -> Box<dyn DynClient<Self::Msg>> {
        let cfg = ezbft_zyzzyva::ZyzzyvaConfig::new(setup.cluster, setup.primary);
        Box::new(ezbft_zyzzyva::ZyzzyvaClient::<KvOp, KvResponse>::new(
            id, cfg, keys,
        ))
    }

    fn cost_bucket(msg: &Self::Msg) -> CostBucket {
        use ezbft_zyzzyva::Msg as M;
        match msg {
            M::Request(_) | M::RequestBroadcast(_) => CostBucket::Order,
            M::OrderReq(_) => CostBucket::Follow,
            M::Commit(_) => CostBucket::Commit,
            M::SpecResponse(_) | M::LocalCommit(_) => CostBucket::Free,
            _ => CostBucket::Other,
        }
    }

    fn msg_kind(msg: &Self::Msg) -> &'static str {
        msg.kind()
    }
}

/// The FaB family.
#[derive(Debug)]
pub struct FabFamily;

impl ProtocolFamily for FabFamily {
    const NAME: &'static str = "FaB";
    type Msg = ezbft_fab::Msg<KvOp, KvResponse>;

    fn replica(
        setup: Setup,
        id: ReplicaId,
        keys: KeyStore,
    ) -> Box<dyn ProtocolNode<Message = Self::Msg, Response = KvResponse>> {
        let cfg = ezbft_fab::FabConfig::new(setup.cluster, setup.primary);
        Box::new(ezbft_fab::FabReplica::new(id, cfg, keys, KvStore::new()))
    }

    fn client(
        setup: Setup,
        id: ClientId,
        keys: KeyStore,
        _nearest: ReplicaId,
    ) -> Box<dyn DynClient<Self::Msg>> {
        let cfg = ezbft_fab::FabConfig::new(setup.cluster, setup.primary);
        Box::new(ezbft_fab::FabClient::<KvOp, KvResponse>::new(id, cfg, keys))
    }

    fn cost_bucket(msg: &Self::Msg) -> CostBucket {
        use ezbft_fab::Msg as M;
        match msg {
            M::Request(_) | M::RequestBroadcast(_) => CostBucket::Order,
            M::Propose(_) => CostBucket::Follow,
            M::Accept(_) => CostBucket::Commit,
            M::Reply(_) => CostBucket::Free,
            _ => CostBucket::Other,
        }
    }

    fn msg_kind(msg: &Self::Msg) -> &'static str {
        msg.kind()
    }
}
