//! **Figure 6**: latency per region while varying the number of connected
//! clients (1–100 per region).
//!
//! "Notice that as Zyzzyva approaches 100 connected clients per region, it
//! suffers from an exponential increase in latency. However, EZBFT, even at
//! 50% contention, is able to scale better with the number of clients."
//!
//! This experiment runs with the server-side cost model installed: the
//! effect being measured *is* primary saturation.

use ezbft_simnet::Topology;
use ezbft_smr::ReplicaId;

use crate::cluster::{ClusterBuilder, ProtocolKind};
use crate::cost::CostParams;
use crate::report::{ms, TextTable};

/// One protocol's latency surface: `latency_ms[point][region]`.
#[derive(Clone, Debug)]
pub struct Surface {
    /// Display label.
    pub label: String,
    /// Mean latency (ms) per (client-count point, region).
    pub latency_ms: Vec<Vec<f64>>,
}

/// The Figure 6 data.
#[derive(Clone, Debug)]
pub struct Fig6Report {
    /// Clients-per-region points measured.
    pub client_counts: Vec<usize>,
    /// Region names.
    pub regions: Vec<&'static str>,
    /// Zyzzyva and ezBFT surfaces.
    pub surfaces: Vec<Surface>,
}

impl Fig6Report {
    /// Renders the figure's data.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Figure 6: mean latency (ms) per region vs connected clients per region\n",
        );
        for surface in &self.surfaces {
            out.push_str(&format!("\n[{}]\n", surface.label));
            let mut header = vec!["clients/region"];
            header.extend(self.regions.iter());
            let mut t = TextTable::new(&header);
            for (i, &count) in self.client_counts.iter().enumerate() {
                let mut cells = vec![count.to_string()];
                cells.extend(surface.latency_ms[i].iter().map(|v| ms(*v)));
                t.row(cells);
            }
            out.push_str(&t.render());
        }
        out
    }

    /// Looks up a surface by label.
    pub fn surface(&self, label: &str) -> Option<&Surface> {
        self.surfaces.iter().find(|s| s.label == label)
    }
}

/// Runs the Figure 6 experiment.
pub fn fig6(client_counts: &[usize], requests_per_client: usize) -> Fig6Report {
    let topology = Topology::exp1();
    let regions: Vec<&'static str> = topology.regions().map(|r| topology.name(r)).collect();
    let n = regions.len();
    // Heavier admission cost than the default: this experiment measures
    // primary saturation, and a larger per-request cost moves the knee to
    // client counts that simulate quickly (the paper's knee sits near 100
    // clients/region on 2019 hardware; ours sits near 40-50).
    let cost = CostParams {
        order_req_us: 3_400, // +200 fixed = 3.6ms per admitted request
        ..CostParams::default()
    };

    let mut surfaces = vec![
        Surface {
            label: "Zyzzyva".into(),
            latency_ms: Vec::new(),
        },
        Surface {
            label: "ezBFT-0".into(),
            latency_ms: Vec::new(),
        },
        Surface {
            label: "ezBFT-50".into(),
            latency_ms: Vec::new(),
        },
    ];

    for &count in client_counts {
        let zyz = ClusterBuilder::new(ProtocolKind::Zyzzyva)
            .topology(topology.clone())
            .primary(ReplicaId::new(0))
            .clients_per_region(&vec![count; n])
            .requests_per_client(requests_per_client)
            .cost_model(cost)
            .seed(60 + count as u64)
            .run();
        surfaces[0]
            .latency_ms
            .push((0..n).map(|r| zyz.mean_latency_ms(r)).collect());

        for (surface_idx, theta) in [(1usize, 0u32), (2, 50)] {
            let ez = ClusterBuilder::new(ProtocolKind::EzBft)
                .topology(topology.clone())
                .clients_per_region(&vec![count; n])
                .requests_per_client(requests_per_client)
                .contention_pct(theta)
                .cost_model(cost)
                .seed(61 + count as u64 + theta as u64)
                .run();
            surfaces[surface_idx]
                .latency_ms
                .push((0..n).map(|r| ez.mean_latency_ms(r)).collect());
        }
    }

    Fig6Report {
        client_counts: client_counts.to_vec(),
        regions,
        surfaces,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zyzzyva_saturates_ezbft_scales() {
        // Scaled-down version of the paper's sweep (the shape emerges well
        // before 100 clients per region once the cost model is active).
        let report = fig6(&[1, 16, 48], 3);
        let zyz = report.surface("Zyzzyva").unwrap();
        let ez0 = report.surface("ezBFT-0").unwrap();

        // Zyzzyva's latency must blow up as its primary saturates.
        let mumbai = 2; // India region index in exp1
        let z_small = zyz.latency_ms[0][mumbai];
        let z_big = zyz.latency_ms[2][mumbai];
        assert!(
            z_big > z_small * 1.8,
            "Zyzzyva Mumbai latency should blow up: {z_small:.0} → {z_big:.0}"
        );

        // ezBFT stays comparatively flat (paper: "maintains a stable
        // latency even at 100 clients per region" in Mumbai).
        let e_small = ez0.latency_ms[0][mumbai];
        let e_big = ez0.latency_ms[2][mumbai];
        assert!(
            e_big < e_small * 1.6,
            "ezBFT Mumbai latency should stay stable: {e_small:.0} → {e_big:.0}"
        );
        // And at the largest point ezBFT beats Zyzzyva everywhere.
        for region in 0..4 {
            assert!(
                ez0.latency_ms[2][region] < zyz.latency_ms[2][region],
                "{}: ezBFT {:.0} vs Zyzzyva {:.0} at 48 clients/region",
                report.regions[region],
                ez0.latency_ms[2][region],
                zyz.latency_ms[2][region]
            );
        }
    }
}
