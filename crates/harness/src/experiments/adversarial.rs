//! **Adversarial owner-change campaign**: invariant-checked fault
//! schedules from the "Revisiting EZBFT" critique, run against both the
//! hardened protocol (the default [`EzConfig`]) and the protocol exactly
//! as published ([`EzConfig::as_published`]).
//!
//! Each attack mix positions one byzantine replica (a
//! [`Behaviour`] from `ezbft_core::byzantine`) and/or a set of targeted
//! [`DeliveryRule`]s, crashes a command-leader, and drives conflicting
//! client traffic through the recovery. Four safety invariants sweep the
//! whole cluster continuously while the schedule unfolds:
//!
//! - **commit-agreement** — no two correct replicas commit different
//!   batches (or different sequence numbers) under the same
//!   `(owner, instance)`;
//! - **commit-survival** — a command committed at a correct replica is
//!   never lost by an ownership change (the Revisiting-EZBFT
//!   evidence-withholding attack erases exactly this);
//! - **exec-order** — no two correct replicas execute conflicting
//!   commands in different orders;
//! - **exactly-once** — no correct replica executes one request twice.
//!
//! Liveness is judged per run: every scripted client request must
//! complete within the virtual-time bound (bounded owner-change rounds
//! after GST — rules are cleared at the crash, the simulated GST), and no
//! correct replica may remain wedged mid-owner-change once the run
//! settles. Violations carry the offending schedule (the traced message
//! tail) for post-mortem.
//!
//! The campaign (`adversarial` harness target) runs every mix over a
//! seed set with the fixes on — expected green — plus demonstration rows
//! with the fixes off, where the checkers must flag the known-bad
//! schedules (DESIGN.md §5a).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use ezbft_core::{Behaviour, ByzantineReplica, Client, EzConfig, InstanceId, Msg, Replica};
use ezbft_crypto::{CryptoKind, Digest, KeyStore};
use ezbft_kv::{Key, KvOp, KvResponse, KvStore};
use ezbft_simnet::{DeliveryRule, Invariant, Region, SimConfig, SimNet, Topology, Violation};
use ezbft_smr::{
    interferes_by_keys, Actions, ClientId, ClientNode, ClusterConfig, Command, ConflictKey, Micros,
    NodeId, ProtocolNode, ReplicaId, TimerId, Timestamp,
};

use crate::report::TextTable;

type KvMsg = Msg<KvOp, KvResponse>;

// ----------------------------------------------------------------------
// Scripted client (same idiom as the recovery experiment)
// ----------------------------------------------------------------------

struct ScriptedClient {
    inner: Client<KvOp, KvResponse>,
    script: VecDeque<KvOp>,
}

impl ScriptedClient {
    fn pump(&mut self, out: &mut Actions<KvMsg, KvResponse>) {
        if !self.inner.in_flight() {
            if let Some(op) = self.script.pop_front() {
                self.inner.submit(op, out);
            }
        }
    }
}

impl ProtocolNode for ScriptedClient {
    type Message = KvMsg;
    type Response = KvResponse;

    fn id(&self) -> NodeId {
        ProtocolNode::id(&self.inner)
    }
    fn on_start(&mut self, out: &mut Actions<KvMsg, KvResponse>) {
        self.pump(out);
    }
    fn on_message(&mut self, from: NodeId, msg: KvMsg, out: &mut Actions<KvMsg, KvResponse>) {
        self.inner.on_message(from, msg, out);
        self.pump(out);
    }
    fn on_timer(&mut self, id: TimerId, out: &mut Actions<KvMsg, KvResponse>) {
        self.inner.on_timer(id, out);
        self.pump(out);
    }
}

fn keystores(kind: CryptoKind, cluster: ClusterConfig, clients: &[u64]) -> Vec<KeyStore> {
    let mut nodes: Vec<NodeId> = cluster.replicas().map(NodeId::Replica).collect();
    for id in clients {
        nodes.push(NodeId::Client(ClientId::new(*id)));
    }
    KeyStore::cluster(kind, b"adversarial-exp", &nodes)
}

/// Downcasts a *correct* (unwrapped) replica out of the simulation.
fn replica_of(sim: &SimNet<KvMsg, KvResponse>, r: ReplicaId) -> &Replica<KvStore> {
    sim.inspect(NodeId::Replica(r))
        .expect("inspectable")
        .downcast_ref::<Replica<KvStore>>()
        .expect("correct replica")
}

// ----------------------------------------------------------------------
// Safety invariants
// ----------------------------------------------------------------------

/// No two correct replicas commit different batches (or sequence
/// numbers) under the same `(owner, instance)`.
struct CommitAgreement {
    correct: Vec<ReplicaId>,
    seen: BTreeMap<(InstanceId, u64), (Digest, u64, ReplicaId)>,
}

impl Invariant<KvMsg, KvResponse> for CommitAgreement {
    fn name(&self) -> &'static str {
        "commit-agreement"
    }
    fn check(&mut self, sim: &SimNet<KvMsg, KvResponse>) -> Option<String> {
        for &r in &self.correct {
            for v in replica_of(sim, r).committed_views() {
                let key = (v.inst, v.owner.0);
                match self.seen.get(&key) {
                    None => {
                        self.seen.insert(key, (v.batch_digest, v.seq, r));
                    }
                    Some(&(digest, seq, first)) => {
                        if digest != v.batch_digest || seq != v.seq {
                            return Some(format!(
                                "space {} slot {} owner {}: {:?} committed (digest {:?}, seq {}) \
                                 but {:?} committed (digest {:?}, seq {})",
                                v.inst.space.index(),
                                v.inst.slot,
                                v.owner.0,
                                first,
                                digest,
                                seq,
                                r,
                                v.batch_digest,
                                v.seq,
                            ));
                        }
                    }
                }
            }
        }
        None
    }
}

/// A command committed at any correct replica must survive ownership
/// changes everywhere: once a correct replica's space advances past the
/// committing owner round, the instance must still be present there
/// (committed or executed), unless compaction already retired it.
struct CommitSurvival {
    correct: Vec<ReplicaId>,
    committed: BTreeMap<(InstanceId, u64), ReplicaId>,
}

impl Invariant<KvMsg, KvResponse> for CommitSurvival {
    fn name(&self) -> &'static str {
        "commit-survival"
    }
    fn check(&mut self, sim: &SimNet<KvMsg, KvResponse>) -> Option<String> {
        for &r in &self.correct {
            for v in replica_of(sim, r).committed_views() {
                self.committed.entry((v.inst, v.owner.0)).or_insert(r);
            }
        }
        for (&(inst, owner), &witness) in &self.committed {
            for &r in &self.correct {
                let rep = replica_of(sim, r);
                if rep.space_owner(inst.space).0 > owner
                    && rep.instance_status(inst).is_none()
                    && inst.slot >= rep.compact_floor(inst.space)
                {
                    return Some(format!(
                        "space {} slot {} committed under owner {} at {:?}, but {:?} moved to \
                         owner {} without it: the ownership change erased a committed command",
                        inst.space.index(),
                        inst.slot,
                        owner,
                        witness,
                        r,
                        rep.space_owner(inst.space).0,
                    ));
                }
            }
        }
        None
    }
}

/// No two correct replicas execute conflicting commands in different
/// orders.
struct ExecOrderConsistent {
    correct: Vec<ReplicaId>,
}

type ExecView = Vec<((ClientId, Timestamp), Vec<ConflictKey>)>;

fn exec_view(rep: &Replica<KvStore>) -> ExecView {
    rep.applied_log()
        .iter()
        .filter_map(|&at| {
            let id = rep.request_id_of(at)?;
            let keys = rep.command_of(at)?.conflict_keys();
            Some((id, keys))
        })
        .collect()
}

impl Invariant<KvMsg, KvResponse> for ExecOrderConsistent {
    fn name(&self) -> &'static str {
        "exec-order"
    }
    fn check(&mut self, sim: &SimNet<KvMsg, KvResponse>) -> Option<String> {
        let views: Vec<(ReplicaId, ExecView)> = self
            .correct
            .iter()
            .map(|&r| (r, exec_view(replica_of(sim, r))))
            .collect();
        for (ai, (a, view_a)) in views.iter().enumerate() {
            for (b, view_b) in views.iter().skip(ai + 1) {
                let pos_b: BTreeMap<(ClientId, Timestamp), usize> = view_b
                    .iter()
                    .enumerate()
                    .map(|(i, (id, _))| (*id, i))
                    .collect();
                for (i, (id_i, keys_i)) in view_a.iter().enumerate() {
                    for (id_j, keys_j) in view_a.iter().skip(i + 1) {
                        if !interferes_by_keys(keys_i, keys_j) {
                            continue;
                        }
                        if let (Some(&pi), Some(&pj)) = (pos_b.get(id_i), pos_b.get(id_j)) {
                            if pi > pj {
                                return Some(format!(
                                    "{a:?} executed {id_i:?} before {id_j:?} (conflicting), \
                                     {b:?} executed them in the opposite order",
                                ));
                            }
                        }
                    }
                }
            }
        }
        None
    }
}

/// No correct replica applies one request to its state twice. Judged on
/// [`Replica::applied_log`] — a duplicate proposal *replayed* at the
/// client's executed watermark is the protocol's exactly-once machinery
/// working, not a violation.
struct ExactlyOnce {
    correct: Vec<ReplicaId>,
}

impl Invariant<KvMsg, KvResponse> for ExactlyOnce {
    fn name(&self) -> &'static str {
        "exactly-once"
    }
    fn check(&mut self, sim: &SimNet<KvMsg, KvResponse>) -> Option<String> {
        for &r in &self.correct {
            let rep = replica_of(sim, r);
            let mut seen = BTreeSet::new();
            for &at in rep.applied_log() {
                if let Some(id) = rep.request_id_of(at) {
                    if !seen.insert(id) {
                        return Some(format!("{r:?} executed request {id:?} twice"));
                    }
                }
            }
        }
        None
    }
}

// ----------------------------------------------------------------------
// Attack mixes
// ----------------------------------------------------------------------

/// One adversarial schedule family from the Revisiting-EZBFT campaign.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AttackMix {
    /// The evidence-withholding safety attack: a slow-path certificate
    /// reaches only one surviving correct replica, the command-leader
    /// crashes, and the byzantine replica reports an *empty* view — with
    /// the paper's weak report quorum the committed command vanishes
    /// from the safe set.
    WithholdEvidence,
    /// The byzantine replica becomes the new owner and sends different
    /// safe sets to different peers.
    EquivocateSafeSet,
    /// The byzantine replica replays its own stale NEWOWNER long after
    /// the round completed.
    StaleNewOwnerReplay,
    /// The byzantine replica withholds acks/replies for every odd slot,
    /// denying the fast path; commitment must degrade gracefully to the
    /// slow path.
    SelectiveAck,
    /// The byzantine replica is the prospective new owner and goes mute:
    /// it swallows OWNERCHANGE reports and never sends NEWOWNER. Without
    /// escalation the space is wedged forever.
    MuteNewOwner,
    /// No byzantine replica: heavy reordering/delay on every
    /// owner-change message plus lossy SPECORDER links, around a leader
    /// crash.
    DelayStorm,
    /// The byzantine replica contributes bad partial signatures in its
    /// SPECACKs under commit aggregation (DESIGN.md §10): the leader must
    /// reject them at receipt rather than fold them into an aggregate
    /// certificate, and commitment must degrade to the clients'
    /// COMMITFAST fallback.
    BadAggPartial,
}

impl AttackMix {
    /// Every mix, in campaign order.
    pub const ALL: [AttackMix; 7] = [
        AttackMix::WithholdEvidence,
        AttackMix::EquivocateSafeSet,
        AttackMix::StaleNewOwnerReplay,
        AttackMix::SelectiveAck,
        AttackMix::MuteNewOwner,
        AttackMix::DelayStorm,
        AttackMix::BadAggPartial,
    ];

    /// Stable name used in reports and `BENCH_adversarial.json`.
    pub fn name(self) -> &'static str {
        match self {
            AttackMix::WithholdEvidence => "withhold_evidence",
            AttackMix::EquivocateSafeSet => "equivocate_safe_set",
            AttackMix::StaleNewOwnerReplay => "stale_new_owner_replay",
            AttackMix::SelectiveAck => "selective_ack",
            AttackMix::MuteNewOwner => "mute_new_owner",
            AttackMix::DelayStorm => "delay_storm",
            AttackMix::BadAggPartial => "bad_agg_partial",
        }
    }

    /// The byzantine replica this mix positions, if any.
    fn byz(self) -> Option<(ReplicaId, Behaviour)> {
        match self {
            AttackMix::WithholdEvidence => Some((ReplicaId::new(1), Behaviour::WithholdEvidence)),
            AttackMix::EquivocateSafeSet => Some((ReplicaId::new(1), Behaviour::EquivocateSafeSet)),
            AttackMix::StaleNewOwnerReplay => {
                Some((ReplicaId::new(1), Behaviour::StaleNewOwnerReplay))
            }
            AttackMix::SelectiveAck => Some((ReplicaId::new(1), Behaviour::SelectiveAck)),
            AttackMix::MuteNewOwner => Some((ReplicaId::new(1), Behaviour::MuteNewOwner)),
            AttackMix::DelayStorm => None,
            AttackMix::BadAggPartial => Some((ReplicaId::new(1), Behaviour::BadAggPartial)),
        }
    }

    /// The command-leader this mix crashes, if any. Chosen so the
    /// prospective new owner of the victim space is the mix's byzantine
    /// replica (equivocate/replay/mute) or an honest replica that never
    /// saw the committed entry (withhold).
    fn crashed_leader(self) -> Option<ReplicaId> {
        match self {
            // Space 3's next owner number is 4 → replica 0 (no entry).
            AttackMix::WithholdEvidence => Some(ReplicaId::new(3)),
            // Space 0's next owner number is 1 → replica 1 (the byz).
            AttackMix::EquivocateSafeSet
            | AttackMix::StaleNewOwnerReplay
            | AttackMix::MuteNewOwner
            | AttackMix::DelayStorm => Some(ReplicaId::new(0)),
            AttackMix::SelectiveAck | AttackMix::BadAggPartial => None,
        }
    }
}

// ----------------------------------------------------------------------
// One schedule run
// ----------------------------------------------------------------------

/// The outcome of one (mix, seed, mode) schedule.
#[derive(Clone, Debug)]
pub struct AttackOutcome {
    /// The mix that ran.
    pub mix: AttackMix,
    /// The simulation seed.
    pub seed: u64,
    /// Whether the owner-change hardening was on (`false` = as published).
    pub hardened: bool,
    /// Whether compact O(1) certificates were on (DESIGN.md §10; implies
    /// the aggregation-capable crypto provider).
    pub compact: bool,
    /// Safety-invariant violations (with offending schedules).
    pub violations: Vec<Violation>,
    /// Client requests that completed within the bound.
    pub completed: usize,
    /// Client requests scripted.
    pub expected: usize,
    /// Requests that completed on the slow path.
    pub slow_deliveries: usize,
    /// Correct replicas still wedged mid-owner-change after settling.
    pub wedged: usize,
    /// Max completed ownership changes over the correct replicas.
    pub owner_changes: u64,
}

impl AttackOutcome {
    /// Liveness: every scripted request completed and no correct replica
    /// stayed wedged mid-owner-change.
    pub fn liveness_ok(&self) -> bool {
        self.completed == self.expected && self.wedged == 0
    }
}

const VICTIM_KEY: Key = Key(7);

/// Runs one adversarial schedule with explicit-vote certificates.
pub fn run_attack(mix: AttackMix, seed: u64, hardened: bool) -> AttackOutcome {
    run_attack_certs(mix, seed, hardened, false)
}

/// Runs one adversarial schedule. Every mix follows the same skeleton:
/// pre-GST traffic under the mix's delivery rules, the leader crash, GST
/// (rules cleared), post-GST conflicting traffic through the recovery,
/// then a settle window and final invariant sweep. With `compact` the
/// cluster runs the aggregation-capable crypto provider and compact O(1)
/// certificates (DESIGN.md §10) — every invariant must hold unchanged.
pub fn run_attack_certs(mix: AttackMix, seed: u64, hardened: bool, compact: bool) -> AttackOutcome {
    let cluster = ClusterConfig::for_faults(1);
    let mut cfg = EzConfig::new(cluster);
    if !hardened {
        cfg = cfg.as_published();
    } else {
        // Simulation-friendly escalation pacing (virtual time is free but
        // bounded).
        cfg.oc_backoff_base = Micros::from_millis(800);
        cfg.oc_backoff_cap = Micros::from_millis(4_000);
    }
    if compact {
        cfg.compact_certs = true;
    }
    // The bad-partial mix attacks the ack tally itself, so the leader
    // collector must be running; the fallback fires well inside the
    // virtual-time budget.
    if mix == AttackMix::BadAggPartial {
        cfg.commit_aggregation = true;
    }
    let kind = if compact {
        CryptoKind::Agg
    } else {
        CryptoKind::Mac
    };

    let clients = [0u64, 1];
    let mut stores = keystores(kind, cluster, &clients);
    let client_stores = stores.split_off(cluster.n());
    let byz = mix.byz();
    let correct: Vec<ReplicaId> = cluster
        .replicas()
        .filter(|r| byz.map(|(b, _)| b != *r).unwrap_or(true))
        .collect();

    let mut sim: SimNet<KvMsg, KvResponse> = SimNet::new(
        Topology::lan(4),
        SimConfig {
            seed,
            ..Default::default()
        },
    );
    sim.classify_faults(|m: &KvMsg| m.kind());
    sim.enable_trace(96, |m: &KvMsg| m.kind());
    sim.add_invariant(CommitAgreement {
        correct: correct.clone(),
        seen: BTreeMap::new(),
    });
    sim.add_invariant(CommitSurvival {
        correct: correct.clone(),
        committed: BTreeMap::new(),
    });
    sim.add_invariant(ExecOrderConsistent {
        correct: correct.clone(),
    });
    sim.add_invariant(ExactlyOnce {
        correct: correct.clone(),
    });
    sim.set_check_interval(64);

    for (i, rid) in cluster.replicas().enumerate() {
        let inner = Replica::new(rid, cfg, stores.remove(0), KvStore::new());
        let node: Box<dyn ProtocolNode<Message = KvMsg, Response = KvResponse>> = match byz {
            Some((b, behaviour)) if b == rid => {
                let wrapper_keys = keystores(kind, cluster, &clients)
                    .into_iter()
                    .nth(rid.index())
                    .expect("byz keys");
                Box::new(ByzantineReplica::new(
                    inner,
                    wrapper_keys,
                    behaviour,
                    cluster.n(),
                ))
            }
            _ => Box::new(inner),
        };
        sim.add_node(Region(i), node);
    }

    // Client 0 drives the pre-crash phase, preferring the doomed leader;
    // client 1 (crashed until GST) drives the recovery-phase traffic.
    let victim = mix.crashed_leader().unwrap_or(ReplicaId::new(0));
    let mut client_stores = client_stores.into_iter();
    let pre_script: VecDeque<KvOp> = match mix {
        AttackMix::SelectiveAck | AttackMix::BadAggPartial => (0..4u64)
            .map(|i| KvOp::Put {
                key: Key(i),
                value: vec![0xA; 8],
            })
            .collect(),
        _ => VecDeque::from([KvOp::Put {
            key: VICTIM_KEY,
            value: b"pre".to_vec(),
        }]),
    };
    let pre_ops = pre_script.len();
    sim.add_node(
        Region(victim.index()),
        Box::new(ScriptedClient {
            inner: Client::new(
                ClientId::new(0),
                cfg,
                client_stores.next().expect("keys"),
                victim,
            ),
            script: pre_script,
        }),
    );
    let post_script: VecDeque<KvOp> = match mix {
        AttackMix::SelectiveAck | AttackMix::BadAggPartial => (0..4u64)
            .map(|i| KvOp::Put {
                key: Key(100 + i),
                value: vec![0xB; 8],
            })
            .collect(),
        _ => VecDeque::from([
            KvOp::Put {
                key: VICTIM_KEY,
                value: b"post".to_vec(),
            },
            KvOp::Put {
                key: Key(9),
                value: b"post2".to_vec(),
            },
        ]),
    };
    let post_ops = post_script.len();
    // The post-GST client prefers the (about to be) crashed leader for
    // the owner-change mixes — its retransmissions are what drive the
    // suspicion. For the evidence-withholding attack it prefers the one
    // correct certificate holder instead: its conflicting command picks
    // up the victim instance as a dependency, and the resulting DEPWAIT
    // timeouts at the two certificate-blind replicas are what vote the
    // owner change. SelectiveAck needs a live honest leader.
    let post_pref = match mix {
        AttackMix::SelectiveAck | AttackMix::BadAggPartial | AttackMix::WithholdEvidence => {
            ReplicaId::new(2)
        }
        _ => victim,
    };
    sim.add_node(
        Region(post_pref.index()),
        Box::new(ScriptedClient {
            inner: Client::new(
                ClientId::new(1),
                cfg,
                client_stores.next().expect("keys"),
                post_pref,
            ),
            script: post_script.clone(),
        }),
    );
    sim.faults_mut().crash(ClientId::new(1));

    // Pre-GST delivery rules.
    let c0 = NodeId::Client(ClientId::new(0));
    match mix {
        AttackMix::WithholdEvidence => {
            // The victim entry is speculatively ordered *everywhere* (the
            // client completes on the fast path), but the client's commit
            // certificate reaches only replica 2 and the doomed leader:
            // replicas 0 and 1 stay speculatively ordered, so after GST
            // the conflicting traffic makes exactly those two suspect the
            // crashed leader — and the prospective new owner (replica 0)
            // holds no commit evidence for the entry.
            for blind in [ReplicaId::new(0), ReplicaId::new(1)] {
                for kind in ["commit", "commit-fast"] {
                    sim.faults_mut().add_rule(
                        DeliveryRule::for_kind(kind)
                            .from_node(c0)
                            .to_node(blind)
                            .drop_prob(1.0),
                    );
                }
            }
        }
        AttackMix::MuteNewOwner => {
            // The pre-GST command reaches every replica speculatively but
            // its commitment never lands: the recovery must resolve it.
            for kind in ["commit", "commit-fast"] {
                sim.faults_mut()
                    .add_rule(DeliveryRule::for_kind(kind).from_node(c0).drop_prob(1.0));
            }
        }
        AttackMix::DelayStorm => {
            sim.faults_mut()
                .add_rule(DeliveryRule::for_kind("spec-order").drop_prob(0.08));
            for kind in ["start-owner-change", "owner-change", "new-owner"] {
                sim.faults_mut().add_rule(
                    DeliveryRule::for_kind(kind)
                        .delay(Micros::from_millis(20))
                        .jitter(Micros::from_millis(250)),
                );
            }
        }
        _ => {}
    }

    // Phase 1: pre-GST traffic.
    run_until(&mut sim, pre_ops, Micros::from_secs(20));

    // Phase 2: crash the mix's leader — this is GST: drops are healed
    // (the storm's reordering jitter stays, delayed-but-delivered is
    // still "after GST").
    if let Some(leader) = mix.crashed_leader() {
        sim.schedule_crash(leader, sim.now() + Micros::from_millis(1));
        let pause = sim.now() + Micros::from_millis(200);
        sim.run_until_time(pause);
        sim.faults_mut().clear_rules();
        if mix == AttackMix::DelayStorm {
            for kind in ["start-owner-change", "owner-change", "new-owner"] {
                sim.faults_mut().add_rule(
                    DeliveryRule::for_kind(kind)
                        .delay(Micros::from_millis(20))
                        .jitter(Micros::from_millis(250)),
                );
            }
        }
        if mix == AttackMix::WithholdEvidence {
            // Let the weak quorum form from {new owner, byz} before the
            // evidence-bearing report arrives.
            sim.faults_mut().add_rule(
                DeliveryRule::for_kind("owner-change")
                    .from_node(ReplicaId::new(2))
                    .delay(Micros::from_millis(400)),
            );
        }
    }

    // Phase 3: post-GST traffic through the recovery.
    let keys_c1 = keystores(kind, cluster, &clients)
        .into_iter()
        .nth(cluster.n() + 1)
        .expect("client 1 keys");
    sim.restart_node(
        Region(post_pref.index()),
        Box::new(ScriptedClient {
            inner: Client::new(ClientId::new(1), cfg, keys_c1, post_pref),
            script: post_script,
        }),
    );
    let expected = pre_ops + post_ops;
    run_until(&mut sim, expected, Micros::from_secs(90));

    // Settle, then a final sweep happens as the run stops.
    let settle = sim.now() + Micros::from_secs(3);
    sim.run_until_time(settle);

    let crashed: BTreeSet<ReplicaId> = correct
        .iter()
        .copied()
        .filter(|&r| sim.faults_mut().is_crashed(NodeId::Replica(r)))
        .collect();
    let mut violations = sim.violations().to_vec();
    let completed = sim.deliveries().len();
    let slow_deliveries = sim
        .deliveries()
        .iter()
        .filter(|d| !d.delivery.fast_path)
        .count();

    // End-of-run checks over the live correct replicas: state convergence
    // (only judged once every request completed — stragglers are a
    // liveness, not a safety, matter) and wedged owner changes.
    let live: Vec<ReplicaId> = correct
        .iter()
        .copied()
        .filter(|r| !crashed.contains(r))
        .collect();
    if completed == expected && !live.is_empty() {
        let fp0 = replica_of(&sim, live[0]).app().fingerprint();
        if let Some(&diverged) = live[1..]
            .iter()
            .find(|&&r| replica_of(&sim, r).app().fingerprint() != fp0)
        {
            violations.push(Violation {
                at: sim.now(),
                invariant: "state-convergence",
                detail: format!(
                    "correct replicas {:?} and {diverged:?} settled on different application \
                     states after all {expected} requests completed",
                    live[0]
                ),
                schedule: String::new(),
            });
        }
    }
    let wedged = live
        .iter()
        .filter(|&&r| {
            let rep = replica_of(&sim, r);
            cluster
                .replicas()
                .any(|s| rep.space_committed_to_change(s) && !rep.space_frozen(s))
        })
        .count();
    let owner_changes = live
        .iter()
        .map(|&r| replica_of(&sim, r).stats().owner_changes)
        .max()
        .unwrap_or(0);

    if std::env::var("EZBFT_ADV_DEBUG").is_ok() {
        for &r in &correct {
            let rep = replica_of(&sim, r);
            eprintln!(
                "replica {:?}: crashed={} views={:?}",
                r,
                crashed.contains(&r),
                rep.committed_views()
            );
            for s in cluster.replicas() {
                eprintln!(
                    "  space{} owner={} frozen={} ctc={} status0={:?} floor={}",
                    s.index(),
                    rep.space_owner(s).0,
                    rep.space_frozen(s),
                    rep.space_committed_to_change(s),
                    rep.instance_status(InstanceId::new(s, 0)),
                    rep.compact_floor(s),
                );
            }
        }
    }

    AttackOutcome {
        mix,
        seed,
        hardened,
        compact,
        violations,
        completed,
        expected,
        slow_deliveries,
        wedged,
        owner_changes,
    }
}

/// Runs until `target` deliveries or `budget` more virtual time, in
/// slices so a stalled schedule cannot eat the whole virtual-time cap.
fn run_until(sim: &mut SimNet<KvMsg, KvResponse>, target: usize, budget: Micros) {
    let deadline = sim.now() + budget;
    while sim.deliveries().len() < target && sim.now() < deadline {
        let slice = (sim.now() + Micros::from_millis(500)).min(deadline);
        sim.run_until_time(slice);
    }
}

// ----------------------------------------------------------------------
// The campaign
// ----------------------------------------------------------------------

/// One aggregated (mix, mode) row of the campaign.
#[derive(Clone, Debug)]
pub struct MixRow {
    /// [`AttackMix::name`].
    pub mix: &'static str,
    /// Whether the owner-change hardening was on.
    pub hardened: bool,
    /// Whether compact O(1) certificates were on (DESIGN.md §10).
    pub compact: bool,
    /// Schedules run (one per seed).
    pub runs: usize,
    /// Runs with at least one safety violation.
    pub broken_runs: usize,
    /// Total safety violations across runs.
    pub safety_violations: usize,
    /// Distinct violated invariants.
    pub violated: BTreeSet<&'static str>,
    /// Runs that missed the liveness bound.
    pub liveness_failures: usize,
    /// Requests completed / expected, summed over runs.
    pub completed: usize,
    /// Total requests scripted across runs.
    pub expected: usize,
    /// Slow-path completions across runs.
    pub slow_deliveries: usize,
    /// Max completed ownership changes seen at any correct replica.
    pub owner_changes: u64,
    /// Whether the campaign *expects* this row to break (a
    /// demonstration of the published protocol's hole).
    pub expect_break: bool,
    /// First violation detail, for the rendered report.
    pub sample: String,
}

impl MixRow {
    fn from_outcomes(outcomes: &[AttackOutcome], expect_break: bool) -> MixRow {
        let first = outcomes.first().expect("at least one run");
        let mut row = MixRow {
            mix: first.mix.name(),
            hardened: first.hardened,
            compact: first.compact,
            runs: outcomes.len(),
            broken_runs: 0,
            safety_violations: 0,
            violated: BTreeSet::new(),
            liveness_failures: 0,
            completed: 0,
            expected: 0,
            slow_deliveries: 0,
            owner_changes: 0,
            expect_break,
            sample: String::new(),
        };
        for o in outcomes {
            row.broken_runs += usize::from(!o.violations.is_empty());
            row.safety_violations += o.violations.len();
            for v in &o.violations {
                row.violated.insert(v.invariant);
                if row.sample.is_empty() {
                    row.sample = v.detail.clone();
                }
            }
            row.liveness_failures += usize::from(!o.liveness_ok());
            row.completed += o.completed;
            row.expected += o.expected;
            row.slow_deliveries += o.slow_deliveries;
            row.owner_changes = row.owner_changes.max(o.owner_changes);
        }
        row
    }

    /// Whether the row matches the campaign's expectation: green when
    /// hardened, demonstrably broken when it reproduces a published-mode
    /// attack.
    pub fn as_expected(&self) -> bool {
        if self.expect_break {
            self.safety_violations > 0 || self.liveness_failures > 0
        } else {
            self.safety_violations == 0 && self.liveness_failures == 0
        }
    }
}

/// The campaign's result set: every mix × seed with the hardening on,
/// plus published-mode demonstration rows for the two attacks the fixes
/// exist for.
#[derive(Clone, Debug)]
pub struct AdversarialReport {
    /// The seeds each mix ran over.
    pub seeds: Vec<u64>,
    /// Aggregated rows (hardened rows first, then demonstrations).
    pub rows: Vec<MixRow>,
}

impl AdversarialReport {
    /// Whether every row matched its expectation.
    pub fn all_as_expected(&self) -> bool {
        self.rows.iter().all(MixRow::as_expected)
    }

    /// Renders the campaign table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Adversarial owner-change campaign ({} seeds per mix; DESIGN.md §5a)\n",
            self.seeds.len()
        );
        let mut t = TextTable::new(&[
            "mix",
            "mode",
            "runs",
            "safety",
            "liveness",
            "completed",
            "slow",
            "oc",
            "verdict",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.mix.into(),
                match (r.hardened, r.compact) {
                    (true, true) => "hardened+compact".into(),
                    (true, false) => "hardened".into(),
                    (false, _) => "published".into(),
                },
                r.runs.to_string(),
                if r.safety_violations == 0 {
                    "ok".into()
                } else {
                    format!(
                        "{} ({})",
                        r.safety_violations,
                        r.violated.iter().copied().collect::<Vec<_>>().join(",")
                    )
                },
                if r.liveness_failures == 0 {
                    "ok".into()
                } else {
                    format!("{} stalled", r.liveness_failures)
                },
                format!("{}/{}", r.completed, r.expected),
                r.slow_deliveries.to_string(),
                r.owner_changes.to_string(),
                if r.as_expected() {
                    if r.expect_break {
                        "broken as expected".into()
                    } else {
                        "ok".into()
                    }
                } else {
                    "UNEXPECTED".to_string()
                },
            ]);
        }
        out.push_str(&t.render());
        for r in &self.rows {
            if !r.sample.is_empty() {
                out.push_str(&format!(
                    "  [{} {}] {}\n",
                    r.mix,
                    mode(r.hardened),
                    r.sample
                ));
            }
        }
        out
    }

    /// Machine-readable summary (`BENCH_adversarial.json`), hand-encoded
    /// so the harness stays dependency-free.
    pub fn to_json(&self) -> String {
        let seeds: Vec<String> = self.seeds.iter().map(u64::to_string).collect();
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                let violated: Vec<String> = r.violated.iter().map(|v| format!("\"{v}\"")).collect();
                format!(
                    "{{\"mix\":\"{}\",\"mode\":\"{}\",\"compact\":{},\"runs\":{},\
                     \"safety_violations\":{},\
                     \"violated\":[{}],\"liveness_failures\":{},\"completed\":{},\
                     \"expected\":{},\"slow_deliveries\":{},\"owner_changes\":{},\
                     \"expect_break\":{},\"as_expected\":{}}}",
                    r.mix,
                    match (r.hardened, r.compact) {
                        (true, true) => "hardened+compact",
                        (true, false) => "hardened",
                        (false, _) => "published",
                    },
                    r.compact,
                    r.runs,
                    r.safety_violations,
                    violated.join(","),
                    r.liveness_failures,
                    r.completed,
                    r.expected,
                    r.slow_deliveries,
                    r.owner_changes,
                    r.expect_break,
                    r.as_expected(),
                )
            })
            .collect();
        format!(
            "{{\"experiment\":\"adversarial\",\"seeds\":[{}],\"rows\":[{}]}}",
            seeds.join(","),
            rows.join(",")
        )
    }
}

fn mode(hardened: bool) -> &'static str {
    if hardened {
        "hardened"
    } else {
        "published"
    }
}

/// Runs the campaign: every mix over `seeds` with the hardening on, the
/// same mixes with compact O(1) certificates on over the first
/// `demo_seeds` seeds (DESIGN.md §10 — expected just as green), plus
/// published-mode demonstration rows (evidence withholding must break
/// safety, a mute new owner must break liveness) over the first
/// `demo_seeds` seeds.
pub fn adversarial(seeds: &[u64], demo_seeds: usize) -> AdversarialReport {
    assert!(!seeds.is_empty(), "campaign needs at least one seed");
    let mut rows = Vec::new();
    for mix in AttackMix::ALL {
        let outcomes: Vec<AttackOutcome> =
            seeds.iter().map(|&s| run_attack(mix, s, true)).collect();
        rows.push(MixRow::from_outcomes(&outcomes, false));
    }
    let demo = &seeds[..demo_seeds.clamp(1, seeds.len())];
    for mix in AttackMix::ALL {
        let outcomes: Vec<AttackOutcome> = demo
            .iter()
            .map(|&s| run_attack_certs(mix, s, true, true))
            .collect();
        rows.push(MixRow::from_outcomes(&outcomes, false));
    }
    for mix in [AttackMix::WithholdEvidence, AttackMix::MuteNewOwner] {
        let outcomes: Vec<AttackOutcome> =
            demo.iter().map(|&s| run_attack(mix, s, false)).collect();
        rows.push(MixRow::from_outcomes(&outcomes, true));
    }
    AdversarialReport {
        seeds: seeds.to_vec(),
        rows,
    }
}

/// The campaign's default seed set: `count` deterministic seeds.
pub fn campaign_seeds(count: usize) -> Vec<u64> {
    (0..count as u64).map(|i| 0xA11CE + 7 * i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Seeds for the multi-seed soak: `EZBFT_TEST_SEEDS` (a count) when
    /// set, else a quick default.
    fn soak_seeds() -> Vec<u64> {
        let count = std::env::var("EZBFT_TEST_SEEDS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(3usize);
        campaign_seeds(count.max(1))
    }

    #[test]
    fn withhold_evidence_breaks_the_published_owner_change() {
        let o = run_attack(AttackMix::WithholdEvidence, 0xA11CE, false);
        assert!(
            !o.violations.is_empty(),
            "the checker must flag the known-bad schedule with the fix off"
        );
        assert!(
            o.violations
                .iter()
                .any(|v| v.invariant == "commit-survival"),
            "expected the committed command to vanish, got: {:?}",
            o.violations
                .iter()
                .map(|v| (v.invariant, v.detail.clone()))
                .collect::<Vec<_>>()
        );
        // The violation report carries the offending schedule.
        assert!(o
            .violations
            .iter()
            .any(|v| v.schedule.contains("owner-change") || v.schedule.contains("new-owner")));
    }

    #[test]
    fn strong_report_quorum_preserves_committed_entries() {
        let o = run_attack(AttackMix::WithholdEvidence, 0xA11CE, true);
        assert!(
            o.violations.is_empty(),
            "hardened run must be violation-free, got: {:?}",
            o.violations
                .iter()
                .map(|v| (v.invariant, v.detail.clone()))
                .collect::<Vec<_>>()
        );
        assert!(o.liveness_ok(), "completed {}/{}", o.completed, o.expected);
        assert!(o.owner_changes >= 1, "the schedule must exercise recovery");
    }

    #[test]
    fn mute_new_owner_wedges_the_published_protocol() {
        let o = run_attack(AttackMix::MuteNewOwner, 0xA11CE, false);
        assert!(
            !o.liveness_ok(),
            "without escalation a mute new owner must wedge the space \
             (completed {}/{}, wedged {})",
            o.completed,
            o.expected,
            o.wedged
        );
        assert!(o.violations.is_empty(), "the attack is on liveness only");
    }

    #[test]
    fn escalation_backoff_recovers_from_a_mute_new_owner() {
        let o = run_attack(AttackMix::MuteNewOwner, 0xA11CE, true);
        assert!(
            o.violations.is_empty(),
            "got: {:?}",
            o.violations
                .iter()
                .map(|v| (v.invariant, v.detail.clone()))
                .collect::<Vec<_>>()
        );
        assert!(
            o.liveness_ok(),
            "escalation must route around the mute owner (completed {}/{}, wedged {})",
            o.completed,
            o.expected,
            o.wedged
        );
    }

    #[test]
    fn campaign_is_clean_with_fixes_on_and_flags_published_holes() {
        let report = adversarial(&soak_seeds(), 1);
        assert!(
            report.all_as_expected(),
            "campaign deviated:\n{}",
            report.render()
        );
        // 7 hardened rows + 7 compact rows + 2 demonstrations.
        assert_eq!(report.rows.len(), 16);
        let json = report.to_json();
        assert!(json.contains("\"experiment\":\"adversarial\""));
        assert!(json.contains("\"mode\":\"published\""));
        assert!(json.contains("\"compact\":true"));
        assert!(json.contains("\"as_expected\":true"));
    }

    #[test]
    fn bad_agg_partial_degrades_cleanly_under_compact_certs() {
        // DESIGN.md §10: a follower feeding the leader bad partial
        // signatures must not poison an aggregate certificate or stall
        // the cluster — every invariant holds and every request
        // completes via the clients' fallback.
        let o = run_attack_certs(AttackMix::BadAggPartial, 0xA11CE, true, true);
        assert!(
            o.violations.is_empty(),
            "got: {:?}",
            o.violations
                .iter()
                .map(|v| (v.invariant, v.detail.clone()))
                .collect::<Vec<_>>()
        );
        assert!(o.liveness_ok(), "completed {}/{}", o.completed, o.expected);
    }
}
