//! One module per table/figure of the paper's evaluation (§V).
//!
//! Every experiment returns a typed report with a `render()` method that
//! prints the same rows/series the paper reports; `EXPERIMENTS.md` records
//! the paper-vs-measured comparison.

pub mod ablation;
pub mod adversarial;
pub mod commit_traffic;
pub mod exec_scaling;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod recovery;
pub mod scrape_overhead;
pub mod stage_latency;
pub mod table1;
pub mod table2;

pub use ablation::{ablation, AblationReport};
pub use adversarial::{
    adversarial, campaign_seeds, run_attack, run_attack_certs, AdversarialReport, AttackMix,
    AttackOutcome, MixRow,
};
pub use commit_traffic::{commit_traffic, CommitTrafficReport};
pub use exec_scaling::{exec_scaling, ExecScalingReport};
pub use fig4::{fig4, Fig4Report};
pub use fig5::{fig5a, fig5b, Fig5aReport, Fig5bReport};
pub use fig6::{fig6, Fig6Report};
pub use fig7::{fig7, Fig7Report};
pub use recovery::{recovery, RecoveryReport};
pub use scrape_overhead::{scrape_overhead, ScrapeOverheadReport};
pub use stage_latency::{stage_latency, StageLatencyReport};
pub use table1::{table1, Table1Report};
pub use table2::{table2, Table2Report};
