//! **Figure 4**: average client latency per region, Experiment 1
//! (Virginia, Japan, India, Australia; primaries in Virginia).
//!
//! Series: PBFT, FaB, Zyzzyva (primary US-East-1) and ezBFT at contention
//! θ ∈ {0, 2, 50, 100}%.

use ezbft_simnet::Topology;
use ezbft_smr::ReplicaId;

use crate::cluster::{ClusterBuilder, ProtocolKind};
use crate::report::{ms, TextTable};

/// One latency series: a label plus the mean latency per region (ms).
#[derive(Clone, Debug)]
pub struct Series {
    /// Display label (e.g. "ezBFT-50").
    pub label: String,
    /// Mean latency per region, ms.
    pub latency_ms: Vec<f64>,
}

/// The Figure 4 data.
#[derive(Clone, Debug)]
pub struct Fig4Report {
    /// Region names.
    pub regions: Vec<&'static str>,
    /// All series, in paper order.
    pub series: Vec<Series>,
}

impl Fig4Report {
    /// Renders the figure's data as a table.
    pub fn render(&self) -> String {
        let mut header = vec!["protocol"];
        header.extend(self.regions.iter());
        let mut t = TextTable::new(&header);
        for s in &self.series {
            let mut cells = vec![s.label.clone()];
            cells.extend(s.latency_ms.iter().map(|v| ms(*v)));
            t.row(cells);
        }
        format!(
            "Figure 4: Experiment 1 mean latency (ms) per client region, primary = Virginia\n{}",
            t.render()
        )
    }

    /// Looks up a series by label.
    pub fn series(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }
}

/// Runs the Figure 4 experiment.
pub fn fig4(requests_per_client: usize) -> Fig4Report {
    let topology = Topology::exp1();
    let regions: Vec<&'static str> = topology.regions().map(|r| topology.name(r)).collect();
    let n = regions.len();
    let mut series = Vec::new();

    for (kind, label) in [
        (ProtocolKind::Pbft, "PBFT".to_string()),
        (ProtocolKind::Fab, "FaB".to_string()),
        (ProtocolKind::Zyzzyva, "Zyzzyva".to_string()),
    ] {
        let report = ClusterBuilder::new(kind)
            .topology(topology.clone())
            .primary(ReplicaId::new(0))
            .clients_per_region(&vec![1; n])
            .requests_per_client(requests_per_client)
            .seed(40)
            .run();
        series.push(Series {
            label,
            latency_ms: (0..n).map(|r| report.mean_latency_ms(r)).collect(),
        });
    }

    for theta in [0u32, 2, 50, 100] {
        let report = ClusterBuilder::new(ProtocolKind::EzBft)
            .topology(topology.clone())
            .clients_per_region(&vec![1; n])
            .requests_per_client(requests_per_client)
            .contention_pct(theta)
            .seed(41 + theta as u64)
            .run();
        series.push(Series {
            label: format!("ezBFT-{theta}"),
            latency_ms: (0..n).map(|r| report.mean_latency_ms(r)).collect(),
        });
    }

    Fig4Report { regions, series }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_shape_holds() {
        let report = fig4(6);
        let pbft = report.series("PBFT").unwrap();
        let fab = report.series("FaB").unwrap();
        let zyzzyva = report.series("Zyzzyva").unwrap();
        let ez0 = report.series("ezBFT-0").unwrap();
        let ez100 = report.series("ezBFT-100").unwrap();

        for region in 0..4 {
            let name = report.regions[region];
            // Step-count ordering among the primary-based protocols.
            assert!(
                pbft.latency_ms[region] > fab.latency_ms[region],
                "{name}: PBFT ({:.0}) should exceed FaB ({:.0})",
                pbft.latency_ms[region],
                fab.latency_ms[region]
            );
            assert!(
                fab.latency_ms[region] > zyzzyva.latency_ms[region],
                "{name}: FaB should exceed Zyzzyva"
            );
            // ezBFT at zero contention is at least as good as Zyzzyva
            // everywhere (equal in the primary's region).
            assert!(
                ez0.latency_ms[region] <= zyzzyva.latency_ms[region] + 10.0,
                "{name}: ezBFT-0 ({:.0}) should not exceed Zyzzyva ({:.0})",
                ez0.latency_ms[region],
                zyzzyva.latency_ms[region]
            );
        }
        // In non-primary regions ezBFT wins clearly (paper: up to 40%).
        let japan_gain = 1.0 - ez0.latency_ms[1] / zyzzyva.latency_ms[1];
        assert!(
            japan_gain > 0.2,
            "Japan should gain >20% over Zyzzyva, got {:.0}%",
            japan_gain * 100.0
        );
        // At θ=100% ezBFT degrades towards PBFT territory.
        for region in 0..4 {
            assert!(
                ez100.latency_ms[region] > ez0.latency_ms[region],
                "contention must cost latency in {}",
                report.regions[region]
            );
        }
    }
}
