//! Execution-engine scaling: sequential vs parallel final execution
//! (beyond the paper; DESIGN.md §8).
//!
//! The paper treats final execution as free; at scale it is a serial
//! bottleneck — every replica applies every committed command. The
//! parallel engine drains the committed dependency graph with a
//! conflict-keyed worker pool, so on a *mostly-commuting* workload (90%
//! blind increments on shared counters plus disjoint private writes —
//! almost no pair of commands interferes) the execution makespan shrinks
//! with the worker count. This experiment charges a per-command execution
//! cost to each replica ([`ezbft_smr::Action::Work`]) and measures
//! simulated throughput across a worker grid: the speedup is exactly what
//! the wave's conflict structure allows, not an assumed factor.

use ezbft_simnet::Topology;
use ezbft_smr::Micros;

use crate::cluster::{ClusterBuilder, ProtocolKind};
use crate::cost::CostParams;
use crate::report::TextTable;

/// One worker-count measurement.
#[derive(Clone, Debug)]
pub struct ExecScalingRow {
    /// Execution-engine worker count.
    pub workers: usize,
    /// Completed requests.
    pub completed: usize,
    /// Steady-state throughput (ops per virtual second).
    pub throughput: f64,
    /// Speedup over the sequential (workers = 1) row.
    pub speedup: f64,
}

/// The experiment's result set.
#[derive(Clone, Debug)]
pub struct ExecScalingReport {
    /// Modelled per-command execution cost (µs).
    pub exec_cost_us: u64,
    /// Commuting fraction of the workload, in percent.
    pub commuting_pct: u32,
    /// One row per worker count, ascending; `speedup` is relative to the
    /// first (sequential) row.
    pub rows: Vec<ExecScalingRow>,
}

impl ExecScalingReport {
    /// Renders the scaling table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&["workers", "completed", "ops/s", "speedup"]);
        for r in &self.rows {
            t.row(vec![
                r.workers.to_string(),
                r.completed.to_string(),
                format!("{:.0}", r.throughput),
                format!("{:.2}x", r.speedup),
            ]);
        }
        format!(
            "Execution-engine scaling (DESIGN.md §8; {}% commuting, {}µs/command)\n{}",
            self.commuting_pct,
            self.exec_cost_us,
            t.render()
        )
    }

    /// Machine-readable summary (the `BENCH_*.json` harness output),
    /// hand-encoded so the harness stays dependency-free.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                format!(
                    "{{\"workers\":{},\"completed\":{},\"ops_per_sec\":{:.1},\"speedup\":{:.3}}}",
                    r.workers, r.completed, r.throughput, r.speedup
                )
            })
            .collect();
        format!(
            "{{\"experiment\":\"exec_scaling\",\"commuting_pct\":{},\"exec_cost_us\":{},\"rows\":[{}]}}",
            self.commuting_pct,
            self.exec_cost_us,
            rows.join(",")
        )
    }

    /// The measured speedup at `workers` over the sequential row.
    pub fn speedup_at(&self, workers: usize) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.workers == workers)
            .map(|r| r.speedup)
    }
}

/// Runs the execution-scaling grid: worker counts 1, 2 and 4 on the
/// mostly-commuting profile, `budget` of virtual time each, with an
/// execution-bound cost model (cheap messages, expensive per-command
/// apply) so the engine's makespan is what the simulation measures.
pub fn exec_scaling(budget: Micros) -> ExecScalingReport {
    const EXEC_COST_US: u64 = 400;
    const COMMUTING_PCT: u32 = 90;
    let run = |workers: usize| {
        ClusterBuilder::new(ProtocolKind::EzBft)
            .topology(Topology::lan(4))
            .clients_per_region(&[6, 6, 6, 6])
            .requests_per_client(1_000_000)
            .cost_model(CostParams {
                order_msg_us: 40,
                order_req_us: 30,
                follow_msg_us: 40,
                follow_req_us: 20,
                commit_us: 20,
                ack_us: 15,
                other_us: 30,
            })
            .batch_size(8)
            .batch_delay(Micros::from_millis(1))
            .commit_aggregation(true)
            .commuting_pct(COMMUTING_PCT)
            .exec_engine(workers, EXEC_COST_US)
            .time_limit(budget)
            .seed(17)
            .run()
    };
    let mut rows: Vec<ExecScalingRow> = Vec::new();
    let mut base = 0.0f64;
    for workers in [1usize, 2, 4] {
        let report = run(workers);
        let throughput = report.throughput();
        if workers == 1 {
            base = throughput;
        }
        rows.push(ExecScalingRow {
            workers,
            completed: report.completed(),
            throughput,
            speedup: if base > 0.0 { throughput / base } else { 0.0 },
        });
    }
    ExecScalingReport {
        exec_cost_us: EXEC_COST_US,
        commuting_pct: COMMUTING_PCT,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_execution_scales_on_mostly_commuting_workload() {
        // The ISSUE 6 acceptance criterion: ≥1.5x simulated ops/s at 4
        // workers over sequential on the mostly-commuting profile.
        let report = exec_scaling(Micros::from_secs(1));
        assert_eq!(report.rows.len(), 3);
        for r in &report.rows {
            assert!(r.completed > 0, "no progress at {} workers", r.workers);
        }
        let speedup = report.speedup_at(4).expect("4-worker row");
        assert!(
            speedup >= 1.5,
            "4 workers must speed execution-bound throughput ≥1.5x, got {speedup:.2}x"
        );
        let json = report.to_json();
        assert!(json.contains("\"experiment\":\"exec_scaling\""));
        assert!(json.contains("\"workers\":4"));
    }
}
