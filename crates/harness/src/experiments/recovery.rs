//! **Recovery**: crash-restart catch-up via checkpointed state transfer.
//!
//! Goes beyond the paper's evaluation (§ recovery/owner-change assumes
//! logs are available forever): with the `ezbft-checkpoint` subsystem, a
//! replica that crashes and restarts **empty** adopts the cluster's stable
//! checkpoint — a certified snapshot plus log suffix — instead of
//! replaying the entire history. The experiment measures how much work the
//! rejoining replica actually performs and how the retained log stays
//! bounded while it happens.

use std::collections::VecDeque;

use ezbft_core::{Client, EzConfig, Msg, Replica};
use ezbft_crypto::{CryptoKind, KeyStore};
use ezbft_kv::{Key, KvOp, KvResponse, KvStore};
use ezbft_simnet::{Gauge, Region, SimConfig, SimNet, Topology};
use ezbft_smr::{
    Actions, ClientId, ClientNode, ClusterConfig, Micros, NodeId, ProtocolNode, ReplicaId, TimerId,
};

use crate::report::TextTable;

type KvMsg = Msg<KvOp, KvResponse>;

struct ScriptedClient {
    inner: Client<KvOp, KvResponse>,
    script: VecDeque<KvOp>,
}

impl ScriptedClient {
    fn pump(&mut self, out: &mut Actions<KvMsg, KvResponse>) {
        if !self.inner.in_flight() {
            if let Some(op) = self.script.pop_front() {
                self.inner.submit(op, out);
            }
        }
    }
}

impl ProtocolNode for ScriptedClient {
    type Message = KvMsg;
    type Response = KvResponse;

    fn id(&self) -> NodeId {
        ProtocolNode::id(&self.inner)
    }
    fn on_start(&mut self, out: &mut Actions<KvMsg, KvResponse>) {
        self.pump(out);
    }
    fn on_message(&mut self, from: NodeId, msg: KvMsg, out: &mut Actions<KvMsg, KvResponse>) {
        self.inner.on_message(from, msg, out);
        self.pump(out);
    }
    fn on_timer(&mut self, id: TimerId, out: &mut Actions<KvMsg, KvResponse>) {
        self.inner.on_timer(id, out);
        self.pump(out);
    }
}

/// The recovery experiment's measurements.
#[derive(Clone, Debug)]
pub struct RecoveryReport {
    /// Commands committed before the crash.
    pub pre_crash_commands: u64,
    /// Commands committed after the rejoin.
    pub post_rejoin_commands: u64,
    /// Stable checkpoints observed by the surviving replicas.
    pub stable_checkpoints: u64,
    /// Commands the rejoining replica finally executed itself (snapshot
    /// adoption makes this ≪ total).
    pub recovered_executed: u64,
    /// Virtual time from restart to end of state transfer, in ms.
    pub recovery_ms: f64,
    /// Peak retained-log size sampled at a survivor during the run.
    pub retained_peak: u64,
    /// Whether every replica (including the recovered one) converged to
    /// the same application state.
    pub states_converged: bool,
}

impl RecoveryReport {
    /// Fraction of the total history the rejoining replica had to execute.
    pub fn replay_fraction(&self) -> f64 {
        let total = self.pre_crash_commands + self.post_rejoin_commands;
        if total == 0 {
            return 0.0;
        }
        self.recovered_executed as f64 / total as f64
    }

    /// Renders the experiment's data.
    pub fn render(&self) -> String {
        let mut out =
            String::from("Recovery: crash-restart catch-up via checkpointed state transfer\n");
        let mut t = TextTable::new(&["metric", "value"]);
        t.row(vec![
            "commands before crash".into(),
            self.pre_crash_commands.to_string(),
        ]);
        t.row(vec![
            "commands after rejoin".into(),
            self.post_rejoin_commands.to_string(),
        ]);
        t.row(vec![
            "stable checkpoints".into(),
            self.stable_checkpoints.to_string(),
        ]);
        t.row(vec![
            "executed by rejoiner".into(),
            format!(
                "{} ({:.0}% of history)",
                self.recovered_executed,
                self.replay_fraction() * 100.0
            ),
        ]);
        t.row(vec![
            "state-transfer time".into(),
            format!("{:.1} ms", self.recovery_ms),
        ]);
        t.row(vec![
            "retained-log peak".into(),
            self.retained_peak.to_string(),
        ]);
        t.row(vec![
            "states converged".into(),
            self.states_converged.to_string(),
        ]);
        out.push_str(&t.render());
        out
    }
}

fn replica_of(sim: &SimNet<KvMsg, KvResponse>, r: u8) -> &Replica<KvStore> {
    sim.inspect(NodeId::Replica(ReplicaId::new(r)))
        .expect("inspectable")
        .downcast_ref::<Replica<KvStore>>()
        .expect("replica")
}

fn keystores(cluster: ClusterConfig, clients: &[u64]) -> Vec<KeyStore> {
    let mut nodes: Vec<NodeId> = cluster.replicas().map(NodeId::Replica).collect();
    for id in clients {
        nodes.push(NodeId::Client(ClientId::new(*id)));
    }
    KeyStore::cluster(CryptoKind::Mac, b"recovery-exp", &nodes)
}

/// Runs the recovery experiment: `pre` commands, crash replica 3, restart
/// it empty, `post` more commands, measure.
pub fn recovery(pre: usize, post: usize) -> RecoveryReport {
    let cluster = ClusterConfig::for_faults(1);
    let cfg = EzConfig::new(cluster).with_checkpointing(8);
    let clients = [0u64, 1];
    let mut stores = keystores(cluster, &clients);
    let client_stores = stores.split_off(cluster.n());
    let mut sim: SimNet<KvMsg, KvResponse> = SimNet::new(
        Topology::lan(4),
        SimConfig {
            seed: 0x5EC0,
            ..Default::default()
        },
    );
    for (i, rid) in cluster.replicas().enumerate() {
        sim.add_node(
            Region(i),
            Box::new(Replica::new(rid, cfg, stores.remove(0), KvStore::new())),
        );
    }
    let mut client_stores = client_stores.into_iter();
    // Client 0 drives the pre-crash phase; client 1 (crashed until the
    // rejoin) drives the post-rejoin phase.
    let pre_script: VecDeque<KvOp> = (0..pre as u64)
        .map(|i| KvOp::Put {
            key: Key(i),
            value: vec![1; 8],
        })
        .collect();
    sim.add_node(
        Region(0),
        Box::new(ScriptedClient {
            inner: Client::new(
                ClientId::new(0),
                cfg,
                client_stores.next().expect("keys"),
                ReplicaId::new(0),
            ),
            script: pre_script,
        }),
    );
    let post_script: VecDeque<KvOp> = (0..post as u64)
        .map(|i| KvOp::Put {
            key: Key(100_000 + i),
            value: vec![2; 8],
        })
        .collect();
    sim.add_node(
        Region(1),
        Box::new(ScriptedClient {
            inner: Client::new(
                ClientId::new(1),
                cfg,
                client_stores.next().expect("keys"),
                ReplicaId::new(1),
            ),
            script: post_script.clone(),
        }),
    );
    sim.faults_mut().crash(ClientId::new(1));

    let mut retained = Gauge::new();

    // Phase 1: the pre-crash history, with stable checkpoints forming.
    for step in 1..=10usize {
        sim.run_until_deliveries(pre * step / 10);
        retained.record(sim.now(), replica_of(&sim, 0).retained_log_size() as u64);
    }
    let settle = sim.now() + Micros::from_secs(2);
    sim.run_until_time(settle);

    // Phase 2: crash and restart empty.
    sim.schedule_crash(ReplicaId::new(3), sim.now() + Micros::from_millis(1));
    let pause = sim.now() + Micros::from_millis(500);
    sim.run_until_time(pause);
    let restart_at = sim.now();
    let keys3 = keystores(cluster, &clients)
        .into_iter()
        .nth(3)
        .expect("replica 3 keys");
    sim.restart_node(
        Region(3),
        Box::new(Replica::new_recovering(
            ReplicaId::new(3),
            cfg,
            keys3,
            KvStore::new(),
        )),
    );
    // Run until the state transfer completes (bounded by the retry loop);
    // the replica records the exact completion instant itself.
    for _ in 0..200 {
        let deadline = sim.now() + Micros::from_millis(10);
        sim.run_until_time(deadline);
        if !replica_of(&sim, 3).is_recovering() {
            break;
        }
    }
    let recovered_at = replica_of(&sim, 3)
        .recovery_completed_at()
        .unwrap_or(sim.now());

    // Phase 3: new traffic through the recovered cluster.
    let keys_c1 = keystores(cluster, &clients)
        .into_iter()
        .nth(5)
        .expect("client 1 keys");
    sim.restart_node(
        Region(1),
        Box::new(ScriptedClient {
            inner: Client::new(ClientId::new(1), cfg, keys_c1, ReplicaId::new(1)),
            script: post_script,
        }),
    );
    sim.run_until_deliveries(pre + post);
    retained.record(sim.now(), replica_of(&sim, 0).retained_log_size() as u64);
    let settle = sim.now() + Micros::from_secs(2);
    sim.run_until_time(settle);

    let fp0 = replica_of(&sim, 0).app().fingerprint();
    let states_converged = (1..4u8).all(|r| replica_of(&sim, r).app().fingerprint() == fp0);
    let r3 = replica_of(&sim, 3);
    RecoveryReport {
        pre_crash_commands: pre as u64,
        post_rejoin_commands: post as u64,
        stable_checkpoints: replica_of(&sim, 0).stats().stable_checkpoints,
        recovered_executed: r3.stats().executed,
        recovery_ms: recovered_at.saturating_sub(restart_at).as_millis_f64(),
        retained_peak: retained.max(),
        states_converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejoiner_adopts_snapshot_instead_of_replaying() {
        let report = recovery(60, 15);
        assert!(report.states_converged, "recovered replica diverged");
        assert!(report.stable_checkpoints >= 2);
        assert!(
            report.replay_fraction() < 0.6,
            "rejoiner replayed {:.0}% of history — state transfer failed",
            report.replay_fraction() * 100.0
        );
        assert!(report.retained_peak < 120);
        let rendered = report.render();
        assert!(rendered.contains("state-transfer time"));
        assert!(rendered.contains("states converged"));
    }
}
