//! Cost of the live introspection plane (DESIGN.md §9b): does scraping
//! `/metrics` and `/status` off every replica perturb a running cluster?
//!
//! A real TCP-loopback ezBFT cluster ([`crate::live::LiveCluster`])
//! serves a closed-loop client for a fixed wall-clock window while a
//! scraper thread polls all four replicas at a configured rate. Unlike
//! every simulator experiment this one measures wall-clock time, and
//! raw window throughput is dominated by *rare* slow-path stalls (a
//! single 600 ms slow-timer hit eats ~15% of a window), so the
//! overhead statistic is computed from the **median per-request
//! latency** — the closed-loop equivalent of throughput (1/latency)
//! that rare stalls cannot move. The acceptance bar is **< 5% at
//! 1 Hz**; trials are interleaved across rates so machine-load drift
//! biases every rate equally.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::live::LiveCluster;
use crate::report::TextTable;
use crate::scrape::{scrape_metrics, scrape_status};

/// One scrape rate's measurement.
#[derive(Clone, Copy, Debug)]
pub struct ScrapeOverheadRow {
    /// Scrapes per second against each replica (0 = baseline, none).
    pub scrape_hz: u32,
    /// Requests completed inside the measurement window (median trial).
    pub completed: u64,
    /// Measurement window length (median trial), wall-clock ms.
    pub wall_ms: u64,
    /// Raw closed-loop throughput, requests per wall-clock second
    /// (context only; noisy — see the module docs).
    pub ops_per_sec: f64,
    /// Median per-request latency in µs (median trial) — the robust
    /// basis of `overhead_pct`.
    pub p50_us: u64,
    /// Successful scrape round-trips performed (both endpoints, all
    /// replicas; median trial).
    pub scrapes: u64,
    /// Median-latency increase vs the baseline row, percent (negative =
    /// noise made the scraped run faster). For a closed-loop client
    /// this equals the throughput loss.
    pub overhead_pct: f64,
}

/// The experiment's result set.
#[derive(Clone, Debug)]
pub struct ScrapeOverheadReport {
    /// One row per scrape rate, baseline (0 Hz) first.
    pub rows: Vec<ScrapeOverheadRow>,
}

impl ScrapeOverheadReport {
    /// Renders the overhead table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&[
            "scrape rate",
            "completed",
            "ops/s",
            "p50 µs",
            "scrapes",
            "overhead %",
        ]);
        for r in &self.rows {
            t.row(vec![
                if r.scrape_hz == 0 {
                    "baseline".to_string()
                } else {
                    format!("{} Hz", r.scrape_hz)
                },
                r.completed.to_string(),
                format!("{:.0}", r.ops_per_sec),
                r.p50_us.to_string(),
                r.scrapes.to_string(),
                format!("{:+.2}", r.overhead_pct),
            ]);
        }
        format!(
            "Live introspection scrape overhead (DESIGN.md §9b)\n{}",
            t.render()
        )
    }

    /// Machine-readable summary (the `BENCH_scrape.json` payload),
    /// hand-encoded so the harness stays dependency-free.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                format!(
                    "{{\"scrape_hz\":{},\"completed\":{},\"wall_ms\":{},\
                     \"ops_per_sec\":{:.2},\"p50_us\":{},\"scrapes\":{},\"overhead_pct\":{:.2}}}",
                    r.scrape_hz,
                    r.completed,
                    r.wall_ms,
                    r.ops_per_sec,
                    r.p50_us,
                    r.scrapes,
                    r.overhead_pct
                )
            })
            .collect();
        format!(
            "{{\"experiment\":\"scrape_overhead\",\"rows\":[{}]}}",
            rows.join(",")
        )
    }

    /// The row measured at `scrape_hz`, if present.
    pub fn row(&self, scrape_hz: u32) -> Option<&ScrapeOverheadRow> {
        self.rows.iter().find(|r| r.scrape_hz == scrape_hz)
    }
}

/// One trial's raw numbers.
#[derive(Clone, Copy, Debug)]
struct Trial {
    completed: u64,
    wall_ms: u64,
    p50_us: u64,
    scrapes: u64,
}

/// One trial: drive the closed-loop client for `window`, scraping every
/// replica at `hz` (0 = no scraper).
fn trial(hz: u32, window: Duration) -> Trial {
    let mut cluster = LiveCluster::start(1, 16);
    // Warm up connections and the protocol's steady state off the clock.
    for _ in 0..20 {
        assert!(
            cluster.submit_and_wait(Duration::from_secs(10)),
            "warm-up request must complete"
        );
    }

    let stop = Arc::new(AtomicBool::new(false));
    let scrapes = Arc::new(AtomicU64::new(0));
    let scraper = (hz > 0).then(|| {
        let addrs = cluster.intro_addrs();
        let stop = stop.clone();
        let scrapes = scrapes.clone();
        let period = Duration::from_micros(1_000_000 / u64::from(hz));
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let tick = Instant::now();
                for &addr in &addrs {
                    let ok = scrape_metrics(addr).is_ok() && scrape_status(addr).is_ok();
                    if ok {
                        scrapes.fetch_add(1, Ordering::Relaxed);
                    }
                }
                if let Some(rest) = period.checked_sub(tick.elapsed()) {
                    std::thread::sleep(rest);
                }
            }
        })
    });

    let start = Instant::now();
    let mut latencies_us: Vec<u64> = Vec::new();
    while start.elapsed() < window {
        let sent = Instant::now();
        if cluster.submit_and_wait(Duration::from_secs(10)) {
            latencies_us.push(sent.elapsed().as_micros() as u64);
        }
    }
    let wall_ms = start.elapsed().as_millis() as u64;

    stop.store(true, Ordering::Relaxed);
    if let Some(t) = scraper {
        let _ = t.join();
    }
    let replicas = cluster.shutdown();
    assert!(
        !replicas.is_empty(),
        "replica state machines must survive the run"
    );
    latencies_us.sort_unstable();
    Trial {
        completed: latencies_us.len() as u64,
        wall_ms,
        p50_us: latencies_us
            .get(latencies_us.len() / 2)
            .copied()
            .unwrap_or(0),
        scrapes: scrapes.load(Ordering::Relaxed),
    }
}

/// Runs the scrape-overhead sweep: baseline, 1 Hz and 10 Hz. `quick`
/// shortens the window and takes one round (CI smoke); the full mode
/// runs five paired rounds and reports the median paired overhead.
pub fn scrape_overhead(quick: bool) -> ScrapeOverheadReport {
    let (window, rounds) = if quick {
        (Duration::from_millis(800), 1)
    } else {
        (Duration::from_secs(5), 5)
    };
    const RATES: [u32; 3] = [0, 1, 10];
    // Paired rounds: each round measures the baseline and every scrape
    // rate back to back, so machine-load drift cancels inside a round;
    // the reported overhead is the median of the per-round paired
    // deltas, not a comparison of two medians taken minutes apart.
    let mut trials_by_rate: Vec<Vec<Trial>> = vec![Vec::new(); RATES.len()];
    let mut overheads_by_rate: Vec<Vec<f64>> = vec![Vec::new(); RATES.len()];
    for _ in 0..rounds {
        let mut round_baseline = 0u64;
        for (i, &hz) in RATES.iter().enumerate() {
            let t = trial(hz, window);
            if hz == 0 {
                round_baseline = t.p50_us;
            } else if round_baseline > 0 {
                overheads_by_rate[i].push(
                    (t.p50_us as f64 - round_baseline as f64) / round_baseline as f64 * 100.0,
                );
            }
            trials_by_rate[i].push(t);
        }
    }
    let mut rows = Vec::new();
    for (i, &hz) in RATES.iter().enumerate() {
        let measured = &mut trials_by_rate[i];
        // Report the median trial's raw numbers.
        measured.sort_by_key(|t| t.p50_us);
        let t = measured[measured.len() / 2];
        let overheads = &mut overheads_by_rate[i];
        let overhead_pct = if overheads.is_empty() {
            0.0
        } else {
            overheads.sort_by(|a, b| a.partial_cmp(b).expect("finite overhead"));
            overheads[overheads.len() / 2]
        };
        rows.push(ScrapeOverheadRow {
            scrape_hz: hz,
            completed: t.completed,
            wall_ms: t.wall_ms,
            ops_per_sec: t.completed as f64 / (t.wall_ms.max(1) as f64 / 1_000.0),
            p50_us: t.p50_us,
            scrapes: t.scrapes,
            overhead_pct,
        });
    }
    ScrapeOverheadReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_scrapes_while_committing() {
        let report = scrape_overhead(true);
        assert_eq!(report.rows.len(), 3);
        let baseline = report.row(0).expect("baseline row");
        assert!(baseline.completed > 0, "baseline run must make progress");
        assert!(baseline.p50_us > 0, "median latency must be measured");
        assert_eq!(baseline.scrapes, 0);
        for hz in [1u32, 10] {
            let row = report.row(hz).expect("scraped row");
            assert!(row.completed > 0, "{hz} Hz run must make progress");
            assert!(
                row.scrapes > 0,
                "{hz} Hz run must land at least one scrape round"
            );
        }
        let json = report.to_json();
        assert!(json.contains("\"experiment\":\"scrape_overhead\""));
        assert!(json.contains("\"overhead_pct\""));
        assert!(json.contains("\"p50_us\""));
    }
}
