//! **Table II**: the static protocol-property comparison, generated from
//! the per-crate property constants so the table cannot drift from the
//! implementations.

use crate::report::TextTable;

/// One protocol's row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PropertyRow {
    /// Protocol name.
    pub protocol: &'static str,
    /// Resilience bound.
    pub resilience: &'static str,
    /// Best-case communication steps (client-inclusive).
    pub best_case_steps: u32,
    /// Extra slow-path steps.
    pub slow_path_extra: u32,
    /// Leadership structure.
    pub leader: &'static str,
}

/// The Table II data.
#[derive(Clone, Debug)]
pub struct Table2Report {
    /// One row per protocol, in paper order.
    pub rows: Vec<PropertyRow>,
}

impl Table2Report {
    /// Renders the paper-shaped table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&[
            "protocol",
            "resilience",
            "best-case steps",
            "slow-path extra",
            "leader",
        ]);
        for row in &self.rows {
            t.row(vec![
                row.protocol.to_string(),
                row.resilience.to_string(),
                row.best_case_steps.to_string(),
                row.slow_path_extra.to_string(),
                row.leader.to_string(),
            ]);
        }
        format!("Table II: protocol comparison\n{}", t.render())
    }
}

/// ezBFT's own property constants (the other protocols export theirs from
/// their crates).
pub mod ezbft_properties {
    /// Resilience: f < n/3.
    pub const RESILIENCE: &str = "f < n/3";
    /// Best-case communication steps (client-inclusive).
    pub const BEST_CASE_STEPS: u32 = 3;
    /// Extra steps on the slow path.
    pub const SLOW_PATH_EXTRA_STEPS: u32 = 2;
    /// Leadership structure.
    pub const LEADER: &str = "leaderless";
}

/// Builds Table II.
pub fn table2() -> Table2Report {
    Table2Report {
        rows: vec![
            PropertyRow {
                protocol: "PBFT",
                resilience: ezbft_pbft::properties::RESILIENCE,
                best_case_steps: ezbft_pbft::properties::BEST_CASE_STEPS,
                slow_path_extra: ezbft_pbft::properties::SLOW_PATH_EXTRA_STEPS,
                leader: ezbft_pbft::properties::LEADER,
            },
            PropertyRow {
                protocol: "FaB",
                resilience: ezbft_fab::properties::RESILIENCE,
                best_case_steps: ezbft_fab::properties::BEST_CASE_STEPS,
                slow_path_extra: ezbft_fab::properties::SLOW_PATH_EXTRA_STEPS,
                leader: ezbft_fab::properties::LEADER,
            },
            PropertyRow {
                protocol: "Zyzzyva",
                resilience: ezbft_zyzzyva::properties::RESILIENCE,
                best_case_steps: ezbft_zyzzyva::properties::BEST_CASE_STEPS,
                slow_path_extra: ezbft_zyzzyva::properties::SLOW_PATH_EXTRA_STEPS,
                leader: ezbft_zyzzyva::properties::LEADER,
            },
            PropertyRow {
                protocol: "ezBFT",
                resilience: ezbft_properties::RESILIENCE,
                best_case_steps: ezbft_properties::BEST_CASE_STEPS,
                slow_path_extra: ezbft_properties::SLOW_PATH_EXTRA_STEPS,
                leader: ezbft_properties::LEADER,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_table2() {
        let t = table2();
        let get = |name: &str| t.rows.iter().find(|r| r.protocol == name).unwrap();
        assert_eq!(get("PBFT").best_case_steps, 5);
        assert_eq!(get("Zyzzyva").best_case_steps, 3);
        assert_eq!(get("ezBFT").best_case_steps, 3);
        assert_eq!(get("ezBFT").slow_path_extra, 2);
        assert_eq!(get("ezBFT").leader, "leaderless");
        assert_eq!(get("Zyzzyva").leader, "single");
        for row in &t.rows {
            assert_eq!(row.resilience, "f < n/3");
        }
        assert!(t.render().contains("leaderless"));
    }
}
