//! **Figure 5**: Experiment 2 (Ohio, Ireland, Frankfurt, Mumbai).
//!
//! - 5a: all four protocols with the primary in Ireland — the best case
//!   for Zyzzyva, where ezBFT only matches it;
//! - 5b: Zyzzyva's primary moved to Ohio / Mumbai / Ireland vs ezBFT —
//!   "moving the primary … substantially increases its overall latency.
//!   In such cases, EZBFT's latency is up to 45% lower than Zyzzyva's."

use ezbft_simnet::Topology;
use ezbft_smr::ReplicaId;

use crate::cluster::{ClusterBuilder, ProtocolKind};
use crate::experiments::fig4::Series;
use crate::report::{ms, TextTable};

/// Figure 5a data.
#[derive(Clone, Debug)]
pub struct Fig5aReport {
    /// Region names.
    pub regions: Vec<&'static str>,
    /// PBFT, FaB, Zyzzyva (Ireland primary) and ezBFT series.
    pub series: Vec<Series>,
}

impl Fig5aReport {
    /// Renders the figure's data.
    pub fn render(&self) -> String {
        render_series(
            "Figure 5a: Experiment 2 mean latency (ms), primary = Ireland",
            &self.regions,
            &self.series,
        )
    }

    /// Looks up a series by label.
    pub fn series(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }
}

/// Figure 5b data.
#[derive(Clone, Debug)]
pub struct Fig5bReport {
    /// Region names.
    pub regions: Vec<&'static str>,
    /// Zyzzyva with primary at Ohio/Mumbai/Ireland, plus ezBFT.
    pub series: Vec<Series>,
}

impl Fig5bReport {
    /// Renders the figure's data.
    pub fn render(&self) -> String {
        render_series(
            "Figure 5b: Experiment 2 mean latency (ms), Zyzzyva primary placement sweep",
            &self.regions,
            &self.series,
        )
    }

    /// Looks up a series by label.
    pub fn series(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// The paper's headline: ezBFT's best gain over the worst Zyzzyva
    /// placement, as a fraction.
    pub fn max_gain_over_zyzzyva(&self) -> f64 {
        let ez = self.series("ezBFT").expect("ezBFT series");
        let mut best: f64 = 0.0;
        for s in &self.series {
            if s.label == "ezBFT" {
                continue;
            }
            for (region, z) in s.latency_ms.iter().enumerate() {
                if *z > 0.0 {
                    best = best.max(1.0 - ez.latency_ms[region] / z);
                }
            }
        }
        best
    }
}

fn render_series(title: &str, regions: &[&'static str], series: &[Series]) -> String {
    let mut header = vec!["protocol"];
    header.extend(regions.iter());
    let mut t = TextTable::new(&header);
    for s in series {
        let mut cells = vec![s.label.clone()];
        cells.extend(s.latency_ms.iter().map(|v| ms(*v)));
        t.row(cells);
    }
    format!("{title}\n{}", t.render())
}

/// Runs Figure 5a.
pub fn fig5a(requests_per_client: usize) -> Fig5aReport {
    let topology = Topology::exp2();
    let regions: Vec<&'static str> = topology.regions().map(|r| topology.name(r)).collect();
    let n = regions.len();
    let ireland = topology
        .region_named("Ireland")
        .expect("exp2 has Ireland")
        .index();
    let mut series = Vec::new();
    for (kind, label) in [
        (ProtocolKind::Pbft, "PBFT (Ireland)"),
        (ProtocolKind::Fab, "FaB (Ireland)"),
        (ProtocolKind::Zyzzyva, "Zyzzyva (Ireland)"),
        (ProtocolKind::EzBft, "ezBFT"),
    ] {
        let report = ClusterBuilder::new(kind)
            .topology(topology.clone())
            .primary(ReplicaId::new(ireland as u8))
            .clients_per_region(&vec![1; n])
            .requests_per_client(requests_per_client)
            .seed(50)
            .run();
        series.push(Series {
            label: label.to_string(),
            latency_ms: (0..n).map(|r| report.mean_latency_ms(r)).collect(),
        });
    }
    Fig5aReport { regions, series }
}

/// Runs Figure 5b.
pub fn fig5b(requests_per_client: usize) -> Fig5bReport {
    let topology = Topology::exp2();
    let regions: Vec<&'static str> = topology.regions().map(|r| topology.name(r)).collect();
    let n = regions.len();
    let mut series = Vec::new();
    for primary_name in ["Ohio", "Mumbai", "Ireland"] {
        let primary = topology.region_named(primary_name).expect("region exists");
        let report = ClusterBuilder::new(ProtocolKind::Zyzzyva)
            .topology(topology.clone())
            .primary(ReplicaId::new(primary.index() as u8))
            .clients_per_region(&vec![1; n])
            .requests_per_client(requests_per_client)
            .seed(51)
            .run();
        series.push(Series {
            label: format!("Zyzzyva ({primary_name})"),
            latency_ms: (0..n).map(|r| report.mean_latency_ms(r)).collect(),
        });
    }
    let report = ClusterBuilder::new(ProtocolKind::EzBft)
        .topology(topology.clone())
        .clients_per_region(&vec![1; n])
        .requests_per_client(requests_per_client)
        .seed(52)
        .run();
    series.push(Series {
        label: "ezBFT".to_string(),
        latency_ms: (0..n).map(|r| report.mean_latency_ms(r)).collect(),
    });
    Fig5bReport { regions, series }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5a_ireland_is_zyzzyva_best_case() {
        let report = fig5a(5);
        let zyzzyva = report.series("Zyzzyva (Ireland)").unwrap();
        let ez = report.series("ezBFT").unwrap();
        // The paper: "EZBFT performs very similar to Zyzzyva" in this
        // configuration. Allow a modest band either way.
        for region in 0..4 {
            let diff = (ez.latency_ms[region] - zyzzyva.latency_ms[region]).abs();
            let rel = diff / zyzzyva.latency_ms[region];
            assert!(
                rel < 0.25 || ez.latency_ms[region] < zyzzyva.latency_ms[region],
                "{}: ezBFT {:.0} vs Zyzzyva {:.0}",
                report.regions[region],
                ez.latency_ms[region],
                zyzzyva.latency_ms[region]
            );
        }
    }

    #[test]
    fn fig5b_bad_primary_placement_hurts_zyzzyva() {
        let report = fig5b(5);
        let gain = report.max_gain_over_zyzzyva();
        // Paper: "up to 45% lower". Require a substantial gain.
        assert!(
            gain > 0.35,
            "expected ≥35% max gain, got {:.0}%\n{}",
            gain * 100.0,
            report.render()
        );
    }
}
