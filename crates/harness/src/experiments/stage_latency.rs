//! Request-lifecycle stage latency: where does a request spend its time?
//!
//! Beyond the paper's end-to-end latency figures, the telemetry layer
//! (DESIGN.md §9) splits every request's lifetime into protocol stages —
//! submission, speculative ordering, ack collection, commitment,
//! execution, reply — and this experiment reports the p50/p99 of each
//! stage transition across a configuration grid: client-driven vs
//! aggregated commitment, sequential vs parallel execution. The same
//! spans that feed this table are exported as JSON lines when
//! `EZBFT_OBS_LOG` is set.

use std::collections::BTreeMap;

use ezbft_obs::Log2Histogram;
use ezbft_simnet::Topology;
use ezbft_smr::Micros;

use crate::cluster::{ClusterBuilder, ProtocolKind};
use crate::cost::CostParams;
use crate::report::TextTable;

/// One stage transition's latency summary.
#[derive(Clone, Copy, Debug)]
pub struct StageSummary {
    /// Observations aggregated into the summary.
    pub count: u64,
    /// Median latency (µs).
    pub p50_us: u64,
    /// 99th-percentile latency (µs).
    pub p99_us: u64,
}

impl StageSummary {
    fn of(h: &Log2Histogram) -> StageSummary {
        StageSummary {
            count: h.count(),
            p50_us: h.quantile(0.50),
            p99_us: h.quantile(0.99),
        }
    }
}

/// One configuration's measurement.
#[derive(Clone, Debug)]
pub struct StageLatencyRow {
    /// Human-readable configuration label.
    pub config: String,
    /// Whether commit aggregation was on (replica-driven commitment).
    pub aggregated: bool,
    /// Execution-engine worker count.
    pub exec_workers: usize,
    /// Completed requests.
    pub completed: usize,
    /// Per stage-transition summaries, keyed `"from->to"` plus `"e2e"`.
    pub stages: BTreeMap<String, StageSummary>,
    /// Final telemetry counter values for the run
    /// ([`crate::cluster::RunReport::counters`]), exported so the bench
    /// artefact records traffic volumes next to the latencies.
    pub counters: BTreeMap<String, u64>,
}

/// The experiment's result set.
#[derive(Clone, Debug)]
pub struct StageLatencyReport {
    /// One row per configuration.
    pub rows: Vec<StageLatencyRow>,
}

impl StageLatencyReport {
    /// Renders one table of (config, stage) latency rows.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&["config", "stage", "count", "p50 µs", "p99 µs"]);
        for row in &self.rows {
            for (stage, s) in &row.stages {
                t.row(vec![
                    row.config.clone(),
                    stage.clone(),
                    s.count.to_string(),
                    s.p50_us.to_string(),
                    s.p99_us.to_string(),
                ]);
            }
        }
        format!(
            "Request-lifecycle stage latency (DESIGN.md §9)\n{}",
            t.render()
        )
    }

    /// Machine-readable summary (the `BENCH_*.json` harness output),
    /// hand-encoded so the harness stays dependency-free.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                let stages: Vec<String> = r
                    .stages
                    .iter()
                    .map(|(name, s)| {
                        format!(
                            "\"{}\":{{\"count\":{},\"p50_us\":{},\"p99_us\":{}}}",
                            name, s.count, s.p50_us, s.p99_us
                        )
                    })
                    .collect();
                let counters: Vec<String> = r
                    .counters
                    .iter()
                    .map(|(name, v)| format!("\"{name}\":{v}"))
                    .collect();
                format!(
                    "{{\"config\":\"{}\",\"aggregated\":{},\"exec_workers\":{},\"completed\":{},\"stages\":{{{}}},\"counters\":{{{}}}}}",
                    r.config,
                    r.aggregated,
                    r.exec_workers,
                    r.completed,
                    stages.join(","),
                    counters.join(",")
                )
            })
            .collect();
        format!(
            "{{\"experiment\":\"stage_latency\",\"rows\":[{}]}}",
            rows.join(",")
        )
    }

    /// The row for (`aggregated`, `workers`), if measured.
    pub fn row(&self, aggregated: bool, workers: usize) -> Option<&StageLatencyRow> {
        self.rows
            .iter()
            .find(|r| r.aggregated == aggregated && r.exec_workers == workers)
    }
}

/// Runs the stage-latency grid: {client-driven, aggregated} commitment ×
/// {1, 4} execution workers on the mostly-commuting, execution-bound
/// profile, `budget` of virtual time each, telemetry on.
pub fn stage_latency(budget: Micros) -> StageLatencyReport {
    let run = |aggregated: bool, workers: usize| {
        ClusterBuilder::new(ProtocolKind::EzBft)
            .topology(Topology::lan(4))
            .clients_per_region(&[4, 4, 4, 4])
            .requests_per_client(1_000_000)
            .cost_model(CostParams {
                order_msg_us: 40,
                order_req_us: 30,
                follow_msg_us: 40,
                follow_req_us: 20,
                commit_us: 20,
                ack_us: 15,
                other_us: 30,
            })
            .batch_size(8)
            .batch_delay(Micros::from_millis(1))
            .commit_aggregation(aggregated)
            .commuting_pct(90)
            .exec_engine(workers, 400)
            .telemetry(true)
            .time_limit(budget)
            .seed(23)
            .run()
    };
    let mut rows = Vec::new();
    for (aggregated, workers) in [(false, 1), (false, 4), (true, 1), (true, 4)] {
        let report = run(aggregated, workers);
        let stages: BTreeMap<String, StageSummary> = report
            .stage_intervals
            .iter()
            .filter(|(_, h)| h.count() > 0)
            .map(|(name, h)| (name.clone(), StageSummary::of(h)))
            .collect();
        rows.push(StageLatencyRow {
            config: format!(
                "{}+{}w",
                if aggregated {
                    "aggregated"
                } else {
                    "client-driven"
                },
                workers
            ),
            aggregated,
            exec_workers: workers,
            completed: report.completed(),
            stages,
            counters: report.counters,
        });
    }
    StageLatencyReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_latency_reports_per_stage_quantiles_for_every_config() {
        let report = stage_latency(Micros::from_millis(500));
        assert_eq!(report.rows.len(), 4);
        for row in &report.rows {
            assert!(row.completed > 0, "{}: no progress", row.config);
            let e2e = row.stages.get("e2e").expect("e2e interval observed");
            assert!(e2e.count > 0 && e2e.p50_us > 0 && e2e.p99_us >= e2e.p50_us);
            // At least submit->… and …->reply transitions beyond e2e.
            assert!(
                row.stages.len() >= 3,
                "{}: expected a stage breakdown, got {:?}",
                row.config,
                row.stages.keys().collect::<Vec<_>>()
            );
        }
        // The ack-collect stage only exists under aggregation.
        let agg = report.row(true, 1).expect("aggregated row");
        assert!(
            agg.stages.keys().any(|k| k.contains("ack_collect")),
            "aggregated commitment must surface the ack-collect stage"
        );
        // Telemetry counters ride along in every row: the simulator's
        // TCP-parity traffic counters must be present with real bytes.
        for row in &report.rows {
            for name in ["sim.sent", "net.frames_out", "net.bytes_out"] {
                assert!(
                    row.counters.get(name).is_some_and(|&v| v > 0),
                    "{}: counter {name} missing or zero",
                    row.config
                );
            }
        }
        let json = report.to_json();
        assert!(json.contains("\"experiment\":\"stage_latency\""));
        assert!(json.contains("\"stages\""));
        assert!(json.contains("\"p99_us\""));
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"net.bytes_out\""));
    }
}
