//! **Table I**: Zyzzyva's client-side latency in the Experiment-1 regions
//! as the primary moves — the motivating measurement of the paper.
//!
//! "Columns indicate the primary's location. Rows indicate average
//! client-side latency for commands issued from that region."

use ezbft_simnet::Topology;
use ezbft_smr::ReplicaId;

use crate::cluster::{ClusterBuilder, ProtocolKind};
use crate::report::{ms, TextTable};

/// The 4×4 latency matrix (rows = client region, columns = primary region),
/// in milliseconds.
#[derive(Clone, Debug)]
pub struct Table1Report {
    /// Region names.
    pub regions: Vec<&'static str>,
    /// `matrix[client][primary]` mean latency in ms.
    pub matrix: Vec<Vec<f64>>,
}

impl Table1Report {
    /// Renders the paper-shaped table.
    pub fn render(&self) -> String {
        let mut header = vec!["client \\ primary"];
        header.extend(self.regions.iter());
        let mut t = TextTable::new(&header);
        for (row_idx, row) in self.matrix.iter().enumerate() {
            let mut cells = vec![self.regions[row_idx].to_string()];
            cells.extend(row.iter().map(|v| ms(*v)));
            t.row(cells);
        }
        format!(
            "Table I: Zyzzyva latency (ms) vs primary placement\n{}",
            t.render()
        )
    }

    /// The paper's headline property: the per-column minimum sits on the
    /// diagonal (co-located primary is fastest).
    pub fn diagonal_is_columnwise_minimum(&self) -> bool {
        let n = self.regions.len();
        (0..n).all(|primary| {
            (0..n).all(|client| self.matrix[client][primary] >= self.matrix[primary][primary] - 1.0)
        })
    }
}

/// Runs the Table I experiment.
pub fn table1(requests_per_client: usize) -> Table1Report {
    let topology = Topology::exp1();
    let regions: Vec<&'static str> = topology.regions().map(|r| topology.name(r)).collect();
    let n = regions.len();
    let mut matrix = vec![vec![0.0; n]; n];
    for primary in 0..n {
        let report = ClusterBuilder::new(ProtocolKind::Zyzzyva)
            .topology(topology.clone())
            .primary(ReplicaId::new(primary as u8))
            .clients_per_region(&vec![1; n])
            .requests_per_client(requests_per_client)
            .seed(10 + primary as u64)
            .run();
        for (client, row) in matrix.iter_mut().enumerate() {
            row[primary] = report.mean_latency_ms(client);
        }
    }
    Table1Report { regions, matrix }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_dominates_as_in_the_paper() {
        let report = table1(3);
        assert!(
            report.diagonal_is_columnwise_minimum(),
            "{}",
            report.render()
        );
    }

    #[test]
    fn virginia_column_matches_paper_shape() {
        // Paper column "Virginia": 198, 236, 304, 303 (±15ms tolerance on
        // our calibrated matrix).
        let report = table1(3);
        let paper = [198.0, 236.0, 304.0, 303.0];
        for (client, expected) in paper.iter().enumerate() {
            let got = report.matrix[client][0];
            assert!(
                (got - expected).abs() < 15.0,
                "client {} vs Virginia primary: got {got:.1}ms, paper {expected}ms",
                report.regions[client],
            );
        }
    }
}
