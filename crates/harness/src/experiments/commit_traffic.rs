//! Commit-phase traffic: client-driven vs replica-driven (aggregated)
//! commitment (beyond the paper; DESIGN.md §7), with explicit-vote vs
//! compact O(1) certificates (DESIGN.md §10).
//!
//! The paper's clients each collect their own `3f + 1` certificate and
//! broadcast it, so commit traffic scales O(clients × n) per batch.
//! Instance-level aggregation moves certificate collection to the
//! command-leader: one SPECACK round plus one COMMITAGG broadcast per
//! batch, plus one confirmation per request. Orthogonally, compact
//! certificates shrink every commit-phase certificate from an O(n) vote
//! vector to one aggregate signature plus a signer bitmap. This
//! experiment measures the mode matrix at several batch sizes over the
//! follower-bound LAN profile and reports commit-phase messages *and
//! wire bytes* per committed request alongside throughput.

use ezbft_crypto::CryptoKind;
use ezbft_simnet::Topology;
use ezbft_smr::Micros;

use crate::cluster::{ClusterBuilder, ProtocolKind};
use crate::cost::CostParams;
use crate::report::TextTable;

/// Message kinds that belong to ezBFT's commit phase.
pub const COMMIT_KINDS: &[&str] = &[
    "commit-fast",
    "commit",
    "spec-ack",
    "commit-agg",
    "commit-confirm",
];

/// One (batch size, commitment mode, certificate form) measurement.
#[derive(Clone, Debug)]
pub struct CommitTrafficRow {
    /// SPECORDER batch size.
    pub batch: usize,
    /// Whether replica-driven aggregation was enabled.
    pub aggregated: bool,
    /// Whether compact O(1) certificates were enabled.
    pub compact: bool,
    /// Completed requests.
    pub completed: usize,
    /// Total commit-phase messages handed to the network.
    pub commit_msgs: u64,
    /// Commit-phase messages per committed request.
    pub per_request: f64,
    /// Total commit-phase wire bytes handed to the network.
    pub commit_bytes: u64,
    /// Commit-phase wire bytes per committed request.
    pub bytes_per_request: f64,
    /// Steady-state throughput (ops per virtual second).
    pub throughput: f64,
}

/// The experiment's result set.
#[derive(Clone, Debug)]
pub struct CommitTrafficReport {
    /// One row per (batch, mode, certificate form), batch-major with
    /// client-driven/explicit first.
    pub rows: Vec<CommitTrafficRow>,
}

impl CommitTrafficReport {
    /// Renders the comparison table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&[
            "batch",
            "commitment",
            "certs",
            "completed",
            "commit msgs",
            "msgs/req",
            "bytes/req",
            "ops/s",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.batch.to_string(),
                if r.aggregated {
                    "aggregated".into()
                } else {
                    "client-driven".into()
                },
                if r.compact {
                    "compact".into()
                } else {
                    "votes".into()
                },
                r.completed.to_string(),
                r.commit_msgs.to_string(),
                format!("{:.2}", r.per_request),
                format!("{:.0}", r.bytes_per_request),
                format!("{:.0}", r.throughput),
            ]);
        }
        format!("Commit-phase traffic (DESIGN.md §7, §10)\n{}", t.render())
    }

    /// Machine-readable summary (the `BENCH_*.json`-style harness output):
    /// one object per row, hand-encoded so the harness stays
    /// dependency-free.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                format!(
                    "{{\"batch\":{},\"aggregated\":{},\"compact\":{},\"completed\":{},\"commit_msgs\":{},\"msgs_per_request\":{:.3},\"commit_bytes\":{},\"bytes_per_request\":{:.1},\"ops_per_sec\":{:.1}}}",
                    r.batch,
                    r.aggregated,
                    r.compact,
                    r.completed,
                    r.commit_msgs,
                    r.per_request,
                    r.commit_bytes,
                    r.bytes_per_request,
                    r.throughput
                )
            })
            .collect();
        format!(
            "{{\"experiment\":\"commit_traffic\",\"rows\":[{}]}}",
            rows.join(",")
        )
    }

    /// The measured commit-traffic reduction factor at `batch`
    /// (client-driven msgs/req over aggregated msgs/req, both with
    /// explicit vote certificates).
    pub fn reduction_at(&self, batch: usize) -> Option<f64> {
        let find = |agg: bool| {
            self.rows
                .iter()
                .find(|r| r.batch == batch && r.aggregated == agg && !r.compact)
        };
        let (cd, ag) = (find(false)?, find(true)?);
        (ag.per_request > 0.0).then(|| cd.per_request / ag.per_request)
    }

    /// The measured commit-phase *byte* reduction factor at `batch` from
    /// compacting certificates (vote-vector bytes/req over compact
    /// bytes/req, same commitment mode).
    pub fn bytes_reduction_at(&self, batch: usize, aggregated: bool) -> Option<f64> {
        let find = |compact: bool| {
            self.rows
                .iter()
                .find(|r| r.batch == batch && r.aggregated == aggregated && r.compact == compact)
        };
        let (votes, compact) = (find(false)?, find(true)?);
        (compact.bytes_per_request > 0.0)
            .then(|| votes.bytes_per_request / compact.bytes_per_request)
    }
}

/// Runs the commit-traffic comparison: batch sizes 1 and 8, the
/// commitment-mode × certificate-form matrix, `budget` of virtual time
/// each over the follower-bound LAN cost profile. Every run uses the
/// aggregation-capable [`CryptoKind::Agg`] provider (32-byte partial
/// signatures either way) so vote-vector and compact wire bytes are
/// directly comparable, and telemetry so the report carries per-kind
/// byte counters.
pub fn commit_traffic(budget: Micros) -> CommitTrafficReport {
    let mut rows = Vec::new();
    for batch in [1usize, 8] {
        for (aggregated, compact) in [(false, false), (false, true), (true, false), (true, true)] {
            let report = ClusterBuilder::new(ProtocolKind::EzBft)
                .topology(Topology::lan(4))
                .clients_per_region(&[6, 6, 6, 6])
                .requests_per_client(1_000_000)
                .cost_model(CostParams {
                    order_msg_us: 100,
                    order_req_us: 200,
                    follow_msg_us: 250,
                    follow_req_us: 50,
                    commit_us: 60,
                    ack_us: 40,
                    other_us: 80,
                })
                .batch_size(batch)
                .batch_delay(Micros::from_millis(1))
                .commit_aggregation(aggregated)
                .compact_certs(compact)
                .crypto(CryptoKind::Agg)
                .telemetry(true)
                .time_limit(budget)
                .seed(11)
                .run();
            let commit_msgs: u64 = COMMIT_KINDS.iter().map(|k| report.sent_of_kind(k)).sum();
            let commit_bytes: u64 = COMMIT_KINDS.iter().map(|k| report.bytes_of_kind(k)).sum();
            rows.push(CommitTrafficRow {
                batch,
                aggregated,
                compact,
                completed: report.completed(),
                commit_msgs,
                per_request: report.commit_msgs_per_request(COMMIT_KINDS),
                commit_bytes,
                bytes_per_request: report.commit_bytes_per_request(COMMIT_KINDS),
                throughput: report.throughput(),
            });
        }
    }
    CommitTrafficReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation_cuts_commit_traffic_at_batch_8() {
        // Quick budget: boundary effects (batches acked but uncommitted at
        // the cutoff) shave the measured ratio below the steady-state
        // ~2.3x, so this smoke test uses a softer floor; the full ≥2x
        // acceptance bound is pinned at the 3s budget by
        // `commit_aggregation_beats_client_driven_commitment_at_batch_8`.
        let report = commit_traffic(Micros::from_secs(1));
        assert_eq!(report.rows.len(), 8);
        let reduction = report.reduction_at(8).expect("both modes measured");
        assert!(
            reduction >= 1.8,
            "expected ~2x commit-traffic reduction at batch=8, got {reduction:.2}x"
        );
        let json = report.to_json();
        assert!(json.contains("\"experiment\":\"commit_traffic\""));
        assert!(json.contains("\"aggregated\":true"));
        assert!(json.contains("\"compact\":true"));
        assert!(json.contains("\"bytes_per_request\""));
    }

    #[test]
    fn compact_certs_cut_commit_bytes_at_batch_8() {
        // The DESIGN.md §10 acceptance metric: at n=4 the explicit fast
        // certificate carries four ~100-byte votes where the compact form
        // carries one 32-byte aggregate plus a one-byte bitmap, so
        // commit-phase bytes per request must drop in both commitment
        // modes. Messages per request must NOT change — compaction only
        // shrinks payloads.
        let report = commit_traffic(Micros::from_secs(1));
        for aggregated in [false, true] {
            let reduction = report
                .bytes_reduction_at(8, aggregated)
                .expect("both certificate forms measured");
            assert!(
                reduction > 1.15,
                "compact certs must cut commit bytes/request (aggregated={aggregated}), got {reduction:.2}x"
            );
        }
        let find = |compact: bool| {
            report
                .rows
                .iter()
                .find(|r| r.batch == 8 && r.aggregated && r.compact == compact)
                .expect("row present")
        };
        let (votes, compact) = (find(false), find(true));
        assert!(
            (votes.per_request - compact.per_request).abs() < 0.35,
            "compaction shrinks payloads, not message counts: {:.2} vs {:.2} msgs/req",
            votes.per_request,
            compact.per_request
        );
    }
}
