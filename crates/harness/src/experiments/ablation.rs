//! **Ablation**: how much of ezBFT's fast path survives contention thanks
//! to its *commutativity-aware* interference relation (§VI: "This is more
//! restrictive than the commutative property used by EZBFT. In EZBFT, for
//! instance, mutative operations (such as incrementing a variable) are
//! commutative").
//!
//! Both runs hammer a single hot key from every region. The `Bump` run
//! uses blind increments (commuting writes: they interfere with reads and
//! plain writes but not with each other — ezBFT's relation); the `Incr`
//! run uses value-returning increments (plain writes: Q/U-style read/write
//! classification, everything conflicts). Same workload shape, same
//! regions — the only difference is the interference relation, isolating
//! its effect on the fast-path rate and latency.

use std::collections::VecDeque;

use ezbft_core::{Client, EzConfig, Msg, Replica};
use ezbft_crypto::{CryptoKind, KeyStore};
use ezbft_kv::{Key, KvOp, KvResponse, KvStore};
use ezbft_simnet::{Histogram, Region, SimConfig, SimNet, Topology};
use ezbft_smr::{
    Actions, ClientId, ClientNode, ClusterConfig, NodeId, ProtocolNode, ReplicaId, TimerId,
};

use crate::report::TextTable;

type KvMsg = Msg<KvOp, KvResponse>;

struct ScriptedClient {
    inner: Client<KvOp, KvResponse>,
    script: VecDeque<KvOp>,
}

impl ScriptedClient {
    fn pump(&mut self, out: &mut Actions<KvMsg, KvResponse>) {
        if !self.inner.in_flight() {
            if let Some(op) = self.script.pop_front() {
                self.inner.submit(op, out);
            }
        }
    }
}

impl ProtocolNode for ScriptedClient {
    type Message = KvMsg;
    type Response = KvResponse;

    fn id(&self) -> NodeId {
        ProtocolNode::id(&self.inner)
    }
    fn on_start(&mut self, out: &mut Actions<KvMsg, KvResponse>) {
        self.pump(out);
    }
    fn on_message(&mut self, from: NodeId, msg: KvMsg, out: &mut Actions<KvMsg, KvResponse>) {
        self.inner.on_message(from, msg, out);
        self.pump(out);
    }
    fn on_timer(&mut self, id: TimerId, out: &mut Actions<KvMsg, KvResponse>) {
        self.inner.on_timer(id, out);
        self.pump(out);
    }
}

/// One arm of the ablation.
#[derive(Clone, Debug)]
pub struct AblationArm {
    /// Arm label.
    pub label: &'static str,
    /// Fraction of requests that used the fast path.
    pub fast_fraction: f64,
    /// Mean latency across all clients, ms.
    pub mean_latency_ms: f64,
}

/// The ablation data.
#[derive(Clone, Debug)]
pub struct AblationReport {
    /// The commuting-writes arm and the plain-writes arm.
    pub arms: Vec<AblationArm>,
}

impl AblationReport {
    /// Renders the comparison.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&["interference relation", "fast-path %", "mean latency (ms)"]);
        for arm in &self.arms {
            t.row(vec![
                arm.label.to_string(),
                format!("{:.0}", arm.fast_fraction * 100.0),
                format!("{:.1}", arm.mean_latency_ms),
            ]);
        }
        format!(
            "Ablation: commutativity-aware interference (hot-key increments from all regions)\n{}",
            t.render()
        )
    }

    /// The commuting arm.
    pub fn commuting(&self) -> &AblationArm {
        &self.arms[0]
    }

    /// The plain-writes arm.
    pub fn plain(&self) -> &AblationArm {
        &self.arms[1]
    }
}

fn run_arm(label: &'static str, ops_per_client: usize, commuting: bool) -> AblationArm {
    let cluster = ClusterConfig::for_faults(1);
    let cfg = EzConfig::new(cluster);
    let hot = Key(42);
    let mut nodes: Vec<NodeId> = cluster.replicas().map(NodeId::Replica).collect();
    for c in 0..4u64 {
        nodes.push(NodeId::Client(ClientId::new(c)));
    }
    let mut stores = KeyStore::cluster(CryptoKind::Null, b"ablation", &nodes);
    let client_stores = stores.split_off(cluster.n());
    let mut sim: SimNet<KvMsg, KvResponse> = SimNet::new(
        Topology::exp1(),
        SimConfig {
            seed: 77,
            ..Default::default()
        },
    );
    for (i, rid) in cluster.replicas().enumerate() {
        sim.add_node(
            Region(i),
            Box::new(Replica::new(rid, cfg, stores.remove(0), KvStore::new())),
        );
    }
    for (c, keys) in (0..4u64).zip(client_stores) {
        let script: VecDeque<KvOp> = (0..ops_per_client)
            .map(|_| {
                if commuting {
                    KvOp::Bump { key: hot, by: 1 }
                } else {
                    KvOp::Incr { key: hot, by: 1 }
                }
            })
            .collect();
        let client = Client::new(ClientId::new(c), cfg, keys, ReplicaId::new(c as u8));
        sim.add_node(
            Region(c as usize),
            Box::new(ScriptedClient {
                inner: client,
                script,
            }),
        );
    }
    let total = 4 * ops_per_client;
    sim.run_until_deliveries(total);

    let mut latency = Histogram::new();
    let mut last: std::collections::HashMap<NodeId, ezbft_smr::Micros> =
        std::collections::HashMap::new();
    let mut fast = 0usize;
    for d in sim.deliveries() {
        let prev = last
            .insert(d.client, d.at)
            .unwrap_or(ezbft_smr::Micros::ZERO);
        latency.record(d.at.saturating_sub(prev));
        if d.delivery.fast_path {
            fast += 1;
        }
    }
    AblationArm {
        label,
        fast_fraction: fast as f64 / total as f64,
        mean_latency_ms: latency.mean().as_millis_f64(),
    }
}

/// Runs both arms.
pub fn ablation(ops_per_client: usize) -> AblationReport {
    AblationReport {
        arms: vec![
            run_arm("commuting writes (ezBFT relation)", ops_per_client, true),
            run_arm("plain writes (Q/U-style relation)", ops_per_client, false),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commutativity_preserves_the_fast_path_under_hot_key_load() {
        let report = ablation(6);
        let commuting = report.commuting();
        let plain = report.plain();
        // Blind increments never interfere with each other: all fast.
        assert!(
            commuting.fast_fraction > 0.95,
            "commuting arm fast fraction {:.2}",
            commuting.fast_fraction
        );
        // Value-returning increments conflict: the fast path collapses.
        assert!(
            plain.fast_fraction < 0.5,
            "plain arm fast fraction {:.2}",
            plain.fast_fraction
        );
        // And that shows up as latency.
        assert!(
            commuting.mean_latency_ms < plain.mean_latency_ms,
            "commuting {:.0}ms vs plain {:.0}ms",
            commuting.mean_latency_ms,
            plain.mean_latency_ms
        );
    }
}
