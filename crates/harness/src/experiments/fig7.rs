//! **Figure 7**: peak server-side throughput.
//!
//! "We co-located ten clients with the primary replica in US-East-1 …
//! clients send requests in an open-loop … The requests consist of an
//! 8-byte key and a 16-byte value … The contention was set to 0%, and no
//! batching was done."
//!
//! Open-loop injection is emulated with a pool of closed-loop virtual
//! clients large enough to saturate the bottleneck server (the paper's ten
//! open-loop senders keep many requests in flight; N closed-loop clients
//! keep exactly N in flight — the saturation throughput is the same, see
//! EXPERIMENTS.md).

use ezbft_simnet::Topology;
use ezbft_smr::{Micros, ReplicaId};

use crate::cluster::{ClusterBuilder, ProtocolKind};
use crate::cost::CostParams;
use crate::report::TextTable;

/// One throughput bar.
#[derive(Clone, Debug)]
pub struct Bar {
    /// Display label.
    pub label: String,
    /// Steady-state ops per (virtual) second.
    pub ops_per_sec: f64,
}

/// The Figure 7 data.
#[derive(Clone, Debug)]
pub struct Fig7Report {
    /// All bars, in paper order.
    pub bars: Vec<Bar>,
}

impl Fig7Report {
    /// Renders the figure's data.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&["protocol", "ops/s"]);
        for bar in &self.bars {
            t.row(vec![bar.label.clone(), format!("{:.0}", bar.ops_per_sec)]);
        }
        format!(
            "Figure 7: peak throughput (no batching, θ = 0%)\n{}",
            t.render()
        )
    }

    /// Looks up a bar by label.
    pub fn bar(&self, label: &str) -> Option<&Bar> {
        self.bars.iter().find(|b| b.label == label)
    }
}

/// Runs the Figure 7 experiment with `virtual_clients` emulating the
/// open-loop senders and a virtual-time budget per bar.
pub fn fig7(virtual_clients: usize, budget: Micros) -> Fig7Report {
    let topology = Topology::exp1();
    let cost = CostParams::default();
    let mut bars = Vec::new();

    // Single-leader protocols + ezBFT, all clients in US-East-1.
    for (kind, label) in [
        (ProtocolKind::Pbft, "PBFT (US)"),
        (ProtocolKind::Fab, "FaB (US)"),
        (ProtocolKind::Zyzzyva, "Zyzzyva (US)"),
        (ProtocolKind::EzBft, "ezBFT"),
    ] {
        let report = ClusterBuilder::new(kind)
            .topology(topology.clone())
            .primary(ReplicaId::new(0))
            .clients_per_region(&[virtual_clients, 0, 0, 0])
            .requests_per_client(usize::MAX / 2)
            .cost_model(cost)
            .time_limit(budget)
            .seed(70)
            .run();
        bars.push(Bar {
            label: label.to_string(),
            ops_per_sec: report.throughput(),
        });
    }

    // ezBFT with clients in every region: all replicas lead. Each region
    // hosts a full saturating pool — peak throughput measures server
    // capacity, so every bottleneck must be offered enough load (the
    // US-only configurations saturate their single leader the same way).
    let report = ClusterBuilder::new(ProtocolKind::EzBft)
        .topology(topology.clone())
        .clients_per_region(&vec![virtual_clients; topology.len()])
        .requests_per_client(usize::MAX / 2)
        .cost_model(cost)
        .time_limit(budget)
        .seed(71)
        .run();
    bars.push(Bar {
        label: "ezBFT (All Regions)".to_string(),
        ops_per_sec: report.throughput(),
    });

    Fig7Report { bars }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_ranking_matches_paper() {
        // 150 closed-loop clients offer ≫ capacity for every protocol
        // (saturation needs clients ≥ capacity × RTT; PBFT's ~330ms RTT is
        // the binding constraint).
        let report = fig7(150, Micros::from_secs(6));
        let pbft = report.bar("PBFT (US)").unwrap().ops_per_sec;
        let fab = report.bar("FaB (US)").unwrap().ops_per_sec;
        let zyz = report.bar("Zyzzyva (US)").unwrap().ops_per_sec;
        let ez = report.bar("ezBFT").unwrap().ops_per_sec;
        let ez_all = report.bar("ezBFT (All Regions)").unwrap().ops_per_sec;

        assert!(pbft > 50.0, "PBFT throughput sanity: {pbft:.0}");
        // Paper ordering: PBFT lowest; Zyzzyva above FaB; ezBFT at par or
        // slightly better than the others with US-only clients.
        assert!(
            zyz > pbft,
            "Zyzzyva ({zyz:.0}) should beat PBFT ({pbft:.0})"
        );
        assert!(fab > pbft, "FaB ({fab:.0}) should beat PBFT ({pbft:.0})");
        assert!(
            ez > 0.9 * zyz,
            "ezBFT ({ez:.0}) at par with Zyzzyva ({zyz:.0})"
        );
        // The headline: spreading clients multiplies ezBFT's throughput
        // (paper: "as much as four times"; our recv-only cost model yields
        // ≈3×, see EXPERIMENTS.md).
        assert!(
            ez_all > 2.5 * ez,
            "all-regions ezBFT ({ez_all:.0}) should far exceed US-only ({ez:.0})"
        );
    }
}
