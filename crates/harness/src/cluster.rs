//! Generic cluster runner: build any protocol's cluster over the WAN
//! simulator, drive contention-θ workloads, collect latency/throughput.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use ezbft_crypto::{CryptoKind, KeyStore};
use ezbft_kv::{KvResponse, Workload, WorkloadConfig};
use ezbft_obs::{Log2Histogram, MemRecorder, Recorder};
use ezbft_simnet::{Histogram, Region, SimConfig, SimNet, Topology};
use ezbft_smr::{
    Actions, ClientId, ClusterConfig, Micros, NodeId, ProtocolNode, ReplicaId, TimerId,
};

use crate::cost::CostParams;
use crate::family::{
    DynClient, EzBftFamily, FabFamily, PbftFamily, ProtocolFamily, Setup, ZyzzyvaFamily,
};

/// Which protocol to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtocolKind {
    /// The paper's contribution.
    EzBft,
    /// PBFT baseline.
    Pbft,
    /// Zyzzyva baseline.
    Zyzzyva,
    /// FaB baseline.
    Fab,
}

impl ProtocolKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::EzBft => EzBftFamily::NAME,
            ProtocolKind::Pbft => PbftFamily::NAME,
            ProtocolKind::Zyzzyva => ZyzzyvaFamily::NAME,
            ProtocolKind::Fab => FabFamily::NAME,
        }
    }
}

/// A closed-loop workload-driven client wrapper.
struct DrivenClient<M> {
    inner: Box<dyn DynClient<M>>,
    workload: Workload,
    remaining: usize,
}

impl<M: Clone + Send + 'static> DrivenClient<M> {
    fn pump(&mut self, out: &mut Actions<M, KvResponse>) {
        if self.remaining > 0 && self.inner.idle() {
            let op = self.workload.next_op();
            self.remaining -= 1;
            self.inner.submit_op(op, out);
        }
    }
}

impl<M: Clone + Send + 'static> ProtocolNode for DrivenClient<M> {
    type Message = M;
    type Response = KvResponse;

    fn id(&self) -> NodeId {
        self.inner.id()
    }
    fn on_start(&mut self, out: &mut Actions<M, KvResponse>) {
        self.inner.on_start(out);
        self.pump(out);
    }
    fn on_message(&mut self, from: NodeId, msg: M, out: &mut Actions<M, KvResponse>) {
        self.inner.on_message(from, msg, out);
        self.pump(out);
    }
    fn on_timer(&mut self, id: TimerId, out: &mut Actions<M, KvResponse>) {
        self.inner.on_timer(id, out);
        self.pump(out);
    }
}

/// The outcome of one simulated deployment.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Protocol display name.
    pub protocol: &'static str,
    /// Latency histograms grouped by client region.
    pub per_region: Vec<Histogram>,
    /// Region names (parallel to `per_region`).
    pub region_names: Vec<&'static str>,
    /// Requests that completed on the protocol's fast path.
    pub fast: u64,
    /// Requests that completed on a slow/committed path.
    pub slow: u64,
    /// Virtual time at the end of the run.
    pub duration: Micros,
    /// Messages handed to the network, tallied by protocol kind tag.
    pub sent_by_kind: Vec<(&'static str, u64)>,
    /// Per stage-transition latency histograms keyed `"from->to"` (plus
    /// `"e2e"`), aggregated from the run's lifecycle spans. Empty unless
    /// [`ClusterBuilder::telemetry`] was enabled (DESIGN.md §9).
    pub stage_intervals: BTreeMap<String, Log2Histogram>,
    /// Final values of every telemetry counter (`net.*`, `sim.*`,
    /// protocol counters), snapshot at the end of the run. Empty unless
    /// [`ClusterBuilder::telemetry`] was enabled (DESIGN.md §9b).
    pub counters: BTreeMap<String, u64>,
    /// Final values of every per-kind telemetry counter, keyed
    /// `(name, kind)` — notably `("net.bytes_out", <msg kind>)`, the wire
    /// bytes handed to the network per message kind. Empty unless
    /// [`ClusterBuilder::telemetry`] was enabled.
    pub kind_counters: BTreeMap<(String, String), u64>,
    /// Completion timestamps (virtual) for throughput analysis.
    completions: Vec<Micros>,
}

impl RunReport {
    /// Total completed requests.
    pub fn completed(&self) -> usize {
        self.completions.len()
    }

    /// Mean latency in milliseconds for clients in `region`.
    pub fn mean_latency_ms(&self, region: usize) -> f64 {
        self.per_region[region].mean().as_millis_f64()
    }

    /// Messages sent of `kind` (0 for unknown kinds).
    pub fn sent_of_kind(&self, kind: &str) -> u64 {
        self.sent_by_kind
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|&(_, c)| c)
            .unwrap_or(0)
    }

    /// Commit-phase messages per completed request: every message whose
    /// kind belongs to the commit phase (certificates, votes, acks,
    /// confirmations — `kinds`), divided by the completed-request count.
    /// The metric the commit-aggregation experiments pin: client-driven
    /// commitment costs O(n) of these per request, aggregation amortises
    /// them to O(n) per batch plus one confirmation per request.
    pub fn commit_msgs_per_request(&self, kinds: &[&str]) -> f64 {
        if self.completed() == 0 {
            return 0.0;
        }
        let total: u64 = kinds.iter().map(|k| self.sent_of_kind(k)).sum();
        total as f64 / self.completed() as f64
    }

    /// Wire bytes sent for messages of `kind` (0 for unknown kinds, or
    /// when telemetry was off).
    pub fn bytes_of_kind(&self, kind: &str) -> u64 {
        self.kind_counters
            .get(&("net.bytes_out".to_string(), kind.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Commit-phase wire bytes per completed request: the `net.bytes_out`
    /// totals of every commit-phase message kind, divided by the
    /// completed-request count. The certificate-size metric the compact
    /// O(1) certificates pin (DESIGN.md §10): explicit vote vectors grow
    /// the commit messages O(n), the aggregate form keeps them O(1).
    pub fn commit_bytes_per_request(&self, kinds: &[&str]) -> f64 {
        if self.completed() == 0 {
            return 0.0;
        }
        let total: u64 = kinds.iter().map(|k| self.bytes_of_kind(k)).sum();
        total as f64 / self.completed() as f64
    }

    /// `(p50, p99)` of the stage interval `name` in microseconds, from
    /// the run's lifecycle spans (`None` when telemetry was off or the
    /// interval was never observed).
    pub fn stage_latency_us(&self, name: &str) -> Option<(u64, u64)> {
        let h = self.stage_intervals.get(name)?;
        if h.count() == 0 {
            return None;
        }
        Some((h.quantile(0.50), h.quantile(0.99)))
    }

    /// Fraction of requests that used the fast path.
    pub fn fast_fraction(&self) -> f64 {
        let total = self.fast + self.slow;
        if total == 0 {
            return 0.0;
        }
        self.fast as f64 / total as f64
    }

    /// Steady-state throughput (ops per virtual second), excluding the
    /// first quarter of the run as warm-up.
    pub fn throughput(&self) -> f64 {
        if self.completions.len() < 4 {
            return 0.0;
        }
        let start = self.completions[self.completions.len() / 4];
        let end = *self.completions.last().expect("non-empty");
        let window = end.saturating_sub(start).as_secs_f64();
        if window <= 0.0 {
            return 0.0;
        }
        (self.completions.len() - self.completions.len() / 4 - 1) as f64 / window
    }
}

/// Builds and runs one simulated deployment.
#[derive(Debug)]
pub struct ClusterBuilder {
    kind: ProtocolKind,
    topology: Topology,
    primary: ReplicaId,
    clients_per_region: Vec<usize>,
    requests_per_client: usize,
    contention_pct: u32,
    cost: Option<CostParams>,
    seed: u64,
    crypto: CryptoKind,
    time_limit: Option<Micros>,
    batch_size: usize,
    batch_delay: Micros,
    checkpoint_interval: u64,
    commit_aggregation: bool,
    compact_certs: bool,
    exec_workers: usize,
    exec_cost_us: u64,
    commuting_pct: u32,
    telemetry: bool,
}

impl ClusterBuilder {
    /// Starts a builder for `kind` with Experiment-1 defaults: exp1
    /// topology, primary at Virginia, one client in Virginia, 10 requests,
    /// zero contention, no cost model, null crypto (propagation-dominated
    /// latency studies; correctness is covered by the MAC/HashSig tests).
    pub fn new(kind: ProtocolKind) -> Self {
        ClusterBuilder {
            kind,
            topology: Topology::exp1(),
            primary: ReplicaId::new(0),
            clients_per_region: vec![1, 0, 0, 0],
            requests_per_client: 10,
            contention_pct: 0,
            cost: None,
            seed: 0xE2BF,
            crypto: CryptoKind::Null,
            time_limit: None,
            batch_size: 1,
            batch_delay: Micros::ZERO,
            checkpoint_interval: 0,
            commit_aggregation: false,
            compact_certs: false,
            exec_workers: 1,
            exec_cost_us: 0,
            commuting_pct: 0,
            telemetry: false,
        }
    }

    /// Sets the topology (one replica per region; the region count must
    /// equal the cluster size).
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Places the view-0 primary/leader (ignored by ezBFT).
    pub fn primary(mut self, primary: ReplicaId) -> Self {
        self.primary = primary;
        self
    }

    /// Sets how many clients run in each region.
    pub fn clients_per_region(mut self, counts: &[usize]) -> Self {
        self.clients_per_region = counts.to_vec();
        self
    }

    /// Sets the closed-loop request count per client.
    pub fn requests_per_client(mut self, n: usize) -> Self {
        self.requests_per_client = n;
        self
    }

    /// Sets the contention percentage θ (paper §V).
    pub fn contention_pct(mut self, pct: u32) -> Self {
        self.contention_pct = pct;
        self
    }

    /// Installs the server-side cost model (Figures 6 and 7).
    pub fn cost_model(mut self, cost: CostParams) -> Self {
        self.cost = Some(cost);
        self
    }

    /// Sets the determinism seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the authentication provider.
    pub fn crypto(mut self, crypto: CryptoKind) -> Self {
        self.crypto = crypto;
        self
    }

    /// Caps the run at a virtual-time budget instead of waiting for every
    /// request (throughput runs).
    pub fn time_limit(mut self, limit: Micros) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// Sets the ezBFT SPECORDER batch size (ignored by the baselines);
    /// 1 reproduces the paper's unbatched protocol.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0.
    pub fn batch_size(mut self, n: usize) -> Self {
        assert!(n >= 1, "batch_size must be at least 1");
        self.batch_size = n;
        self
    }

    /// Sets how long an ezBFT command-leader holds an under-full batch
    /// open before flushing it (ignored when the batch size is 1).
    pub fn batch_delay(mut self, delay: Micros) -> Self {
        self.batch_delay = delay;
        self
    }

    /// Enables ezBFT checkpointing every `interval` executed commands
    /// (ignored by the baselines; 0 = disabled, the paper's
    /// unbounded-log behaviour).
    pub fn checkpoint_interval(mut self, interval: u64) -> Self {
        self.checkpoint_interval = interval;
        self
    }

    /// Enables ezBFT instance-level commit aggregation: the command-leader
    /// collects SPECACKs and broadcasts one certificate per batch instead
    /// of each client broadcasting its own COMMITFAST (ignored by the
    /// baselines; DESIGN.md §7).
    pub fn commit_aggregation(mut self, enabled: bool) -> Self {
        self.commit_aggregation = enabled;
        self
    }

    /// Enables ezBFT compact O(1) certificates (DESIGN.md §10): quorum
    /// certificates travel as one aggregate signature plus a signer bitmap
    /// instead of the explicit vote vector. Only takes effect with an
    /// aggregation-capable provider ([`CryptoKind::Agg`]); other providers
    /// silently keep explicit votes.
    pub fn compact_certs(mut self, enabled: bool) -> Self {
        self.compact_certs = enabled;
        self
    }

    /// Sets the ezBFT execution-engine knobs (ignored by the baselines;
    /// DESIGN.md §8): `workers` threads drain the committed dependency
    /// graph, and each finally-executed command charges `cost_us` of
    /// modelled service time to its replica. With `workers` = 1 and
    /// `cost_us` = 0 (the defaults) this is the paper's free, sequential
    /// execution.
    pub fn exec_engine(mut self, workers: usize, cost_us: u64) -> Self {
        assert!(workers >= 1, "exec workers must be at least 1");
        self.exec_workers = workers;
        self.exec_cost_us = cost_us;
        self
    }

    /// Sets the fraction (percent) of requests that are commuting
    /// shared-counter bumps ([`ezbft_kv::KvOp::Bump`]); the mostly-commuting
    /// execution-engine profile uses 90 (DESIGN.md §8).
    pub fn commuting_pct(mut self, pct: u32) -> Self {
        assert!(pct <= 100, "commuting percentage is 0..=100");
        self.commuting_pct = pct;
        self
    }

    /// Attaches a shared in-memory telemetry sink to the simulator and
    /// every node (DESIGN.md §9): the report then carries per-stage
    /// latency histograms ([`RunReport::stage_intervals`]), and if the
    /// `EZBFT_OBS_LOG` environment variable names a file the run's
    /// JSON-lines event log is appended to it. Telemetry is
    /// observation-only — results are bit-identical with it on or off.
    pub fn telemetry(mut self, enabled: bool) -> Self {
        self.telemetry = enabled;
        self
    }

    /// Runs the deployment to completion and collects the report.
    ///
    /// # Panics
    ///
    /// Panics if the topology's region count does not match the `3f + 1`
    /// cluster size (the harness pins one replica per region).
    pub fn run(self) -> RunReport {
        match self.kind {
            ProtocolKind::EzBft => self.run_family::<EzBftFamily>(),
            ProtocolKind::Pbft => self.run_family::<PbftFamily>(),
            ProtocolKind::Zyzzyva => self.run_family::<ZyzzyvaFamily>(),
            ProtocolKind::Fab => self.run_family::<FabFamily>(),
        }
    }

    fn run_family<F: ProtocolFamily>(self) -> RunReport {
        let cluster = ClusterConfig::try_for_replicas(self.topology.len())
            .expect("topology region count must be 3f + 1");
        let setup = Setup {
            cluster,
            primary: self.primary,
            batch_size: self.batch_size,
            batch_delay: self.batch_delay,
            checkpoint_interval: self.checkpoint_interval,
            commit_aggregation: self.commit_aggregation,
            compact_certs: self.compact_certs,
            exec_workers: self.exec_workers,
            exec_cost_us: self.exec_cost_us,
        };

        // Enumerate nodes: replicas then clients (region-major).
        let mut node_ids: Vec<NodeId> = cluster.replicas().map(NodeId::Replica).collect();
        let mut client_regions: HashMap<NodeId, usize> = HashMap::new();
        let mut next_client = 0u64;
        let mut client_specs: Vec<(ClientId, usize)> = Vec::new();
        for (region, &count) in self.clients_per_region.iter().enumerate() {
            for _ in 0..count {
                let id = ClientId::new(next_client);
                next_client += 1;
                node_ids.push(NodeId::Client(id));
                client_regions.insert(NodeId::Client(id), region);
                client_specs.push((id, region));
            }
        }
        let mut stores = KeyStore::cluster(self.crypto, b"harness", &node_ids);
        let client_stores = stores.split_off(cluster.n());

        let sim_cfg = SimConfig {
            seed: self.seed,
            max_virtual_time: self.time_limit.unwrap_or(Micros::from_secs(3_600)),
            ..Default::default()
        };
        let mut sim: SimNet<F::Msg, KvResponse> = SimNet::new(self.topology.clone(), sim_cfg);
        sim.count_kinds(F::msg_kind);
        if let Some(params) = self.cost {
            sim.set_cost_fn(F::cost_fn(params));
        }
        let recorder: Option<Arc<MemRecorder>> = if self.telemetry {
            let rec = Arc::new(MemRecorder::new());
            sim.set_recorder(rec.clone() as Arc<dyn Recorder>);
            // Byte counters (`net.bytes_*`) use the TCP transport's actual
            // wire encoding, so simulated and live-cluster traffic volumes
            // are directly comparable.
            sim.estimate_sizes(|m: &F::Msg| {
                ezbft_wire::to_bytes(m).map(|b| b.len() as u64).unwrap_or(0)
            });
            Some(rec)
        } else {
            None
        };

        for (i, rid) in cluster.replicas().enumerate() {
            let replica = match &recorder {
                Some(rec) => {
                    let rec: Arc<dyn Recorder> = rec.clone();
                    F::replica_observed(setup, rid, stores.remove(0), &rec)
                }
                None => F::replica(setup, rid, stores.remove(0)),
            };
            sim.add_node(Region(i), replica);
        }
        let wl_cfg = WorkloadConfig {
            commuting: f64::from(self.commuting_pct) / 100.0,
            ..WorkloadConfig::with_contention_pct(self.contention_pct)
        };
        for (((id, region), keys), idx) in client_specs.iter().zip(client_stores).zip(0u64..) {
            let nearest = ReplicaId::new(*region as u8);
            let inner = match &recorder {
                Some(rec) => {
                    let rec: Arc<dyn Recorder> = rec.clone();
                    F::client_observed(setup, *id, keys, nearest, &rec)
                }
                None => F::client(setup, *id, keys, nearest),
            };
            let workload = Workload::new(wl_cfg, idx, self.seed);
            sim.add_node(
                Region(*region),
                Box::new(DrivenClient {
                    inner,
                    workload,
                    remaining: self.requests_per_client,
                }),
            );
        }

        let total: usize = self
            .clients_per_region
            .iter()
            .sum::<usize>()
            .saturating_mul(self.requests_per_client);
        match self.time_limit {
            Some(limit) => sim.run_until_time(limit),
            None => sim.run_until_deliveries(total),
        }

        // Latency per region: closed-loop clients resubmit at the instant
        // of delivery, so per-request latency is the gap between a client's
        // consecutive completions (the first counts from time zero).
        let mut per_region: Vec<Histogram> = vec![Histogram::new(); self.topology.len()];
        let mut last_completion: HashMap<NodeId, Micros> = HashMap::new();
        let mut completions = Vec::with_capacity(sim.deliveries().len());
        let mut fast = 0u64;
        let mut slow = 0u64;
        for d in sim.deliveries() {
            let region = client_regions[&d.client];
            let prev = last_completion
                .insert(d.client, d.at)
                .unwrap_or(Micros::ZERO);
            per_region[region].record(d.at.saturating_sub(prev));
            completions.push(d.at);
            if d.delivery.fast_path {
                fast += 1;
            } else {
                slow += 1;
            }
        }

        let (stage_intervals, counters, kind_counters) = match &recorder {
            Some(rec) => {
                export_event_log(rec);
                (
                    rec.stage_interval_histograms(),
                    rec.counters_snapshot(),
                    rec.kind_counters_snapshot(),
                )
            }
            None => (BTreeMap::new(), BTreeMap::new(), BTreeMap::new()),
        };

        RunReport {
            protocol: F::NAME,
            per_region,
            region_names: self
                .topology
                .regions()
                .map(|r| self.topology.name(r))
                .collect(),
            fast,
            slow,
            duration: sim.now(),
            sent_by_kind: sim.kind_counts(),
            stage_intervals,
            counters,
            kind_counters,
            completions,
        }
    }
}

/// Appends the run's JSON-lines event log to the file named by the
/// `EZBFT_OBS_LOG` environment variable, if set (DESIGN.md §9). Failures
/// are reported on stderr rather than aborting the run.
fn export_event_log(rec: &MemRecorder) {
    let Ok(path) = std::env::var("EZBFT_OBS_LOG") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    use std::io::Write as _;
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(rec.render_jsonl().as_bytes()));
    if let Err(e) = result {
        eprintln!("could not append event log to {path}: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quickstart_runs_every_protocol() {
        for kind in [
            ProtocolKind::EzBft,
            ProtocolKind::Zyzzyva,
            ProtocolKind::Pbft,
            ProtocolKind::Fab,
        ] {
            let report = ClusterBuilder::new(kind).requests_per_client(3).run();
            assert_eq!(report.completed(), 3, "{} did not complete", kind.name());
            assert!(report.mean_latency_ms(0) > 0.0);
        }
    }

    #[test]
    fn ezbft_fast_fraction_is_one_without_contention() {
        let report = ClusterBuilder::new(ProtocolKind::EzBft)
            .clients_per_region(&[1, 1, 1, 1])
            .requests_per_client(5)
            .run();
        assert_eq!(report.completed(), 20);
        assert!((report.fast_fraction() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn contention_reduces_fast_fraction() {
        let report = ClusterBuilder::new(ProtocolKind::EzBft)
            .clients_per_region(&[1, 1, 1, 1])
            .requests_per_client(8)
            .contention_pct(100)
            .run();
        assert_eq!(report.completed(), 32);
        assert!(
            report.fast_fraction() < 0.5,
            "θ=100% must mostly take the slow path"
        );
    }

    #[test]
    fn batching_increases_follower_bound_throughput() {
        // A follower/commit-bound cost profile (cheap admission, pricey
        // ordering-message processing): batching amortises the SPECORDER
        // per-message cost across the batch, so simulated throughput at
        // batch=8 must clearly beat batch=1 on the identical workload.
        let run = |batch: usize| {
            ClusterBuilder::new(ProtocolKind::EzBft)
                // LAN topology: propagation is negligible, so the servers'
                // service times are the bottleneck the cost model charges.
                .topology(Topology::lan(4))
                .clients_per_region(&[6, 6, 6, 6])
                .requests_per_client(100_000)
                .cost_model(CostParams {
                    order_msg_us: 100,
                    order_req_us: 200,
                    follow_msg_us: 250,
                    follow_req_us: 50,
                    commit_us: 60,
                    ack_us: 40,
                    other_us: 80,
                })
                .batch_size(batch)
                .batch_delay(Micros::from_millis(1))
                .time_limit(Micros::from_secs(3))
                .seed(11)
                .run()
        };
        let unbatched = run(1);
        let batched = run(8);
        assert!(batched.completed() > 0 && unbatched.completed() > 0);
        assert!(
            batched.throughput() > unbatched.throughput() * 1.2,
            "batch=8 at {:.0} ops/s must beat batch=1 at {:.0} ops/s",
            batched.throughput(),
            unbatched.throughput()
        );
    }

    use crate::experiments::commit_traffic::COMMIT_KINDS;

    #[test]
    fn commit_aggregation_beats_client_driven_commitment_at_batch_8() {
        // Same follower-bound workload as the batching test, batch=8, with
        // commitment either client-driven (each client broadcasts its own
        // COMMITFAST) or replica-driven (one SPECACK round + one COMMITAGG
        // per batch). Aggregation must (a) at least halve commit-phase
        // messages per committed request and (b) raise throughput — the
        // ISSUE 3 acceptance criteria.
        let run = |aggregated: bool| {
            ClusterBuilder::new(ProtocolKind::EzBft)
                .topology(Topology::lan(4))
                .clients_per_region(&[6, 6, 6, 6])
                .requests_per_client(100_000)
                .cost_model(CostParams {
                    order_msg_us: 100,
                    order_req_us: 200,
                    follow_msg_us: 250,
                    follow_req_us: 50,
                    commit_us: 60,
                    ack_us: 40,
                    other_us: 80,
                })
                .batch_size(8)
                .batch_delay(Micros::from_millis(1))
                .commit_aggregation(aggregated)
                .time_limit(Micros::from_secs(3))
                .seed(11)
                .run()
        };
        let client_driven = run(false);
        let aggregated = run(true);
        assert!(client_driven.completed() > 0 && aggregated.completed() > 0);
        let per_req_client = client_driven.commit_msgs_per_request(COMMIT_KINDS);
        let per_req_agg = aggregated.commit_msgs_per_request(COMMIT_KINDS);
        assert!(
            per_req_agg * 2.0 <= per_req_client,
            "aggregation must at least halve commit traffic: {per_req_agg:.2} vs {per_req_client:.2} msgs/request"
        );
        assert!(
            aggregated.throughput() > client_driven.throughput() * 1.1,
            "aggregated commitment at {:.0} ops/s must beat client-driven at {:.0} ops/s",
            aggregated.throughput(),
            client_driven.throughput()
        );
    }

    #[test]
    fn time_limited_run_reports_throughput() {
        let report = ClusterBuilder::new(ProtocolKind::Zyzzyva)
            .clients_per_region(&[4, 0, 0, 0])
            .requests_per_client(10_000)
            .cost_model(CostParams::default())
            .time_limit(Micros::from_secs(20))
            .run();
        assert!(report.completed() > 10);
        assert!(report.throughput() > 0.0);
    }
}
