//! # ezbft-harness — the experiment harness
//!
//! Reproduces every table and figure of the ezBFT paper's evaluation (§V)
//! over the calibrated WAN simulator:
//!
//! | Module | Paper result |
//! |---|---|
//! | [`mod@experiments::table1`] | Table I — Zyzzyva latency vs primary placement |
//! | [`mod@experiments::fig4`]   | Fig. 4 — Experiment 1 latencies (4 protocols, 4 contention levels) |
//! | [`experiments::fig5`]   | Fig. 5a/5b — Experiment 2 latencies and primary-placement sweep |
//! | [`mod@experiments::fig6`]   | Fig. 6 — latency vs connected clients (1–100 per region) |
//! | [`mod@experiments::fig7`]   | Fig. 7 — peak server-side throughput |
//! | [`mod@experiments::table2`] | Table II — protocol property comparison |
//! | [`mod@experiments::recovery`] | Beyond the paper: crash-restart catch-up via checkpointed state transfer |
//! | [`mod@experiments::commit_traffic`] | Beyond the paper: client-driven vs aggregated commit-phase traffic (DESIGN.md §7) |
//!
//! The building blocks ([`cluster::ClusterBuilder`], [`family`], [`cost`])
//! are public so downstream users can script their own deployments.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod cluster;
pub mod cost;
pub mod experiments;
pub mod family;
pub mod live;
pub mod report;
pub mod scrape;

pub use cluster::{ClusterBuilder, ProtocolKind, RunReport};
pub use cost::CostParams;
pub use live::LiveCluster;
pub use scrape::{scrape_metrics, scrape_status, MetricsSnapshot};
