//! `ezbft-top` — a live cluster viewer over the introspection plane
//! (DESIGN.md §9b).
//!
//! Scrapes every replica's `/metrics` and `/status` once per tick and
//! renders a `top`-style table: per-replica throughput (executed-command
//! delta), end-to-end p50/p99, the owner map, checkpoint lag and the
//! commit-path mix.
//!
//! Usage:
//!
//! ```text
//! ezbft-top [--ticks N] [--period-ms MS] [ADDR...]
//! ```
//!
//! With explicit `ADDR`s (e.g. `127.0.0.1:9100`) it scrapes an existing
//! cluster's introspection sockets; with none it spawns a self-contained
//! demo cluster on loopback, drives it with a closed-loop client, and
//! scrapes that.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use ezbft_harness::report::TextTable;
use ezbft_harness::scrape::{scrape_metrics, scrape_status};
use ezbft_harness::LiveCluster;
use ezbft_obs::HealthReport;

fn main() {
    let mut ticks = 10usize;
    let mut period = Duration::from_millis(1_000);
    let mut addrs: Vec<SocketAddr> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--ticks" => {
                ticks = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--ticks needs a number"));
            }
            "--period-ms" => {
                let ms: u64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--period-ms needs a number"));
                period = Duration::from_millis(ms.max(50));
            }
            other => match other.parse() {
                Ok(addr) => addrs.push(addr),
                Err(_) => usage(&format!("unrecognised argument {other:?}")),
            },
        }
    }

    // No addresses: spawn a loopback demo cluster and a load thread.
    let mut demo = None;
    if addrs.is_empty() {
        let stop = Arc::new(AtomicBool::new(false));
        let (addr_tx, addr_rx) = mpsc::channel();
        let worker = std::thread::spawn({
            let stop = stop.clone();
            move || {
                let mut cluster = LiveCluster::start(1, 16);
                addr_tx.send(cluster.intro_addrs()).expect("report addrs");
                // Pace the load to a few hundred ops/s. An unpaced
                // closed loop saturates the replicas until a request
                // stalls past the client's retry timer, and the resulting
                // spurious owner changes freeze instance spaces for good —
                // interesting to watch, but not what a demo should show.
                while !stop.load(Ordering::Relaxed) {
                    cluster.submit_and_wait(Duration::from_secs(5));
                    std::thread::sleep(Duration::from_millis(2));
                }
                cluster.shutdown();
            }
        });
        addrs = addr_rx.recv().expect("demo cluster starts");
        println!("no addresses given: scraping a self-hosted demo cluster");
        demo = Some((stop, worker));
    }

    let mut last_executed: Vec<Option<u64>> = vec![None; addrs.len()];
    for tick in 0..ticks {
        std::thread::sleep(period);
        let mut t = TextTable::new(&[
            "replica",
            "ops/s",
            "executed",
            "p50 µs",
            "p99 µs",
            "owners",
            "ckpt lag",
            "reorder",
            "paths f/s/a",
        ]);
        for (i, &addr) in addrs.iter().enumerate() {
            match render_row(addr, &mut last_executed[i], period) {
                Ok(cells) => {
                    t.row(cells);
                }
                Err(e) => {
                    t.row(vec![
                        format!("{addr}"),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        format!("unreachable: {e}"),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                    ]);
                }
            }
        }
        println!("tick {}/{}\n{}", tick + 1, ticks, t.render());
    }

    if let Some((stop, worker)) = demo {
        stop.store(true, Ordering::Relaxed);
        let _ = worker.join();
    }
}

/// Scrapes one replica and formats its table row; tracks the previous
/// executed count in `last` to derive a per-tick rate.
fn render_row(
    addr: SocketAddr,
    last: &mut Option<u64>,
    period: Duration,
) -> std::io::Result<Vec<String>> {
    let status = scrape_status(addr)?;
    let metrics = scrape_metrics(addr)?;
    let ops = match last.replace(status.executed) {
        Some(prev) => {
            let delta = status.executed.saturating_sub(prev);
            format!("{:.0}", delta as f64 / period.as_secs_f64())
        }
        None => "-".to_string(),
    };
    // Prefer the end-to-end span (present when the scraped node also
    // observes the client stages, e.g. a simulator-shared recorder);
    // plain replicas fall back to their accept→commit interval — the
    // consensus latency as that replica saw it.
    let family = ["ezbft_stage_e2e", "ezbft_stage_specorder_accept__commit"]
        .into_iter()
        .find(|f| metrics.histogram_count(f) > 0);
    let (p50, p99) = match family {
        Some(f) => (
            metrics
                .histogram_quantile(f, 0.50)
                .map_or_else(|| "-".to_string(), |v| v.to_string()),
            metrics
                .histogram_quantile(f, 0.99)
                .map_or_else(|| "-".to_string(), |v| v.to_string()),
        ),
        // Nodes with no latency spans show a dash, not a fake zero.
        None => ("-".to_string(), "-".to_string()),
    };
    Ok(vec![
        format!("r{}{}", status.replica, owner_change_marker(&status)),
        ops,
        status.executed.to_string(),
        p50,
        p99,
        status
            .spaces
            .iter()
            .map(|s| s.owner_replica.to_string())
            .collect::<Vec<_>>()
            .join(","),
        status.checkpoint_lag.to_string(),
        status.reorder_buffered.to_string(),
        format!(
            "{}/{}/{}",
            status.fast_commits, status.slow_commits, status.agg_commits
        ),
    ])
}

/// `!` while an owner change is in flight on any space, `~` while the
/// replica is recovering.
fn owner_change_marker(status: &HealthReport) -> &'static str {
    if status.recovering {
        "~"
    } else if status
        .spaces
        .iter()
        .any(|s| s.frozen || s.committed_to_change)
    {
        "!"
    } else {
        ""
    }
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!("usage: ezbft-top [--ticks N] [--period-ms MS] [ADDR...]");
    std::process::exit(2);
}
