//! CLI for regenerating the paper's tables and figures.
//!
//! ```text
//! experiments [table1|fig4|fig5a|fig5b|fig6|fig7|table2|...|all] [--quick]
//! ```
//!
//! `--quick` reduces per-configuration request counts for a fast smoke run;
//! the default counts match those recorded in EXPERIMENTS.md.
//!
//! The `commit_traffic`, `exec_scaling`, `stage_latency`,
//! `scrape_overhead` and `adversarial` targets additionally write their
//! machine-readable summaries to `BENCH_commit_traffic.json`,
//! `BENCH_exec.json`, `BENCH_stage_latency.json`, `BENCH_scrape.json`
//! and `BENCH_adversarial.json` in the working directory — the per-PR
//! benchmark artefacts checked in at the repo root.

use ezbft_harness::experiments;
use ezbft_smr::Micros;

/// Writes a `BENCH_*.json` artefact, reporting rather than aborting on
/// failure (a read-only checkout still runs the experiment).
fn write_bench(path: &str, json: &str) {
    match std::fs::write(path, format!("{json}\n")) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn run_one(target: &str, quick: bool) -> bool {
    let reqs = if quick { 5 } else { 30 };
    match target {
        "table1" => println!("{}", experiments::table1(reqs).render()),
        "fig4" => println!("{}", experiments::fig4(reqs).render()),
        "fig5a" => println!("{}", experiments::fig5a(reqs).render()),
        "fig5b" => println!("{}", experiments::fig5b(reqs).render()),
        "fig6" => {
            let counts: &[usize] = if quick {
                &[1, 20, 60]
            } else {
                &[1, 5, 10, 20, 50, 100]
            };
            println!(
                "{}",
                experiments::fig6(counts, if quick { 4 } else { 10 }).render()
            );
        }
        "fig7" => {
            let budget = Micros::from_secs(if quick { 20 } else { 60 });
            println!(
                "{}",
                experiments::fig7(if quick { 120 } else { 240 }, budget).render()
            );
        }
        "table2" => println!("{}", experiments::table2().render()),
        "ablation" => println!(
            "{}",
            experiments::ablation(if quick { 6 } else { 20 }).render()
        ),
        "recovery" => println!(
            "{}",
            if quick {
                experiments::recovery(40, 10).render()
            } else {
                experiments::recovery(120, 30).render()
            }
        ),
        "commit_traffic" => {
            let budget = Micros::from_secs(if quick { 1 } else { 3 });
            let report = experiments::commit_traffic(budget);
            println!("{}", report.render());
            // Machine-readable line for BENCH_*.json-style consumers.
            println!("{}", report.to_json());
            write_bench("BENCH_commit_traffic.json", &report.to_json());
        }
        "exec_scaling" => {
            let budget = Micros::from_secs(if quick { 1 } else { 3 });
            let report = experiments::exec_scaling(budget);
            println!("{}", report.render());
            println!("{}", report.to_json());
            write_bench("BENCH_exec.json", &report.to_json());
        }
        "stage_latency" => {
            let budget = Micros::from_secs(if quick { 1 } else { 3 });
            let report = experiments::stage_latency(budget);
            println!("{}", report.render());
            println!("{}", report.to_json());
            write_bench("BENCH_stage_latency.json", &report.to_json());
        }
        "scrape_overhead" => {
            let report = experiments::scrape_overhead(quick);
            println!("{}", report.render());
            println!("{}", report.to_json());
            write_bench("BENCH_scrape.json", &report.to_json());
            if let Some(row) = report.row(1) {
                if !quick && row.overhead_pct >= 5.0 {
                    eprintln!(
                        "1 Hz scraping cost {:.2}% throughput (acceptance bar is < 5%)",
                        row.overhead_pct
                    );
                    return false;
                }
            }
        }
        "adversarial" => {
            // Full campaign: every attack mix × 20 seeds with the fixes
            // on, plus published-mode demonstrations of the holes (quick:
            // 3 seeds, 1 demonstration seed).
            let seeds = experiments::campaign_seeds(if quick { 3 } else { 20 });
            let report = experiments::adversarial(&seeds, if quick { 1 } else { 3 });
            println!("{}", report.render());
            println!("{}", report.to_json());
            write_bench("BENCH_adversarial.json", &report.to_json());
            if !report.all_as_expected() {
                eprintln!("adversarial campaign deviated from expectations");
                return false;
            }
        }
        "all" => {
            for t in [
                "table1",
                "fig4",
                "fig5a",
                "fig5b",
                "fig6",
                "fig7",
                "table2",
                "ablation",
                "recovery",
                "commit_traffic",
                "exec_scaling",
                "stage_latency",
                "scrape_overhead",
                "adversarial",
            ] {
                run_one(t, quick);
            }
        }
        other => {
            eprintln!("unknown experiment: {other}");
            eprintln!(
                "usage: experiments [table1|fig4|fig5a|fig5b|fig6|fig7|table2|ablation|recovery|commit_traffic|exec_scaling|stage_latency|scrape_overhead|adversarial|all] [--quick]"
            );
            return false;
        }
    }
    true
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let targets: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let targets = if targets.is_empty() {
        vec!["all"]
    } else {
        targets
    };
    for target in targets {
        if !run_one(target, quick) {
            std::process::exit(2);
        }
    }
}
