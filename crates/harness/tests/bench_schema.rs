//! Schema sanity for the checked-in `BENCH_*.json` artefacts.
//!
//! Every benchmark artefact at the repo root must parse as JSON and
//! carry the shared envelope: an object with a string `"experiment"`
//! field and a non-empty `"rows"` array of objects. The parser is
//! hand-rolled (the workspace is dependency-free) and strict enough for
//! the harness's own hand-encoded output.

use std::collections::BTreeMap;

/// A parsed JSON value (no number fidelity beyond f64 — plenty for a
/// schema check).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn parse(text: &'a str) -> Result<Json, String> {
        let mut p = Parser::new(text);
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at {}", p.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b" \t\r\n".contains(b))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at {}", b as char, self.pos))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                other => return Err(format!("bad object at {}: {other:?}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("bad array at {}: {other:?}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let start = self.pos;
                    while self.peek().is_some_and(|b| b != b'"' && b != b'\\') {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self.peek().is_some_and(|b| b"+-.eE0123456789".contains(&b)) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number at {start}: {e}"))
    }
}

/// The repo root (two levels above the harness crate).
fn repo_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root resolves")
}

#[test]
fn every_checked_in_bench_artefact_has_the_required_schema() {
    let mut checked = 0usize;
    for entry in std::fs::read_dir(repo_root()).expect("repo root lists") {
        let path = entry.expect("dir entry").path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if !(name.starts_with("BENCH_") && name.ends_with(".json")) {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("artefact reads");
        let value =
            Parser::parse(text.trim()).unwrap_or_else(|e| panic!("{name} is not valid JSON: {e}"));
        let obj = value
            .as_obj()
            .unwrap_or_else(|| panic!("{name}: not an object"));
        let experiment = obj
            .get("experiment")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("{name}: missing string \"experiment\""));
        assert!(!experiment.is_empty(), "{name}: empty experiment name");
        let rows = obj
            .get("rows")
            .and_then(Json::as_arr)
            .unwrap_or_else(|| panic!("{name}: missing array \"rows\""));
        assert!(!rows.is_empty(), "{name}: empty rows");
        for (i, row) in rows.iter().enumerate() {
            assert!(row.as_obj().is_some(), "{name}: rows[{i}] is not an object");
        }
        checked += 1;
    }
    assert!(
        checked >= 5,
        "expected the checked-in BENCH artefacts at the repo root, found {checked}"
    );
}

#[test]
fn scrape_artefact_proves_the_overhead_bar() {
    let path = repo_root().join("BENCH_scrape.json");
    let text = std::fs::read_to_string(&path).expect("BENCH_scrape.json is checked in");
    let value = Parser::parse(text.trim()).expect("valid JSON");
    let obj = value.as_obj().expect("object envelope");
    assert_eq!(obj["experiment"].as_str(), Some("scrape_overhead"));

    let rows = obj["rows"].as_arr().expect("rows array");
    assert!(rows.len() >= 3, "baseline + at least two scrape rates");
    let mut rates = Vec::new();
    for row in rows {
        let row = row.as_obj().expect("row object");
        for key in [
            "scrape_hz",
            "completed",
            "wall_ms",
            "ops_per_sec",
            "p50_us",
            "scrapes",
            "overhead_pct",
        ] {
            assert!(
                matches!(row.get(key), Some(Json::Num(_))),
                "scrape row missing numeric {key}"
            );
        }
        let hz = match row["scrape_hz"] {
            Json::Num(n) => n as u32,
            _ => unreachable!(),
        };
        rates.push(hz);
        assert!(
            matches!(row["completed"], Json::Num(n) if n > 0.0),
            "{hz} Hz row made no progress"
        );
        if hz == 0 {
            assert_eq!(row["scrapes"], Json::Num(0.0), "baseline never scrapes");
        } else {
            assert!(
                matches!(row["scrapes"], Json::Num(n) if n > 0.0),
                "{hz} Hz row landed no scrapes"
            );
        }
        if hz == 1 {
            // The ISSUE acceptance bar: 1 Hz scraping costs < 5%.
            assert!(
                matches!(row["overhead_pct"], Json::Num(n) if n < 5.0),
                "1 Hz scrape overhead must stay under 5%, got {:?}",
                row["overhead_pct"]
            );
        }
    }
    assert!(rates.contains(&0) && rates.contains(&1), "baseline + 1 Hz");
}

#[test]
fn stage_latency_artefact_carries_the_counters_snapshot() {
    let path = repo_root().join("BENCH_stage_latency.json");
    let text = std::fs::read_to_string(&path).expect("BENCH_stage_latency.json is checked in");
    let value = Parser::parse(text.trim()).expect("valid JSON");
    let obj = value.as_obj().expect("object envelope");
    assert_eq!(obj["experiment"].as_str(), Some("stage_latency"));
    for row in obj["rows"].as_arr().expect("rows array") {
        let row = row.as_obj().expect("row object");
        let counters = row["counters"].as_obj().expect("counters snapshot");
        for name in ["sim.sent", "net.frames_out", "net.bytes_out"] {
            assert!(
                matches!(counters.get(name), Some(Json::Num(n)) if *n > 0.0),
                "stage_latency row missing counter {name}"
            );
        }
    }
}

#[test]
fn adversarial_artefact_carries_the_campaign_schema() {
    let path = repo_root().join("BENCH_adversarial.json");
    let text = std::fs::read_to_string(&path).expect("BENCH_adversarial.json is checked in");
    let value = Parser::parse(text.trim()).expect("valid JSON");
    let obj = value.as_obj().expect("object envelope");
    assert_eq!(obj["experiment"].as_str(), Some("adversarial"));

    let seeds = obj["seeds"].as_arr().expect("seeds array");
    assert!(
        seeds.len() >= 20,
        "full campaign must cover >= 20 seeds, found {}",
        seeds.len()
    );
    assert!(seeds.iter().all(|s| matches!(s, Json::Num(_))));

    let rows = obj["rows"].as_arr().expect("rows array");
    // Seven attack mixes hardened (explicit votes), the same seven again
    // under compact certificates, plus the two published-mode
    // demonstrations.
    assert_eq!(rows.len(), 16, "7 hardened + 7 compact + 2 published demos");
    let mut published_breaks = 0usize;
    let mut compact_rows = 0usize;
    for row in rows {
        let row = row.as_obj().expect("row object");
        let mix = row["mix"].as_str().expect("mix name");
        let mode = row["mode"].as_str().expect("mode");
        assert!(
            matches!(mode, "hardened" | "hardened+compact" | "published"),
            "{mix}: {mode}"
        );
        let compact = row["compact"] == Json::Bool(true);
        assert_eq!(
            compact,
            mode == "hardened+compact",
            "{mix}: compact flag must track the mode"
        );
        if compact {
            compact_rows += 1;
        }
        for key in [
            "runs",
            "safety_violations",
            "liveness_failures",
            "completed",
            "expected",
            "slow_deliveries",
            "owner_changes",
        ] {
            assert!(
                matches!(row.get(key), Some(Json::Num(n)) if *n >= 0.0),
                "{mix}/{mode}: missing numeric {key}"
            );
        }
        let violated = row["violated"].as_arr().expect("violated array");
        assert!(violated.iter().all(|v| v.as_str().is_some()));
        let expect_break = row["expect_break"] == Json::Bool(true);
        assert_eq!(
            row["as_expected"],
            Json::Bool(true),
            "{mix}/{mode}: campaign row deviated from its expectation"
        );
        if mode.starts_with("hardened") {
            // The fixes must hold — with explicit votes and with compact
            // certificates alike: no safety violations, no wedged runs.
            assert!(!expect_break, "{mix}: hardened rows never expect a break");
            assert_eq!(row["safety_violations"], Json::Num(0.0), "{mix}: safety");
            assert_eq!(row["liveness_failures"], Json::Num(0.0), "{mix}: liveness");
            assert!(violated.is_empty(), "{mix}: hardened violated {violated:?}");
        } else {
            // The demonstrations must keep reproducing the published holes.
            assert!(expect_break, "{mix}: published demos must expect a break");
            published_breaks += 1;
        }
    }
    assert_eq!(published_breaks, 2, "withhold_evidence + mute_new_owner");
    assert_eq!(
        compact_rows, 7,
        "every mix reruns under compact certificates"
    );
}

#[test]
fn commit_traffic_artefact_proves_the_compact_cert_reduction() {
    let path = repo_root().join("BENCH_commit_traffic.json");
    let text = std::fs::read_to_string(&path).expect("BENCH_commit_traffic.json is checked in");
    let value = Parser::parse(text.trim()).expect("valid JSON");
    let obj = value.as_obj().expect("object envelope");
    assert_eq!(obj["experiment"].as_str(), Some("commit_traffic"));

    let rows = obj["rows"].as_arr().expect("rows array");
    // batch in {1, 8} x {client-driven, aggregated} x {votes, compact}.
    assert_eq!(rows.len(), 8, "2 batches x 2 commit modes x 2 cert forms");
    let mut batch8_agg = BTreeMap::new();
    for row in rows {
        let row = row.as_obj().expect("row object");
        for key in [
            "batch",
            "completed",
            "commit_msgs",
            "msgs_per_request",
            "commit_bytes",
            "bytes_per_request",
            "ops_per_sec",
        ] {
            assert!(
                matches!(row.get(key), Some(Json::Num(n)) if *n >= 0.0),
                "commit_traffic row missing numeric {key}"
            );
        }
        for key in ["aggregated", "compact"] {
            assert!(
                matches!(row.get(key), Some(Json::Bool(_))),
                "commit_traffic row missing bool {key}"
            );
        }
        assert!(
            matches!(row["completed"], Json::Num(n) if n > 0.0),
            "commit_traffic row made no progress"
        );
        if row["batch"] == Json::Num(8.0) && row["aggregated"] == Json::Bool(true) {
            let bytes = match row["bytes_per_request"] {
                Json::Num(n) => n,
                _ => unreachable!(),
            };
            batch8_agg.insert(row["compact"] == Json::Bool(true), bytes);
        }
    }
    // The ISSUE acceptance bar: at n=4, batch=8 under aggregation the
    // compact certificate spends fewer certificate bytes per request
    // than the explicit vote vector.
    let votes = batch8_agg[&false];
    let compact = batch8_agg[&true];
    assert!(
        compact < votes,
        "compact certs must cut commit bytes/request at batch=8: {compact:.1} vs {votes:.1}"
    );
}

#[test]
fn parser_round_trips_the_harness_envelope() {
    let text =
        r#"{"experiment":"x","nested":{"a":[1,2.5,-3e2]},"rows":[{"ok":true,"s":"q\"uote"}]}"#;
    let v = Parser::parse(text).expect("parses");
    let obj = v.as_obj().expect("object");
    assert_eq!(obj["experiment"].as_str(), Some("x"));
    assert_eq!(obj["rows"].as_arr().map(<[Json]>::len), Some(1));
    let row = obj["rows"].as_arr().unwrap()[0].as_obj().expect("row obj");
    assert_eq!(row["ok"], Json::Bool(true));
    assert_eq!(row["s"].as_str(), Some("q\"uote"));
    assert!(Parser::parse("{\"unterminated\":").is_err());
    assert!(Parser::parse("[1,2,]").is_err());
}
