//! The sans-io protocol interface.
//!
//! Every protocol participant (replica or client, for every protocol in the
//! workspace) is a [`ProtocolNode`]: a deterministic state machine that
//! reacts to `on_start` / `on_message` / `on_timer` by pushing [`Action`]s
//! into an [`Actions`] sink. Drivers — the discrete-event simulator
//! (`ezbft-simnet`) and the TCP runtime (`ezbft-transport`) — own the clock,
//! the timers and the wires, and feed the state machines.
//!
//! This split is what makes the reproduction trustworthy: the *same* protocol
//! code runs under the calibrated WAN simulator for the paper's experiments
//! and over real sockets in the transport integration tests.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::id::NodeId;
use crate::time::{Micros, Timestamp};

/// A protocol-chosen timer identifier.
///
/// Timer ids are opaque to the driver; a node may encode whatever it wants
/// in the 64 bits (most nodes keep a side table from id to payload).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TimerId(pub u64);

impl fmt::Debug for TimerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "timer#{}", self.0)
    }
}

/// A completed client request, reported by client nodes to the driver.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClientDelivery<R> {
    /// The timestamp of the request that completed.
    pub ts: Timestamp,
    /// The application response.
    pub response: R,
    /// Whether the request completed on the protocol's fast path.
    pub fast_path: bool,
}

/// One effect requested by a protocol node.
#[derive(Clone, Debug)]
pub enum Action<M, R> {
    /// Send `msg` to `to`. Sends to self are delivered like any other
    /// message (drivers may short-circuit them).
    Send {
        /// Destination node.
        to: NodeId,
        /// The message.
        msg: M,
    },
    /// Send one message to every node in `peers`.
    ///
    /// The payload is reference-counted so fan-out costs no per-peer deep
    /// clone at the protocol layer, and drivers can pay the expensive part
    /// of delivery **once** per broadcast instead of once per peer: the
    /// TCP runtime serializes the frame a single time and hands the same
    /// bytes to every peer's writer, and the simulator queues cheap `Arc`
    /// clones (see DESIGN.md §3). Per-link behaviour — latency, jitter,
    /// drops, per-receiver processing cost — is still applied per peer.
    Broadcast {
        /// Destination nodes (duplicates are delivered per occurrence).
        peers: Vec<NodeId>,
        /// The shared message.
        msg: Arc<M>,
    },
    /// Arm (or re-arm) timer `id` to fire `after` from now.
    SetTimer {
        /// Protocol-chosen timer identity.
        id: TimerId,
        /// Delay from the current instant.
        after: Micros,
    },
    /// Cancel timer `id` if armed; no-op otherwise.
    CancelTimer {
        /// The timer to cancel.
        id: TimerId,
    },
    /// Report a completed client request (client nodes only).
    Deliver(ClientDelivery<R>),
    /// Charge `duration` of local compute to this node.
    ///
    /// Emitted by nodes whose handlers perform modelled work beyond
    /// per-message processing — today the execution engine, which reports
    /// the makespan of applying a committed wave (DESIGN.md §8). The
    /// simulator extends the node's busy window so subsequent deliveries
    /// queue behind the work; the TCP runtime ignores it (real execution
    /// takes real time there).
    Work {
        /// The span of local compute to charge.
        duration: Micros,
    },
}

/// The action sink handed to a node on every upcall.
///
/// Carries the current instant (`now`) so nodes never read wall clocks.
#[derive(Debug)]
pub struct Actions<M, R> {
    now: Micros,
    buf: Vec<Action<M, R>>,
}

impl<M, R> Actions<M, R> {
    /// Creates a sink for an upcall happening at `now`.
    pub fn new(now: Micros) -> Self {
        Actions {
            now,
            buf: Vec::new(),
        }
    }

    /// The current instant.
    pub fn now(&self) -> Micros {
        self.now
    }

    /// Queues a unicast send.
    pub fn send(&mut self, to: impl Into<NodeId>, msg: M) {
        self.buf.push(Action::Send { to: to.into(), msg });
    }

    /// Queues one broadcast of `msg` to every node in `peers`, consuming
    /// the message (serialize-once fan-out; see [`Action::Broadcast`]).
    ///
    /// An empty peer set queues nothing.
    pub fn broadcast<I>(&mut self, peers: I, msg: M)
    where
        I: IntoIterator,
        I::Item: Into<NodeId>,
    {
        let peers: Vec<NodeId> = peers.into_iter().map(Into::into).collect();
        if peers.is_empty() {
            return;
        }
        self.buf.push(Action::Broadcast {
            peers,
            msg: Arc::new(msg),
        });
    }

    /// Queues one broadcast of a clone of `msg` to every node in `peers`.
    ///
    /// Exactly one clone is taken regardless of the peer count; prefer
    /// [`Actions::broadcast`] when the caller can give up ownership.
    pub fn send_all<I>(&mut self, peers: I, msg: &M)
    where
        M: Clone,
        I: IntoIterator,
        I::Item: Into<NodeId>,
    {
        self.broadcast(peers, msg.clone());
    }

    /// Arms timer `id` to fire `after` from now.
    pub fn set_timer(&mut self, id: TimerId, after: Micros) {
        self.buf.push(Action::SetTimer { id, after });
    }

    /// Cancels timer `id`.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.buf.push(Action::CancelTimer { id });
    }

    /// Charges `duration` of modelled local compute to this node.
    /// Zero-duration work is dropped (it could have no observable effect).
    pub fn work(&mut self, duration: Micros) {
        if duration > Micros::ZERO {
            self.buf.push(Action::Work { duration });
        }
    }

    /// Reports a completed client request.
    pub fn deliver(&mut self, ts: Timestamp, response: R, fast_path: bool) {
        self.buf.push(Action::Deliver(ClientDelivery {
            ts,
            response,
            fast_path,
        }));
    }

    /// Drains the queued actions.
    pub fn take(&mut self) -> Vec<Action<M, R>> {
        std::mem::take(&mut self.buf)
    }

    /// Number of queued actions.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no actions are queued.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Immutable view of the queued actions (used by byzantine wrappers and
    /// tests to inspect or rewrite a node's output).
    pub fn as_slice(&self) -> &[Action<M, R>] {
        &self.buf
    }

    /// Mutable view of the queued actions (byzantine wrappers rewrite
    /// outgoing messages here).
    pub fn as_mut_vec(&mut self) -> &mut Vec<Action<M, R>> {
        &mut self.buf
    }
}

/// A client-side protocol participant that can be driven by a workload:
/// one outstanding request at a time, submitted via [`ClientNode::submit`],
/// completed via [`Action::Deliver`].
pub trait ClientNode: ProtocolNode {
    /// The application command type this client submits.
    type Command;

    /// Submits one command for replication. Must only be called when no
    /// request is in flight.
    fn submit(&mut self, cmd: Self::Command, out: &mut Actions<Self::Message, Self::Response>);

    /// Whether a request is currently in flight.
    fn in_flight(&self) -> bool;
}

/// A sans-io protocol participant.
pub trait ProtocolNode: Send {
    /// Message type exchanged on the wire.
    type Message;
    /// Client response type (for [`Action::Deliver`]).
    type Response;

    /// This node's identity.
    fn id(&self) -> NodeId;

    /// Called once before any message is delivered.
    fn on_start(&mut self, _out: &mut Actions<Self::Message, Self::Response>) {}

    /// Called for every delivered message.
    fn on_message(
        &mut self,
        from: NodeId,
        msg: Self::Message,
        out: &mut Actions<Self::Message, Self::Response>,
    );

    /// Called when an armed timer fires (timers that were cancelled or
    /// re-armed do not fire for the superseded deadline).
    fn on_timer(&mut self, _id: TimerId, _out: &mut Actions<Self::Message, Self::Response>) {}

    /// Runtime introspection hook: nodes that allow post-run state
    /// inspection (safety checkers, tests) return `Some(self)`.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::ReplicaId;

    #[test]
    fn actions_collects_in_order() {
        let mut out: Actions<&'static str, ()> = Actions::new(Micros(5));
        assert_eq!(out.now(), Micros(5));
        assert!(out.is_empty());
        out.send(ReplicaId::new(1), "a");
        out.set_timer(TimerId(7), Micros(100));
        out.cancel_timer(TimerId(7));
        out.deliver(Timestamp(3), (), true);
        assert_eq!(out.len(), 4);
        let acts = out.take();
        assert!(out.is_empty());
        match &acts[0] {
            Action::Send { to, msg } => {
                assert_eq!(*to, NodeId::Replica(ReplicaId::new(1)));
                assert_eq!(*msg, "a");
            }
            other => panic!("unexpected {other:?}"),
        }
        match &acts[1] {
            Action::SetTimer { id, after } => {
                assert_eq!(*id, TimerId(7));
                assert_eq!(*after, Micros(100));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(acts[2], Action::CancelTimer { id: TimerId(7) }));
        match &acts[3] {
            Action::Deliver(d) => {
                assert_eq!(d.ts, Timestamp(3));
                assert!(d.fast_path);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn send_all_emits_one_shared_broadcast() {
        let mut out: Actions<u32, ()> = Actions::new(Micros::ZERO);
        let peers = [ReplicaId::new(0), ReplicaId::new(2)];
        out.send_all(peers, &9);
        let acts = out.take();
        assert_eq!(acts.len(), 1, "fan-out is one action, not one per peer");
        match &acts[0] {
            Action::Broadcast { peers: to, msg } => {
                assert_eq!(
                    to,
                    &vec![NodeId::Replica(peers[0]), NodeId::Replica(peers[1])]
                );
                assert_eq!(**msg, 9);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn broadcast_consumes_message_and_skips_empty_peer_sets() {
        let mut out: Actions<String, ()> = Actions::new(Micros::ZERO);
        out.broadcast([] as [ReplicaId; 0], "dropped".to_string());
        assert!(out.is_empty(), "empty peer set queues nothing");
        out.broadcast([ReplicaId::new(1)], "kept".to_string());
        let acts = out.take();
        match &acts[0] {
            Action::Broadcast { peers, msg } => {
                assert_eq!(peers.len(), 1);
                assert_eq!(msg.as_str(), "kept");
                assert_eq!(std::sync::Arc::strong_count(msg), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
