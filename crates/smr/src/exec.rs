//! The execution engine: sequential and conflict-keyed parallel draining of
//! committed execution units (DESIGN.md §8).
//!
//! Protocols hand the engine a *wave* of [`ExecUnit`]s — strongly connected
//! components of the committed dependency graph, already in a valid
//! dependencies-first order with a deterministic intra-unit command order.
//! The engine's contract is that the returned responses (and the resulting
//! state) are identical to applying the units sequentially in the given
//! order; [`SeqExecutor`] does exactly that, and [`ParallelExecutor`]
//! reaches the same result faster by running units whose [`ConflictKey`]
//! sets do not conflict on different workers simultaneously. Completion
//! feeds back into a ready-set, so the wave drains as a pipeline rather
//! than in lockstep rounds.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

use ezbft_obs::{NullRecorder, Recorder};

use crate::app::Application;
use crate::command::{interferes_by_keys, AccessMode, Command, ConflictKey};
use crate::time::Micros;

/// One command scheduled for final execution, tagged with a caller-chosen
/// identity (the ezBFT replica uses its `ExecRef` encoding).
#[derive(Clone, Debug)]
pub struct ExecItem<C> {
    /// Caller-chosen identity of the command.
    pub tag: u128,
    /// The command to apply.
    pub cmd: C,
}

/// A schedulable unit: one SCC of the committed dependency graph, its
/// commands already in deterministic intra-unit order.
#[derive(Clone, Debug)]
pub struct ExecUnit<C> {
    /// The unit's commands, in execution order.
    pub items: Vec<ExecItem<C>>,
    /// Union of the items' conflict keys (deduplicated).
    pub keys: Vec<ConflictKey>,
}

impl<C: Command> ExecUnit<C> {
    /// Builds a unit from ordered items, computing the key union.
    pub fn from_items(items: Vec<ExecItem<C>>) -> Self {
        let mut keys: Vec<ConflictKey> =
            items.iter().flat_map(|it| it.cmd.conflict_keys()).collect();
        keys.sort();
        keys.dedup();
        ExecUnit { items, keys }
    }

    /// Whether this unit must be ordered with respect to `other`.
    pub fn interferes(&self, other: &Self) -> bool {
        interferes_by_keys(&self.keys, &other.keys)
    }
}

/// For each unit, the indices of *earlier* units it must wait for.
///
/// Built with per-key access chains rather than the quadratic all-pairs
/// scan: a writer depends on every access since (and including) the last
/// writer on the key; a read or commuting write depends on the last writer
/// plus the non-commuting accesses after it. Exact with respect to
/// [`AccessMode::conflicts_with`], near-linear in the wave size.
pub fn unit_dependencies<C>(units: &[ExecUnit<C>]) -> Vec<Vec<usize>> {
    use std::collections::HashMap;
    struct KeyChain {
        last_writer: Option<usize>,
        since_writer: Vec<(usize, AccessMode)>,
    }
    let mut chains: HashMap<u64, KeyChain> = HashMap::new();
    let mut deps: Vec<Vec<usize>> = Vec::with_capacity(units.len());
    for (j, unit) in units.iter().enumerate() {
        let mut mine: Vec<usize> = Vec::new();
        for ck in &unit.keys {
            let chain = chains.entry(ck.key).or_insert(KeyChain {
                last_writer: None,
                since_writer: Vec::new(),
            });
            match ck.mode {
                AccessMode::Write => {
                    if let Some(w) = chain.last_writer {
                        if w != j {
                            mine.push(w);
                        }
                    }
                    mine.extend(
                        chain
                            .since_writer
                            .iter()
                            .map(|&(i, _)| i)
                            .filter(|&i| i != j),
                    );
                    chain.last_writer = Some(j);
                    chain.since_writer.clear();
                }
                mode => {
                    if let Some(w) = chain.last_writer {
                        if w != j {
                            mine.push(w);
                        }
                    }
                    mine.extend(
                        chain
                            .since_writer
                            .iter()
                            .filter(|&&(i, m)| i != j && m.conflicts_with(mode))
                            .map(|&(i, _)| i),
                    );
                    chain.since_writer.push((j, mode));
                }
            }
        }
        mine.sort_unstable();
        mine.dedup();
        deps.push(mine);
    }
    deps
}

/// An execution engine.
///
/// `execute` applies a wave of units to `state` and returns one response
/// vector per unit, in the *given* unit order — deterministic regardless of
/// the physical schedule.
pub trait Executor<A: Application>: Send {
    /// Applies `units` to `state`; responses come back in unit order.
    fn execute(&self, state: &mut A, units: &[ExecUnit<A::Command>]) -> Vec<Vec<A::Response>>;

    /// The worker count this engine schedules for (1 = sequential).
    fn workers(&self) -> usize {
        1
    }
}

/// The reference engine: applies every unit in order on the caller's
/// thread. Preserved verbatim for equivalence testing against
/// [`ParallelExecutor`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SeqExecutor;

impl<A: Application> Executor<A> for SeqExecutor {
    fn execute(&self, state: &mut A, units: &[ExecUnit<A::Command>]) -> Vec<Vec<A::Response>> {
        units
            .iter()
            .map(|u| u.items.iter().map(|it| state.apply(&it.cmd)).collect())
            .collect()
    }
}

/// Scheduler state shared by the worker pool (everything mutable lives
/// behind one mutex; the actual `apply_shared` calls happen outside it).
struct Sched<R> {
    ready: VecDeque<usize>,
    remaining: Vec<usize>,
    results: Vec<Option<Vec<R>>>,
    outstanding: usize,
    busy: usize,
}

/// Real-time overhead of standing up and tearing down the scoped worker
/// pool (thread spawn + join + the scheduler handshake), in microseconds —
/// an order-of-magnitude figure for a small pool on a contemporary Linux
/// box. The profitability gate (DESIGN.md §8) compares a wave's *parallel
/// savings* — serial work minus the [`estimate_makespan`] list-schedule
/// over the pool — against this threshold and executes sequentially when
/// the pool would cost more wall-clock than it recovers.
pub const THREAD_SCOPE_OVERHEAD: Micros = Micros(150);

/// Default per-command wall-clock estimate feeding the profitability gate
/// when the caller supplies no hint ([`ParallelExecutor::with_cost_hint`]).
pub const DEFAULT_CMD_COST_HINT: Micros = Micros(50);

/// The conflict-keyed worker pool.
///
/// Units are dispatched to `workers` OS threads through a ready-set: a unit
/// becomes ready once every earlier unit it interferes with has completed,
/// so disjoint units overlap and the wave drains wave-free. Falls back to
/// [`SeqExecutor`] when the pool would not help (one worker, one unit), when
/// the application does not support concurrent apply
/// ([`Application::supports_concurrent_apply`]), or when the profitability
/// gate finds the wave too small to pay the pool's real-thread overhead
/// ([`THREAD_SCOPE_OVERHEAD`]).
#[derive(Clone)]
pub struct ParallelExecutor {
    workers: usize,
    cost_hint: Micros,
    recorder: Arc<dyn Recorder>,
}

impl std::fmt::Debug for ParallelExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelExecutor")
            .field("workers", &self.workers)
            .finish_non_exhaustive()
    }
}

impl ParallelExecutor {
    /// Creates an engine scheduling for `workers` threads (min 1).
    pub fn new(workers: usize) -> Self {
        ParallelExecutor {
            workers: workers.max(1),
            cost_hint: DEFAULT_CMD_COST_HINT,
            recorder: Arc::new(NullRecorder),
        }
    }

    /// Sets the per-command wall-clock estimate the profitability gate
    /// schedules with (DESIGN.md §8). Callers with a measured or modelled
    /// per-command cost should pass it; a zero hint is ignored (the gate
    /// keeps [`DEFAULT_CMD_COST_HINT`]) rather than silently disabling the
    /// pool forever.
    pub fn with_cost_hint(mut self, per_cmd: Micros) -> Self {
        if per_cmd > Micros::ZERO {
            self.cost_hint = per_cmd;
        }
        self
    }

    /// Attaches a telemetry sink; the engine records per-wave unit and
    /// command counts, ready-queue depth and worker occupancy
    /// (`exec.*` metrics, DESIGN.md §9). Observation-only: scheduling is
    /// unaffected.
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = recorder;
        self
    }
}

impl<A: Application> Executor<A> for ParallelExecutor {
    fn execute(&self, state: &mut A, units: &[ExecUnit<A::Command>]) -> Vec<Vec<A::Response>> {
        let rec = self.recorder.as_ref();
        let on = rec.enabled();
        if on && !units.is_empty() {
            rec.counter("exec.waves", 1);
            rec.observe("exec.wave_units", units.len() as u64);
            rec.observe(
                "exec.wave_cmds",
                units.iter().map(|u| u.items.len() as u64).sum(),
            );
        }
        if self.workers <= 1 || units.len() <= 1 || !state.supports_concurrent_apply() {
            return SeqExecutor.execute(state, units);
        }
        // Profitability gate (DESIGN.md §8): the pool only pays when the
        // list-schedule saves more wall-clock than the scoped threads cost
        // to stand up. This also catches fully conflicting waves, whose
        // makespan cannot shrink at all.
        let serial = estimate_makespan(units, 1, self.cost_hint);
        let parallel = estimate_makespan(units, self.workers, self.cost_hint);
        if serial.saturating_sub(parallel) < THREAD_SCOPE_OVERHEAD {
            if on {
                rec.counter("exec.seq_fallbacks", 1);
            }
            return SeqExecutor.execute(state, units);
        }
        let deps = unit_dependencies(units);
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); units.len()];
        let mut remaining: Vec<usize> = vec![0; units.len()];
        for (j, js_deps) in deps.iter().enumerate() {
            remaining[j] = js_deps.len();
            for &i in js_deps {
                dependents[i].push(j);
            }
        }
        let ready: VecDeque<usize> = (0..units.len()).filter(|&j| remaining[j] == 0).collect();
        let sched = Mutex::new(Sched {
            ready,
            remaining,
            results: (0..units.len()).map(|_| None).collect(),
            outstanding: units.len(),
            busy: 0,
        });
        let wake = Condvar::new();
        let shared: &A = state;
        let pool = self.workers.min(units.len());
        std::thread::scope(|s| {
            for _ in 0..pool {
                s.spawn(|| loop {
                    let idx = {
                        let mut guard = sched.lock().expect("executor scheduler lock");
                        loop {
                            if let Some(idx) = guard.ready.pop_front() {
                                guard.busy += 1;
                                if on {
                                    rec.observe("exec.queue_depth", guard.ready.len() as u64);
                                    rec.observe("exec.workers_busy", guard.busy as u64);
                                }
                                break idx;
                            }
                            if guard.outstanding == 0 {
                                return;
                            }
                            guard = wake.wait(guard).expect("executor scheduler wait");
                        }
                    };
                    let responses: Vec<A::Response> = units[idx]
                        .items
                        .iter()
                        .map(|it| shared.apply_shared(&it.cmd))
                        .collect();
                    let mut guard = sched.lock().expect("executor scheduler lock");
                    guard.results[idx] = Some(responses);
                    guard.outstanding -= 1;
                    guard.busy -= 1;
                    for &d in &dependents[idx] {
                        guard.remaining[d] -= 1;
                        if guard.remaining[d] == 0 {
                            guard.ready.push_back(d);
                        }
                    }
                    wake.notify_all();
                });
            }
        });
        sched
            .into_inner()
            .expect("executor scheduler lock")
            .results
            .into_iter()
            .map(|r| r.expect("every unit executed"))
            .collect()
    }

    fn workers(&self) -> usize {
        self.workers
    }
}

/// The makespan of a greedy list schedule of `units` over `workers`
/// workers, with each command costing `per_cmd`.
///
/// Used by drivers-facing code to *charge* execution time
/// ([`crate::Action::Work`]) in the simulator: with one worker this is the
/// serial sum; with more it shrinks exactly as far as the wave's conflict
/// structure allows, so simulated speedup depends on true workload
/// commutativity rather than on an assumed factor.
pub fn estimate_makespan<C>(units: &[ExecUnit<C>], workers: usize, per_cmd: Micros) -> Micros {
    if per_cmd == Micros::ZERO || units.is_empty() {
        return Micros::ZERO;
    }
    let workers = workers.max(1);
    if workers == 1 {
        let total: u64 = units.iter().map(|u| u.items.len() as u64).sum();
        return Micros(total * per_cmd.as_micros());
    }
    let deps = unit_dependencies(units);
    let mut finish: Vec<u64> = vec![0; units.len()];
    let mut free: Vec<u64> = vec![0; workers];
    for (j, unit) in units.iter().enumerate() {
        let ready = deps[j].iter().map(|&i| finish[i]).max().unwrap_or(0);
        let (w, _) = free
            .iter()
            .enumerate()
            .min_by_key(|&(_, &f)| f)
            .expect("at least one worker");
        let start = ready.max(free[w]);
        finish[j] = start + unit.items.len() as u64 * per_cmd.as_micros();
        free[w] = finish[j];
    }
    Micros(finish.into_iter().max().unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::ConflictKey;
    use serde::{Deserialize, Serialize};
    use std::sync::Mutex as StdMutex;

    /// A tiny concurrent-capable app: a set of counters behind one mutex
    /// (coarse, but enough to validate scheduling and equivalence).
    #[derive(Debug, Default)]
    struct Counters {
        slots: StdMutex<std::collections::HashMap<u64, u64>>,
    }

    impl Clone for Counters {
        fn clone(&self) -> Self {
            Counters {
                slots: StdMutex::new(self.slots.lock().unwrap().clone()),
            }
        }
    }

    #[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
    enum Op {
        Add(u64, u64),
        Read(u64),
    }

    impl Command for Op {
        fn conflict_keys(&self) -> Vec<ConflictKey> {
            match self {
                Op::Add(k, _) => vec![ConflictKey::commuting_write(*k)],
                Op::Read(k) => vec![ConflictKey::read(*k)],
            }
        }
    }

    impl Application for Counters {
        type Command = Op;
        type Response = u64;
        fn apply(&mut self, cmd: &Op) -> u64 {
            self.apply_shared(cmd)
        }
        fn supports_concurrent_apply(&self) -> bool {
            true
        }
        fn apply_shared(&self, cmd: &Op) -> u64 {
            let mut slots = self.slots.lock().unwrap();
            match cmd {
                Op::Add(k, by) => {
                    let v = slots.entry(*k).or_insert(0);
                    *v += by;
                    0
                }
                Op::Read(k) => slots.get(k).copied().unwrap_or(0),
            }
        }
    }

    fn unit(ops: Vec<Op>) -> ExecUnit<Op> {
        ExecUnit::from_items(
            ops.into_iter()
                .enumerate()
                .map(|(i, cmd)| ExecItem {
                    tag: i as u128,
                    cmd,
                })
                .collect(),
        )
    }

    #[test]
    fn parallel_matches_sequential_on_mixed_wave() {
        let units: Vec<ExecUnit<Op>> = (0..40)
            .map(|i| {
                if i % 5 == 0 {
                    unit(vec![Op::Add(1, i), Op::Read(1)])
                } else {
                    unit(vec![Op::Add(100 + i, 1)])
                }
            })
            .collect();
        let mut seq_state = Counters::default();
        let seq =
            <SeqExecutor as Executor<Counters>>::execute(&SeqExecutor, &mut seq_state, &units);
        for workers in [2usize, 4, 8] {
            let mut par_state = Counters::default();
            let engine = ParallelExecutor::new(workers);
            let par = engine.execute(&mut par_state, &units);
            assert_eq!(seq, par, "responses diverge at {workers} workers");
            assert_eq!(
                *seq_state.slots.lock().unwrap(),
                *par_state.slots.lock().unwrap(),
                "state diverges at {workers} workers"
            );
        }
    }

    #[test]
    fn recorder_sees_wave_telemetry_without_changing_results() {
        let units: Vec<ExecUnit<Op>> = (0..16).map(|i| unit(vec![Op::Add(i, 1)])).collect();
        let mut plain_state = Counters::default();
        let plain = ParallelExecutor::new(4).execute(&mut plain_state, &units);

        let rec = Arc::new(ezbft_obs::MemRecorder::new());
        let mut state = Counters::default();
        let engine = ParallelExecutor::new(4).with_recorder(rec.clone());
        let observed = engine.execute(&mut state, &units);

        assert_eq!(plain, observed);
        assert_eq!(rec.counter_value("exec.waves"), 1);
        let wave = rec.histogram("exec.wave_units").unwrap();
        assert_eq!(wave.count(), 1);
        assert_eq!(wave.max(), 16);
        let busy = rec.histogram("exec.workers_busy").unwrap();
        assert_eq!(busy.count(), 16); // one sample per dispatched unit
        assert!(busy.max() <= 4);
        assert!(rec.histogram("exec.queue_depth").is_some());
    }

    #[test]
    fn dependencies_respect_commuting_writes() {
        // CW, CW, Read on the same key: the read depends on both adds, the
        // adds do not depend on each other.
        let units = vec![
            unit(vec![Op::Add(7, 1)]),
            unit(vec![Op::Add(7, 2)]),
            unit(vec![Op::Read(7)]),
        ];
        let deps = unit_dependencies(&units);
        assert_eq!(deps[0], Vec::<usize>::new());
        assert_eq!(deps[1], Vec::<usize>::new());
        assert_eq!(deps[2], vec![0, 1]);
    }

    #[test]
    fn dependencies_chain_through_writers() {
        #[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
        struct W(u64);
        impl Command for W {
            fn conflict_keys(&self) -> Vec<ConflictKey> {
                vec![ConflictKey::write(self.0)]
            }
        }
        let mk = |k| ExecUnit::<W>::from_items(vec![ExecItem { tag: 0, cmd: W(k) }]);
        // w(1), w(2), w(1): third depends only on first (same key).
        let units = vec![mk(1), mk(2), mk(1)];
        let deps = unit_dependencies(&units);
        assert_eq!(deps[2], vec![0]);
        assert!(deps[1].is_empty());
    }

    #[test]
    fn makespan_serial_and_parallel_bounds() {
        // Four disjoint single-command units at 100us each.
        let units: Vec<ExecUnit<Op>> = (0..4).map(|i| unit(vec![Op::Add(i, 1)])).collect();
        assert_eq!(estimate_makespan(&units, 1, Micros(100)), Micros(400));
        assert_eq!(estimate_makespan(&units, 4, Micros(100)), Micros(100));
        // A fully interfering chain cannot go faster than serial.
        let chain: Vec<ExecUnit<Op>> = (0..4)
            .map(|_| unit(vec![Op::Read(9), Op::Add(9, 1)]))
            .collect();
        assert_eq!(estimate_makespan(&chain, 4, Micros(100)), Micros(800));
        assert_eq!(estimate_makespan(&chain, 1, Micros(0)), Micros::ZERO);
    }

    #[test]
    fn unprofitable_waves_skip_the_pool() {
        // Two disjoint single-command units at the default 50us hint:
        // serial work 100us, pool makespan 50us — the 50us savings are
        // below THREAD_SCOPE_OVERHEAD, so the gate must run sequentially
        // (visible via the exec.seq_fallbacks counter and zero
        // worker-occupancy samples). A fully conflicting chain is gated
        // too, however long: its makespan cannot shrink.
        let rec = Arc::new(ezbft_obs::MemRecorder::new());
        let units = vec![unit(vec![Op::Add(1, 1)]), unit(vec![Op::Add(2, 1)])];
        let mut state = Counters::default();
        let engine = ParallelExecutor::new(4).with_recorder(rec.clone());
        let out = engine.execute(&mut state, &units);
        assert_eq!(out, vec![vec![0], vec![0]]);
        assert_eq!(rec.counter_value("exec.seq_fallbacks"), 1);
        assert!(rec.histogram("exec.workers_busy").is_none());

        let chain: Vec<ExecUnit<Op>> = (0..64)
            .map(|_| unit(vec![Op::Read(9), Op::Add(9, 1)]))
            .collect();
        let mut chain_state = Counters::default();
        let chained = ParallelExecutor::new(4)
            .with_recorder(rec.clone())
            .execute(&mut chain_state, &chain);
        assert_eq!(chained.len(), 64);
        assert_eq!(
            rec.counter_value("exec.seq_fallbacks"),
            2,
            "a fully conflicting chain has zero parallel savings"
        );

        // A wide commuting wave clears the gate and uses the pool.
        let wide: Vec<ExecUnit<Op>> = (0..32).map(|i| unit(vec![Op::Add(i, 1)])).collect();
        let mut wide_state = Counters::default();
        ParallelExecutor::new(4)
            .with_recorder(rec.clone())
            .execute(&mut wide_state, &wide);
        assert_eq!(rec.counter_value("exec.seq_fallbacks"), 2);
        assert!(rec.histogram("exec.workers_busy").is_some());

        // An explicit hint reweighs the same wave: at 1us per command the
        // two-unit wave is hopeless, at 1ms even it pays.
        let cheap = ParallelExecutor::new(4).with_cost_hint(Micros(1));
        let mut s = Counters::default();
        cheap.execute(&mut s, &wide); // 32us of work: gated
        let pricey = ParallelExecutor::new(4).with_cost_hint(Micros(1_000));
        assert_eq!(pricey.cost_hint, Micros(1_000));
        assert_eq!(
            ParallelExecutor::new(4)
                .with_cost_hint(Micros::ZERO)
                .cost_hint,
            DEFAULT_CMD_COST_HINT,
            "a zero hint keeps the default instead of disabling the pool"
        );
    }

    #[test]
    fn non_concurrent_app_falls_back_to_sequential() {
        #[derive(Clone, Debug, Default)]
        struct Plain(u64);
        impl Application for Plain {
            type Command = Op;
            type Response = u64;
            fn apply(&mut self, cmd: &Op) -> u64 {
                if let Op::Add(_, by) = cmd {
                    self.0 += by;
                }
                self.0
            }
        }
        let units = vec![unit(vec![Op::Add(1, 2)]), unit(vec![Op::Add(2, 3)])];
        let mut state = Plain::default();
        let engine = ParallelExecutor::new(4);
        let out = engine.execute(&mut state, &units);
        assert_eq!(out, vec![vec![2], vec![5]]);
        assert_eq!(state.0, 5);
    }
}
