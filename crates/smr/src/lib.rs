//! Common state-machine-replication abstractions shared by the ezBFT
//! protocol, its baselines (PBFT, Zyzzyva, FaB), the WAN simulator and the
//! TCP transport.
//!
//! The crate is deliberately small and dependency-light: it defines *what a
//! protocol is* (a sans-io state machine consuming messages and timers and
//! emitting [`Action`]s), *what an application is* (a deterministic state
//! machine with command interference metadata), and the cluster/quorum
//! arithmetic every BFT protocol in this workspace shares.
//!
//! # Example
//!
//! ```
//! use ezbft_smr::{ClusterConfig, ReplicaId};
//!
//! let cfg = ClusterConfig::for_faults(1); // N = 3f + 1 = 4
//! assert_eq!(cfg.n(), 4);
//! assert_eq!(cfg.fast_quorum(), 4);
//! assert_eq!(cfg.slow_quorum(), 3);
//! assert_eq!(cfg.weak_quorum(), 2);
//! assert!(cfg.replicas().any(|r| r == ReplicaId::new(3)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod app;
mod command;
mod config;
mod exec;
mod id;
mod node;
mod quorum;
mod time;

pub use app::{Application, CloneReplay};
pub use command::{interferes_by_keys, AccessMode, Command, ConflictKey};
pub use config::{ClusterConfig, ConfigError};
pub use exec::{
    estimate_makespan, unit_dependencies, ExecItem, ExecUnit, Executor, ParallelExecutor,
    SeqExecutor, DEFAULT_CMD_COST_HINT, THREAD_SCOPE_OVERHEAD,
};
pub use id::{ClientId, NodeId, ReplicaId};
pub use node::{Action, Actions, ClientDelivery, ClientNode, ProtocolNode, TimerId};
pub use quorum::{MatchTally, QuorumSet, VoteTally};
pub use time::{Micros, Timestamp};
