//! Node identifiers.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a replica, an index in `0..N`.
///
/// The paper names replicas `R0 .. R(N-1)`; the identifier doubles as the
/// instance-space identifier and as the tie-breaker of last resort when
/// ordering interfering commands with equal sequence numbers.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct ReplicaId(u8);

impl ReplicaId {
    /// Creates a replica id from its index.
    pub const fn new(index: u8) -> Self {
        ReplicaId(index)
    }

    /// The index of this replica in `0..N`.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw `u8` value.
    pub const fn as_u8(self) -> u8 {
        self.0
    }
}

impl fmt::Debug for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

impl From<u8> for ReplicaId {
    fn from(index: u8) -> Self {
        ReplicaId(index)
    }
}

/// Identifier of a client process.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct ClientId(u64);

impl ClientId {
    /// Creates a client id from a raw value.
    pub const fn new(id: u64) -> Self {
        ClientId(id)
    }

    /// The raw `u64` value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

impl From<u64> for ClientId {
    fn from(id: u64) -> Self {
        ClientId(id)
    }
}

/// Identifier of any node in the system: a replica or a client.
///
/// Both kinds of nodes exchange messages directly in every protocol of this
/// workspace (clients are active protocol participants in ezBFT and Zyzzyva),
/// so the network layers address both uniformly.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum NodeId {
    /// A replica node.
    Replica(ReplicaId),
    /// A client node.
    Client(ClientId),
}

impl NodeId {
    /// Returns the replica id if this is a replica.
    pub fn as_replica(self) -> Option<ReplicaId> {
        match self {
            NodeId::Replica(r) => Some(r),
            NodeId::Client(_) => None,
        }
    }

    /// Returns the client id if this is a client.
    pub fn as_client(self) -> Option<ClientId> {
        match self {
            NodeId::Replica(_) => None,
            NodeId::Client(c) => Some(c),
        }
    }

    /// Whether this node is a replica.
    pub fn is_replica(self) -> bool {
        matches!(self, NodeId::Replica(_))
    }

    /// Whether this node is a client.
    pub fn is_client(self) -> bool {
        matches!(self, NodeId::Client(_))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::Replica(r) => write!(f, "{r}"),
            NodeId::Client(c) => write!(f, "{c}"),
        }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<ReplicaId> for NodeId {
    fn from(r: ReplicaId) -> Self {
        NodeId::Replica(r)
    }
}

impl From<ClientId> for NodeId {
    fn from(c: ClientId) -> Self {
        NodeId::Client(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replica_id_roundtrip() {
        let r = ReplicaId::new(3);
        assert_eq!(r.index(), 3);
        assert_eq!(r.as_u8(), 3);
        assert_eq!(format!("{r}"), "R3");
        assert_eq!(ReplicaId::from(3u8), r);
    }

    #[test]
    fn client_id_roundtrip() {
        let c = ClientId::new(42);
        assert_eq!(c.as_u64(), 42);
        assert_eq!(format!("{c}"), "C42");
        assert_eq!(ClientId::from(42u64), c);
    }

    #[test]
    fn node_id_projections() {
        let r: NodeId = ReplicaId::new(1).into();
        let c: NodeId = ClientId::new(7).into();
        assert!(r.is_replica() && !r.is_client());
        assert!(c.is_client() && !c.is_replica());
        assert_eq!(r.as_replica(), Some(ReplicaId::new(1)));
        assert_eq!(r.as_client(), None);
        assert_eq!(c.as_client(), Some(ClientId::new(7)));
        assert_eq!(c.as_replica(), None);
    }

    #[test]
    fn node_id_orders_replicas_before_clients() {
        let r: NodeId = ReplicaId::new(200).into();
        let c: NodeId = ClientId::new(0).into();
        assert!(r < c);
    }
}
