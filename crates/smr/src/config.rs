//! Cluster configuration and quorum arithmetic (paper §II).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::id::ReplicaId;

/// Error constructing a [`ClusterConfig`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// `n` does not satisfy `n = 3f + 1` for any `f >= 0`, or is too small.
    InvalidSize {
        /// The offending replica count.
        n: usize,
    },
    /// More replicas than [`ReplicaId`] can address.
    TooManyReplicas {
        /// The offending replica count.
        n: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::InvalidSize { n } => {
                write!(f, "cluster size {n} is not of the form 3f + 1 with f >= 1")
            }
            ConfigError::TooManyReplicas { n } => {
                write!(f, "cluster size {n} exceeds the addressable replica range")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Static cluster configuration: the replica count `N = 3f + 1` and the
/// derived quorum sizes.
///
/// ezBFT uses two quorums (§II): a *fast quorum* of `3f + 1` replicas and a
/// *slow quorum* of `2f + 1` replicas. The owner-change protocol (§IV-E)
/// additionally commits on `f + 1` matching reports (the TLA+ appendix calls
/// these *weak quorums*). PBFT/Zyzzyva/FaB reuse the same arithmetic.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct ClusterConfig {
    f: usize,
}

impl ClusterConfig {
    /// Configuration tolerating `f >= 1` byzantine faults with `N = 3f + 1`
    /// replicas.
    ///
    /// # Panics
    ///
    /// Panics if `f == 0` or the resulting `N` exceeds the replica id range;
    /// use [`ClusterConfig::try_for_faults`] for fallible construction.
    pub fn for_faults(f: usize) -> Self {
        Self::try_for_faults(f).expect("invalid fault tolerance")
    }

    /// Fallible variant of [`ClusterConfig::for_faults`].
    pub fn try_for_faults(f: usize) -> Result<Self, ConfigError> {
        let n = 3 * f + 1;
        if f == 0 {
            return Err(ConfigError::InvalidSize { n });
        }
        if n > u8::MAX as usize + 1 {
            return Err(ConfigError::TooManyReplicas { n });
        }
        Ok(ClusterConfig { f })
    }

    /// Configuration from a replica count `n`, which must equal `3f + 1`.
    pub fn try_for_replicas(n: usize) -> Result<Self, ConfigError> {
        if n < 4 || !(n - 1).is_multiple_of(3) {
            return Err(ConfigError::InvalidSize { n });
        }
        Self::try_for_faults((n - 1) / 3)
    }

    /// Maximum number of byzantine faults tolerated.
    pub fn f(&self) -> usize {
        self.f
    }

    /// Total replica count `N = 3f + 1`.
    pub fn n(&self) -> usize {
        3 * self.f + 1
    }

    /// Fast-quorum size: `3f + 1` (all replicas).
    pub fn fast_quorum(&self) -> usize {
        self.n()
    }

    /// Slow-quorum size: `2f + 1`.
    pub fn slow_quorum(&self) -> usize {
        2 * self.f + 1
    }

    /// Weak-quorum size: `f + 1` (at least one correct replica).
    pub fn weak_quorum(&self) -> usize {
        self.f + 1
    }

    /// Iterator over all replica ids `R0 .. R(N-1)`.
    pub fn replicas(&self) -> impl Iterator<Item = ReplicaId> + Clone {
        (0..self.n() as u8).map(ReplicaId::new)
    }

    /// Iterator over all replicas except `me`.
    pub fn peers(&self, me: ReplicaId) -> impl Iterator<Item = ReplicaId> + Clone {
        self.replicas().filter(move |r| *r != me)
    }

    /// The replica owning owner-number `o` of some instance space:
    /// `o mod N` (paper §III, "Instance Owners").
    pub fn owner_of(&self, owner_number: u64) -> ReplicaId {
        ReplicaId::new((owner_number % self.n() as u64) as u8)
    }

    /// Whether `id` addresses a replica in this cluster.
    pub fn contains(&self, id: ReplicaId) -> bool {
        id.index() < self.n()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_sizes_f1() {
        let c = ClusterConfig::for_faults(1);
        assert_eq!(c.f(), 1);
        assert_eq!(c.n(), 4);
        assert_eq!(c.fast_quorum(), 4);
        assert_eq!(c.slow_quorum(), 3);
        assert_eq!(c.weak_quorum(), 2);
    }

    #[test]
    fn quorum_sizes_f2() {
        let c = ClusterConfig::for_faults(2);
        assert_eq!(c.n(), 7);
        assert_eq!(c.fast_quorum(), 7);
        assert_eq!(c.slow_quorum(), 5);
        assert_eq!(c.weak_quorum(), 3);
    }

    #[test]
    fn from_replica_count() {
        assert_eq!(
            ClusterConfig::try_for_replicas(4),
            Ok(ClusterConfig::for_faults(1))
        );
        assert_eq!(
            ClusterConfig::try_for_replicas(7),
            Ok(ClusterConfig::for_faults(2))
        );
        assert_eq!(
            ClusterConfig::try_for_replicas(5),
            Err(ConfigError::InvalidSize { n: 5 })
        );
        assert_eq!(
            ClusterConfig::try_for_replicas(3),
            Err(ConfigError::InvalidSize { n: 3 })
        );
    }

    #[test]
    fn zero_faults_rejected() {
        assert!(ClusterConfig::try_for_faults(0).is_err());
    }

    #[test]
    fn replica_iterators() {
        let c = ClusterConfig::for_faults(1);
        let all: Vec<_> = c.replicas().collect();
        assert_eq!(all.len(), 4);
        let peers: Vec<_> = c.peers(ReplicaId::new(2)).collect();
        assert_eq!(peers.len(), 3);
        assert!(!peers.contains(&ReplicaId::new(2)));
    }

    #[test]
    fn owner_of_wraps_modulo_n() {
        let c = ClusterConfig::for_faults(1);
        assert_eq!(c.owner_of(0), ReplicaId::new(0));
        assert_eq!(c.owner_of(3), ReplicaId::new(3));
        assert_eq!(c.owner_of(4), ReplicaId::new(0));
        assert_eq!(c.owner_of(9), ReplicaId::new(1));
    }

    #[test]
    fn quorum_intersection_invariants() {
        // Any two slow quorums intersect in at least f+1 replicas, and a
        // slow quorum and the fast quorum intersect in at least 2f+1.
        for f in 1..=8 {
            let c = ClusterConfig::for_faults(f);
            let slow = c.slow_quorum();
            let fast = c.fast_quorum();
            let n = c.n();
            assert!(
                2 * slow - n > f,
                "slow-slow intersection too small for f={f}"
            );
            assert!(
                slow + fast - n > 2 * f,
                "slow-fast intersection too small for f={f}"
            );
        }
    }
}
