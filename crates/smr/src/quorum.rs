//! Vote-counting helpers used by clients and replicas.

use std::collections::{BTreeSet, HashMap};
use std::fmt::Debug;
use std::hash::Hash;

use crate::id::ReplicaId;

/// A fixed set of replicas (e.g. a designated slow quorum, §IV-C nitpick).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct QuorumSet {
    members: BTreeSet<ReplicaId>,
}

impl QuorumSet {
    /// Builds a quorum set from its members.
    pub fn new(members: impl IntoIterator<Item = ReplicaId>) -> Self {
        QuorumSet {
            members: members.into_iter().collect(),
        }
    }

    /// Whether `r` belongs to the set.
    pub fn contains(&self, r: ReplicaId) -> bool {
        self.members.contains(&r)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Iterates over the members in id order.
    pub fn iter(&self) -> impl Iterator<Item = ReplicaId> + '_ {
        self.members.iter().copied()
    }
}

impl FromIterator<ReplicaId> for QuorumSet {
    fn from_iter<I: IntoIterator<Item = ReplicaId>>(iter: I) -> Self {
        QuorumSet::new(iter)
    }
}

/// Counts votes from distinct replicas for a single proposition.
///
/// Re-votes from the same replica are ignored, so a byzantine replica cannot
/// inflate the count by repeating itself.
#[derive(Clone, Debug, Default)]
pub struct VoteTally {
    voters: BTreeSet<ReplicaId>,
}

impl VoteTally {
    /// Creates an empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a vote; returns `true` if `voter` had not voted before.
    pub fn vote(&mut self, voter: ReplicaId) -> bool {
        self.voters.insert(voter)
    }

    /// Number of distinct voters.
    pub fn count(&self) -> usize {
        self.voters.len()
    }

    /// Whether at least `threshold` distinct replicas voted.
    pub fn reached(&self, threshold: usize) -> bool {
        self.voters.len() >= threshold
    }

    /// Whether `voter` already voted.
    pub fn has_voted(&self, voter: ReplicaId) -> bool {
        self.voters.contains(&voter)
    }

    /// The voters, in id order.
    pub fn voters(&self) -> impl Iterator<Item = ReplicaId> + '_ {
        self.voters.iter().copied()
    }
}

/// Counts votes from distinct replicas, *grouped by the value voted for*.
///
/// This is the client-side matching machinery: ezBFT's client looks for
/// `3f + 1` SPECREPLY messages whose `(O, I, D, S, c, t, rep)` projection
/// matches (§IV-A step 4.1); PBFT's client looks for `f + 1` matching
/// replies; Zyzzyva for `3f + 1` matching spec-responses, and so on.
///
/// A replica that changes its vote moves between groups (its old vote is
/// withdrawn), so at most one vote per replica is counted at any time.
#[derive(Clone, Debug)]
pub struct MatchTally<K, V> {
    by_key: HashMap<K, HashMap<ReplicaId, V>>,
    voted: HashMap<ReplicaId, K>,
}

impl<K: Clone + Eq + Hash, V> Default for MatchTally<K, V> {
    fn default() -> Self {
        MatchTally {
            by_key: HashMap::new(),
            voted: HashMap::new(),
        }
    }
}

impl<K: Clone + Eq + Hash, V> MatchTally<K, V> {
    /// Creates an empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `voter`'s vote for the group identified by `key`, carrying
    /// payload `value` (typically the full message). Returns the size of
    /// the group after insertion.
    pub fn vote(&mut self, voter: ReplicaId, key: K, value: V) -> usize {
        if let Some(old) = self.voted.insert(voter, key.clone()) {
            if old != key {
                if let Some(group) = self.by_key.get_mut(&old) {
                    group.remove(&voter);
                    if group.is_empty() {
                        self.by_key.remove(&old);
                    }
                }
            }
        }
        let group = self.by_key.entry(key).or_default();
        group.insert(voter, value);
        group.len()
    }

    /// Size of the group for `key`.
    pub fn count(&self, key: &K) -> usize {
        self.by_key.get(key).map_or(0, |g| g.len())
    }

    /// Total number of distinct voters across all groups.
    pub fn total(&self) -> usize {
        self.voted.len()
    }

    /// The largest group, if any: `(key, size)`.
    pub fn plurality(&self) -> Option<(&K, usize)> {
        self.by_key
            .iter()
            .map(|(k, g)| (k, g.len()))
            .max_by_key(|(_, n)| *n)
    }

    /// Whether any group reached `threshold`; returns its key.
    pub fn any_reached(&self, threshold: usize) -> Option<&K> {
        self.by_key
            .iter()
            .find(|(_, g)| g.len() >= threshold)
            .map(|(k, _)| k)
    }

    /// The votes (voter, payload) in the group for `key`.
    pub fn group(&self, key: &K) -> impl Iterator<Item = (ReplicaId, &V)> + '_ {
        self.by_key
            .get(key)
            .into_iter()
            .flat_map(|g| g.iter().map(|(r, v)| (*r, v)))
    }

    /// Iterates over every recorded vote as `(voter, key, payload)`.
    pub fn iter(&self) -> impl Iterator<Item = (ReplicaId, &K, &V)> + '_ {
        self.by_key
            .iter()
            .flat_map(|(k, g)| g.iter().map(move |(r, v)| (*r, k, v)))
    }

    /// Number of distinct groups.
    pub fn group_count(&self) -> usize {
        self.by_key.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> ReplicaId {
        ReplicaId::new(i)
    }

    #[test]
    fn quorum_set_basics() {
        let q = QuorumSet::new([r(0), r(2), r(1), r(2)]);
        assert_eq!(q.len(), 3);
        assert!(q.contains(r(1)));
        assert!(!q.contains(r(3)));
        let ordered: Vec<_> = q.iter().collect();
        assert_eq!(ordered, vec![r(0), r(1), r(2)]);
        assert!(!q.is_empty());
        assert!(QuorumSet::default().is_empty());
    }

    #[test]
    fn vote_tally_dedups() {
        let mut t = VoteTally::new();
        assert!(t.vote(r(0)));
        assert!(!t.vote(r(0)));
        assert!(t.vote(r(1)));
        assert_eq!(t.count(), 2);
        assert!(t.reached(2));
        assert!(!t.reached(3));
        assert!(t.has_voted(r(1)));
        assert!(!t.has_voted(r(3)));
    }

    #[test]
    fn match_tally_groups_by_key() {
        let mut t: MatchTally<&str, u32> = MatchTally::new();
        assert_eq!(t.vote(r(0), "a", 10), 1);
        assert_eq!(t.vote(r(1), "a", 11), 2);
        assert_eq!(t.vote(r(2), "b", 12), 1);
        assert_eq!(t.count(&"a"), 2);
        assert_eq!(t.count(&"b"), 1);
        assert_eq!(t.total(), 3);
        assert_eq!(t.group_count(), 2);
        assert_eq!(t.plurality(), Some((&"a", 2)));
        assert_eq!(t.any_reached(2), Some(&"a"));
        assert_eq!(t.any_reached(3), None);
    }

    #[test]
    fn match_tally_revote_moves_groups() {
        let mut t: MatchTally<&str, u32> = MatchTally::new();
        t.vote(r(0), "a", 1);
        t.vote(r(0), "b", 2);
        assert_eq!(t.count(&"a"), 0);
        assert_eq!(t.count(&"b"), 1);
        assert_eq!(t.total(), 1);
        // Re-voting the same key replaces the payload without duplication.
        t.vote(r(0), "b", 3);
        assert_eq!(t.count(&"b"), 1);
        let vals: Vec<_> = t.group(&"b").map(|(_, v)| *v).collect();
        assert_eq!(vals, vec![3]);
    }

    #[test]
    fn match_tally_byzantine_cannot_inflate() {
        let mut t: MatchTally<&str, ()> = MatchTally::new();
        for _ in 0..100 {
            t.vote(r(3), "evil", ());
        }
        assert_eq!(t.count(&"evil"), 1);
        assert_eq!(t.total(), 1);
    }
}
