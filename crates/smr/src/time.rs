//! Time-related newtypes shared by protocols and the simulator.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point or span of virtual time, in microseconds.
///
/// Protocols only observe time through the driver (simulator or transport);
/// the unit is microseconds everywhere to keep WAN latencies (tens of
/// milliseconds) and processing costs (tens of microseconds) on one scale.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Micros(pub u64);

impl Micros {
    /// Zero duration / the epoch.
    pub const ZERO: Micros = Micros(0);

    /// Builds a value from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Micros(ms * 1_000)
    }

    /// Builds a value from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Micros(s * 1_000_000)
    }

    /// The raw number of microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This value expressed in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This value expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Micros) -> Micros {
        Micros(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Micros {
    type Output = Micros;
    fn add(self, rhs: Micros) -> Micros {
        Micros(self.0 + rhs.0)
    }
}

impl AddAssign for Micros {
    fn add_assign(&mut self, rhs: Micros) {
        self.0 += rhs.0;
    }
}

impl Sub for Micros {
    type Output = Micros;
    fn sub(self, rhs: Micros) -> Micros {
        Micros(self.0 - rhs.0)
    }
}

impl fmt::Debug for Micros {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

impl fmt::Display for Micros {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A client-chosen, monotonically increasing request timestamp.
///
/// The paper uses timestamps for exactly-once execution: a replica drops a
/// request whose timestamp is not greater than the highest it has seen from
/// that client (§IV-A step 2, nitpick).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The zero timestamp, smaller than any timestamp a client uses.
    pub const ZERO: Timestamp = Timestamp(0);

    /// The next timestamp after this one.
    pub fn next(self) -> Timestamp {
        Timestamp(self.0 + 1)
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micros_conversions() {
        assert_eq!(Micros::from_millis(3).as_micros(), 3_000);
        assert_eq!(Micros::from_secs(2).as_micros(), 2_000_000);
        assert!((Micros(1_500).as_millis_f64() - 1.5).abs() < 1e-9);
        assert!((Micros(2_500_000).as_secs_f64() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn micros_arithmetic() {
        let a = Micros(100);
        let b = Micros(40);
        assert_eq!(a + b, Micros(140));
        assert_eq!(a - b, Micros(60));
        assert_eq!(b.saturating_sub(a), Micros::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c, Micros(140));
    }

    #[test]
    fn micros_debug_scales_units() {
        assert_eq!(format!("{:?}", Micros(12)), "12us");
        assert_eq!(format!("{:?}", Micros(12_000)), "12.000ms");
        assert_eq!(format!("{:?}", Micros(12_000_000)), "12.000s");
    }

    #[test]
    fn timestamp_next_is_monotonic() {
        let t = Timestamp::ZERO;
        assert!(t.next() > t);
        assert_eq!(t.next(), Timestamp(1));
    }
}
