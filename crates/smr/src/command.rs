//! Commands and the interference relation (paper §III).
//!
//! ezBFT orders only *interfering* commands with respect to each other: two
//! commands `L0`, `L1` interfere if executing them in different orders after
//! some common prefix can produce different final states. Applications
//! declare interference structurally through [`ConflictKey`]s: each command
//! touches a set of abstract keys with an [`AccessMode`], and two commands
//! interfere iff they share a key on which at least one of them performs a
//! non-commuting write.

use std::fmt::Debug;
use std::hash::Hash;

use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};

/// How a command accesses one of its conflict keys.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum AccessMode {
    /// Read-only access: commutes with other reads and with commuting writes?
    /// No — reads observe state, so a read conflicts with any write
    /// (including commuting writes) but not with other reads.
    Read,
    /// A write whose effect depends on ordering relative to other accesses.
    Write,
    /// A write that commutes with other commuting writes on the same key
    /// (e.g. a blind increment that returns no value, §VI: "mutative
    /// operations (such as incrementing a variable) are commutative").
    /// It still conflicts with reads and plain writes.
    CommutingWrite,
}

impl AccessMode {
    /// Whether two accesses to the *same* key interfere.
    pub fn conflicts_with(self, other: AccessMode) -> bool {
        use AccessMode::*;
        !matches!(
            (self, other),
            (Read, Read) | (CommutingWrite, CommutingWrite)
        )
    }
}

/// An abstract conflict key: a 64-bit identity (typically a hash of the
/// application-level key) plus the access mode.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct ConflictKey {
    /// Identity of the state fragment being accessed.
    pub key: u64,
    /// How the fragment is accessed.
    pub mode: AccessMode,
}

impl ConflictKey {
    /// A read access to `key`.
    pub const fn read(key: u64) -> Self {
        ConflictKey {
            key,
            mode: AccessMode::Read,
        }
    }

    /// A write access to `key`.
    pub const fn write(key: u64) -> Self {
        ConflictKey {
            key,
            mode: AccessMode::Write,
        }
    }

    /// A commuting-write access to `key`.
    pub const fn commuting_write(key: u64) -> Self {
        ConflictKey {
            key,
            mode: AccessMode::CommutingWrite,
        }
    }
}

/// Computes interference between two conflict-key sets.
///
/// Two commands interfere iff they share a key with conflicting access modes.
/// This is the structural realisation of the paper's semantic definition
/// ("serial execution of Σ, L0, L1 is not equivalent to Σ, L1, L0").
pub fn interferes_by_keys(a: &[ConflictKey], b: &[ConflictKey]) -> bool {
    // Key sets are tiny (1-2 entries for a KV store), so the quadratic scan
    // beats building hash sets.
    a.iter().any(|ka| {
        b.iter()
            .any(|kb| ka.key == kb.key && ka.mode.conflicts_with(kb.mode))
    })
}

/// A replicated command.
///
/// Protocols are generic over the command type: they never inspect the
/// payload beyond the interference metadata, and they move commands around
/// by value (serialising them into messages as needed).
pub trait Command:
    Clone + Debug + Eq + Hash + Serialize + DeserializeOwned + Send + Sync + 'static
{
    /// The conflict keys this command touches.
    fn conflict_keys(&self) -> Vec<ConflictKey>;

    /// Whether this command interferes with `other`.
    ///
    /// The default derives interference from [`Command::conflict_keys`];
    /// override only if the application has a cheaper structural test.
    fn interferes(&self, other: &Self) -> bool {
        interferes_by_keys(&self.conflict_keys(), &other.conflict_keys())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
    struct TestCmd(Vec<ConflictKey>);

    impl Command for TestCmd {
        fn conflict_keys(&self) -> Vec<ConflictKey> {
            self.0.clone()
        }
    }

    #[test]
    fn reads_commute() {
        assert!(!AccessMode::Read.conflicts_with(AccessMode::Read));
        let a = TestCmd(vec![ConflictKey::read(1)]);
        let b = TestCmd(vec![ConflictKey::read(1)]);
        assert!(!a.interferes(&b));
    }

    #[test]
    fn write_conflicts_with_everything_on_same_key() {
        for mode in [
            AccessMode::Read,
            AccessMode::Write,
            AccessMode::CommutingWrite,
        ] {
            assert!(AccessMode::Write.conflicts_with(mode));
            assert!(mode.conflicts_with(AccessMode::Write));
        }
    }

    #[test]
    fn commuting_writes_commute_with_each_other_only() {
        assert!(!AccessMode::CommutingWrite.conflicts_with(AccessMode::CommutingWrite));
        assert!(AccessMode::CommutingWrite.conflicts_with(AccessMode::Read));
        assert!(AccessMode::CommutingWrite.conflicts_with(AccessMode::Write));
    }

    #[test]
    fn disjoint_keys_never_interfere() {
        let a = TestCmd(vec![ConflictKey::write(1)]);
        let b = TestCmd(vec![ConflictKey::write(2)]);
        assert!(!a.interferes(&b));
    }

    #[test]
    fn shared_key_write_interferes() {
        let a = TestCmd(vec![ConflictKey::write(9), ConflictKey::read(1)]);
        let b = TestCmd(vec![ConflictKey::read(9)]);
        assert!(a.interferes(&b));
        assert!(b.interferes(&a));
    }

    #[test]
    fn interference_is_symmetric_over_samples() {
        let modes = [
            AccessMode::Read,
            AccessMode::Write,
            AccessMode::CommutingWrite,
        ];
        for &ma in &modes {
            for &mb in &modes {
                let a = TestCmd(vec![ConflictKey { key: 5, mode: ma }]);
                let b = TestCmd(vec![ConflictKey { key: 5, mode: mb }]);
                assert_eq!(a.interferes(&b), b.interferes(&a), "{ma:?} vs {mb:?}");
            }
        }
    }
}
