//! The replicated application interface.

use std::fmt::Debug;

use serde::de::DeserializeOwned;
use serde::Serialize;

use crate::command::Command;

/// A deterministic replicated state machine.
///
/// Determinism is the only semantic requirement: applying the same sequence
/// of commands to two instances created by the same constructor must produce
/// identical responses and identical states. Every protocol in this
/// workspace replicates an `Application`.
///
/// `Clone` is required so execution engines can maintain a speculative copy
/// of the state alongside the final one (see [`CloneReplay`]). `Sync` is
/// required so the parallel execution engine can share the state across its
/// worker pool; applications without interior mutability get it for free.
pub trait Application: Clone + Send + Sync + 'static {
    /// The command type this application executes.
    type Command: Command;
    /// The response returned to the client for each command.
    type Response: Clone
        + Debug
        + Eq
        + std::hash::Hash
        + Serialize
        + DeserializeOwned
        + Send
        + Sync
        + 'static;

    /// Executes one command against the state, returning the response.
    fn apply(&mut self, cmd: &Self::Command) -> Self::Response;

    /// Whether [`Application::apply_shared`] is implemented and safe to
    /// call concurrently for commands whose conflict keys do not conflict.
    ///
    /// Defaults to `false`: the parallel executor then degrades to the
    /// sequential schedule, so applications never have to opt in for
    /// correctness — only for speed.
    fn supports_concurrent_apply(&self) -> bool {
        false
    }

    /// Executes one command through a shared reference.
    ///
    /// Contract (checked only by the implementor): when two in-flight
    /// `apply_shared` calls carry commands with non-conflicting key sets
    /// (see [`crate::interferes_by_keys`]), running them concurrently must
    /// be equivalent to running them in either serial order. The executor
    /// never issues conflicting commands concurrently.
    ///
    /// # Panics
    ///
    /// The default panics; it is unreachable while
    /// [`Application::supports_concurrent_apply`] returns `false`.
    fn apply_shared(&self, _cmd: &Self::Command) -> Self::Response {
        unreachable!("apply_shared called on an application that does not support it")
    }
}

/// A speculative execution wrapper built from any [`Application`]
/// (paper §IV-B).
///
/// ezBFT and Zyzzyva execute commands *speculatively* before their order is
/// final, then re-execute on the *final* state once commitment is reached.
/// `CloneReplay` keeps two copies of the application:
///
/// - the **final** state, advanced only by finally-executed commands, and
/// - the **speculative** state, equal to the final state plus every
///   speculatively executed (not yet finalised) command, replayed in local
///   arrival order.
///
/// Invalidation (a command's final order differs from its speculative order,
/// §IV-C step 5.2) rebuilds the speculative state from the final state by
/// replaying the surviving speculative suffix — simple, obviously correct,
/// and fast enough for simulation-scale workloads. The KV crate additionally
/// provides an undo-log overlay with the same semantics for benchmarks.
#[derive(Clone, Debug)]
pub struct CloneReplay<A: Application> {
    final_state: A,
    spec_state: A,
    /// Speculatively executed commands (with a caller-chosen key) in local
    /// execution order, not yet finalised.
    spec_log: Vec<(u128, A::Command)>,
}

impl<A: Application> CloneReplay<A> {
    /// Wraps a fresh application state.
    pub fn new(app: A) -> Self {
        CloneReplay {
            final_state: app.clone(),
            spec_state: app,
            spec_log: Vec::new(),
        }
    }

    /// Executes `cmd` speculatively (on top of final state + earlier
    /// speculative commands), tagging it with `key` for later finalisation
    /// or invalidation.
    pub fn spec_apply(&mut self, key: u128, cmd: &A::Command) -> A::Response {
        self.spec_log.push((key, cmd.clone()));
        self.spec_state.apply(cmd)
    }

    /// Executes `cmd` on the **final** state (final execution). If the same
    /// key was speculatively executed it is removed from the speculative log
    /// and the speculative state is rebuilt — except in the common, in-order
    /// case (the key heads the speculative log), where the overlay already
    /// accounts for exactly this command and no rebuild is needed.
    pub fn final_apply(&mut self, key: u128, cmd: &A::Command) -> A::Response {
        let resp = self.final_state.apply(cmd);
        if self.spec_log.first().map(|(k, _)| *k) == Some(key) {
            // spec_state = final_before + [cmd] + rest = final_after + rest:
            // already consistent, no rebuild.
            self.spec_log.remove(0);
            return resp;
        }
        let had_spec = self.spec_log.iter().any(|(k, _)| *k == key);
        if had_spec {
            self.spec_log.retain(|(k, _)| *k != key);
        }
        self.rebuild_spec();
        resp
    }

    /// Runs one batched final-execution step directly against the final
    /// state, then retires `keys` from the speculative log with at most one
    /// rebuild (versus one per command through [`CloneReplay::final_apply`]).
    ///
    /// Contract: `f` must apply exactly the commands tagged by `keys`, in an
    /// order whose final state matches applying them in `keys` order (the
    /// parallel executor only reorders commuting commands, which satisfies
    /// this). When `keys` is exactly the head of the speculative log the
    /// overlay already accounts for them and no rebuild happens — the batch
    /// generalisation of the in-order fast path in `final_apply`.
    pub fn final_apply_batch<T>(&mut self, keys: &[u128], f: impl FnOnce(&mut A) -> T) -> T {
        let out = f(&mut self.final_state);
        if keys.is_empty() {
            return out;
        }
        let in_order_prefix = keys.len() <= self.spec_log.len()
            && self.spec_log[..keys.len()]
                .iter()
                .map(|(k, _)| *k)
                .eq(keys.iter().copied());
        if in_order_prefix {
            self.spec_log.drain(..keys.len());
        } else {
            self.spec_log.retain(|(k, _)| !keys.contains(k));
            self.rebuild_spec();
        }
        out
    }

    /// Discards the speculative execution tagged `key` (if any) and rebuilds
    /// the speculative state without it.
    pub fn invalidate(&mut self, key: u128) {
        let before = self.spec_log.len();
        self.spec_log.retain(|(k, _)| *k != key);
        if self.spec_log.len() != before {
            self.rebuild_spec();
        }
    }

    /// Discards *all* speculative executions, resetting the speculative
    /// state to the final state.
    pub fn invalidate_all(&mut self) {
        self.spec_log.clear();
        self.spec_state = self.final_state.clone();
    }

    /// Number of outstanding speculative commands.
    pub fn spec_len(&self) -> usize {
        self.spec_log.len()
    }

    /// Read-only access to the final state.
    pub fn final_state(&self) -> &A {
        &self.final_state
    }

    /// Read-only access to the speculative state.
    pub fn spec_state(&self) -> &A {
        &self.spec_state
    }

    fn rebuild_spec(&mut self) {
        self.spec_state = self.final_state.clone();
        for (_, cmd) in &self.spec_log {
            self.spec_state.apply(cmd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::{Command, ConflictKey};
    use serde::{Deserialize, Serialize};

    /// A toy register machine: `Set(v)` returns the old value.
    #[derive(Clone, Debug, Default)]
    struct Register {
        value: u64,
    }

    #[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
    struct Set(u64);

    impl Command for Set {
        fn conflict_keys(&self) -> Vec<ConflictKey> {
            vec![ConflictKey::write(0)]
        }
    }

    impl Application for Register {
        type Command = Set;
        type Response = u64;
        fn apply(&mut self, cmd: &Set) -> u64 {
            let old = self.value;
            self.value = cmd.0;
            old
        }
    }

    #[test]
    fn spec_then_final_same_order_is_transparent() {
        let mut s = CloneReplay::new(Register::default());
        assert_eq!(s.spec_apply(1, &Set(10)), 0);
        assert_eq!(s.spec_apply(2, &Set(20)), 10);
        // Finalise in the same order: final responses match speculative ones.
        assert_eq!(s.final_apply(1, &Set(10)), 0);
        assert_eq!(s.final_apply(2, &Set(20)), 10);
        assert_eq!(s.final_state().value, 20);
        assert_eq!(s.spec_state().value, 20);
        assert_eq!(s.spec_len(), 0);
    }

    #[test]
    fn final_in_different_order_rebuilds_spec() {
        let mut s = CloneReplay::new(Register::default());
        s.spec_apply(1, &Set(10)); // spec order: 1, 2
        s.spec_apply(2, &Set(20));
        // Final order is 2 then 1.
        assert_eq!(s.final_apply(2, &Set(20)), 0);
        // Spec state now = final(value=20) + replay of key 1.
        assert_eq!(s.spec_state().value, 10);
        assert_eq!(s.final_apply(1, &Set(10)), 20);
        assert_eq!(s.final_state().value, 10);
        assert_eq!(s.spec_state().value, 10);
    }

    #[test]
    fn invalidate_removes_only_target() {
        let mut s = CloneReplay::new(Register::default());
        s.spec_apply(1, &Set(10));
        s.spec_apply(2, &Set(20));
        s.invalidate(1);
        assert_eq!(s.spec_len(), 1);
        // Spec state replays only Set(20) over final state 0.
        assert_eq!(s.spec_state().value, 20);
        s.invalidate_all();
        assert_eq!(s.spec_len(), 0);
        assert_eq!(s.spec_state().value, 0);
    }

    #[test]
    fn invalidate_missing_key_is_noop() {
        let mut s = CloneReplay::new(Register::default());
        s.spec_apply(1, &Set(10));
        s.invalidate(99);
        assert_eq!(s.spec_len(), 1);
        assert_eq!(s.spec_state().value, 10);
    }
}
