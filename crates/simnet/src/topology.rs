//! Geographic topologies: regions and one-way-delay matrices.
//!
//! The matrices below were **calibrated against Table I of the paper**: with
//! Zyzzyva's analytic client latency
//! `owd(c,p) + max_j [owd(p,j) + owd(j,c)]`, the Experiment-1 matrix
//! reproduces all sixteen published cells within a few milliseconds (see
//! `EXPERIMENTS.md` for the cell-by-cell comparison). The Experiment-2
//! matrix uses public inter-region RTT measurements for the same AWS
//! regions, scaled the same way.

use ezbft_smr::Micros;
use serde::{Deserialize, Serialize};

/// A named geographic region hosting one replica (and its co-located
/// clients).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Region(pub usize);

impl Region {
    /// Index into the topology's region list.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A set of regions with pairwise one-way delays.
#[derive(Clone, Debug)]
pub struct Topology {
    names: Vec<&'static str>,
    /// One-way delay in microseconds, `owd[i][j]` from region i to region j.
    owd: Vec<Vec<u64>>,
    /// Delay between two nodes in the same region (e.g. client → co-located
    /// replica): sub-millisecond.
    local_us: u64,
    /// Uniform jitter bound applied per message (± is not used; jitter is
    /// additive in `0..=jitter_us`).
    jitter_us: u64,
}

impl Topology {
    /// Builds a topology from a symmetric one-way-delay matrix given in
    /// **milliseconds**.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or does not match `names`.
    pub fn from_owd_ms(names: Vec<&'static str>, owd_ms: Vec<Vec<u64>>) -> Self {
        assert_eq!(names.len(), owd_ms.len(), "matrix must match region count");
        for row in &owd_ms {
            assert_eq!(row.len(), names.len(), "matrix must be square");
        }
        let owd = owd_ms
            .into_iter()
            .map(|row| row.into_iter().map(|ms| ms * 1000).collect())
            .collect();
        Topology {
            names,
            owd,
            local_us: 300,
            jitter_us: 500,
        }
    }

    /// Experiment 1 regions (paper §V-A): Virginia (US-East-1), Japan,
    /// India (Mumbai), Australia (Sydney).
    ///
    /// One-way delays (ms) calibrated against Table I:
    /// V-J 80, V-I 92, V-A 100, J-I 60, J-A 55, I-A 110.
    pub fn exp1() -> Self {
        Topology::from_owd_ms(
            vec!["Virginia", "Japan", "India", "Australia"],
            vec![
                vec![0, 80, 92, 100],
                vec![80, 0, 60, 55],
                vec![92, 60, 0, 110],
                vec![100, 55, 110, 0],
            ],
        )
    }

    /// Experiment 2 regions (paper §V-A): Ohio (US-East-2), Ireland,
    /// Frankfurt, Mumbai.
    ///
    /// One-way delays (ms): O-Irl 38, O-F 45, O-M 110, Irl-F 12, Irl-M 61,
    /// F-M 55 — consistent with the paper's observation that
    /// Ohio→Mumbai direct ≈ Ohio→Ireland→Mumbai (38 + 61 ≈ 110).
    pub fn exp2() -> Self {
        Topology::from_owd_ms(
            vec!["Ohio", "Ireland", "Frankfurt", "Mumbai"],
            vec![
                vec![0, 38, 45, 110],
                vec![38, 0, 12, 61],
                vec![45, 12, 0, 55],
                vec![110, 61, 55, 0],
            ],
        )
    }

    /// A single-datacenter topology (`n` co-located regions, LAN latency).
    /// Useful for protocol unit tests where WAN asymmetry is noise.
    pub fn lan(n: usize) -> Self {
        let owd = vec![vec![0; n]; n];
        let names = (0..n).map(|_| "lan").collect();
        let mut t = Topology::from_owd_ms(names, owd);
        t.local_us = 100;
        t.jitter_us = 50;
        t
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the topology has no regions.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The regions in index order.
    pub fn regions(&self) -> impl Iterator<Item = Region> + '_ {
        (0..self.names.len()).map(Region)
    }

    /// Region name (for reports).
    pub fn name(&self, r: Region) -> &'static str {
        self.names[r.index()]
    }

    /// Looks a region up by name.
    pub fn region_named(&self, name: &str) -> Option<Region> {
        self.names.iter().position(|n| *n == name).map(Region)
    }

    /// Base one-way delay from `a` to `b` (no jitter). Within a region this
    /// is the local (intra-datacenter) delay.
    pub fn owd(&self, a: Region, b: Region) -> Micros {
        if a == b {
            Micros(self.local_us)
        } else {
            Micros(self.owd[a.index()][b.index()])
        }
    }

    /// The additive jitter bound.
    pub fn jitter_bound(&self) -> Micros {
        Micros(self.jitter_us)
    }

    /// Overrides the jitter bound (builder style).
    pub fn with_jitter(mut self, jitter: Micros) -> Self {
        self.jitter_us = jitter.as_micros();
        self
    }

    /// Overrides the intra-region delay (builder style).
    pub fn with_local_delay(mut self, local: Micros) -> Self {
        self.local_us = local.as_micros();
        self
    }

    /// Round-trip time between two regions (no jitter) — convenience for
    /// analytic assertions in tests.
    pub fn rtt(&self, a: Region, b: Region) -> Micros {
        self.owd(a, b) + self.owd(b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp1_matches_calibration() {
        let t = Topology::exp1();
        assert_eq!(t.len(), 4);
        let v = t.region_named("Virginia").unwrap();
        let j = t.region_named("Japan").unwrap();
        let a = t.region_named("Australia").unwrap();
        assert_eq!(t.owd(v, j), Micros::from_millis(80));
        assert_eq!(t.rtt(v, a), Micros::from_millis(200));
        // Symmetry.
        for x in t.regions() {
            for y in t.regions() {
                assert_eq!(t.owd(x, y), t.owd(y, x));
            }
        }
    }

    #[test]
    fn exp1_zyzzyva_analytic_latency_reproduces_table1_diagonal() {
        // Zyzzyva latency with client and primary co-located in region p:
        //   max_j [owd(p,j) + owd(j,p)] = max RTT from p.
        // Table I diagonal: Virginia 198, Japan 167, India 229, Australia 229.
        let t = Topology::exp1();
        let expect_ms = [200u64, 160, 220, 220]; // our calibrated values
        let paper_ms = [198u64, 167, 229, 229];
        for (i, (ours, paper)) in expect_ms.iter().zip(paper_ms).enumerate() {
            let p = Region(i);
            let analytic = t.regions().map(|j| t.rtt(p, j).as_micros()).max().unwrap() / 1000;
            assert_eq!(analytic, *ours);
            // Within 10ms of the paper's measurement.
            assert!(
                analytic.abs_diff(paper) <= 10,
                "region {i}: analytic {analytic} vs paper {paper}"
            );
        }
    }

    #[test]
    fn exp2_overlapping_paths_property() {
        // Paper: Ohio→Mumbai direct ≈ Ohio→Ireland + Ireland→Mumbai.
        let t = Topology::exp2();
        let o = t.region_named("Ohio").unwrap();
        let irl = t.region_named("Ireland").unwrap();
        let m = t.region_named("Mumbai").unwrap();
        let direct = t.owd(o, m).as_micros();
        let via = (t.owd(o, irl) + t.owd(irl, m)).as_micros();
        assert!(
            direct.abs_diff(via) <= 15_000,
            "direct {direct} vs via {via}"
        );
    }

    #[test]
    fn local_delay_applies_within_region() {
        let t = Topology::exp1();
        let v = Region(0);
        assert_eq!(t.owd(v, v), Micros(300));
        let t2 = t.with_local_delay(Micros(100));
        assert_eq!(t2.owd(v, v), Micros(100));
    }

    #[test]
    fn lan_topology_is_flat() {
        let t = Topology::lan(4);
        for a in t.regions() {
            for b in t.regions() {
                if a != b {
                    assert_eq!(t.owd(a, b), Micros::ZERO);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_matrix_rejected() {
        Topology::from_owd_ms(vec!["a", "b"], vec![vec![0, 1], vec![1]]);
    }
}
