//! Deterministic discrete-event WAN simulator.
//!
//! This crate is the reproduction's substitute for the paper's AWS EC2
//! deployment (see `DESIGN.md` §2). It runs unmodified sans-io
//! [`ezbft_smr::ProtocolNode`] state machines over:
//!
//! - a **virtual clock** (microsecond resolution, [`ezbft_smr::Micros`]);
//! - a **latency topology** ([`topology`]) with one-way-delay matrices
//!   calibrated against Table I of the paper, plus deterministic jitter;
//! - a **processing-cost model** ([`net::CostModel`]) that turns each node
//!   into a FIFO server, exposing the queueing effects behind Figures 6-7;
//! - **fault injection** ([`net::FaultPlan`]): message drops, partitions,
//!   and crash-stop nodes (byzantine *behaviours* are implemented as node
//!   wrappers in the protocol crates and run unchanged here).
//!
//! Determinism: given the same seed and the same node set, a simulation
//! delivers exactly the same event sequence — ties in the event queue are
//! broken by insertion order.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod metrics;
pub mod net;
pub mod topology;
pub mod trace;

pub use metrics::{Gauge, Histogram, LatencyRecorder, ThroughputCounter};
pub use net::{CostModel, DeliveryRule, FaultPlan, Invariant, SimConfig, SimNet, Violation};
pub use topology::{Region, Topology};
pub use trace::{Trace, TraceEvent};
