//! Optional message tracing for debugging simulations.
//!
//! A [`Trace`] records a bounded window of network-level events (sends,
//! deliveries, drops, timer firings) with virtual timestamps; the protocol
//! crates' `Msg::kind()` tags make the rendered trace readable. Disabled by
//! default — the recorder costs one enum per message.

use std::collections::VecDeque;

use ezbft_smr::{Micros, NodeId};

/// One traced event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A message entered the network.
    Sent {
        /// Virtual send time.
        at: Micros,
        /// Sender.
        from: NodeId,
        /// Destination.
        to: NodeId,
        /// Message kind tag.
        kind: &'static str,
    },
    /// A message was handed to its destination.
    Delivered {
        /// Virtual delivery time (post service).
        at: Micros,
        /// Sender.
        from: NodeId,
        /// Destination.
        to: NodeId,
        /// Message kind tag.
        kind: &'static str,
    },
    /// A message was dropped by fault injection.
    Dropped {
        /// Virtual drop time.
        at: Micros,
        /// Sender.
        from: NodeId,
        /// Destination.
        to: NodeId,
        /// Message kind tag (what fault injection suppressed).
        kind: &'static str,
    },
    /// A timer fired at a node.
    Timer {
        /// Virtual fire time.
        at: Micros,
        /// The node whose timer fired.
        node: NodeId,
    },
}

impl TraceEvent {
    /// The event's virtual time.
    pub fn at(&self) -> Micros {
        match self {
            TraceEvent::Sent { at, .. }
            | TraceEvent::Delivered { at, .. }
            | TraceEvent::Dropped { at, .. }
            | TraceEvent::Timer { at, .. } => *at,
        }
    }
}

/// A bounded ring buffer of [`TraceEvent`]s.
#[derive(Clone, Debug)]
pub struct Trace {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    recorded: u64,
}

impl Trace {
    /// Creates a trace retaining the last `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Trace {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            recorded: 0,
        }
    }

    /// Records an event, evicting the oldest if full.
    pub fn record(&mut self, event: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(event);
        self.recorded += 1;
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Total events ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the retained window as one line per event.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for e in &self.events {
            match e {
                TraceEvent::Sent { at, from, to, kind } => {
                    let _ = writeln!(out, "{at:?}  {from:?} → {to:?}  send {kind}");
                }
                TraceEvent::Delivered { at, from, to, kind } => {
                    let _ = writeln!(out, "{at:?}  {from:?} → {to:?}  recv {kind}");
                }
                TraceEvent::Dropped { at, from, to, kind } => {
                    let _ = writeln!(out, "{at:?}  {from:?} → {to:?}  DROPPED {kind}");
                }
                TraceEvent::Timer { at, node } => {
                    let _ = writeln!(out, "{at:?}  {node:?}  timer");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezbft_smr::ReplicaId;

    fn node(i: u8) -> NodeId {
        NodeId::Replica(ReplicaId::new(i))
    }

    #[test]
    fn records_in_order() {
        let mut t = Trace::new(8);
        assert!(t.is_empty());
        t.record(TraceEvent::Sent {
            at: Micros(1),
            from: node(0),
            to: node(1),
            kind: "a",
        });
        t.record(TraceEvent::Delivered {
            at: Micros(2),
            from: node(0),
            to: node(1),
            kind: "a",
        });
        assert_eq!(t.len(), 2);
        let times: Vec<u64> = t.events().map(|e| e.at().as_micros()).collect();
        assert_eq!(times, vec![1, 2]);
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut t = Trace::new(3);
        for i in 0..5u64 {
            t.record(TraceEvent::Timer {
                at: Micros(i),
                node: node(0),
            });
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.recorded(), 5);
        let times: Vec<u64> = t.events().map(|e| e.at().as_micros()).collect();
        assert_eq!(times, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_records_nothing() {
        let mut t = Trace::new(0);
        t.record(TraceEvent::Timer {
            at: Micros(1),
            node: node(0),
        });
        assert!(t.is_empty());
        assert_eq!(t.recorded(), 0);
    }

    #[test]
    fn render_is_line_per_event() {
        let mut t = Trace::new(4);
        t.record(TraceEvent::Sent {
            at: Micros(1),
            from: node(0),
            to: node(1),
            kind: "req",
        });
        t.record(TraceEvent::Dropped {
            at: Micros(2),
            from: node(1),
            to: node(0),
            kind: "req",
        });
        let text = t.render();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("send req"));
        assert!(text.contains("DROPPED req"));
    }
}
