//! The discrete-event simulator.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ezbft_obs::{ManualClock, NullRecorder, Recorder};
use ezbft_smr::{Action, Actions, ClientDelivery, Micros, NodeId, ProtocolNode, TimerId};

use crate::topology::{Region, Topology};
use crate::trace::{Trace, TraceEvent};

/// Per-run limits and the determinism seed.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Seed for jitter and drop randomness.
    pub seed: u64,
    /// Hard cap on virtual time; the run stops when reached.
    pub max_virtual_time: Micros,
    /// Hard cap on processed events (runaway guard).
    pub max_events: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0x0065_7a62_6674_u64, // "ezbft"
            max_virtual_time: Micros::from_secs(3_600),
            max_events: 200_000_000,
        }
    }
}

/// Computes the processing (service) cost a node pays for one received
/// message. `None` models infinitely fast servers — appropriate for
/// latency experiments where propagation dominates (§V-A); the throughput
/// and scalability experiments (§V-B, §V-C) install protocol-specific cost
/// models.
pub type CostFn<M> = Box<dyn FnMut(NodeId, &M) -> Micros + Send>;

/// A convenience constructor bundle for [`CostFn`]s.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Service time charged for every received message.
    pub recv: Micros,
}

impl CostModel {
    /// A uniform per-message cost model.
    pub fn uniform(recv: Micros) -> CostModel {
        CostModel { recv }
    }

    /// Turns the model into a [`CostFn`].
    pub fn into_fn<M>(self) -> CostFn<M> {
        Box::new(move |_, _| self.recv)
    }
}

/// A targeted delivery rule: messages matching the rule's (kind, from,
/// to) scope suffer an extra drop probability, a fixed extra delay,
/// and/or bounded random extra jitter. Delay and jitter produce
/// *adversarial schedules* — a rule with a large jitter reorders the
/// matched kind relative to everything else — which is strictly more
/// expressive than the uniform [`FaultPlan::set_drop_probability`] loss
/// model (Revisiting-EZBFT-style attacks schedule specific message
/// kinds, they do not just lose them).
///
/// Rules only take effect when the simulation has a message-kind
/// classifier installed via [`SimNet::classify_faults`]; without one,
/// kind-scoped rules never match (any-kind rules still do).
#[derive(Clone, Copy, Debug)]
pub struct DeliveryRule {
    kind: Option<&'static str>,
    from: Option<NodeId>,
    to: Option<NodeId>,
    drop_prob: f64,
    delay: Micros,
    jitter: Micros,
}

impl DeliveryRule {
    /// A rule matching only messages classified as `kind`.
    pub fn for_kind(kind: &'static str) -> Self {
        DeliveryRule {
            kind: Some(kind),
            from: None,
            to: None,
            drop_prob: 0.0,
            delay: Micros::ZERO,
            jitter: Micros::ZERO,
        }
    }

    /// A rule matching every message (scope it with
    /// [`DeliveryRule::from_node`] / [`DeliveryRule::to_node`]).
    pub fn any_kind() -> Self {
        DeliveryRule {
            kind: None,
            from: None,
            to: None,
            drop_prob: 0.0,
            delay: Micros::ZERO,
            jitter: Micros::ZERO,
        }
    }

    /// Restricts the rule to messages sent by `node`.
    pub fn from_node(mut self, node: impl Into<NodeId>) -> Self {
        self.from = Some(node.into());
        self
    }

    /// Restricts the rule to messages addressed to `node`.
    pub fn to_node(mut self, node: impl Into<NodeId>) -> Self {
        self.to = Some(node.into());
        self
    }

    /// Drops matched messages with probability `p`.
    pub fn drop_prob(mut self, p: f64) -> Self {
        self.drop_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Delays matched messages by a fixed `d` on top of topology latency.
    pub fn delay(mut self, d: Micros) -> Self {
        self.delay = d;
        self
    }

    /// Adds uniform random extra latency in `[0, j]` to matched messages
    /// (reordering relative to unmatched traffic).
    pub fn jitter(mut self, j: Micros) -> Self {
        self.jitter = j;
        self
    }

    fn matches(&self, kind: Option<&'static str>, from: NodeId, to: NodeId) -> bool {
        (match self.kind {
            Some(k) => kind == Some(k),
            None => true,
        }) && self.from.is_none_or(|f| f == from)
            && self.to.is_none_or(|t| t == to)
    }
}

/// Declarative fault injection: crash-stop nodes, severed links, uniform
/// message loss, and targeted per-kind delivery rules
/// ([`DeliveryRule`]).
///
/// Byzantine *behaviour* (lying, equivocating) is not injected here — it is
/// implemented as wrapper nodes in the protocol crates, which this simulator
/// runs like any other node. The plan only controls what the *network* does.
#[derive(Default)]
pub struct FaultPlan {
    crashed: HashSet<NodeId>,
    cut: HashSet<(NodeId, NodeId)>,
    drop_prob: f64,
    rules: Vec<DeliveryRule>,
}

impl fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultPlan")
            .field("crashed", &self.crashed.len())
            .field("cut_links", &self.cut.len())
            .field("drop_prob", &self.drop_prob)
            .field("rules", &self.rules.len())
            .finish()
    }
}

impl FaultPlan {
    /// Marks `node` crashed: it receives nothing and sends nothing from now
    /// on (crash-stop).
    pub fn crash(&mut self, node: impl Into<NodeId>) {
        self.crashed.insert(node.into());
    }

    /// Whether `node` is crashed.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed.contains(&node)
    }

    /// Un-crashes `node` (crash-recovery: the process restarts). A message
    /// still in flight when the node comes back may be delivered to the
    /// restarted process — exactly the late-packet behaviour of a real
    /// network; restart-aware protocols must tolerate it.
    pub fn revive(&mut self, node: impl Into<NodeId>) {
        self.crashed.remove(&node.into());
    }

    /// Severs the directed link `from → to`.
    pub fn cut_link(&mut self, from: impl Into<NodeId>, to: impl Into<NodeId>) {
        self.cut.insert((from.into(), to.into()));
    }

    /// Severs both directions between `a` and `b`.
    pub fn cut_between(&mut self, a: impl Into<NodeId>, b: impl Into<NodeId>) {
        let (a, b) = (a.into(), b.into());
        self.cut.insert((a, b));
        self.cut.insert((b, a));
    }

    /// Restores all severed links.
    pub fn heal_links(&mut self) {
        self.cut.clear();
    }

    /// Sets a uniform probability in `[0, 1]` of dropping any message.
    pub fn set_drop_probability(&mut self, p: f64) {
        self.drop_prob = p.clamp(0.0, 1.0);
    }

    /// Installs a targeted [`DeliveryRule`]. Every matching rule applies
    /// independently (drop rolls compound; delays and jitter add up), in
    /// installation order.
    pub fn add_rule(&mut self, rule: DeliveryRule) {
        self.rules.push(rule);
    }

    /// Removes every installed [`DeliveryRule`].
    pub fn clear_rules(&mut self) {
        self.rules.clear();
    }

    fn blocks(&self, from: NodeId, to: NodeId) -> bool {
        self.crashed.contains(&from) || self.crashed.contains(&to) || self.cut.contains(&(from, to))
    }
}

/// A continuously-evaluated predicate over the whole simulation
/// (registered via [`SimNet::add_invariant`]).
///
/// Checkers run every [`SimNet::set_check_interval`] events and once
/// more when a run stops; they see the simulation read-only (use
/// [`SimNet::inspect`] to downcast node state) and may keep internal
/// state across checks (`&mut self`) for incremental verification.
pub trait Invariant<M, R>: Send {
    /// Short stable name identifying the invariant in reports.
    fn name(&self) -> &'static str;

    /// Returns `Some(description)` when the invariant is violated.
    /// After the first violation the checker is retired: one
    /// [`Violation`] per invariant, carrying the earliest offence.
    fn check(&mut self, sim: &SimNet<M, R>) -> Option<String>;
}

/// One invariant violation observed during a run.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Virtual time at which the violation was detected.
    pub at: Micros,
    /// [`Invariant::name`] of the violated invariant.
    pub invariant: &'static str,
    /// The checker's description of what went wrong.
    pub detail: String,
    /// The offending schedule: the rendered tail of the message trace at
    /// detection time (empty unless [`SimNet::enable_trace`] is on).
    pub schedule: String,
}

/// Aggregate statistics from a run.
#[derive(Clone, Copy, Debug, Default)]
pub struct SimStats {
    /// Messages handed to the network (after fault filtering at send time).
    pub messages_sent: u64,
    /// Messages delivered to nodes.
    pub messages_delivered: u64,
    /// Messages dropped by faults.
    pub messages_dropped: u64,
    /// Timer firings delivered.
    pub timers_fired: u64,
    /// Total events processed.
    pub events: u64,
}

/// An in-flight message payload. Unicasts own their message; broadcasts
/// share one allocation across every queued delivery, so enqueueing a
/// fan-out costs `Arc` bumps instead of deep clones (the last delivery
/// reclaims the original without cloning at all).
enum Payload<M> {
    One(M),
    Shared(Arc<M>),
}

impl<M> Payload<M> {
    fn as_ref(&self) -> &M {
        match self {
            Payload::One(m) => m,
            Payload::Shared(m) => m,
        }
    }
}

impl<M: Clone> Payload<M> {
    /// Extracts the message, cloning only when other deliveries of the
    /// same broadcast are still queued.
    fn into_msg(self) -> M {
        match self {
            Payload::One(m) => m,
            Payload::Shared(m) => Arc::try_unwrap(m).unwrap_or_else(|m| (*m).clone()),
        }
    }
}

enum EventKind<M> {
    Deliver { from: NodeId, msg: Payload<M> },
    Timer { id: TimerId, generation: u64 },
    Crash,
}

struct Event<M> {
    at: Micros,
    node: NodeId,
    kind: EventKind<M>,
}

/// Heap entry ordered by (earliest time, insertion order); the event payload
/// does not participate in the ordering.
struct QueueItem<M> {
    key: Reverse<(u64, u64)>,
    event: Event<M>,
}

impl<M> PartialEq for QueueItem<M> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl<M> Eq for QueueItem<M> {}

impl<M> PartialOrd for QueueItem<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for QueueItem<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

struct NodeEntry<M, R> {
    node: Box<dyn ProtocolNode<Message = M, Response = R>>,
    region: Region,
    busy_until: Micros,
    timer_generation: HashMap<TimerId, u64>,
    /// Monotonic generation source: never reused, so stale queued timer
    /// events can never match a re-armed timer.
    next_generation: u64,
}

/// A completed client request observed by the simulator.
#[derive(Clone, Debug)]
pub struct DeliveryRecord<R> {
    /// The client that completed a request.
    pub client: NodeId,
    /// Virtual time of completion.
    pub at: Micros,
    /// The delivery payload (timestamp, response, fast/slow path).
    pub delivery: ClientDelivery<R>,
}

/// The deterministic discrete-event network simulator.
///
/// Generic over the protocol's message type `M` and client response type
/// `R`; all nodes in one simulation speak the same protocol.
pub struct SimNet<M, R> {
    topology: Topology,
    config: SimConfig,
    nodes: HashMap<NodeId, NodeEntry<M, R>>,
    queue: BinaryHeap<QueueItem<M>>,
    now: Micros,
    seq: u64,
    rng: SmallRng,
    cost_fn: Option<CostFn<M>>,
    faults: FaultPlan,
    stats: SimStats,
    deliveries: Vec<DeliveryRecord<R>>,
    started: bool,
    #[allow(clippy::type_complexity)]
    trace: Option<(Trace, Box<dyn Fn(&M) -> &'static str + Send>)>,
    /// Per-kind sent/dropped counters (see [`SimNet::count_kinds`]).
    #[allow(clippy::type_complexity)]
    kind_counts: Option<(KindCounters, Box<dyn Fn(&M) -> &'static str + Send>)>,
    /// Message-kind classifier for targeted [`DeliveryRule`]s
    /// (see [`SimNet::classify_faults`]).
    #[allow(clippy::type_complexity)]
    fault_kind: Option<Box<dyn Fn(&M) -> &'static str + Send>>,
    /// Wire-size estimator powering the `net.bytes_*` parity counters
    /// (see [`SimNet::estimate_sizes`]).
    #[allow(clippy::type_complexity)]
    size_fn: Option<Box<dyn Fn(&M) -> u64 + Send>>,
    /// Registered invariant checkers (retired after their first report).
    checkers: Vec<Box<dyn Invariant<M, R>>>,
    /// Violations observed so far, in detection order.
    violations: Vec<Violation>,
    /// Events between checker sweeps (0 disables periodic checks; a
    /// final sweep still runs when a run stops).
    check_interval: u64,
    /// Event count at the last checker sweep.
    last_check: u64,
    /// Shared telemetry sink (defaults to a no-op recorder).
    recorder: Arc<dyn Recorder>,
    /// Virtual-time mirror: set to `now` before each event dispatches, so
    /// recorders attached to simulated nodes see deterministic time.
    clock: Arc<ManualClock>,
}

/// Per-kind tallies kept by [`SimNet::count_kinds`].
#[derive(Debug, Default)]
struct KindCounters {
    sent: HashMap<&'static str, u64>,
    dropped: HashMap<&'static str, u64>,
}

impl<M, R> fmt::Debug for SimNet<M, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimNet")
            .field("now", &self.now)
            .field("nodes", &self.nodes.len())
            .field("queued", &self.queue.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl<M, R> SimNet<M, R>
where
    M: Clone + Send + 'static,
    R: Clone + Send + 'static,
{
    /// Creates an empty simulation over `topology`.
    pub fn new(topology: Topology, config: SimConfig) -> Self {
        SimNet {
            topology,
            config,
            nodes: HashMap::new(),
            queue: BinaryHeap::new(),
            now: Micros::ZERO,
            seq: 0,
            rng: SmallRng::seed_from_u64(config.seed),
            cost_fn: None,
            faults: FaultPlan::default(),
            stats: SimStats::default(),
            deliveries: Vec::new(),
            started: false,
            trace: None,
            kind_counts: None,
            fault_kind: None,
            size_fn: None,
            checkers: Vec::new(),
            violations: Vec::new(),
            check_interval: 0,
            last_check: 0,
            recorder: Arc::new(NullRecorder),
            clock: Arc::new(ManualClock::new()),
        }
    }

    /// Attaches a shared telemetry sink: the simulator records
    /// `sim.sent` / `sim.delivered` / `sim.dropped` / `sim.timers`
    /// counters (kind-labelled when [`SimNet::count_kinds`] is on) so sim
    /// and TCP runs produce the same telemetry schema (DESIGN.md §9).
    /// Observation-only; scheduling and randomness are unaffected.
    pub fn set_recorder(&mut self, recorder: Arc<dyn Recorder>) {
        self.recorder = recorder;
    }

    /// The simulator's virtual-time clock mirror: updated to the current
    /// virtual time before every event dispatch, so telemetry recorded
    /// from inside simulated nodes (or from recorders shared with the
    /// harness) carries deterministic timestamps.
    pub fn virtual_clock(&self) -> Arc<ManualClock> {
        Arc::clone(&self.clock)
    }

    /// Enables message tracing, retaining the last `capacity` events.
    /// `kind` classifies messages for the rendered trace (protocol crates
    /// expose `Msg::kind()` for exactly this).
    pub fn enable_trace(
        &mut self,
        capacity: usize,
        kind: impl Fn(&M) -> &'static str + Send + 'static,
    ) {
        self.trace = Some((Trace::new(capacity), Box::new(kind)));
    }

    /// The recorded trace, if tracing is enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref().map(|(t, _)| t)
    }

    /// Enables per-kind message counting: every message handed to the
    /// network (one count per link for broadcasts, after fault filtering —
    /// the same semantics as [`SimStats::messages_sent`]) is classified by
    /// `kind` and tallied. Unlike [`SimNet::enable_trace`] this keeps only
    /// counters, so it is cheap enough for throughput runs — it is what
    /// messages-per-committed-request experiments are built on.
    pub fn count_kinds(&mut self, kind: impl Fn(&M) -> &'static str + Send + 'static) {
        self.kind_counts = Some((KindCounters::default(), Box::new(kind)));
    }

    /// Installs the message-kind classifier used by targeted
    /// [`DeliveryRule`]s (protocol crates expose `Msg::kind()` for
    /// exactly this). Kind-scoped rules are inert without a classifier.
    pub fn classify_faults(&mut self, kind: impl Fn(&M) -> &'static str + Send + 'static) {
        self.fault_kind = Some(Box::new(kind));
    }

    /// Installs a wire-size estimator for the `net.bytes_out` /
    /// `net.bytes_in` parity counters (typically
    /// `|m| ezbft_wire::to_bytes(m).len()`). With a recorder attached
    /// the simulator already mirrors the TCP runtime's `net.frames_out`
    /// / `net.frames_in` counter names; the estimator adds the byte
    /// counters, valued at the estimated encoding rather than the framed
    /// TCP byte count — close enough for apples-to-apples comparison of
    /// sim experiments against live scrapes (DESIGN.md §9b).
    pub fn estimate_sizes(&mut self, size: impl Fn(&M) -> u64 + Send + 'static) {
        self.size_fn = Some(Box::new(size));
    }

    /// Registers an invariant checker. Periodic sweeps default to every
    /// 128 events once at least one checker is registered (tune with
    /// [`SimNet::set_check_interval`]); a final sweep runs whenever a
    /// `run*` call stops.
    pub fn add_invariant(&mut self, checker: impl Invariant<M, R> + 'static) {
        if self.check_interval == 0 {
            self.check_interval = 128;
        }
        self.checkers.push(Box::new(checker));
    }

    /// Sets the number of processed events between invariant sweeps
    /// (0 disables periodic sweeps; the end-of-run sweep still happens).
    pub fn set_check_interval(&mut self, events: u64) {
        self.check_interval = events;
    }

    /// Invariant violations observed so far, in detection order (at most
    /// one per registered invariant — checkers retire on first report).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Runs every registered invariant checker immediately, recording a
    /// [`Violation`] (with the current trace tail as the offending
    /// schedule) for each one that reports; reporting checkers retire.
    pub fn check_invariants(&mut self) {
        if self.checkers.is_empty() {
            return;
        }
        self.last_check = self.stats.events;
        let mut checkers = std::mem::take(&mut self.checkers);
        let mut fired: Vec<(usize, &'static str, String)> = Vec::new();
        for (i, checker) in checkers.iter_mut().enumerate() {
            if let Some(detail) = checker.check(self) {
                fired.push((i, checker.name(), detail));
            }
        }
        if fired.is_empty() {
            self.checkers = checkers;
            return;
        }
        let retired: HashSet<usize> = fired.iter().map(|(i, _, _)| *i).collect();
        self.checkers = checkers
            .into_iter()
            .enumerate()
            .filter(|(i, _)| !retired.contains(i))
            .map(|(_, c)| c)
            .collect();
        let schedule = self
            .trace
            .as_ref()
            .map(|(t, _)| t.render())
            .unwrap_or_default();
        for (_, invariant, detail) in fired {
            self.violations.push(Violation {
                at: self.now,
                invariant,
                detail,
                schedule: schedule.clone(),
            });
        }
    }

    /// Messages sent so far of `kind` (0 if counting is disabled or the
    /// kind was never seen).
    pub fn sent_of_kind(&self, kind: &str) -> u64 {
        self.kind_counts
            .as_ref()
            .and_then(|(counts, _)| counts.sent.get(kind).copied())
            .unwrap_or(0)
    }

    /// Messages suppressed by fault injection so far of `kind` (0 if
    /// counting is disabled or nothing of that kind was dropped).
    pub fn dropped_of_kind(&self, kind: &str) -> u64 {
        self.kind_counts
            .as_ref()
            .and_then(|(counts, _)| counts.dropped.get(kind).copied())
            .unwrap_or(0)
    }

    /// All per-kind sent counters, sorted by kind name (empty if counting
    /// is disabled).
    pub fn kind_counts(&self) -> Vec<(&'static str, u64)> {
        let Some((counts, _)) = &self.kind_counts else {
            return Vec::new();
        };
        let mut v: Vec<(&'static str, u64)> = counts.sent.iter().map(|(k, c)| (*k, *c)).collect();
        v.sort_unstable();
        v
    }

    /// All per-kind dropped counters, sorted by kind name (empty if
    /// counting is disabled): exactly what fault injection suppressed.
    pub fn dropped_kind_counts(&self) -> Vec<(&'static str, u64)> {
        let Some((counts, _)) = &self.kind_counts else {
            return Vec::new();
        };
        let mut v: Vec<(&'static str, u64)> =
            counts.dropped.iter().map(|(k, c)| (*k, *c)).collect();
        v.sort_unstable();
        v
    }

    /// Registers a node located in `region`.
    ///
    /// # Panics
    ///
    /// Panics if a node with the same id is already registered, or the
    /// region is out of range for the topology.
    pub fn add_node(
        &mut self,
        region: Region,
        node: Box<dyn ProtocolNode<Message = M, Response = R>>,
    ) {
        assert!(region.index() < self.topology.len(), "region out of range");
        let id = node.id();
        let prev = self.nodes.insert(
            id,
            NodeEntry {
                node,
                region,
                busy_until: Micros::ZERO,
                timer_generation: HashMap::new(),
                next_generation: 0,
            },
        );
        assert!(prev.is_none(), "duplicate node {id:?}");
    }

    /// Replaces a (typically crashed) node with a fresh instance at the
    /// current virtual time: the crash-restart primitive. The replacement
    /// must carry the same id; it is revived in the fault plan, its
    /// `on_start` runs at `now`, and the old instance's timers can never
    /// fire into it (the timer-generation counter carries over, so stale
    /// queued timer events miss). In-flight messages addressed to the node
    /// may still arrive — late packets, as on a real network.
    ///
    /// # Panics
    ///
    /// Panics if no node with this id was ever registered, or the region
    /// is out of range.
    pub fn restart_node(
        &mut self,
        region: Region,
        node: Box<dyn ProtocolNode<Message = M, Response = R>>,
    ) {
        assert!(region.index() < self.topology.len(), "region out of range");
        let id = node.id();
        let old = self.nodes.remove(&id).expect("restarting an unknown node");
        self.nodes.insert(
            id,
            NodeEntry {
                node,
                region,
                busy_until: self.now,
                timer_generation: HashMap::new(),
                next_generation: old.next_generation,
            },
        );
        self.faults.revive(id);
        if self.started {
            let mut out = Actions::new(self.now);
            if let Some(entry) = self.nodes.get_mut(&id) {
                entry.node.on_start(&mut out);
            }
            self.apply_actions(id, out);
        }
    }

    /// Installs a processing-cost function (FIFO server per node).
    pub fn set_cost_fn(&mut self, f: impl FnMut(NodeId, &M) -> Micros + Send + 'static) {
        self.cost_fn = Some(Box::new(f));
    }

    /// Mutable access to the fault plan.
    pub fn faults_mut(&mut self) -> &mut FaultPlan {
        &mut self.faults
    }

    /// Schedules a crash-stop of `node` at virtual time `at`.
    pub fn schedule_crash(&mut self, node: impl Into<NodeId>, at: Micros) {
        let node = node.into();
        self.push_event(at, node, EventKind::Crash);
    }

    /// Current virtual time.
    pub fn now(&self) -> Micros {
        self.now
    }

    /// Statistics so far.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Region of a registered node.
    pub fn region_of(&self, node: NodeId) -> Option<Region> {
        self.nodes.get(&node).map(|e| e.region)
    }

    /// Introspects a node's state (nodes opt in via
    /// [`ProtocolNode::as_any`]). Used by safety checkers after a run.
    pub fn inspect(&self, node: NodeId) -> Option<&dyn std::any::Any> {
        self.nodes.get(&node).and_then(|e| e.node.as_any())
    }

    /// Completed client requests observed so far, in completion order.
    pub fn deliveries(&self) -> &[DeliveryRecord<R>] {
        &self.deliveries
    }

    /// Drains the recorded deliveries (useful between phases of a long run).
    pub fn take_deliveries(&mut self) -> Vec<DeliveryRecord<R>> {
        std::mem::take(&mut self.deliveries)
    }

    /// Runs until the event queue empties or a configured cap is hit.
    pub fn run(&mut self) {
        self.run_inner(|_| false);
    }

    /// Runs until virtual time reaches `deadline` (or the queue empties).
    pub fn run_until_time(&mut self, deadline: Micros) {
        self.run_inner(|sim| sim.now >= deadline);
    }

    /// Runs until `target` total client deliveries have been observed (or a
    /// cap / queue exhaustion stops the run).
    pub fn run_until_deliveries(&mut self, target: usize) {
        self.run_inner(|sim| sim.deliveries.len() >= target);
    }

    fn start_nodes(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let mut ids: Vec<NodeId> = self.nodes.keys().copied().collect();
        ids.sort(); // deterministic start order regardless of map layout
        for id in ids {
            let mut out = Actions::new(self.now);
            if let Some(entry) = self.nodes.get_mut(&id) {
                entry.node.on_start(&mut out);
            }
            self.apply_actions(id, out);
        }
    }

    fn run_inner(&mut self, mut stop: impl FnMut(&SimNet<M, R>) -> bool) {
        self.start_nodes();
        while !stop(self) {
            if self.now >= self.config.max_virtual_time
                || self.stats.events >= self.config.max_events
            {
                break;
            }
            let Some(QueueItem { event, .. }) = self.queue.pop() else {
                break;
            };
            debug_assert!(event.at >= self.now, "time went backwards");
            self.now = event.at;
            self.clock.set(self.now.as_micros());
            self.stats.events += 1;
            self.dispatch(event);
            if self.check_interval > 0
                && !self.checkers.is_empty()
                && self.stats.events - self.last_check >= self.check_interval
            {
                self.check_invariants();
            }
        }
        self.check_invariants();
    }

    fn dispatch(&mut self, event: Event<M>) {
        let node_id = event.node;
        match event.kind {
            EventKind::Crash => {
                self.faults.crash(node_id);
            }
            EventKind::Timer { id, generation } => {
                if self.faults.is_crashed(node_id) {
                    return;
                }
                let Some(entry) = self.nodes.get_mut(&node_id) else {
                    return;
                };
                if entry.timer_generation.get(&id).copied() != Some(generation) {
                    return; // cancelled or re-armed
                }
                entry.timer_generation.remove(&id);
                self.stats.timers_fired += 1;
                self.recorder.counter("sim.timers", 1);
                if let Some((trace, _)) = &mut self.trace {
                    trace.record(TraceEvent::Timer {
                        at: self.now,
                        node: node_id,
                    });
                }
                let entry = self.nodes.get_mut(&node_id).expect("present");
                let mut out = Actions::new(self.now);
                entry.node.on_timer(id, &mut out);
                self.apply_actions(node_id, out);
            }
            EventKind::Deliver { from, msg } => {
                if self.faults.blocks(from, node_id) {
                    self.stats.messages_dropped += 1;
                    return;
                }
                // FIFO server: queue behind the node's in-progress work,
                // then pay the service cost; the node observes the world at
                // service completion.
                let (start, service) = {
                    let Some(entry) = self.nodes.get(&node_id) else {
                        return;
                    };
                    let start = self.now.max(entry.busy_until);
                    let service = match &mut self.cost_fn {
                        Some(f) => f(node_id, msg.as_ref()),
                        None => Micros::ZERO,
                    };
                    (start, service)
                };
                let completion = start + service;
                if let Some((trace, kind)) = &mut self.trace {
                    trace.record(TraceEvent::Delivered {
                        at: completion,
                        from,
                        to: node_id,
                        kind: kind(msg.as_ref()),
                    });
                }
                let entry = self.nodes.get_mut(&node_id).expect("checked above");
                entry.busy_until = completion;
                self.stats.messages_delivered += 1;
                if self.recorder.enabled() {
                    self.recorder.counter("sim.delivered", 1);
                    // TCP-runtime name parity (DESIGN.md §9b).
                    self.recorder.counter("net.frames_in", 1);
                    let bytes = self.size_fn.as_ref().map(|size| size(msg.as_ref()));
                    if let Some(b) = bytes {
                        self.recorder.counter("net.bytes_in", b);
                    }
                    if let Some((_, kind)) = &self.kind_counts {
                        let k = kind(msg.as_ref());
                        self.recorder.counter_kind("net.frames_in", k, 1);
                        if let Some(b) = bytes {
                            self.recorder.counter_kind("net.bytes_in", k, b);
                        }
                    }
                }
                // The node observes the world at service completion:
                // mirror that into the telemetry clock too.
                self.clock.set(completion.as_micros());
                let mut out = Actions::new(completion);
                entry.node.on_message(from, msg.into_msg(), &mut out);
                // Advance the clock view for action scheduling: actions take
                // effect at service completion.
                let saved_now = self.now;
                self.now = completion;
                self.apply_actions(node_id, out);
                self.now = saved_now;
                self.clock.set(self.now.as_micros());
            }
        }
    }

    fn apply_actions(&mut self, origin: NodeId, mut out: Actions<M, R>) {
        for action in out.take() {
            match action {
                Action::Send { to, msg } => {
                    self.send_payload(origin, to, Payload::One(msg));
                }
                Action::Broadcast { peers, msg } => {
                    // One shared payload; every per-link effect (faults,
                    // latency, jitter, receiver cost) still applies per
                    // peer inside send_payload.
                    for to in peers {
                        self.send_payload(origin, to, Payload::Shared(Arc::clone(&msg)));
                    }
                }
                Action::SetTimer { id, after } => {
                    let generation = {
                        let Some(entry) = self.nodes.get_mut(&origin) else {
                            continue;
                        };
                        entry.next_generation += 1;
                        let g = entry.next_generation;
                        entry.timer_generation.insert(id, g);
                        g
                    };
                    self.push_event(
                        self.now + after,
                        origin,
                        EventKind::Timer { id, generation },
                    );
                }
                Action::CancelTimer { id } => {
                    if let Some(entry) = self.nodes.get_mut(&origin) {
                        entry.timer_generation.remove(&id);
                    }
                }
                Action::Deliver(delivery) => {
                    self.deliveries.push(DeliveryRecord {
                        client: origin,
                        at: self.now,
                        delivery,
                    });
                }
                Action::Work { duration } => {
                    // Charge local compute: the node's FIFO server stays
                    // busy for `duration` past the instant the work was
                    // emitted, so subsequent deliveries queue behind it
                    // exactly like per-message service time.
                    if let Some(entry) = self.nodes.get_mut(&origin) {
                        entry.busy_until = entry.busy_until.max(self.now + duration);
                    }
                }
            }
        }
    }

    fn send_payload(&mut self, from: NodeId, to: NodeId, msg: Payload<M>) {
        let mut dropped = self.faults.blocks(from, to)
            || (self.faults.drop_prob > 0.0 && self.rng.gen::<f64>() < self.faults.drop_prob);
        // Targeted delivery rules: every matching rule rolls its own drop
        // and contributes its delay plus rolled jitter. Rolls happen even
        // for already-dropped messages so rule ordering never perturbs
        // the rng stream of later decisions within one send.
        let mut extra = Micros::ZERO;
        if !self.faults.rules.is_empty() {
            let kind = self.fault_kind.as_ref().map(|f| f(msg.as_ref()));
            for rule in &self.faults.rules {
                if !rule.matches(kind, from, to) {
                    continue;
                }
                if rule.drop_prob > 0.0 && self.rng.gen::<f64>() < rule.drop_prob {
                    dropped = true;
                }
                extra += rule.delay;
                let bound = rule.jitter.as_micros();
                if bound > 0 {
                    extra += Micros(self.rng.gen_range(0..=bound));
                }
            }
        }
        if dropped {
            self.stats.messages_dropped += 1;
            if let Some((trace, kind)) = &mut self.trace {
                trace.record(TraceEvent::Dropped {
                    at: self.now,
                    from,
                    to,
                    kind: kind(msg.as_ref()),
                });
            }
            if let Some((counts, kind)) = &mut self.kind_counts {
                *counts.dropped.entry(kind(msg.as_ref())).or_insert(0) += 1;
            }
            if self.recorder.enabled() {
                self.recorder.counter("sim.dropped", 1);
                if let Some((_, kind)) = &self.kind_counts {
                    self.recorder
                        .counter_kind("sim.dropped", kind(msg.as_ref()), 1);
                }
            }
            return;
        }
        if let Some((trace, kind)) = &mut self.trace {
            trace.record(TraceEvent::Sent {
                at: self.now,
                from,
                to,
                kind: kind(msg.as_ref()),
            });
        }
        if let Some((counts, kind)) = &mut self.kind_counts {
            *counts.sent.entry(kind(msg.as_ref())).or_insert(0) += 1;
        }
        if self.recorder.enabled() {
            self.recorder.counter("sim.sent", 1);
            // TCP-runtime name parity (DESIGN.md §9b): the same frame and
            // (estimated) byte counters a live scrape would see.
            self.recorder.counter("net.frames_out", 1);
            let bytes = self.size_fn.as_ref().map(|size| size(msg.as_ref()));
            if let Some(b) = bytes {
                self.recorder.counter("net.bytes_out", b);
            }
            if let Some((_, kind)) = &self.kind_counts {
                let k = kind(msg.as_ref());
                self.recorder.counter_kind("sim.sent", k, 1);
                self.recorder.counter_kind("net.frames_out", k, 1);
                if let Some(b) = bytes {
                    self.recorder.counter_kind("net.bytes_out", k, b);
                }
            }
        }
        let Some(from_entry) = self.nodes.get(&from) else {
            return;
        };
        let Some(to_entry) = self.nodes.get(&to) else {
            return;
        };
        let base = self.topology.owd(from_entry.region, to_entry.region);
        let jitter_bound = self.topology.jitter_bound().as_micros();
        let jitter = if jitter_bound == 0 {
            0
        } else {
            self.rng.gen_range(0..=jitter_bound)
        };
        self.stats.messages_sent += 1;
        self.push_event(
            self.now + base + Micros(jitter) + extra,
            to,
            EventKind::Deliver { from, msg },
        );
    }

    fn push_event(&mut self, at: Micros, node: NodeId, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(QueueItem {
            key: Reverse((at.as_micros(), seq)),
            event: Event { at, node, kind },
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezbft_smr::{ClientId, ReplicaId, Timestamp};

    /// Ping-pong test protocol: node 0 sends `k` to node 1, node 1 replies
    /// `k + 1`, until a bound; completions are reported as deliveries.
    struct Pinger {
        me: NodeId,
        peer: NodeId,
        limit: u32,
        active: bool,
    }

    impl ProtocolNode for Pinger {
        type Message = u32;
        type Response = u32;

        fn id(&self) -> NodeId {
            self.me
        }

        fn on_start(&mut self, out: &mut Actions<u32, u32>) {
            if self.active {
                out.send(self.peer, 0);
            }
        }

        fn on_message(&mut self, _from: NodeId, msg: u32, out: &mut Actions<u32, u32>) {
            if msg >= self.limit {
                out.deliver(Timestamp(msg as u64), msg, true);
                return;
            }
            out.send(self.peer, msg + 1);
        }
    }

    /// A node that exercises timers: arms, re-arms, cancels.
    struct TimerNode {
        me: NodeId,
        fired: Vec<u64>,
    }

    impl ProtocolNode for TimerNode {
        type Message = u32;
        type Response = u32;

        fn id(&self) -> NodeId {
            self.me
        }

        fn on_start(&mut self, out: &mut Actions<u32, u32>) {
            out.set_timer(TimerId(1), Micros(100));
            out.set_timer(TimerId(2), Micros(200));
            out.set_timer(TimerId(2), Micros(300)); // re-arm: only 300 fires
            out.set_timer(TimerId(3), Micros(50));
            out.cancel_timer(TimerId(3)); // never fires
        }

        fn on_message(&mut self, _from: NodeId, _msg: u32, _out: &mut Actions<u32, u32>) {}

        fn on_timer(&mut self, id: TimerId, out: &mut Actions<u32, u32>) {
            self.fired.push(id.0);
            out.deliver(Timestamp(id.0), id.0 as u32, false);
        }
    }

    fn two_node_sim() -> SimNet<u32, u32> {
        // Both nodes in the same region: each hop pays the 100us local delay.
        let mut sim = SimNet::new(
            Topology::lan(1).with_jitter(Micros::ZERO),
            SimConfig::default(),
        );
        let a = NodeId::Replica(ReplicaId::new(0));
        let b = NodeId::Replica(ReplicaId::new(1));
        sim.add_node(
            Region(0),
            Box::new(Pinger {
                me: a,
                peer: b,
                limit: 10,
                active: true,
            }),
        );
        sim.add_node(
            Region(0),
            Box::new(Pinger {
                me: b,
                peer: a,
                limit: 10,
                active: false,
            }),
        );
        sim
    }

    #[test]
    fn ping_pong_completes() {
        let mut sim = two_node_sim();
        sim.run_until_deliveries(1);
        assert_eq!(sim.deliveries().len(), 1);
        assert_eq!(sim.deliveries()[0].delivery.response, 10);
        // Message k arrives at (k+1) * 100us; delivery on receipt of msg 10.
        assert_eq!(sim.deliveries()[0].at, Micros(11 * 100));
        assert!(sim.stats().messages_delivered >= 10);
    }

    #[test]
    fn kind_counting_tallies_sent_messages() {
        let mut sim = two_node_sim();
        // Classify by parity: pings 0..=10 alternate even/odd.
        sim.count_kinds(|m| if m % 2 == 0 { "even" } else { "odd" });
        sim.run_until_deliveries(1);
        assert_eq!(sim.sent_of_kind("even"), 6); // 0, 2, 4, 6, 8, 10
        assert_eq!(sim.sent_of_kind("odd"), 5); // 1, 3, 5, 7, 9
        assert_eq!(sim.sent_of_kind("unknown"), 0);
        assert_eq!(sim.kind_counts(), vec![("even", 6), ("odd", 5)]);
        let total: u64 = sim.kind_counts().iter().map(|&(_, c)| c).sum();
        assert_eq!(total, sim.stats().messages_sent, "counters match stats");
    }

    #[test]
    fn kind_counting_disabled_returns_zero() {
        let mut sim = two_node_sim();
        sim.run_until_deliveries(1);
        assert_eq!(sim.sent_of_kind("even"), 0);
        assert!(sim.kind_counts().is_empty());
        assert!(sim.dropped_kind_counts().is_empty());
    }

    #[test]
    fn dropped_messages_are_counted_and_traced_by_kind() {
        let mut sim = two_node_sim();
        sim.count_kinds(|m| if m % 2 == 0 { "even" } else { "odd" });
        sim.enable_trace(64, |m| if m % 2 == 0 { "even" } else { "odd" });
        // Sever b → a: the pong of ping 0 (msg 1, "odd") is suppressed.
        sim.faults_mut()
            .cut_link(ReplicaId::new(1), ReplicaId::new(0));
        sim.run_until_time(Micros(5_000));
        assert_eq!(sim.stats().messages_dropped, 1);
        assert_eq!(sim.dropped_of_kind("odd"), 1);
        assert_eq!(sim.dropped_of_kind("even"), 0);
        assert_eq!(sim.dropped_kind_counts(), vec![("odd", 1)]);
        // Sent counters exclude the drop; the trace tags it by kind.
        assert_eq!(sim.sent_of_kind("even"), 1);
        let dropped: Vec<&TraceEvent> = sim
            .trace()
            .unwrap()
            .events()
            .filter(|e| matches!(e, TraceEvent::Dropped { .. }))
            .collect();
        assert_eq!(dropped.len(), 1);
        assert!(matches!(
            dropped[0],
            TraceEvent::Dropped { kind: "odd", .. }
        ));
    }

    #[test]
    fn recorder_mirrors_stats_and_virtual_time() {
        use ezbft_obs::{Clock as _, MemRecorder};
        let rec = Arc::new(MemRecorder::new());
        let mut sim = two_node_sim();
        sim.count_kinds(|m| if m % 2 == 0 { "even" } else { "odd" });
        sim.set_recorder(rec.clone());
        let clock = sim.virtual_clock();
        sim.run_until_deliveries(1);
        assert_eq!(rec.counter_value("sim.sent"), sim.stats().messages_sent);
        assert_eq!(
            rec.counter_value("sim.delivered"),
            sim.stats().messages_delivered
        );
        assert_eq!(rec.counter_kind_value("sim.sent", "even"), 6);
        // The clock mirror ends at the simulation's final virtual time.
        assert_eq!(clock.now_us(), sim.now().as_micros());
    }

    #[test]
    fn recorder_emits_tcp_parity_counter_names() {
        use ezbft_obs::MemRecorder;
        let rec = Arc::new(MemRecorder::new());
        let mut sim = two_node_sim();
        sim.count_kinds(|m| if m % 2 == 0 { "even" } else { "odd" });
        // Pinger messages are `u64`s; pretend each encodes to 8 bytes.
        sim.estimate_sizes(|_| 8);
        sim.set_recorder(rec.clone());
        sim.run_until_deliveries(1);
        // Same names the TCP runtime's reader/writer threads emit,
        // kind-labelled like `sim.sent`, bytes at the estimated size.
        let sent = sim.stats().messages_sent;
        let delivered = sim.stats().messages_delivered;
        assert_eq!(rec.counter_value("net.frames_out"), sent);
        assert_eq!(rec.counter_value("net.frames_in"), delivered);
        assert_eq!(rec.counter_value("net.bytes_out"), 8 * sent);
        assert_eq!(rec.counter_value("net.bytes_in"), 8 * delivered);
        assert_eq!(
            rec.counter_kind_value("net.frames_out", "even"),
            rec.counter_kind_value("sim.sent", "even")
        );
        assert_eq!(rec.counter_kind_value("net.bytes_out", "even"), 8 * 6);
    }

    #[test]
    fn frame_parity_counters_skip_bytes_without_an_estimator() {
        use ezbft_obs::MemRecorder;
        let rec = Arc::new(MemRecorder::new());
        let mut sim = two_node_sim();
        sim.set_recorder(rec.clone());
        sim.run_until_deliveries(1);
        assert!(rec.counter_value("net.frames_out") > 0);
        assert_eq!(rec.counter_value("net.bytes_out"), 0);
        assert_eq!(rec.counter_value("net.bytes_in"), 0);
    }

    #[test]
    fn determinism_same_seed_same_run() {
        let run = |seed: u64| {
            let mut sim = SimNet::new(
                Topology::exp1(),
                SimConfig {
                    seed,
                    ..Default::default()
                },
            );
            let a = NodeId::Replica(ReplicaId::new(0));
            let b = NodeId::Replica(ReplicaId::new(1));
            sim.add_node(
                Region(0),
                Box::new(Pinger {
                    me: a,
                    peer: b,
                    limit: 20,
                    active: true,
                }),
            );
            sim.add_node(
                Region(3),
                Box::new(Pinger {
                    me: b,
                    peer: a,
                    limit: 20,
                    active: false,
                }),
            );
            sim.run_until_deliveries(1);
            (sim.now(), sim.stats().messages_sent)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0, run(8).0); // different jitter
    }

    #[test]
    fn timers_fire_rearm_cancel() {
        let mut sim: SimNet<u32, u32> = SimNet::new(
            Topology::lan(1).with_jitter(Micros::ZERO),
            SimConfig::default(),
        );
        let me = NodeId::Client(ClientId::new(0));
        sim.add_node(
            Region(0),
            Box::new(TimerNode {
                me,
                fired: Vec::new(),
            }),
        );
        sim.run();
        // Timer 3 cancelled; timer 2 re-armed to 300; timer 1 at 100.
        let fired: Vec<u64> = sim
            .deliveries()
            .iter()
            .map(|d| d.delivery.response as u64)
            .collect();
        assert_eq!(fired, vec![1, 2]);
        assert_eq!(sim.deliveries()[0].at, Micros(100));
        assert_eq!(sim.deliveries()[1].at, Micros(300));
        assert_eq!(sim.stats().timers_fired, 2);
    }

    #[test]
    fn crashed_node_is_silent() {
        let mut sim = two_node_sim();
        sim.faults_mut().crash(ReplicaId::new(1));
        sim.run_until_time(Micros::from_secs(1));
        assert_eq!(sim.deliveries().len(), 0);
        assert!(sim.stats().messages_dropped >= 1);
    }

    #[test]
    fn scheduled_crash_stops_progress_midway() {
        let mut sim = two_node_sim();
        // Each hop takes 100us; crash node 1 at 450us → roughly 4 hops happen.
        sim.schedule_crash(ReplicaId::new(1), Micros(450));
        sim.run_until_time(Micros::from_secs(1));
        assert_eq!(sim.deliveries().len(), 0);
        let delivered = sim.stats().messages_delivered;
        assert!((3..=6).contains(&delivered), "delivered={delivered}");
    }

    #[test]
    fn cut_link_blocks_direction() {
        let mut sim = two_node_sim();
        sim.faults_mut()
            .cut_link(ReplicaId::new(0), ReplicaId::new(1));
        sim.run_until_time(Micros::from_secs(1));
        // The opening ping is dropped; nothing ever happens.
        assert_eq!(sim.stats().messages_delivered, 0);
    }

    #[test]
    fn wan_delay_applied() {
        let mut sim = SimNet::new(
            Topology::exp1().with_jitter(Micros::ZERO),
            SimConfig::default(),
        );
        let a = NodeId::Replica(ReplicaId::new(0));
        let b = NodeId::Replica(ReplicaId::new(1));
        // Virginia <-> Australia: 100ms one-way; ping out + pong back.
        sim.add_node(
            Region(0),
            Box::new(Pinger {
                me: a,
                peer: b,
                limit: 1,
                active: true,
            }),
        );
        sim.add_node(
            Region(3),
            Box::new(Pinger {
                me: b,
                peer: a,
                limit: 1,
                active: false,
            }),
        );
        sim.run_until_deliveries(1);
        assert_eq!(sim.deliveries()[0].at, Micros::from_millis(200));
    }

    #[test]
    fn cost_model_queues_messages_fifo() {
        // One receiver, two messages arriving together: the second waits for
        // the first's service to finish.
        struct Burst {
            me: NodeId,
            peer: NodeId,
        }
        impl ProtocolNode for Burst {
            type Message = u32;
            type Response = u32;
            fn id(&self) -> NodeId {
                self.me
            }
            fn on_start(&mut self, out: &mut Actions<u32, u32>) {
                out.send(self.peer, 1);
                out.send(self.peer, 2);
            }
            fn on_message(&mut self, _f: NodeId, _m: u32, _o: &mut Actions<u32, u32>) {}
        }
        struct Sink {
            me: NodeId,
        }
        impl ProtocolNode for Sink {
            type Message = u32;
            type Response = u32;
            fn id(&self) -> NodeId {
                self.me
            }
            fn on_message(&mut self, _f: NodeId, m: u32, out: &mut Actions<u32, u32>) {
                out.deliver(Timestamp(m as u64), m, true);
            }
        }
        let mut sim = SimNet::new(
            Topology::lan(1).with_jitter(Micros::ZERO),
            SimConfig::default(),
        );
        let a = NodeId::Replica(ReplicaId::new(0));
        let b = NodeId::Replica(ReplicaId::new(1));
        sim.add_node(Region(0), Box::new(Burst { me: a, peer: b }));
        sim.add_node(Region(0), Box::new(Sink { me: b }));
        sim.set_cost_fn(|_, _| Micros(1_000));
        sim.run();
        let times: Vec<u64> = sim.deliveries().iter().map(|d| d.at.as_micros()).collect();
        // Arrivals at 100us; service 1ms each, FIFO: completions at 1.1ms, 2.1ms.
        assert_eq!(times, vec![1_100, 2_100]);
    }

    #[test]
    fn drop_probability_loses_messages() {
        let mut sim = two_node_sim();
        sim.faults_mut().set_drop_probability(1.0);
        sim.run_until_time(Micros::from_secs(1));
        assert_eq!(sim.stats().messages_delivered, 0);
        assert!(sim.stats().messages_dropped >= 1);
    }

    #[test]
    #[should_panic(expected = "duplicate node")]
    fn duplicate_node_rejected() {
        let mut sim: SimNet<u32, u32> = SimNet::new(Topology::lan(1), SimConfig::default());
        let a = NodeId::Replica(ReplicaId::new(0));
        sim.add_node(
            Region(0),
            Box::new(Pinger {
                me: a,
                peer: a,
                limit: 1,
                active: false,
            }),
        );
        sim.add_node(
            Region(0),
            Box::new(Pinger {
                me: a,
                peer: a,
                limit: 1,
                active: false,
            }),
        );
    }

    #[test]
    fn trace_records_send_deliver_and_drops() {
        let mut sim = two_node_sim();
        sim.enable_trace(64, |_m| "ping");
        sim.faults_mut().set_drop_probability(0.0);
        sim.run_until_deliveries(1);
        let trace = sim.trace().expect("enabled");
        assert!(trace.recorded() >= 10, "recorded {}", trace.recorded());
        let rendered = trace.render();
        assert!(rendered.contains("send ping"));
        assert!(rendered.contains("recv ping"));
        // Times are non-decreasing within the window.
        let times: Vec<u64> = trace.events().map(|e| e.at().as_micros()).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn broadcast_shares_one_allocation_across_peers() {
        // A node broadcasting to 3 peers queues one Arc'd payload; every
        // peer still receives the message and per-link latency applies.
        struct Caster {
            me: NodeId,
            peers: Vec<NodeId>,
        }
        impl ProtocolNode for Caster {
            type Message = Arc<Vec<u8>>;
            type Response = u32;
            fn id(&self) -> NodeId {
                self.me
            }
            fn on_start(&mut self, out: &mut Actions<Arc<Vec<u8>>, u32>) {
                out.broadcast(self.peers.clone(), Arc::new(vec![7u8; 1024]));
            }
            fn on_message(
                &mut self,
                _f: NodeId,
                _m: Arc<Vec<u8>>,
                _o: &mut Actions<Arc<Vec<u8>>, u32>,
            ) {
            }
        }
        struct Probe {
            me: NodeId,
        }
        impl ProtocolNode for Probe {
            type Message = Arc<Vec<u8>>;
            type Response = u32;
            fn id(&self) -> NodeId {
                self.me
            }
            fn on_message(
                &mut self,
                _f: NodeId,
                m: Arc<Vec<u8>>,
                out: &mut Actions<Arc<Vec<u8>>, u32>,
            ) {
                // The inner Arc witnesses sharing: the simulator's Payload
                // wrapper never deep-clones the Vec itself.
                out.deliver(Timestamp(m.len() as u64), m.len() as u32, true);
            }
        }
        let mut sim: SimNet<Arc<Vec<u8>>, u32> = SimNet::new(
            Topology::lan(1).with_jitter(Micros::ZERO),
            SimConfig::default(),
        );
        let caster = NodeId::Replica(ReplicaId::new(0));
        let peers: Vec<NodeId> = (1..4).map(|i| NodeId::Replica(ReplicaId::new(i))).collect();
        sim.add_node(
            Region(0),
            Box::new(Caster {
                me: caster,
                peers: peers.clone(),
            }),
        );
        for p in &peers {
            sim.add_node(Region(0), Box::new(Probe { me: *p }));
        }
        sim.run();
        assert_eq!(sim.deliveries().len(), 3, "all peers got the broadcast");
        assert_eq!(sim.stats().messages_sent, 3, "wire stats count per link");
        assert_eq!(sim.stats().messages_delivered, 3);
    }

    #[test]
    fn broadcast_respects_per_link_faults() {
        let sim = two_node_sim();
        // Replace the pingers: one broadcast from node 0 to both 1-and-1
        // duplicated; cut one direction and confirm only the surviving
        // copies arrive.
        struct Caster {
            me: NodeId,
            peers: Vec<NodeId>,
        }
        impl ProtocolNode for Caster {
            type Message = u32;
            type Response = u32;
            fn id(&self) -> NodeId {
                self.me
            }
            fn on_start(&mut self, out: &mut Actions<u32, u32>) {
                out.broadcast(self.peers.clone(), 5);
            }
            fn on_message(&mut self, _f: NodeId, _m: u32, _o: &mut Actions<u32, u32>) {}
        }
        let a = NodeId::Replica(ReplicaId::new(10));
        let b = NodeId::Replica(ReplicaId::new(11));
        let c = NodeId::Replica(ReplicaId::new(12));
        let mut sim2: SimNet<u32, u32> = SimNet::new(
            Topology::lan(1).with_jitter(Micros::ZERO),
            SimConfig::default(),
        );
        sim2.add_node(
            Region(0),
            Box::new(Caster {
                me: a,
                peers: vec![b, c],
            }),
        );
        sim2.add_node(
            Region(0),
            Box::new(Caster {
                me: b,
                peers: vec![],
            }),
        );
        sim2.add_node(
            Region(0),
            Box::new(Caster {
                me: c,
                peers: vec![],
            }),
        );
        sim2.faults_mut().cut_link(a, b);
        sim2.run();
        assert_eq!(
            sim2.stats().messages_dropped,
            1,
            "cut link drops only its copy"
        );
        assert_eq!(sim2.stats().messages_delivered, 1);
        drop(sim);
    }

    #[test]
    fn restart_revives_a_crashed_node_with_fresh_state() {
        // Crash the responder mid-ping-pong, then restart it: the pings
        // stalled while it was down resume once the client side retries —
        // here we model the retry by the restarted node's on_start ping.
        let mut sim = two_node_sim();
        let b = NodeId::Replica(ReplicaId::new(1));
        sim.schedule_crash(ReplicaId::new(1), Micros(250));
        sim.run_until_time(Micros::from_secs(1));
        assert!(sim.deliveries().is_empty(), "crash stops the exchange");
        let dropped_before = sim.stats().messages_dropped;
        assert!(dropped_before >= 1);

        // Restart node 1 as an *active* pinger: its on_start runs at the
        // current virtual time and the exchange completes.
        sim.restart_node(
            Region(0),
            Box::new(Pinger {
                me: b,
                peer: NodeId::Replica(ReplicaId::new(0)),
                limit: 10,
                active: true,
            }),
        );
        sim.run_until_deliveries(1);
        assert_eq!(sim.deliveries().len(), 1, "progress after restart");
        assert!(sim.deliveries()[0].at > Micros(250));
    }

    #[test]
    fn restart_invalidates_stale_timers() {
        // A node arms a timer, crashes, and is restarted before the timer's
        // deadline: the stale timer must not fire into the new instance.
        struct OneTimer {
            me: NodeId,
        }
        impl ProtocolNode for OneTimer {
            type Message = u32;
            type Response = u32;
            fn id(&self) -> NodeId {
                self.me
            }
            fn on_start(&mut self, out: &mut Actions<u32, u32>) {
                out.set_timer(TimerId(1), Micros(1_000));
            }
            fn on_message(&mut self, _f: NodeId, _m: u32, _o: &mut Actions<u32, u32>) {}
            fn on_timer(&mut self, id: TimerId, out: &mut Actions<u32, u32>) {
                out.deliver(Timestamp(id.0), id.0 as u32, false);
            }
        }
        let me = NodeId::Client(ClientId::new(0));
        let mut sim: SimNet<u32, u32> = SimNet::new(
            Topology::lan(1).with_jitter(Micros::ZERO),
            SimConfig::default(),
        );
        sim.add_node(Region(0), Box::new(OneTimer { me }));
        // Start the node (arms the old timer for t=1000) without letting
        // any event run, then restart: the old instance's queued timer
        // event and the new instance's rearm share TimerId(1) and the same
        // deadline, but the generation counter carried across the restart
        // tells them apart.
        sim.run_until_deliveries(0);
        sim.restart_node(Region(0), Box::new(OneTimer { me }));
        sim.run();
        // Exactly one firing: the restarted instance's.
        assert_eq!(sim.deliveries().len(), 1);
        assert_eq!(sim.deliveries()[0].at, Micros(1_000));
        assert_eq!(sim.stats().timers_fired, 1);
    }

    #[test]
    fn max_events_cap_stops_runaway() {
        struct Storm {
            me: NodeId,
        }
        impl ProtocolNode for Storm {
            type Message = u32;
            type Response = u32;
            fn id(&self) -> NodeId {
                self.me
            }
            fn on_start(&mut self, out: &mut Actions<u32, u32>) {
                out.send(self.me, 0);
            }
            fn on_message(&mut self, _f: NodeId, m: u32, out: &mut Actions<u32, u32>) {
                out.send(self.me, m);
            }
        }
        let mut sim = SimNet::new(
            Topology::lan(1),
            SimConfig {
                max_events: 1_000,
                ..Default::default()
            },
        );
        let a = NodeId::Replica(ReplicaId::new(0));
        sim.add_node(Region(0), Box::new(Storm { me: a }));
        sim.run();
        assert!(sim.stats().events <= 1_001);
    }

    #[test]
    fn invariant_sweeps_report_once_and_capture_the_schedule() {
        struct TripsAfter(Micros);
        impl Invariant<u32, u32> for TripsAfter {
            fn name(&self) -> &'static str {
                "trips-after"
            }
            fn check(&mut self, sim: &SimNet<u32, u32>) -> Option<String> {
                (sim.now() >= self.0).then(|| format!("tripped at {}", sim.now().as_micros()))
            }
        }
        let mut sim = two_node_sim();
        sim.enable_trace(16, |_| "ping");
        sim.add_invariant(TripsAfter(Micros(300)));
        sim.set_check_interval(1);
        sim.run_until_deliveries(1);
        let v = sim.violations();
        assert_eq!(v.len(), 1, "checker retires after the first report");
        assert_eq!(v[0].invariant, "trips-after");
        assert!(v[0].at >= Micros(300));
        assert!(v[0].detail.contains("tripped at"));
        assert!(
            v[0].schedule.contains("ping"),
            "violation carries the offending schedule: {}",
            v[0].schedule
        );
    }

    #[test]
    fn end_of_run_sweep_fires_even_with_periodic_checks_disabled() {
        struct Always;
        impl Invariant<u32, u32> for Always {
            fn name(&self) -> &'static str {
                "always"
            }
            fn check(&mut self, _sim: &SimNet<u32, u32>) -> Option<String> {
                Some("unconditional".into())
            }
        }
        let mut sim = two_node_sim();
        sim.add_invariant(Always);
        sim.set_check_interval(0);
        sim.run_until_deliveries(1);
        assert_eq!(sim.violations().len(), 1);
        assert!(sim.violations()[0].schedule.is_empty(), "no trace enabled");
    }

    #[test]
    fn delivery_rules_scope_drops_by_kind() {
        // Pinger counts up: classify even payloads separately from odd and
        // drop only the odd ones — the exchange dies on the first odd hop
        // while the even opener still gets through.
        let mut sim = two_node_sim();
        sim.classify_faults(|m| if m % 2 == 0 { "even" } else { "odd" });
        sim.faults_mut()
            .add_rule(DeliveryRule::for_kind("odd").drop_prob(1.0));
        sim.run_until_time(Micros::from_secs(1));
        assert_eq!(sim.stats().messages_delivered, 1);
        assert!(sim.stats().messages_dropped >= 1);
    }

    #[test]
    fn delivery_rules_delay_matched_messages() {
        let mut sim = two_node_sim();
        sim.classify_faults(|_| "ping");
        sim.faults_mut()
            .add_rule(DeliveryRule::for_kind("ping").delay(Micros(10_000)));
        sim.run_until_deliveries(1);
        // 11 hops to reach the limit, each paying 100us LAN + 10ms rule delay.
        assert_eq!(sim.deliveries()[0].at, Micros(11 * 10_100));
    }
}
