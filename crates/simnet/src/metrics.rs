//! Latency and throughput metrics collected from simulations.

use ezbft_obs::Log2Histogram;
use ezbft_smr::Micros;

/// A latency histogram over microsecond samples.
///
/// Recording feeds both a constant-time [`Log2Histogram`] (the default
/// quantile path — no sort on query, which keeps the simulator's
/// per-completion cost flat) and a retained sample vector for the exact
/// nearest-rank variant behind [`Histogram::exact_quantile`]
/// (paper-reproduction experiments want exact published numbers). The
/// two quantile paths agree within one log2 bucket by construction —
/// pinned by `bucketed_quantile_agrees_within_one_bucket` below.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    samples: Vec<u64>,
    sorted: bool,
    buckets: Log2Histogram,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: Micros) {
        self.samples.push(value.as_micros());
        self.sorted = false;
        self.buckets.record(value.as_micros());
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the histogram is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, or zero if empty.
    pub fn mean(&self) -> Micros {
        if self.samples.is_empty() {
            return Micros::ZERO;
        }
        let sum: u128 = self.samples.iter().map(|&s| s as u128).sum();
        Micros((sum / self.samples.len() as u128) as u64)
    }

    /// The `q`-quantile (0.0 ..= 1.0) from the log2 buckets: constant
    /// time, exact within one power-of-two bucket (the rank sample's
    /// bucket midpoint, clamped to the observed min/max). Zero if empty.
    pub fn quantile(&self, q: f64) -> Micros {
        Micros(self.buckets.quantile(q))
    }

    /// The exact nearest-rank `q`-quantile over the retained samples
    /// (sorts lazily). Paper-reproduction experiments use this; the
    /// default [`Histogram::quantile`] is the cheap bucketed variant.
    pub fn exact_quantile(&mut self, q: f64) -> Micros {
        if self.samples.is_empty() {
            return Micros::ZERO;
        }
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        let rank = ((q * self.samples.len() as f64).ceil() as usize).clamp(1, self.samples.len());
        Micros(self.samples[rank - 1])
    }

    /// Median (bucketed).
    pub fn median(&self) -> Micros {
        self.quantile(0.5)
    }

    /// 99th percentile (bucketed).
    pub fn p99(&self) -> Micros {
        self.quantile(0.99)
    }

    /// Maximum sample, or zero if empty.
    pub fn max(&self) -> Micros {
        Micros(self.buckets.max())
    }

    /// Minimum sample, or zero if empty.
    pub fn min(&self) -> Micros {
        Micros(self.buckets.min())
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
        self.buckets.merge(&other.buckets);
    }
}

/// Records request latencies keyed by an arbitrary group (e.g. region).
#[derive(Clone, Debug, Default)]
pub struct LatencyRecorder {
    groups: Vec<Histogram>,
}

impl LatencyRecorder {
    /// Creates a recorder with `groups` groups.
    pub fn new(groups: usize) -> Self {
        LatencyRecorder {
            groups: vec![Histogram::new(); groups],
        }
    }

    /// Records a latency sample in `group`.
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range.
    pub fn record(&mut self, group: usize, latency: Micros) {
        self.groups[group].record(latency);
    }

    /// The histogram for `group`.
    pub fn group(&self, group: usize) -> &Histogram {
        &self.groups[group]
    }

    /// Mutable histogram for `group` (for quantile queries).
    pub fn group_mut(&mut self, group: usize) -> &mut Histogram {
        &mut self.groups[group]
    }

    /// Number of groups.
    pub fn groups(&self) -> usize {
        self.groups.len()
    }

    /// Total samples across groups.
    pub fn total(&self) -> usize {
        self.groups.iter().map(|g| g.len()).sum()
    }
}

/// A sampled gauge: a quantity observed at instants of virtual time (e.g.
/// a replica's retained-log size). Unlike [`Histogram`] — which aggregates
/// a population of independent samples — a gauge tracks one time series,
/// and the interesting questions are its peak and its endpoint: a bounded
/// gauge has `max()` independent of how long the run was.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    samples: Vec<(Micros, u64)>,
}

impl Gauge {
    /// Creates an empty gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the observed value at virtual time `at`.
    pub fn record(&mut self, at: Micros, value: u64) {
        self.samples.push((at, value));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The largest observed value (zero if empty).
    pub fn max(&self) -> u64 {
        self.samples.iter().map(|&(_, v)| v).max().unwrap_or(0)
    }

    /// The last observed value (zero if empty).
    pub fn last(&self) -> u64 {
        self.samples.last().map(|&(_, v)| v).unwrap_or(0)
    }

    /// The recorded time series.
    pub fn samples(&self) -> &[(Micros, u64)] {
        &self.samples
    }
}

/// Counts completed operations over a virtual-time window to report
/// throughput.
#[derive(Clone, Copy, Debug, Default)]
pub struct ThroughputCounter {
    completed: u64,
    first: Option<Micros>,
    last: Micros,
}

impl ThroughputCounter {
    /// Creates an idle counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completion at virtual time `now`.
    pub fn record(&mut self, now: Micros) {
        self.completed += 1;
        if self.first.is_none() {
            self.first = Some(now);
        }
        self.last = now;
    }

    /// Number of completions recorded.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Throughput in operations per (virtual) second over the observed
    /// window, or zero with fewer than two completions.
    pub fn ops_per_sec(&self) -> f64 {
        let Some(first) = self.first else { return 0.0 };
        let window = self.last.saturating_sub(first).as_secs_f64();
        if window <= 0.0 || self.completed < 2 {
            return 0.0;
        }
        (self.completed - 1) as f64 / window
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 40, 50] {
            h.record(Micros(v));
        }
        assert_eq!(h.len(), 5);
        assert_eq!(h.mean(), Micros(30));
        assert_eq!(h.min(), Micros(10));
        assert_eq!(h.max(), Micros(50));
        // The exact path keeps the published-numbers contract.
        assert_eq!(h.exact_quantile(0.5), Micros(30));
        assert_eq!(h.exact_quantile(1.0), Micros(50));
        assert_eq!(h.exact_quantile(0.0), Micros(10));
    }

    #[test]
    fn histogram_empty_is_zero() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), Micros::ZERO);
        assert_eq!(h.median(), Micros::ZERO);
        assert_eq!(h.exact_quantile(0.5), Micros::ZERO);
        assert_eq!(h.max(), Micros::ZERO);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        a.record(Micros(1));
        let mut b = Histogram::new();
        b.record(Micros(3));
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.mean(), Micros(2));
        assert_eq!(a.max(), Micros(3));
    }

    #[test]
    fn p99_of_hundred() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(Micros(v));
        }
        assert_eq!(h.exact_quantile(0.99), Micros(99));
        // Bucketed p99 lands in the same log2 bucket as the exact one.
        assert_eq!(
            Log2Histogram::bucket_index(h.p99().as_micros()),
            Log2Histogram::bucket_index(99)
        );
    }

    #[test]
    fn bucketed_quantile_agrees_within_one_bucket() {
        // A broad, skewed distribution (quadratic tail) plus an exact
        // duplicate-heavy head: for every quantile the bucketed answer
        // must sit in the same log2 bucket as the exact nearest-rank
        // sample — the advertised contract of the cheap default path.
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(Micros(v * v % 7919 + 1));
        }
        for _ in 0..100 {
            h.record(Micros(42));
        }
        for q in [0.0, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
            let exact = h.exact_quantile(q).as_micros();
            let bucketed = h.quantile(q).as_micros();
            assert_eq!(
                Log2Histogram::bucket_index(bucketed),
                Log2Histogram::bucket_index(exact),
                "q={q}: bucketed {bucketed} vs exact {exact}"
            );
        }
    }

    #[test]
    fn recorder_groups() {
        let mut r = LatencyRecorder::new(2);
        r.record(0, Micros(5));
        r.record(1, Micros(7));
        r.record(1, Micros(9));
        assert_eq!(r.groups(), 2);
        assert_eq!(r.total(), 3);
        assert_eq!(r.group(0).len(), 1);
        // Nearest-rank median of {7, 9} is the lower sample.
        assert_eq!(r.group_mut(1).exact_quantile(0.5), Micros(7));
    }

    #[test]
    fn gauge_tracks_peak_and_endpoint() {
        let mut g = Gauge::new();
        assert!(g.is_empty());
        assert_eq!(g.max(), 0);
        for (t, v) in [(0u64, 3u64), (10, 9), (20, 4)] {
            g.record(Micros(t), v);
        }
        assert_eq!(g.len(), 3);
        assert_eq!(g.max(), 9);
        assert_eq!(g.last(), 4);
        assert_eq!(g.samples()[1], (Micros(10), 9));
    }

    #[test]
    fn throughput_counter() {
        let mut t = ThroughputCounter::new();
        assert_eq!(t.ops_per_sec(), 0.0);
        // 11 completions, 1 per 100ms: 10 intervals over 1s → 10 ops/s.
        for i in 0..11u64 {
            t.record(Micros(i * 100_000));
        }
        assert_eq!(t.completed(), 11);
        assert!((t.ops_per_sec() - 10.0).abs() < 1e-9);
    }
}
