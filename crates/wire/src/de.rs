//! The deserializer half of the codec.

use serde::de::{self, DeserializeOwned, IntoDeserializer, Visitor};

use crate::error::WireError;

/// Sanity cap on any single length prefix (strings, sequences, maps).
/// Guards against a malicious peer making us allocate unbounded memory.
const MAX_LEN: u64 = 1 << 28; // 256 Mi elements

/// Deserializes a value from its canonical wire bytes, rejecting trailing
/// input.
pub fn from_bytes<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, WireError> {
    let mut de = Deserializer::new(bytes);
    let value = T::deserialize(&mut de)?;
    if de.input.is_empty() {
        Ok(value)
    } else {
        Err(WireError::TrailingBytes)
    }
}

/// A serde deserializer reading the compact binary format.
#[derive(Debug)]
pub struct Deserializer<'de> {
    input: &'de [u8],
}

impl<'de> Deserializer<'de> {
    /// Creates a deserializer over `input`.
    pub fn new(input: &'de [u8]) -> Self {
        Deserializer { input }
    }

    fn take(&mut self, n: usize) -> Result<&'de [u8], WireError> {
        if self.input.len() < n {
            return Err(WireError::UnexpectedEof);
        }
        let (head, tail) = self.input.split_at(n);
        self.input = tail;
        Ok(head)
    }

    fn byte(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn varint(&mut self) -> Result<u64, WireError> {
        let mut value: u64 = 0;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            if shift >= 64 || (shift == 63 && b > 1) {
                return Err(WireError::VarintOverflow);
            }
            value |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }

    fn zigzag(&mut self) -> Result<i64, WireError> {
        let v = self.varint()?;
        Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
    }

    fn length(&mut self) -> Result<usize, WireError> {
        let claimed = self.varint()?;
        if claimed > MAX_LEN || claimed > self.input.len() as u64 {
            // For element counts the byte bound is conservative (elements
            // may be >1 byte each) but still a valid lower bound: every
            // element consumes at least one byte except units, which only
            // appear with statically-known shapes.
            if claimed > MAX_LEN {
                return Err(WireError::LengthOutOfRange { claimed });
            }
        }
        Ok(claimed as usize)
    }
}

macro_rules! de_varint {
    ($method:ident, $visit:ident, $ty:ty) => {
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
            let v = self.varint()?;
            let narrowed = <$ty>::try_from(v).map_err(|_| WireError::VarintOverflow)?;
            visitor.$visit(narrowed)
        }
    };
}

macro_rules! de_zigzag {
    ($method:ident, $visit:ident, $ty:ty) => {
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
            let v = self.zigzag()?;
            let narrowed = <$ty>::try_from(v).map_err(|_| WireError::VarintOverflow)?;
            visitor.$visit(narrowed)
        }
    };
}

impl<'de> de::Deserializer<'de> for &mut Deserializer<'de> {
    type Error = WireError;

    fn deserialize_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, WireError> {
        Err(WireError::NotSelfDescribing)
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        match self.byte()? {
            0 => visitor.visit_bool(false),
            1 => visitor.visit_bool(true),
            other => Err(WireError::InvalidBool(other)),
        }
    }

    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_i8(self.byte()? as i8)
    }

    de_zigzag!(deserialize_i16, visit_i16, i16);
    de_zigzag!(deserialize_i32, visit_i32, i32);

    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_i64(self.zigzag()?)
    }

    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_u8(self.byte()?)
    }

    de_varint!(deserialize_u16, visit_u16, u16);
    de_varint!(deserialize_u32, visit_u32, u32);

    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_u64(self.varint()?)
    }

    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let bytes = self.take(4)?;
        visitor.visit_f32(f32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }

    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let bytes = self.take(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(bytes);
        visitor.visit_f64(f64::from_le_bytes(arr))
    }

    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let scalar = u32::try_from(self.varint()?).map_err(|_| WireError::VarintOverflow)?;
        let c = char::from_u32(scalar).ok_or(WireError::InvalidChar(scalar))?;
        visitor.visit_char(c)
    }

    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let len = self.length()?;
        let bytes = self.take(len)?;
        let s = std::str::from_utf8(bytes).map_err(|_| WireError::InvalidUtf8)?;
        visitor.visit_borrowed_str(s)
    }

    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let len = self.length()?;
        visitor.visit_borrowed_bytes(self.take(len)?)
    }

    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        self.deserialize_bytes(visitor)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        match self.byte()? {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            other => Err(WireError::InvalidBool(other)),
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_unit()
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let len = self.length()?;
        visitor.visit_seq(Counted {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_seq(Counted {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_seq(Counted {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let len = self.length()?;
        visitor.visit_map(Counted {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_seq(Counted {
            de: self,
            remaining: fields.len(),
        })
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_enum(EnumAccess { de: self })
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, WireError> {
        Err(WireError::NotSelfDescribing)
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, WireError> {
        Err(WireError::NotSelfDescribing)
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

struct Counted<'a, 'de> {
    de: &'a mut Deserializer<'de>,
    remaining: usize,
}

impl<'de> de::SeqAccess<'de> for Counted<'_, 'de> {
    type Error = WireError;

    fn next_element_seed<T: de::DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, WireError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

impl<'de> de::MapAccess<'de> for Counted<'_, 'de> {
    type Error = WireError;

    fn next_key_seed<K: de::DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, WireError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn next_value_seed<V: de::DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, WireError> {
        seed.deserialize(&mut *self.de)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

struct EnumAccess<'a, 'de> {
    de: &'a mut Deserializer<'de>,
}

impl<'de> de::EnumAccess<'de> for EnumAccess<'_, 'de> {
    type Error = WireError;
    type Variant = Self;

    fn variant_seed<V: de::DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self), WireError> {
        let idx = u32::try_from(self.de.varint()?).map_err(|_| WireError::VarintOverflow)?;
        let value = seed.deserialize(idx.into_deserializer())?;
        Ok((value, self))
    }
}

impl<'de> de::VariantAccess<'de> for EnumAccess<'_, 'de> {
    type Error = WireError;

    fn unit_variant(self) -> Result<(), WireError> {
        Ok(())
    }

    fn newtype_variant_seed<T: de::DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, WireError> {
        seed.deserialize(self.de)
    }

    fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_seq(Counted {
            de: self.de,
            remaining: len,
        })
    }

    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_seq(Counted {
            de: self.de,
            remaining: fields.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ser::to_bytes;

    #[test]
    fn varint_overflow_rejected() {
        // Eleven continuation bytes cannot fit in a u64.
        let bytes = [0xffu8; 11];
        let r: Result<u64, _> = from_bytes(&bytes);
        assert_eq!(r, Err(WireError::VarintOverflow));
    }

    #[test]
    fn narrowing_overflow_rejected() {
        let bytes = to_bytes(&(u64::from(u16::MAX) + 1)).unwrap();
        let r: Result<u16, _> = from_bytes(&bytes);
        assert_eq!(r, Err(WireError::VarintOverflow));
    }

    #[test]
    fn invalid_bool_rejected() {
        let r: Result<bool, _> = from_bytes(&[2]);
        assert_eq!(r, Err(WireError::InvalidBool(2)));
    }

    #[test]
    fn invalid_char_rejected() {
        let bytes = to_bytes(&0xD800u32).unwrap(); // surrogate
        let r: Result<char, _> = from_bytes(&bytes);
        assert_eq!(r, Err(WireError::InvalidChar(0xD800)));
    }

    #[test]
    fn invalid_utf8_rejected() {
        // length 1, byte 0xff.
        let r: Result<String, _> = from_bytes(&[1, 0xff]);
        assert_eq!(r, Err(WireError::InvalidUtf8));
    }

    #[test]
    fn option_with_bad_tag_rejected() {
        let r: Result<Option<u8>, _> = from_bytes(&[7, 0]);
        assert_eq!(r, Err(WireError::InvalidBool(7)));
    }

    #[test]
    fn signed_roundtrip_extremes() {
        for v in [i64::MIN, -1, 0, 1, i64::MAX] {
            let bytes = to_bytes(&v).unwrap();
            assert_eq!(from_bytes::<i64>(&bytes).unwrap(), v);
        }
    }
}
