//! The serializer half of the codec.

use serde::ser::{self, Serialize};

use crate::error::WireError;

/// Serializes `value` into its canonical wire bytes.
pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, WireError> {
    let mut ser = Serializer::new();
    value.serialize(&mut ser)?;
    Ok(ser.into_bytes())
}

/// A serde serializer producing the compact binary format.
#[derive(Debug, Default)]
pub struct Serializer {
    out: Vec<u8>,
}

impl Serializer {
    /// Creates an empty serializer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the serializer, returning the bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.out
    }

    fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.out.push(byte);
                return;
            }
            self.out.push(byte | 0x80);
        }
    }

    fn put_zigzag(&mut self, v: i64) {
        self.put_varint(((v << 1) ^ (v >> 63)) as u64);
    }

    fn put_len(&mut self, len: usize) {
        self.put_varint(len as u64);
    }
}

impl<'a> ser::Serializer for &'a mut Serializer {
    type Ok = ();
    type Error = WireError;
    type SerializeSeq = Compound<'a>;
    type SerializeTuple = Compound<'a>;
    type SerializeTupleStruct = Compound<'a>;
    type SerializeTupleVariant = Compound<'a>;
    type SerializeMap = Compound<'a>;
    type SerializeStruct = Compound<'a>;
    type SerializeStructVariant = Compound<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), WireError> {
        self.out.push(v as u8);
        Ok(())
    }

    fn serialize_i8(self, v: i8) -> Result<(), WireError> {
        self.out.push(v as u8);
        Ok(())
    }

    fn serialize_i16(self, v: i16) -> Result<(), WireError> {
        self.put_zigzag(v as i64);
        Ok(())
    }

    fn serialize_i32(self, v: i32) -> Result<(), WireError> {
        self.put_zigzag(v as i64);
        Ok(())
    }

    fn serialize_i64(self, v: i64) -> Result<(), WireError> {
        self.put_zigzag(v);
        Ok(())
    }

    fn serialize_u8(self, v: u8) -> Result<(), WireError> {
        self.out.push(v);
        Ok(())
    }

    fn serialize_u16(self, v: u16) -> Result<(), WireError> {
        self.put_varint(v as u64);
        Ok(())
    }

    fn serialize_u32(self, v: u32) -> Result<(), WireError> {
        self.put_varint(v as u64);
        Ok(())
    }

    fn serialize_u64(self, v: u64) -> Result<(), WireError> {
        self.put_varint(v);
        Ok(())
    }

    fn serialize_f32(self, v: f32) -> Result<(), WireError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> Result<(), WireError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_char(self, v: char) -> Result<(), WireError> {
        self.put_varint(v as u64);
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<(), WireError> {
        self.put_len(v.len());
        self.out.extend_from_slice(v.as_bytes());
        Ok(())
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<(), WireError> {
        self.put_len(v.len());
        self.out.extend_from_slice(v);
        Ok(())
    }

    fn serialize_none(self) -> Result<(), WireError> {
        self.out.push(0);
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), WireError> {
        self.out.push(1);
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<(), WireError> {
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), WireError> {
        Ok(())
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<(), WireError> {
        self.put_varint(variant_index as u64);
        Ok(())
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        self.put_varint(variant_index as u64);
        value.serialize(self)
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<Compound<'a>, WireError> {
        let len = len.ok_or(WireError::UnknownLength)?;
        self.put_len(len);
        Ok(Compound { ser: self })
    }

    fn serialize_tuple(self, _len: usize) -> Result<Compound<'a>, WireError> {
        Ok(Compound { ser: self })
    }

    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, WireError> {
        Ok(Compound { ser: self })
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, WireError> {
        self.put_varint(variant_index as u64);
        Ok(Compound { ser: self })
    }

    fn serialize_map(self, len: Option<usize>) -> Result<Compound<'a>, WireError> {
        let len = len.ok_or(WireError::UnknownLength)?;
        self.put_len(len);
        Ok(Compound { ser: self })
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Compound<'a>, WireError> {
        Ok(Compound { ser: self })
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, WireError> {
        self.put_varint(variant_index as u64);
        Ok(Compound { ser: self })
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

/// Compound serializer shared by all sequence-like shapes.
#[derive(Debug)]
pub struct Compound<'a> {
    ser: &'a mut Serializer,
}

impl ser::SerializeSeq for Compound<'_> {
    type Ok = ();
    type Error = WireError;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), WireError> {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

impl ser::SerializeTuple for Compound<'_> {
    type Ok = ();
    type Error = WireError;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), WireError> {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

impl ser::SerializeTupleStruct for Compound<'_> {
    type Ok = ();
    type Error = WireError;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), WireError> {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

impl ser::SerializeTupleVariant for Compound<'_> {
    type Ok = ();
    type Error = WireError;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), WireError> {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

impl ser::SerializeMap for Compound<'_> {
    type Ok = ();
    type Error = WireError;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), WireError> {
        key.serialize(&mut *self.ser)
    }
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), WireError> {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

impl ser::SerializeStruct for Compound<'_> {
    type Ok = ();
    type Error = WireError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

impl ser::SerializeStructVariant for Compound<'_> {
    type Ok = ();
    type Error = WireError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_boundaries() {
        assert_eq!(to_bytes(&0u64).unwrap(), vec![0]);
        assert_eq!(to_bytes(&127u64).unwrap(), vec![127]);
        assert_eq!(to_bytes(&128u64).unwrap(), vec![0x80, 0x01]);
        assert_eq!(to_bytes(&u64::MAX).unwrap().len(), 10);
    }

    #[test]
    fn zigzag_encoding() {
        assert_eq!(to_bytes(&0i64).unwrap(), vec![0]);
        assert_eq!(to_bytes(&-1i64).unwrap(), vec![1]);
        assert_eq!(to_bytes(&1i64).unwrap(), vec![2]);
        assert_eq!(to_bytes(&-2i64).unwrap(), vec![3]);
    }

    #[test]
    fn u8_and_bool_are_raw_bytes() {
        assert_eq!(to_bytes(&0xffu8).unwrap(), vec![0xff]);
        assert_eq!(to_bytes(&true).unwrap(), vec![1]);
        assert_eq!(to_bytes(&false).unwrap(), vec![0]);
    }

    #[test]
    fn unit_is_empty() {
        assert!(to_bytes(&()).unwrap().is_empty());
    }

    #[test]
    fn option_tags() {
        assert_eq!(to_bytes(&None::<u8>).unwrap(), vec![0]);
        assert_eq!(to_bytes(&Some(7u8)).unwrap(), vec![1, 7]);
    }
}
