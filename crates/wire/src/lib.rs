//! Compact binary serialization for ezBFT messages (the protobuf
//! substitute) plus length-prefixed framing for the TCP transport.
//!
//! The format is non-self-describing (like bincode/protobuf without field
//! tags): integers are LEB128 varints (zigzag for signed), sequences carry a
//! length prefix, enums carry a variant index. Both peers must agree on the
//! message schema — which they do, since they share the message types.
//!
//! Digests and signatures are computed over these canonical bytes, so the
//! encoding doubles as the canonical message form for authentication.
//!
//! # Example
//!
//! ```
//! # use serde::{Serialize, Deserialize};
//! #[derive(Serialize, Deserialize, PartialEq, Debug)]
//! struct Ping { seq: u64, payload: Vec<u8> }
//!
//! # fn main() -> Result<(), ezbft_wire::WireError> {
//! let msg = Ping { seq: 7, payload: vec![1, 2, 3] };
//! let bytes = ezbft_wire::to_bytes(&msg)?;
//! let back: Ping = ezbft_wire::from_bytes(&bytes)?;
//! assert_eq!(back, msg);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod de;
mod error;
mod frame;
mod ser;

pub use de::{from_bytes, Deserializer};
pub use error::WireError;
pub use frame::{encode_frame, FrameDecoder, MAX_FRAME_LEN};
pub use ser::{to_bytes, Serializer};

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    #[derive(Serialize, Deserialize, PartialEq, Debug, Clone)]
    enum Kind {
        Unit,
        Newtype(u64),
        Tuple(u8, i32),
        Struct { a: String, b: Option<bool> },
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug, Clone)]
    struct Everything {
        b: bool,
        u8v: u8,
        u16v: u16,
        u32v: u32,
        u64v: u64,
        i8v: i8,
        i32v: i32,
        i64v: i64,
        f32v: f32,
        f64v: f64,
        c: char,
        s: String,
        bytes: Vec<u8>,
        opt_some: Option<u32>,
        opt_none: Option<u32>,
        seq: Vec<u16>,
        map: BTreeMap<String, u64>,
        tuple: (u8, String),
        nested: Vec<Kind>,
        unit: (),
        arr: [u8; 4],
    }

    fn sample() -> Everything {
        let mut map = BTreeMap::new();
        map.insert("x".to_string(), 1u64);
        map.insert("y".to_string(), u64::MAX);
        Everything {
            b: true,
            u8v: 250,
            u16v: 65535,
            u32v: 1 << 30,
            u64v: u64::MAX,
            i8v: -5,
            i32v: i32::MIN,
            i64v: -1,
            f32v: 1.5,
            f64v: -2.25e100,
            c: 'λ',
            s: "hello, wire".to_string(),
            bytes: (0..=255).collect(),
            opt_some: Some(9),
            opt_none: None,
            seq: vec![0, 1, 2, 300],
            map,
            tuple: (3, "t".to_string()),
            nested: vec![
                Kind::Unit,
                Kind::Newtype(42),
                Kind::Tuple(1, -2),
                Kind::Struct {
                    a: "a".into(),
                    b: Some(false),
                },
            ],
            unit: (),
            arr: [9, 8, 7, 6],
        }
    }

    #[test]
    fn roundtrip_everything() {
        let v = sample();
        let bytes = to_bytes(&v).unwrap();
        let back: Everything = from_bytes(&bytes).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn encoding_is_deterministic() {
        let v = sample();
        assert_eq!(to_bytes(&v).unwrap(), to_bytes(&v).unwrap());
    }

    #[test]
    fn small_ints_are_small() {
        // Varints: values < 128 take one byte.
        assert_eq!(to_bytes(&5u64).unwrap().len(), 1);
        assert_eq!(to_bytes(&5u32).unwrap().len(), 1);
        // Zigzag: small negatives are small too.
        assert_eq!(to_bytes(&-3i64).unwrap().len(), 1);
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = to_bytes(&7u64).unwrap();
        bytes.push(0);
        let r: Result<u64, _> = from_bytes(&bytes);
        assert!(matches!(r, Err(WireError::TrailingBytes)));
    }

    #[test]
    fn truncated_input_rejected() {
        let bytes = to_bytes(&sample()).unwrap();
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            let r: Result<Everything, _> = from_bytes(&bytes[..cut]);
            assert!(r.is_err(), "cut={cut}");
        }
    }

    #[test]
    fn bogus_enum_variant_rejected() {
        // Kind has 4 variants; variant index 9 must fail.
        let bytes = to_bytes(&9u32).unwrap();
        let r: Result<Kind, _> = from_bytes(&bytes);
        assert!(r.is_err());
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        // A Vec<u8> claiming u64::MAX elements must fail fast, not OOM.
        let bytes = to_bytes(&u64::MAX).unwrap();
        let r: Result<Vec<u8>, _> = from_bytes(&bytes);
        assert!(r.is_err());
    }
}
