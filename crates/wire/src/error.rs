//! Codec error type.

use std::fmt;

/// Errors produced while encoding or decoding wire bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the value was complete.
    UnexpectedEof,
    /// Input continued after the value was complete.
    TrailingBytes,
    /// A varint ran past its maximum width.
    VarintOverflow,
    /// A length prefix exceeds the input size or the sanity limit.
    LengthOutOfRange {
        /// The claimed length.
        claimed: u64,
    },
    /// A byte that should have been a bool was neither 0 nor 1.
    InvalidBool(u8),
    /// A `char` value outside the Unicode scalar range.
    InvalidChar(u32),
    /// A string was not valid UTF-8.
    InvalidUtf8,
    /// An enum variant index had no matching variant.
    InvalidVariant(u32),
    /// The type asked the codec for a self-describing read
    /// (`deserialize_any`), which this format cannot support.
    NotSelfDescribing,
    /// Sequence serialized without a known length (unsupported).
    UnknownLength,
    /// Custom message from serde.
    Message(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof => write!(f, "unexpected end of input"),
            WireError::TrailingBytes => write!(f, "trailing bytes after value"),
            WireError::VarintOverflow => write!(f, "varint overflows its type"),
            WireError::LengthOutOfRange { claimed } => {
                write!(f, "length prefix {claimed} out of range")
            }
            WireError::InvalidBool(b) => write!(f, "invalid bool byte {b:#x}"),
            WireError::InvalidChar(c) => write!(f, "invalid char scalar {c:#x}"),
            WireError::InvalidUtf8 => write!(f, "invalid utf-8 in string"),
            WireError::InvalidVariant(v) => write!(f, "invalid enum variant index {v}"),
            WireError::NotSelfDescribing => {
                write!(
                    f,
                    "format is not self-describing (deserialize_any unsupported)"
                )
            }
            WireError::UnknownLength => write!(f, "sequence length must be known up front"),
            WireError::Message(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl serde::ser::Error for WireError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        WireError::Message(msg.to_string())
    }
}

impl serde::de::Error for WireError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        WireError::Message(msg.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(WireError::UnexpectedEof
            .to_string()
            .contains("end of input"));
        assert!(WireError::LengthOutOfRange { claimed: 9 }
            .to_string()
            .contains('9'));
        assert!(WireError::InvalidVariant(3).to_string().contains('3'));
    }

    #[test]
    fn serde_custom_constructors() {
        let e1 = <WireError as serde::ser::Error>::custom("boom");
        let e2 = <WireError as serde::de::Error>::custom("bang");
        assert_eq!(e1, WireError::Message("boom".into()));
        assert_eq!(e2, WireError::Message("bang".into()));
    }
}
