//! Length-prefixed framing for stream transports.
//!
//! Frames are `u32` little-endian length followed by that many payload
//! bytes. [`FrameDecoder`] accumulates stream fragments and yields complete
//! payloads; [`encode_frame`] produces the bytes for one message.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::WireError;

/// Maximum accepted frame payload (16 MiB). A peer announcing more is
/// treated as malicious/corrupt and the connection should be dropped.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Encodes one payload into a framed byte buffer.
pub fn encode_frame(payload: &[u8]) -> Result<Bytes, WireError> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(WireError::LengthOutOfRange {
            claimed: payload.len() as u64,
        });
    }
    let mut buf = BytesMut::with_capacity(4 + payload.len());
    buf.put_u32_le(payload.len() as u32);
    buf.put_slice(payload);
    Ok(buf.freeze())
}

/// Incremental decoder for a stream of frames.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: BytesMut,
}

impl FrameDecoder {
    /// Creates an empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds newly received stream bytes.
    pub fn extend(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Attempts to extract the next complete frame payload.
    ///
    /// Returns `Ok(None)` when more bytes are needed.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::LengthOutOfRange`] if a frame header announces
    /// a payload larger than [`MAX_FRAME_LEN`]; the stream is then
    /// unrecoverable and should be closed.
    pub fn next_frame(&mut self) -> Result<Option<Bytes>, WireError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > MAX_FRAME_LEN {
            return Err(WireError::LengthOutOfRange {
                claimed: len as u64,
            });
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        self.buf.advance(4);
        Ok(Some(self.buf.split_to(len).freeze()))
    }

    /// Bytes buffered but not yet consumed.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single_frame() {
        let framed = encode_frame(b"hello").unwrap();
        let mut dec = FrameDecoder::new();
        dec.extend(&framed);
        assert_eq!(dec.next_frame().unwrap().unwrap().as_ref(), b"hello");
        assert_eq!(dec.next_frame().unwrap(), None);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn handles_fragmentation() {
        let framed = encode_frame(b"fragmented-payload").unwrap();
        let mut dec = FrameDecoder::new();
        for chunk in framed.chunks(3) {
            // Until the last chunk arrives, no frame is ready.
            dec.extend(chunk);
        }
        assert_eq!(
            dec.next_frame().unwrap().unwrap().as_ref(),
            b"fragmented-payload"
        );
    }

    #[test]
    fn handles_coalesced_frames() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&encode_frame(b"one").unwrap());
        stream.extend_from_slice(&encode_frame(b"two").unwrap());
        stream.extend_from_slice(&encode_frame(b"").unwrap());
        let mut dec = FrameDecoder::new();
        dec.extend(&stream);
        assert_eq!(dec.next_frame().unwrap().unwrap().as_ref(), b"one");
        assert_eq!(dec.next_frame().unwrap().unwrap().as_ref(), b"two");
        assert_eq!(dec.next_frame().unwrap().unwrap().as_ref(), b"");
        assert_eq!(dec.next_frame().unwrap(), None);
    }

    #[test]
    fn oversized_header_rejected() {
        let mut dec = FrameDecoder::new();
        dec.extend(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            dec.next_frame(),
            Err(WireError::LengthOutOfRange { .. })
        ));
    }

    #[test]
    fn oversized_payload_rejected_on_encode() {
        let huge = vec![0u8; MAX_FRAME_LEN + 1];
        assert!(encode_frame(&huge).is_err());
    }

    #[test]
    fn empty_input_yields_nothing() {
        let mut dec = FrameDecoder::new();
        assert_eq!(dec.next_frame().unwrap(), None);
        dec.extend(&[1, 0]);
        assert_eq!(dec.next_frame().unwrap(), None);
    }
}
