//! Property tests: every value the protocols can express must survive an
//! encode/decode round-trip, and decoding must never panic on arbitrary
//! bytes.

use proptest::prelude::*;
use serde::{Deserialize, Serialize};

#[derive(Serialize, Deserialize, PartialEq, Debug, Clone)]
enum Payload {
    Empty,
    Num(u64),
    Signed(i64),
    Text(String),
    Pair(u32, Vec<u8>),
    Rec {
        flag: bool,
        inner: Option<Box<Payload>>,
    },
}

fn payload_strategy() -> impl Strategy<Value = Payload> {
    let leaf = prop_oneof![
        Just(Payload::Empty),
        any::<u64>().prop_map(Payload::Num),
        any::<i64>().prop_map(Payload::Signed),
        ".{0,40}".prop_map(Payload::Text),
        (any::<u32>(), proptest::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(a, b)| Payload::Pair(a, b)),
    ];
    leaf.prop_recursive(3, 32, 4, |inner| {
        (
            any::<bool>(),
            proptest::option::of(inner.prop_map(Box::new)),
        )
            .prop_map(|(flag, inner)| Payload::Rec { flag, inner })
    })
}

proptest! {
    #[test]
    fn roundtrip_payload(p in payload_strategy()) {
        let bytes = ezbft_wire::to_bytes(&p).unwrap();
        let back: Payload = ezbft_wire::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, p);
    }

    #[test]
    fn roundtrip_collections(v in proptest::collection::btree_map(any::<u16>(), ".{0,8}", 0..32)) {
        let bytes = ezbft_wire::to_bytes(&v).unwrap();
        let back: std::collections::BTreeMap<u16, String> =
            ezbft_wire::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn roundtrip_integers(u in any::<u64>(), i in any::<i64>(), s in any::<i16>()) {
        prop_assert_eq!(ezbft_wire::from_bytes::<u64>(&ezbft_wire::to_bytes(&u).unwrap()).unwrap(), u);
        prop_assert_eq!(ezbft_wire::from_bytes::<i64>(&ezbft_wire::to_bytes(&i).unwrap()).unwrap(), i);
        prop_assert_eq!(ezbft_wire::from_bytes::<i16>(&ezbft_wire::to_bytes(&s).unwrap()).unwrap(), s);
    }

    #[test]
    fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Decoding arbitrary bytes must return an error or a value — never panic.
        let _ = ezbft_wire::from_bytes::<Payload>(&bytes);
        let _ = ezbft_wire::from_bytes::<Vec<String>>(&bytes);
        let _ = ezbft_wire::from_bytes::<(u64, bool, Option<u8>)>(&bytes);
    }

    #[test]
    fn frames_survive_arbitrary_fragmentation(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..128), 1..8),
        cut in 1usize..16,
    ) {
        let mut stream = Vec::new();
        for p in &payloads {
            stream.extend_from_slice(&ezbft_wire::encode_frame(p).unwrap());
        }
        let mut dec = ezbft_wire::FrameDecoder::new();
        let mut out = Vec::new();
        for chunk in stream.chunks(cut) {
            dec.extend(chunk);
            while let Some(frame) = dec.next_frame().unwrap() {
                out.push(frame.to_vec());
            }
        }
        prop_assert_eq!(out, payloads);
    }
}
