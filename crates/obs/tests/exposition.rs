//! Golden test pinning the Prometheus-style text exposition format
//! (DESIGN.md §9b). Scrapers parse this text; any change to the shape —
//! prefixes, sanitisation, label syntax, bucket cumulation, family
//! ordering — must show up here as a deliberate diff.

use ezbft_obs::{MemRecorder, Recorder, SpanKey, Stage};

#[test]
fn exposition_format_is_pinned() {
    let r = MemRecorder::new();
    // Counters: one plain, one family with both a total and kind labels,
    // one kind-only family.
    r.counter("replica.fast_commits", 12);
    r.counter("net.frames_out", 10);
    r.counter_kind("net.frames_out", "SpecOrder", 7);
    r.counter_kind("net.frames_out", "SpecAck", 3);
    r.counter_kind("sim.dropped", "Commit", 1);
    // A gauge (last + retained max).
    r.gauge("exec.queue_depth", 5);
    r.gauge("exec.queue_depth", 2);
    // A histogram: samples 0, 1, 3, 9 land in buckets [0,0], [1,1],
    // [2,3], [8,15].
    for v in [0u64, 1, 3, 9] {
        r.observe("exec.wave_units", v);
    }
    // One completed span: submit@100 -> commit@400 -> reply@700.
    let key = SpanKey { client: 1, req: 2 };
    r.stage(key, Stage::Submit, 100);
    r.stage(key, Stage::Commit, 400);
    r.stage(key, Stage::Reply, 700);

    let expected = "\
# TYPE ezbft_net_frames_out counter
ezbft_net_frames_out 10
ezbft_net_frames_out{kind=\"SpecAck\"} 3
ezbft_net_frames_out{kind=\"SpecOrder\"} 7
# TYPE ezbft_replica_fast_commits counter
ezbft_replica_fast_commits 12
# TYPE ezbft_sim_dropped counter
ezbft_sim_dropped{kind=\"Commit\"} 1
# TYPE ezbft_exec_queue_depth gauge
ezbft_exec_queue_depth 2
# TYPE ezbft_exec_queue_depth_max gauge
ezbft_exec_queue_depth_max 5
# TYPE ezbft_exec_wave_units histogram
ezbft_exec_wave_units_bucket{le=\"0\"} 1
ezbft_exec_wave_units_bucket{le=\"1\"} 2
ezbft_exec_wave_units_bucket{le=\"3\"} 3
ezbft_exec_wave_units_bucket{le=\"15\"} 4
ezbft_exec_wave_units_bucket{le=\"+Inf\"} 4
ezbft_exec_wave_units_sum 13
ezbft_exec_wave_units_count 4
# TYPE ezbft_stage_commit__reply histogram
ezbft_stage_commit__reply_bucket{le=\"511\"} 1
ezbft_stage_commit__reply_bucket{le=\"+Inf\"} 1
ezbft_stage_commit__reply_sum 300
ezbft_stage_commit__reply_count 1
# TYPE ezbft_stage_e2e histogram
ezbft_stage_e2e_bucket{le=\"1023\"} 1
ezbft_stage_e2e_bucket{le=\"+Inf\"} 1
ezbft_stage_e2e_sum 600
ezbft_stage_e2e_count 1
# TYPE ezbft_stage_submit__commit histogram
ezbft_stage_submit__commit_bucket{le=\"511\"} 1
ezbft_stage_submit__commit_bucket{le=\"+Inf\"} 1
ezbft_stage_submit__commit_sum 300
ezbft_stage_submit__commit_count 1
";
    assert_eq!(r.render_exposition(), expected);
}

#[test]
fn exposition_of_an_empty_recorder_is_empty() {
    assert_eq!(MemRecorder::new().render_exposition(), "");
}

#[test]
fn exposition_is_stable_across_repeated_renders() {
    let r = MemRecorder::new();
    r.counter("a.b", 1);
    r.counter_kind("a.b", "x\"y", 2);
    r.gauge("g", 9);
    let first = r.render_exposition();
    assert!(first.contains("ezbft_a_b{kind=\"x\\\"y\"} 2"));
    assert_eq!(first, r.render_exposition());
}
