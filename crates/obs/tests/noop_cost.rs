//! Pins the disabled-recorder path to zero allocations per sample.
//!
//! Instrumentation stays compiled in and on-by-default across the
//! workspace; that is only tenable if a [`NullRecorder`] call is free.
//! A counting global allocator wraps the system allocator, and the test
//! drives every `Recorder` method through a `dyn` reference (exactly how
//! the protocol crates call it) asserting the allocation count does not
//! move.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ezbft_obs::{NullRecorder, Recorder, SpanKey, Stage};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// The test binary needs its own allocator to observe allocation counts;
// `unsafe` is confined to delegating to `System`.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn null_recorder_never_allocates() {
    let rec: &dyn Recorder = &NullRecorder;
    let key = SpanKey {
        client: 3,
        req: 0xdead_beef,
    };

    // Warm up any lazily-initialised test-harness state.
    rec.counter("warmup", 1);

    let before = ALLOCS.load(Ordering::Relaxed);
    for i in 0..10_000u64 {
        rec.counter("replica.fast_commits", 1);
        rec.counter_kind("sim.sent", "SpecOrder", 1);
        rec.gauge("exec.queue_depth", i);
        rec.observe("exec.wave_units", i);
        rec.stage(key, Stage::Commit, i);
        rec.event("owner_change", "space=1", i);
        assert!(!rec.enabled());
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled recorder must not allocate (got {} allocations over 60k calls)",
        after - before
    );
}
