//! The [`Recorder`] sink trait and its two stock implementations.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::Mutex;

use crate::hist::Log2Histogram;
use crate::span::{RecoveryKey, RecoverySpan, RecoveryStage, Span, SpanKey, Stage};

/// A telemetry sink.
///
/// Every method takes `&self` and returns nothing: instrumentation is
/// observation-only, and implementations must tolerate concurrent calls
/// (the parallel execution engine and transport I/O threads record from
/// worker threads). Callers guard any work needed *to produce* an
/// argument (formatting a label, hashing a digest) behind
/// [`Recorder::enabled`]; the calls themselves must be cheap no-ops on a
/// disabled recorder.
pub trait Recorder: Send + Sync {
    /// Whether this recorder keeps anything. `false` lets callers skip
    /// argument preparation; the record methods must still be safe to
    /// call.
    fn enabled(&self) -> bool;

    /// Adds `delta` to the monotonic counter `name`.
    fn counter(&self, name: &'static str, delta: u64);

    /// Adds `delta` to the `kind`-labelled sub-counter of `name`
    /// (per-message-kind traffic, per-peer bytes, …).
    fn counter_kind(&self, name: &'static str, kind: &str, delta: u64);

    /// Sets gauge `name` to `value` (last-write-wins; the maximum is
    /// also retained).
    fn gauge(&self, name: &'static str, value: u64);

    /// Records `value` into the log2 histogram `name`.
    fn observe(&self, name: &'static str, value: u64);

    /// Records that request `key` reached `stage` at `at_us`. Only the
    /// first observation per `(key, stage)` is kept.
    fn stage(&self, key: SpanKey, stage: Stage, at_us: u64);

    /// Records a tagged point event (owner change, fallback, reconnect).
    fn event(&self, name: &'static str, detail: &str, at_us: u64);

    /// Records that owner-change round `key` reached recovery phase
    /// `stage` at `at_us` (the recovery span family, DESIGN.md §9). Only
    /// the first observation per `(key, stage)` is kept. Default: no-op,
    /// so sinks that only care about request spans need not change.
    fn recovery(&self, key: RecoveryKey, stage: RecoveryStage, at_us: u64) {
        let _ = (key, stage, at_us);
    }
}

/// The default sink: discards everything.
///
/// Every method is an empty body over `&self` — no allocation, no
/// branching, no synchronisation — so instrumentation left enabled in
/// the hot path costs nothing when nobody is listening (pinned by
/// `tests/noop_cost.rs`).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn enabled(&self) -> bool {
        false
    }
    fn counter(&self, _name: &'static str, _delta: u64) {}
    fn counter_kind(&self, _name: &'static str, _kind: &str, _delta: u64) {}
    fn gauge(&self, _name: &'static str, _value: u64) {}
    fn observe(&self, _name: &'static str, _value: u64) {}
    fn stage(&self, _key: SpanKey, _stage: Stage, _at_us: u64) {}
    fn event(&self, _name: &'static str, _detail: &str, _at_us: u64) {}
}

/// One gauge's retained state.
#[derive(Clone, Copy, Debug, Default)]
pub struct GaugeStat {
    /// Most recent value set.
    pub last: u64,
    /// Largest value ever set.
    pub max: u64,
}

/// One line of the ordered event log (rendered by
/// [`MemRecorder::render_jsonl`]).
#[derive(Clone, Debug)]
enum LogLine {
    Stage {
        at_us: u64,
        key: SpanKey,
        stage: Stage,
    },
    Event {
        at_us: u64,
        name: &'static str,
        detail: String,
    },
}

/// In-memory aggregating recorder used by the harness and tests.
///
/// All state sits behind [`Mutex`]es in deterministic [`BTreeMap`]s, so
/// snapshots iterate in a stable order regardless of recording
/// interleavings.
#[derive(Debug)]
pub struct MemRecorder {
    counters: Mutex<BTreeMap<&'static str, u64>>,
    kind_counters: Mutex<BTreeMap<(&'static str, String), u64>>,
    gauges: Mutex<BTreeMap<&'static str, GaugeStat>>,
    hists: Mutex<BTreeMap<&'static str, Log2Histogram>>,
    spans: Mutex<BTreeMap<SpanKey, Span>>,
    recovery: Mutex<BTreeMap<RecoveryKey, RecoverySpan>>,
    log: Mutex<Vec<LogLine>>,
    /// Span eviction knob: retire a span the moment this stage (by
    /// [`Stage::index`]; `u8::MAX` = off) is recorded, folding it into
    /// the interval histograms (see [`MemRecorder::set_evict_at`]).
    evict_at: AtomicU8,
    /// Whether [`MemRecorder::render_jsonl`]'s ordered event log records
    /// at all (on by default; live deployments turn it off so memory
    /// stays bounded — see [`MemRecorder::set_event_log`]).
    log_enabled: AtomicBool,
    /// Interval histograms of evicted spans, keyed `"from->to"` / `"e2e"`
    /// (merged back in by [`MemRecorder::stage_interval_histograms`]).
    evicted: Mutex<BTreeMap<String, Log2Histogram>>,
}

impl Default for MemRecorder {
    fn default() -> Self {
        MemRecorder {
            counters: Mutex::default(),
            kind_counters: Mutex::default(),
            gauges: Mutex::default(),
            hists: Mutex::default(),
            spans: Mutex::default(),
            recovery: Mutex::default(),
            log: Mutex::default(),
            evict_at: AtomicU8::new(u8::MAX),
            log_enabled: AtomicBool::new(true),
            evicted: Mutex::default(),
        }
    }
}

impl MemRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables (or disables) span eviction at the `Reply` stage — the
    /// right retirement point for a recorder that observes the client
    /// (see [`MemRecorder::set_evict_at`], which this wraps).
    pub fn set_evict_on_reply(&self, on: bool) {
        self.set_evict_at(on.then_some(Stage::Reply));
    }

    /// Configures span eviction: once a span records `stage` it is
    /// folded into the stage-interval histograms (with the usual window
    /// projection) and dropped from the span map, so the recorder's
    /// memory stays bounded by the *in-flight* request count instead of
    /// the total request count — what a long-lived deployment needs.
    /// Pick the last stage the observing node records: `Reply` for a
    /// client-side (or simulator-shared) recorder, `ExecDone` for a
    /// replica-side recorder, which never sees the client stages. `None`
    /// (the default) keeps every span inspectable, as tests and short
    /// harness runs want. With eviction on, per-span lookups of retired
    /// requests ([`MemRecorder::span`]) stop resolving, and a stage
    /// recorded after the eviction point opens a fresh partial span
    /// rather than rejoining the evicted one.
    pub fn set_evict_at(&self, stage: Option<Stage>) {
        let idx = stage.map_or(u8::MAX, |s| s.index() as u8);
        self.evict_at.store(idx, Ordering::Relaxed);
    }

    /// Enables (or disables, for long-lived deployments) the ordered
    /// per-record event log behind [`MemRecorder::render_jsonl`]. On by
    /// default; unlike the aggregated counters and histograms the log
    /// grows with every stage and event recorded, so live TCP nodes turn
    /// it off ([`crate::MemRecorder::render_exposition`] never reads
    /// it). Disabling drops *future* records only.
    pub fn set_event_log(&self, on: bool) {
        self.log_enabled.store(on, Ordering::Relaxed);
    }

    /// Value of counter `name` (0 if never bumped).
    pub fn counter_value(&self, name: &str) -> u64 {
        *self.counters.lock().unwrap().get(name).unwrap_or(&0)
    }

    /// Value of the `kind`-labelled sub-counter of `name`.
    pub fn counter_kind_value(&self, name: &str, kind: &str) -> u64 {
        self.kind_counters
            .lock()
            .unwrap()
            .iter()
            .find(|((n, k), _)| *n == name && k == kind)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Every `(kind, value)` pair recorded under `name`, sorted by kind.
    pub fn counter_kinds(&self, name: &str) -> Vec<(String, u64)> {
        self.kind_counters
            .lock()
            .unwrap()
            .iter()
            .filter(|((n, _), _)| *n == name)
            .map(|((_, k), v)| (k.clone(), *v))
            .collect()
    }

    /// Last/max state of gauge `name`.
    pub fn gauge_value(&self, name: &str) -> Option<GaugeStat> {
        self.gauges.lock().unwrap().get(name).copied()
    }

    /// Snapshot of every plain counter, in name order. This is the
    /// `counters` block exported into BENCH JSON lines and the input to
    /// the text exposition ([`MemRecorder::render_exposition`]).
    pub fn counters_snapshot(&self) -> BTreeMap<String, u64> {
        self.counters
            .lock()
            .unwrap()
            .iter()
            .map(|(&n, &v)| (n.to_string(), v))
            .collect()
    }

    /// Snapshot of every `kind`-labelled sub-counter, keyed
    /// `(name, kind)` in order.
    pub fn kind_counters_snapshot(&self) -> BTreeMap<(String, String), u64> {
        self.kind_counters
            .lock()
            .unwrap()
            .iter()
            .map(|((n, k), &v)| ((n.to_string(), k.clone()), v))
            .collect()
    }

    /// Snapshot of every gauge, in name order.
    pub fn gauges_snapshot(&self) -> BTreeMap<String, GaugeStat> {
        self.gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(&n, &g)| (n.to_string(), g))
            .collect()
    }

    /// Snapshot of every histogram, in name order.
    pub fn histograms_snapshot(&self) -> BTreeMap<String, Log2Histogram> {
        self.hists
            .lock()
            .unwrap()
            .iter()
            .map(|(&n, h)| (n.to_string(), h.clone()))
            .collect()
    }

    /// Snapshot of histogram `name`.
    pub fn histogram(&self, name: &str) -> Option<Log2Histogram> {
        self.hists.lock().unwrap().get(name).cloned()
    }

    /// Snapshot of the span for `key`.
    pub fn span(&self, key: SpanKey) -> Option<Span> {
        self.spans.lock().unwrap().get(&key).copied()
    }

    /// Snapshot of every span, in key order.
    pub fn spans(&self) -> Vec<(SpanKey, Span)> {
        self.spans
            .lock()
            .unwrap()
            .iter()
            .map(|(k, s)| (*k, *s))
            .collect()
    }

    /// Number of spans currently retained (excludes evicted spans).
    pub fn spans_len(&self) -> usize {
        self.spans.lock().unwrap().len()
    }

    /// Snapshot of the recovery span for owner-change round `key`.
    pub fn recovery_span(&self, key: RecoveryKey) -> Option<RecoverySpan> {
        self.recovery.lock().unwrap().get(&key).copied()
    }

    /// Snapshot of every recovery span, in key order.
    pub fn recovery_spans(&self) -> Vec<(RecoveryKey, RecoverySpan)> {
        self.recovery
            .lock()
            .unwrap()
            .iter()
            .map(|(k, s)| (*k, *s))
            .collect()
    }

    /// Aggregates every recovery span's consecutive-phase durations into
    /// one histogram per phase transition, keyed `"from->to"`, plus an
    /// `"e2e"` histogram (`applied` − `suspected`) for completed rounds.
    pub fn recovery_interval_histograms(&self) -> BTreeMap<String, Log2Histogram> {
        let mut out: BTreeMap<String, Log2Histogram> = BTreeMap::new();
        for (_, span) in self.recovery_spans() {
            for (from, to, d) in span.stage_durations() {
                out.entry(format!("{}->{}", from.as_str(), to.as_str()))
                    .or_default()
                    .record(d);
            }
            if let Some(d) = span.duration_us() {
                out.entry("e2e".to_string()).or_default().record(d);
            }
        }
        out
    }

    /// Aggregates every span's consecutive-stage durations into one
    /// histogram per stage transition, keyed `"from->to"`, plus an
    /// `"e2e"` histogram for spans that observed both `Submit` and
    /// `Reply`.
    pub fn stage_interval_histograms(&self) -> BTreeMap<String, Log2Histogram> {
        let mut out: BTreeMap<String, Log2Histogram> = self.evicted.lock().unwrap().clone();
        for (_, span) in self.spans() {
            for (from, to, d) in span.stage_durations() {
                out.entry(format!("{}->{}", from.as_str(), to.as_str()))
                    .or_default()
                    .record(d);
            }
            if let Some(d) = span.duration_us() {
                out.entry("e2e".to_string()).or_default().record(d);
            }
        }
        out
    }

    /// Renders the ordered event log as JSON lines (DESIGN.md §9): one
    /// object per line, `type` is `"stage"` or `"event"`.
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        for line in self.log.lock().unwrap().iter() {
            match line {
                LogLine::Stage { at_us, key, stage } => {
                    let _ = writeln!(
                        out,
                        "{{\"type\":\"stage\",\"at_us\":{},\"client\":{},\"req\":\"{:016x}\",\"stage\":\"{}\"}}",
                        at_us,
                        key.client,
                        key.req,
                        stage.as_str()
                    );
                }
                LogLine::Event {
                    at_us,
                    name,
                    detail,
                } => {
                    let _ = writeln!(
                        out,
                        "{{\"type\":\"event\",\"at_us\":{},\"name\":\"{}\",\"detail\":\"{}\"}}",
                        at_us,
                        name,
                        detail.replace('\\', "\\\\").replace('"', "\\\"")
                    );
                }
            }
        }
        out
    }

    /// Number of event-log lines recorded so far.
    pub fn log_len(&self) -> usize {
        self.log.lock().unwrap().len()
    }
}

impl Recorder for MemRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn counter(&self, name: &'static str, delta: u64) {
        *self.counters.lock().unwrap().entry(name).or_insert(0) += delta;
    }

    fn counter_kind(&self, name: &'static str, kind: &str, delta: u64) {
        *self
            .kind_counters
            .lock()
            .unwrap()
            .entry((name, kind.to_string()))
            .or_insert(0) += delta;
    }

    fn gauge(&self, name: &'static str, value: u64) {
        let mut gauges = self.gauges.lock().unwrap();
        let g = gauges.entry(name).or_default();
        g.last = value;
        g.max = g.max.max(value);
    }

    fn observe(&self, name: &'static str, value: u64) {
        self.hists
            .lock()
            .unwrap()
            .entry(name)
            .or_default()
            .record(value);
    }

    fn stage(&self, key: SpanKey, stage: Stage, at_us: u64) {
        {
            let mut spans = self.spans.lock().unwrap();
            let span = spans.entry(key).or_default();
            span.record(stage, at_us);
            // Span eviction (opt-in): the configured stage is the last
            // one this recorder's node records for a request, so fold
            // the span into the interval histograms now and free the
            // slot.
            if stage.index() as u8 == self.evict_at.load(Ordering::Relaxed) {
                let span = *span;
                spans.remove(&key);
                drop(spans);
                let mut evicted = self.evicted.lock().unwrap();
                for (from, to, d) in span.stage_durations() {
                    evicted
                        .entry(format!("{}->{}", from.as_str(), to.as_str()))
                        .or_default()
                        .record(d);
                }
                if let Some(d) = span.duration_us() {
                    evicted.entry("e2e".to_string()).or_default().record(d);
                }
            }
        }
        if self.log_enabled.load(Ordering::Relaxed) {
            self.log
                .lock()
                .unwrap()
                .push(LogLine::Stage { at_us, key, stage });
        }
    }

    fn event(&self, name: &'static str, detail: &str, at_us: u64) {
        if self.log_enabled.load(Ordering::Relaxed) {
            self.log.lock().unwrap().push(LogLine::Event {
                at_us,
                name,
                detail: detail.to_string(),
            });
        }
    }

    fn recovery(&self, key: RecoveryKey, stage: RecoveryStage, at_us: u64) {
        self.recovery
            .lock()
            .unwrap()
            .entry(key)
            .or_default()
            .record(stage, at_us);
        self.log.lock().unwrap().push(LogLine::Event {
            at_us,
            name: "recovery",
            detail: format!(
                "space={} new_owner={} stage={}",
                key.space,
                key.new_owner,
                stage.as_str()
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = MemRecorder::new();
        r.counter("x", 2);
        r.counter("x", 3);
        assert_eq!(r.counter_value("x"), 5);
        assert_eq!(r.counter_value("absent"), 0);
    }

    #[test]
    fn kind_counters_split_by_label() {
        let r = MemRecorder::new();
        r.counter_kind("sent", "SpecOrder", 1);
        r.counter_kind("sent", "SpecReply", 4);
        r.counter_kind("sent", "SpecOrder", 1);
        assert_eq!(r.counter_kind_value("sent", "SpecOrder"), 2);
        assert_eq!(
            r.counter_kinds("sent"),
            vec![("SpecOrder".to_string(), 2), ("SpecReply".to_string(), 4)]
        );
    }

    #[test]
    fn gauges_keep_last_and_max() {
        let r = MemRecorder::new();
        r.gauge("depth", 3);
        r.gauge("depth", 7);
        r.gauge("depth", 2);
        let g = r.gauge_value("depth").unwrap();
        assert_eq!(g.last, 2);
        assert_eq!(g.max, 7);
    }

    #[test]
    fn stage_interval_histograms_aggregate_spans() {
        let r = MemRecorder::new();
        for (i, (commit, reply)) in [(300u64, 500u64), (400, 900)].iter().enumerate() {
            let key = SpanKey {
                client: i as u64,
                req: i as u64,
            };
            r.stage(key, Stage::Submit, 0);
            r.stage(key, Stage::Commit, *commit);
            r.stage(key, Stage::Reply, *reply);
        }
        let hists = r.stage_interval_histograms();
        assert_eq!(hists["submit->commit"].count(), 2);
        assert_eq!(hists["commit->reply"].count(), 2);
        assert_eq!(hists["e2e"].count(), 2);
        assert_eq!(hists["e2e"].max(), 900);
    }

    #[test]
    fn evict_on_reply_bounds_live_spans_and_keeps_aggregates() {
        // The client-style per-node pattern the knob is designed for:
        // Submit and Reply recorded by the same (per-node) recorder.
        let r = MemRecorder::new();
        r.set_evict_on_reply(true);
        for i in 0..4u64 {
            let key = SpanKey { client: i, req: i };
            r.stage(key, Stage::Submit, 0);
            r.stage(key, Stage::Commit, 100);
            r.stage(key, Stage::Reply, 250);
        }
        assert_eq!(r.spans_len(), 0, "completed spans are evicted");
        let hists = r.stage_interval_histograms();
        assert_eq!(hists["submit->commit"].count(), 4);
        assert_eq!(hists["commit->reply"].count(), 4);
        assert_eq!(hists["e2e"].count(), 4);
        assert_eq!(hists["e2e"].max(), 250);
    }

    #[test]
    fn recovery_spans_aggregate_by_round() {
        let r = MemRecorder::new();
        let key = RecoveryKey {
            space: 2,
            new_owner: 3,
        };
        r.recovery(key, RecoveryStage::Suspected, 1_000);
        r.recovery(key, RecoveryStage::Committed, 1_200);
        r.recovery(key, RecoveryStage::SafeSet, 1_500);
        r.recovery(key, RecoveryStage::Applied, 1_900);
        // A duplicate observation never moves the span backwards.
        r.recovery(key, RecoveryStage::Applied, 5_000);
        let span = r.recovery_span(key).expect("span recorded");
        assert_eq!(span.duration_us(), Some(900));
        let hists = r.recovery_interval_histograms();
        assert_eq!(hists["suspected->committed"].count(), 1);
        assert_eq!(hists["safe_set->applied"].count(), 1);
        assert_eq!(hists["e2e"].max(), 900);
    }

    #[test]
    fn jsonl_lines_are_ordered_and_escaped() {
        let r = MemRecorder::new();
        r.stage(
            SpanKey {
                client: 1,
                req: 0xab,
            },
            Stage::Submit,
            10,
        );
        r.event("fallback", "reason=\"quiet\"", 20);
        let log = r.render_jsonl();
        let lines: Vec<&str> = log.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"type\":\"stage\""));
        assert!(lines[0].contains("\"req\":\"00000000000000ab\""));
        assert!(lines[1].contains("\\\"quiet\\\""));
    }
}
