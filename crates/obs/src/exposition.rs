//! Prometheus-style text exposition over a [`MemRecorder`] snapshot
//! (DESIGN.md §9b).
//!
//! The format is the classic text exposition: one `# TYPE` line per
//! metric family followed by its samples. Metric names are the
//! recorder's dotted names sanitised (`.` and any other non-alphanumeric
//! byte become `_`) and prefixed `ezbft_`; kind-labelled counters render
//! as `{kind="…"}` series of the same family as their unlabelled total;
//! gauges render their last value (the retained maximum becomes a
//! sibling `_max` gauge); [`Log2Histogram`]s render cumulatively as
//! `_bucket{le="…"}` lines over the non-empty log2 bucket upper bounds
//! plus the conventional `+Inf`/`_sum`/`_count` trailer. Stage-interval
//! and recovery-interval histograms (derived from spans) join the
//! histogram families as `stage.<from>-><to>` / `recovery.<from>-><to>`.
//!
//! Everything renders from snapshots, so a scrape never holds a recorder
//! lock while formatting and is safe to run while the node records.

use std::fmt::Write as _;

use crate::hist::Log2Histogram;
use crate::recorder::MemRecorder;

/// `ezbft_` + the dotted metric name with every non-alphanumeric byte
/// mapped to `_`.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 6);
    out.push_str("ezbft_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escapes a label value per the exposition format.
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn render_histogram(out: &mut String, name: &str, h: &Log2Histogram) {
    let n = sanitize(name);
    let _ = writeln!(out, "# TYPE {n} histogram");
    let mut cum = 0u64;
    for (le, count) in h.buckets() {
        cum += count;
        let _ = writeln!(out, "{n}_bucket{{le=\"{le}\"}} {cum}");
    }
    let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count());
    let _ = writeln!(out, "{n}_sum {}", h.sum());
    let _ = writeln!(out, "{n}_count {}", h.count());
}

impl MemRecorder {
    /// Renders the recorder's counters, kind counters, gauges, and
    /// histograms in the Prometheus text exposition format. Output is
    /// deterministic (name order, then label order) for a given recorder
    /// state — pinned by the golden test in `tests/exposition.rs`.
    pub fn render_exposition(&self) -> String {
        let mut out = String::new();

        // Counter families: the unlabelled total (if bumped) first, then
        // any kind-labelled series of the same family.
        let counters = self.counters_snapshot();
        let kinds = self.kind_counters_snapshot();
        let mut families: Vec<&str> = counters.keys().map(String::as_str).collect();
        for (name, _) in kinds.keys() {
            if !counters.contains_key(name) {
                families.push(name);
            }
        }
        families.sort_unstable();
        families.dedup();
        for family in families {
            let n = sanitize(family);
            let _ = writeln!(out, "# TYPE {n} counter");
            if let Some(total) = counters.get(family) {
                let _ = writeln!(out, "{n} {total}");
            }
            for ((name, kind), v) in &kinds {
                if name == family {
                    let _ = writeln!(out, "{n}{{kind=\"{}\"}} {v}", escape_label(kind));
                }
            }
        }

        // Gauges: last value under the family name, retained max as a
        // sibling `_max` gauge.
        for (name, g) in self.gauges_snapshot() {
            let n = sanitize(&name);
            let _ = writeln!(out, "# TYPE {n} gauge");
            let _ = writeln!(out, "{n} {}", g.last);
            let _ = writeln!(out, "# TYPE {n}_max gauge");
            let _ = writeln!(out, "{n}_max {}", g.max);
        }

        // Histograms: the explicit `observe()` families, then the
        // span-derived stage/recovery interval families.
        for (name, h) in self.histograms_snapshot() {
            render_histogram(&mut out, &name, &h);
        }
        for (key, h) in self.stage_interval_histograms() {
            render_histogram(&mut out, &format!("stage.{key}"), &h);
        }
        for (key, h) in self.recovery_interval_histograms() {
            render_histogram(&mut out, &format!("recovery.{key}"), &h);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_prefixes_and_flattens() {
        assert_eq!(sanitize("net.frames_out"), "ezbft_net_frames_out");
        assert_eq!(
            sanitize("stage.submit->commit"),
            "ezbft_stage_submit__commit"
        );
    }

    #[test]
    fn label_values_escape_quotes() {
        assert_eq!(escape_label("a\"b\\c"), "a\\\"b\\\\c");
    }
}
