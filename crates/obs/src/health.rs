//! Structured replica health snapshots — the `/status` side of the live
//! introspection plane (DESIGN.md §9b).
//!
//! A [`HealthReport`] captures the protocol-level state a metrics
//! recorder cannot see: who owns each instance space right now, whether
//! an owner change is in flight and how far its backoff has escalated,
//! how far execution and checkpointing trail the log, and which commit
//! path has been serving traffic. Replicas produce one via the
//! [`Introspect`] trait; the transport serves it as a single JSON object
//! and the harness scraper parses it back with [`HealthReport::from_json`]
//! — both sides hand-rolled so this crate stays zero-dependency.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A node that can snapshot its own health. Implemented by protocol
/// state machines (e.g. `ezbft_core::Replica`) and required by the
/// transport's introspection endpoint to answer `/status`.
pub trait Introspect {
    /// Builds a point-in-time health snapshot. Must be cheap and
    /// read-only: the transport calls it on the driver thread between
    /// protocol events, so a slow snapshot stalls the node.
    fn health_report(&self) -> HealthReport;
}

/// Per-instance-space slice of a [`HealthReport`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpaceHealth {
    /// Space index (spaces are numbered by their original owner).
    pub space: u64,
    /// Current owner number (monotonic across owner changes).
    pub owner: u64,
    /// Replica currently resolving from the owner number.
    pub owner_replica: u64,
    /// Whether the space is frozen pending an owner change.
    pub frozen: bool,
    /// Whether an owner change for this space has committed locally but
    /// not yet been applied.
    pub committed_to_change: bool,
    /// Owner number an in-flight owner change is moving to, if any.
    pub oc_target: Option<u64>,
    /// Next slot the (local) owner would assign in this space.
    pub next_slot: u64,
    /// Slots below this were compacted away by a stable checkpoint.
    pub compact_floor: u64,
    /// Live log entries currently retained for this space.
    pub entries: u64,
    /// SPECORDERs parked in the reorder buffer waiting for a slot gap
    /// to fill.
    pub reorder_buffered: u64,
    /// Commit certificates parked waiting for their SPECORDER.
    pub pending_commits: u64,
}

/// Point-in-time, serializable status snapshot of one replica.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HealthReport {
    /// Reporting replica's id.
    pub replica: u64,
    /// Whether the replica is mid state-transfer.
    pub recovering: bool,
    /// Commands finally executed so far.
    pub executed: u64,
    /// Committed instances waiting in the execution engine's worklist.
    pub exec_queue_depth: u64,
    /// Log entries retained across all spaces (post-compaction).
    pub retained_log: u64,
    /// Highest checkpoint sequence this replica has initiated.
    pub checkpoint_seq: u64,
    /// Highest checkpoint sequence with a stable certificate.
    pub stable_checkpoint: u64,
    /// `checkpoint_seq - stable_checkpoint`: how far proof lags intent.
    pub checkpoint_lag: u64,
    /// Total reorder-buffered SPECORDERs across spaces (gap count).
    pub reorder_buffered: u64,
    /// Fast-path commits observed (3f+1 quorum).
    pub fast_commits: u64,
    /// Slow-path commits observed (2f+1 + COMMIT round).
    pub slow_commits: u64,
    /// Aggregated-commit-path commits observed.
    pub agg_commits: u64,
    /// Owner changes applied.
    pub owner_changes: u64,
    /// Highest pending owner-change escalation attempt (0 when no
    /// escalation timer is armed); drives the exponential backoff.
    pub oc_backoff_attempt: u64,
    /// Per-space detail, in space order.
    pub spaces: Vec<SpaceHealth>,
}

impl HealthReport {
    /// Renders the report as a single-line JSON object (stable key
    /// order).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.spaces.len() * 128);
        let _ = write!(
            out,
            "{{\"replica\":{},\"recovering\":{},\"executed\":{},\"exec_queue_depth\":{},\
             \"retained_log\":{},\"checkpoint_seq\":{},\"stable_checkpoint\":{},\
             \"checkpoint_lag\":{},\"reorder_buffered\":{},\"fast_commits\":{},\
             \"slow_commits\":{},\"agg_commits\":{},\"owner_changes\":{},\
             \"oc_backoff_attempt\":{},\"spaces\":[",
            self.replica,
            self.recovering,
            self.executed,
            self.exec_queue_depth,
            self.retained_log,
            self.checkpoint_seq,
            self.stable_checkpoint,
            self.checkpoint_lag,
            self.reorder_buffered,
            self.fast_commits,
            self.slow_commits,
            self.agg_commits,
            self.owner_changes,
            self.oc_backoff_attempt,
        );
        for (i, s) in self.spaces.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"space\":{},\"owner\":{},\"owner_replica\":{},\"frozen\":{},\
                 \"committed_to_change\":{},\"oc_target\":{},\"next_slot\":{},\
                 \"compact_floor\":{},\"entries\":{},\"reorder_buffered\":{},\
                 \"pending_commits\":{}}}",
                s.space,
                s.owner,
                s.owner_replica,
                s.frozen,
                s.committed_to_change,
                match s.oc_target {
                    Some(t) => t.to_string(),
                    None => "null".to_string(),
                },
                s.next_slot,
                s.compact_floor,
                s.entries,
                s.reorder_buffered,
                s.pending_commits,
            );
        }
        out.push_str("]}");
        out
    }

    /// Parses a report previously rendered by [`HealthReport::to_json`].
    /// Unknown keys are ignored (forward compatibility); missing keys
    /// default to zero/false/empty.
    pub fn from_json(text: &str) -> Result<HealthReport, String> {
        let value = parse_value(&mut Cursor::new(text))?;
        let obj = value.as_obj().ok_or("health report is not an object")?;
        let mut report = HealthReport {
            replica: obj.num("replica"),
            recovering: obj.boolean("recovering"),
            executed: obj.num("executed"),
            exec_queue_depth: obj.num("exec_queue_depth"),
            retained_log: obj.num("retained_log"),
            checkpoint_seq: obj.num("checkpoint_seq"),
            stable_checkpoint: obj.num("stable_checkpoint"),
            checkpoint_lag: obj.num("checkpoint_lag"),
            reorder_buffered: obj.num("reorder_buffered"),
            fast_commits: obj.num("fast_commits"),
            slow_commits: obj.num("slow_commits"),
            agg_commits: obj.num("agg_commits"),
            owner_changes: obj.num("owner_changes"),
            oc_backoff_attempt: obj.num("oc_backoff_attempt"),
            spaces: Vec::new(),
        };
        if let Some(Val::Arr(spaces)) = obj.0.get("spaces") {
            for s in spaces {
                let s = s.as_obj().ok_or("space entry is not an object")?;
                report.spaces.push(SpaceHealth {
                    space: s.num("space"),
                    owner: s.num("owner"),
                    owner_replica: s.num("owner_replica"),
                    frozen: s.boolean("frozen"),
                    committed_to_change: s.boolean("committed_to_change"),
                    oc_target: match s.0.get("oc_target") {
                        Some(Val::Num(n)) => Some(*n),
                        _ => None,
                    },
                    next_slot: s.num("next_slot"),
                    compact_floor: s.num("compact_floor"),
                    entries: s.num("entries"),
                    reorder_buffered: s.num("reorder_buffered"),
                    pending_commits: s.num("pending_commits"),
                });
            }
        }
        Ok(report)
    }
}

// --- minimal JSON reader (just enough for the report's own output) ---

#[derive(Debug)]
enum Val {
    Null,
    Bool(bool),
    Num(u64),
    // Parsed for forward compatibility (unknown string-valued keys are
    // skipped), never read back.
    #[allow(dead_code)]
    Str(String),
    Arr(Vec<Val>),
    Obj(Obj),
}

#[derive(Debug)]
struct Obj(BTreeMap<String, Val>);

impl Obj {
    fn num(&self, key: &str) -> u64 {
        match self.0.get(key) {
            Some(Val::Num(n)) => *n,
            _ => 0,
        }
    }
    fn boolean(&self, key: &str) -> bool {
        matches!(self.0.get(key), Some(Val::Bool(true)))
    }
}

impl Val {
    fn as_obj(&self) -> Option<&Obj> {
        match self {
            Val::Obj(o) => Some(o),
            _ => None,
        }
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str) -> Self {
        Cursor {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b" \t\r\n".contains(b))
        {
            self.pos += 1;
        }
    }
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }
    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }
    fn lit(&mut self, word: &str, v: Val) -> Result<Val, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }
    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let start = self.pos;
                    while self.peek().is_some_and(|b| b != b'"' && b != b'\\') {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
                None => return Err("unterminated string".into()),
            }
        }
    }
    fn number(&mut self) -> Result<Val, String> {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse::<u64>()
            .map(Val::Num)
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }
}

fn parse_value(c: &mut Cursor) -> Result<Val, String> {
    c.skip_ws();
    match c.peek() {
        Some(b'{') => {
            c.eat(b'{')?;
            let mut map = BTreeMap::new();
            c.skip_ws();
            if c.peek() == Some(b'}') {
                c.pos += 1;
                return Ok(Val::Obj(Obj(map)));
            }
            loop {
                c.skip_ws();
                let key = c.string()?;
                c.skip_ws();
                c.eat(b':')?;
                map.insert(key, parse_value(c)?);
                c.skip_ws();
                match c.peek() {
                    Some(b',') => c.pos += 1,
                    Some(b'}') => {
                        c.pos += 1;
                        return Ok(Val::Obj(Obj(map)));
                    }
                    other => return Err(format!("bad object at byte {}: {other:?}", c.pos)),
                }
            }
        }
        Some(b'[') => {
            c.eat(b'[')?;
            let mut items = Vec::new();
            c.skip_ws();
            if c.peek() == Some(b']') {
                c.pos += 1;
                return Ok(Val::Arr(items));
            }
            loop {
                items.push(parse_value(c)?);
                c.skip_ws();
                match c.peek() {
                    Some(b',') => c.pos += 1,
                    Some(b']') => {
                        c.pos += 1;
                        return Ok(Val::Arr(items));
                    }
                    other => return Err(format!("bad array at byte {}: {other:?}", c.pos)),
                }
            }
        }
        Some(b'"') => Ok(Val::Str(c.string()?)),
        Some(b't') => c.lit("true", Val::Bool(true)),
        Some(b'f') => c.lit("false", Val::Bool(false)),
        Some(b'n') => c.lit("null", Val::Null),
        Some(b'0'..=b'9') => c.number(),
        other => Err(format!("unexpected {other:?} at byte {}", c.pos)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HealthReport {
        HealthReport {
            replica: 2,
            recovering: false,
            executed: 41,
            exec_queue_depth: 3,
            retained_log: 17,
            checkpoint_seq: 4,
            stable_checkpoint: 3,
            checkpoint_lag: 1,
            reorder_buffered: 2,
            fast_commits: 30,
            slow_commits: 5,
            agg_commits: 6,
            owner_changes: 1,
            oc_backoff_attempt: 2,
            spaces: vec![
                SpaceHealth {
                    space: 0,
                    owner: 4,
                    owner_replica: 0,
                    frozen: true,
                    committed_to_change: false,
                    oc_target: Some(5),
                    next_slot: 9,
                    compact_floor: 4,
                    entries: 5,
                    reorder_buffered: 2,
                    pending_commits: 1,
                },
                SpaceHealth {
                    space: 1,
                    owner: 1,
                    owner_replica: 1,
                    ..SpaceHealth::default()
                },
            ],
        }
    }

    #[test]
    fn json_round_trips() {
        let report = sample();
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(!json.contains('\n'), "single-line payload");
        let back = HealthReport::from_json(&json).expect("parses back");
        assert_eq!(back, report);
    }

    #[test]
    fn none_target_round_trips_as_null() {
        let mut report = sample();
        report.spaces[0].oc_target = None;
        let json = report.to_json();
        assert!(json.contains("\"oc_target\":null"));
        let back = HealthReport::from_json(&json).expect("parses back");
        assert_eq!(back.spaces[0].oc_target, None);
    }

    #[test]
    fn unknown_and_missing_keys_are_tolerated() {
        let back =
            HealthReport::from_json(r#"{"replica":7,"future_field":"x","spaces":[]}"#).unwrap();
        assert_eq!(back.replica, 7);
        assert_eq!(back.executed, 0);
        assert!(back.spaces.is_empty());
        assert!(HealthReport::from_json("[1,2]").is_err());
        assert!(HealthReport::from_json("{\"replica\":").is_err());
    }
}
