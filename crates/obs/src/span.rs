//! Request-lifecycle spans: one record per in-flight request, keyed by
//! `(client, request digest)`, holding per-stage timestamps.

/// The lifecycle stages of a request, in canonical protocol order
/// (DESIGN.md §9).
///
/// Replicas and clients each record the subset of stages they observe;
/// the span key ties the records together. [`Stage::Submit`] and
/// [`Stage::Reply`] are recorded at the client, the middle stages at
/// whichever replica's recorder is attached.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Client dispatched the request to the cluster.
    Submit,
    /// A replica accepted the SPECORDER carrying the request.
    SpecOrderAccept,
    /// The fast-path acknowledgement quorum formed (commit aggregation's
    /// SPECACK collection, §7).
    AckCollect,
    /// The instance carrying the request committed.
    Commit,
    /// The committed request entered an execution wave.
    ExecReady,
    /// The request's command finished final execution.
    ExecDone,
    /// The client accepted the (fast or final) reply.
    Reply,
}

impl Stage {
    /// Every stage, in canonical order.
    pub const ALL: [Stage; 7] = [
        Stage::Submit,
        Stage::SpecOrderAccept,
        Stage::AckCollect,
        Stage::Commit,
        Stage::ExecReady,
        Stage::ExecDone,
        Stage::Reply,
    ];

    /// Stable lowercase name used in reports and the event-log export.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Submit => "submit",
            Stage::SpecOrderAccept => "specorder_accept",
            Stage::AckCollect => "ack_collect",
            Stage::Commit => "commit",
            Stage::ExecReady => "exec_ready",
            Stage::ExecDone => "exec_done",
            Stage::Reply => "reply",
        }
    }

    /// Position in [`Stage::ALL`].
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Identifies one request across every node that observes it: the
/// submitting client plus the first eight bytes of the request digest.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanKey {
    /// The submitting client's numeric id.
    pub client: u64,
    /// First eight bytes of the request digest, little-endian.
    pub req: u64,
}

impl SpanKey {
    /// Builds a key from a client id and a full digest; any digest of at
    /// least eight bytes works, only the prefix is kept.
    pub fn from_digest(client: u64, digest: &[u8]) -> Self {
        let mut req = [0u8; 8];
        let n = digest.len().min(8);
        req[..n].copy_from_slice(&digest[..n]);
        SpanKey {
            client,
            req: u64::from_le_bytes(req),
        }
    }
}

/// Per-stage timestamps for one request. Only the *first* observation of
/// each stage is kept, so re-deliveries and duplicate certificates do
/// not move a span backwards, and durations between consecutive recorded
/// stages telescope to the end-to-end latency.
#[derive(Clone, Copy, Debug, Default)]
pub struct Span {
    at_us: [Option<u64>; Stage::ALL.len()],
}

impl Span {
    /// Records `stage` at `at_us` unless already recorded.
    pub fn record(&mut self, stage: Stage, at_us: u64) {
        let slot = &mut self.at_us[stage.index()];
        if slot.is_none() {
            *slot = Some(at_us);
        }
    }

    /// Timestamp of `stage`, if observed.
    pub fn at(&self, stage: Stage) -> Option<u64> {
        self.at_us[stage.index()]
    }

    /// End-to-end duration (`Reply` − `Submit`), if both were observed.
    pub fn duration_us(&self) -> Option<u64> {
        Some(
            self.at(Stage::Reply)?
                .saturating_sub(self.at(Stage::Submit)?),
        )
    }

    /// Durations between consecutive *recorded* stages, in canonical
    /// order: `(from, to, to_ts − from_ts)`.
    ///
    /// Timestamps are projected onto the span's observable window: each
    /// stage's timestamp is clipped to at most the `Reply` timestamp
    /// (when recorded) and at least the previous recorded stage's. The
    /// protocol makes both clips necessary — a fast-path client accepts
    /// its reply *before* replicas finish committing and executing
    /// speculatively-answered commands (§IV-A), so a raw commit or
    /// execution timestamp can fall after the reply; only the in-window
    /// portion is client-visible latency. The projection makes the
    /// decomposition lossless: the durations telescope, summing exactly
    /// to [`Span::duration_us`] whenever `Submit` and `Reply` are both
    /// present.
    pub fn stage_durations(&self) -> Vec<(Stage, Stage, u64)> {
        let window_end = self.at(Stage::Reply);
        let mut out = Vec::new();
        let mut prev: Option<(Stage, u64)> = None;
        for stage in Stage::ALL {
            if let Some(raw) = self.at(stage) {
                let mut ts = match window_end {
                    Some(end) => raw.min(end),
                    None => raw,
                };
                if let Some((from, from_ts)) = prev {
                    ts = ts.max(from_ts);
                    out.push((from, stage, ts - from_ts));
                }
                prev = Some((stage, ts));
            }
        }
        out
    }

    /// Whether any stage has been recorded.
    pub fn is_empty(&self) -> bool {
        self.at_us.iter().all(Option::is_none)
    }
}

/// The phases of one owner-change recovery round, in protocol order
/// (§IV-E). Unlike request [`Stage`]s these are replica-side only; the
/// span key is the `(space, new owner)` pair, shared by every replica
/// reporting into the same round.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RecoveryStage {
    /// A replica suspected the space's owner (STARTOWNERCHANGE sent).
    Suspected,
    /// The vote quorum formed: the replica committed to the change and
    /// sent its OWNERCHANGE report to the prospective new owner.
    Committed,
    /// The prospective new owner collected its report quorum and
    /// computed the safe set (NEWOWNER broadcast).
    SafeSet,
    /// NEWOWNER applied locally: the space is frozen under its new
    /// owner number and recovery is complete.
    Applied,
}

impl RecoveryStage {
    /// Every recovery stage, in canonical order.
    pub const ALL: [RecoveryStage; 4] = [
        RecoveryStage::Suspected,
        RecoveryStage::Committed,
        RecoveryStage::SafeSet,
        RecoveryStage::Applied,
    ];

    /// Stable lowercase name used in reports and the event-log export.
    pub fn as_str(self) -> &'static str {
        match self {
            RecoveryStage::Suspected => "suspected",
            RecoveryStage::Committed => "committed",
            RecoveryStage::SafeSet => "safe_set",
            RecoveryStage::Applied => "applied",
        }
    }

    /// Position in [`RecoveryStage::ALL`].
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Identifies one owner-change round: the recovered space plus the
/// owner number it is moving *to*.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RecoveryKey {
    /// The instance space being recovered (its original owner's index).
    pub space: u8,
    /// The owner number the round hands the space to.
    pub new_owner: u64,
}

/// Per-phase timestamps for one owner-change round. First observation
/// wins, exactly as for request [`Span`]s, so duplicate reports and
/// re-deliveries never move a recovery span backwards.
#[derive(Clone, Copy, Debug, Default)]
pub struct RecoverySpan {
    at_us: [Option<u64>; RecoveryStage::ALL.len()],
}

impl RecoverySpan {
    /// Records `stage` at `at_us` unless already recorded.
    pub fn record(&mut self, stage: RecoveryStage, at_us: u64) {
        let slot = &mut self.at_us[stage.index()];
        if slot.is_none() {
            *slot = Some(at_us);
        }
    }

    /// Timestamp of `stage`, if observed.
    pub fn at(&self, stage: RecoveryStage) -> Option<u64> {
        self.at_us[stage.index()]
    }

    /// End-to-end recovery latency (`Applied` − `Suspected`), if both
    /// phases were observed.
    pub fn duration_us(&self) -> Option<u64> {
        Some(
            self.at(RecoveryStage::Applied)?
                .saturating_sub(self.at(RecoveryStage::Suspected)?),
        )
    }

    /// Durations between consecutive *recorded* phases, in canonical
    /// order: `(from, to, to_ts − from_ts)`. Recovery has no analogue of
    /// the fast-path reply, so no window projection is needed; later
    /// timestamps are clamped up to the previous phase (clock skew
    /// between recording replicas).
    pub fn stage_durations(&self) -> Vec<(RecoveryStage, RecoveryStage, u64)> {
        let mut out = Vec::new();
        let mut prev: Option<(RecoveryStage, u64)> = None;
        for stage in RecoveryStage::ALL {
            if let Some(raw) = self.at(stage) {
                let mut ts = raw;
                if let Some((from, from_ts)) = prev {
                    ts = ts.max(from_ts);
                    out.push((from, stage, ts - from_ts));
                }
                prev = Some((stage, ts));
            }
        }
        out
    }

    /// Whether any phase has been recorded.
    pub fn is_empty(&self) -> bool {
        self.at_us.iter().all(Option::is_none)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_wins() {
        let mut s = Span::default();
        s.record(Stage::Commit, 100);
        s.record(Stage::Commit, 50);
        assert_eq!(s.at(Stage::Commit), Some(100));
    }

    #[test]
    fn stage_durations_telescope_to_e2e() {
        let mut s = Span::default();
        s.record(Stage::Submit, 1_000);
        s.record(Stage::Commit, 1_300);
        s.record(Stage::ExecDone, 1_450);
        s.record(Stage::Reply, 1_700);
        let durations = s.stage_durations();
        let sum: u64 = durations.iter().map(|(_, _, d)| d).sum();
        assert_eq!(Some(sum), s.duration_us());
        assert_eq!(durations.len(), 3);
        assert_eq!(durations[0], (Stage::Submit, Stage::Commit, 300));
    }

    #[test]
    fn post_reply_stages_are_projected_into_the_window() {
        // Fast path: the client replies at 1_500 while the replicas only
        // commit (1_800) and execute (2_100) afterwards. The projected
        // decomposition still telescopes to the e2e latency exactly.
        let mut s = Span::default();
        s.record(Stage::Submit, 1_000);
        s.record(Stage::SpecOrderAccept, 1_200);
        s.record(Stage::Commit, 1_800);
        s.record(Stage::ExecDone, 2_100);
        s.record(Stage::Reply, 1_500);
        let durations = s.stage_durations();
        let sum: u64 = durations.iter().map(|(_, _, d)| d).sum();
        assert_eq!(Some(sum), s.duration_us());
        // In-window stages keep their real durations; post-reply stages
        // contribute only their in-window portion (here zero).
        assert_eq!(durations[0], (Stage::Submit, Stage::SpecOrderAccept, 200));
        assert_eq!(durations[1], (Stage::SpecOrderAccept, Stage::Commit, 300));
        assert_eq!(durations[2], (Stage::Commit, Stage::ExecDone, 0));
        assert_eq!(durations[3], (Stage::ExecDone, Stage::Reply, 0));
    }

    #[test]
    fn span_key_from_digest_prefix() {
        let digest = [1u8, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff];
        let key = SpanKey::from_digest(9, &digest);
        assert_eq!(key.client, 9);
        assert_eq!(key.req, 1);
    }

    #[test]
    fn canonical_order_is_stable() {
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.as_str()).collect();
        assert_eq!(
            names,
            [
                "submit",
                "specorder_accept",
                "ack_collect",
                "commit",
                "exec_ready",
                "exec_done",
                "reply"
            ]
        );
    }
}
