//! Pluggable time sources for recorders that run outside a sans-io
//! `Actions` sink (transport I/O threads, simulator internals).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic microsecond clock.
///
/// The protocol crates themselves take timestamps from the `Actions`
/// sink (`out.now()`), which is virtual in the simulator and wall-clock
/// in the TCP runtime; `Clock` covers the code that records telemetry
/// *without* a sink in hand — per-connection transport threads use
/// [`WallClock`], the simulator mirrors its virtual time into a
/// [`ManualClock`].
pub trait Clock: Send + Sync {
    /// Current time in microseconds since the clock's epoch.
    fn now_us(&self) -> u64;
}

/// Wall-clock time, anchored at construction.
#[derive(Debug)]
pub struct WallClock {
    start: Instant,
}

impl WallClock {
    /// Creates a wall clock whose epoch is "now".
    pub fn new() -> Self {
        WallClock {
            start: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }
}

/// A manually-advanced clock for virtual-time environments.
///
/// The simulator sets it to the current virtual time before dispatching
/// each event, so telemetry recorded from inside simulated nodes carries
/// deterministic timestamps.
#[derive(Debug, Default)]
pub struct ManualClock {
    now_us: AtomicU64,
}

impl ManualClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the current time (monotonicity is the caller's contract).
    pub fn set(&self, now_us: u64) {
        self.now_us.store(now_us, Ordering::Relaxed);
    }

    /// Advances the clock by `delta_us` and returns the new reading.
    pub fn advance(&self, delta_us: u64) -> u64 {
        self.now_us.fetch_add(delta_us, Ordering::Relaxed) + delta_us
    }
}

impl Clock for ManualClock {
    fn now_us(&self) -> u64 {
        self.now_us.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_set_and_advance() {
        let c = ManualClock::new();
        assert_eq!(c.now_us(), 0);
        c.set(100);
        assert_eq!(c.now_us(), 100);
        assert_eq!(c.advance(50), 150);
        assert_eq!(c.now_us(), 150);
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::new();
        let a = c.now_us();
        let b = c.now_us();
        assert!(b >= a);
    }
}
