//! A fixed-size power-of-two-bucketed histogram.

/// A log2-bucketed histogram over `u64` samples.
///
/// Sample `v` lands in bucket `⌊log2 v⌋ + 1` (zero in bucket 0), so the
/// 65 buckets cover the full `u64` range with constant-time recording
/// and no allocation after construction — cheap enough to stay on by
/// default in the protocol hot path. Quantiles are resolved to the
/// midpoint of the containing bucket, clamped to the observed min/max:
/// exact within a factor of two, which is the advertised contract (the
/// agreement with an exact sort-based quantile is pinned by tests in
/// `ezbft-simnet`).
#[derive(Clone, Debug)]
pub struct Log2Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Histogram {
    /// Creates an empty histogram.
    pub const fn new() -> Self {
        Log2Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Records one sample. Constant time, no allocation.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`), resolved to the midpoint of the
    /// bucket containing the quantile rank and clamped to the observed
    /// `[min, max]`. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let (lo, hi) = Self::bucket_bounds(b);
                let mid = lo + (hi - lo) / 2;
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Inclusive sample range `[lo, hi]` of bucket `b`.
    fn bucket_bounds(b: usize) -> (u64, u64) {
        if b == 0 {
            (0, 0)
        } else {
            (1u64 << (b - 1), (1u64 << (b - 1)) + ((1u64 << (b - 1)) - 1))
        }
    }

    /// Index of the bucket `v` falls into — exposed so tests can assert
    /// that a bucketed quantile agrees with an exact one "within one
    /// bucket".
    pub fn bucket_index(v: u64) -> usize {
        Self::bucket_of(v)
    }

    /// Non-empty buckets as `(inclusive upper bound, count)` pairs in
    /// ascending bound order — the raw material for cumulative
    /// renderings such as the Prometheus-style `_bucket{le="…"}` lines
    /// of the text exposition (DESIGN.md §9b).
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(b, &n)| (Self::bucket_bounds(b).1, n))
            .collect()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_powers_of_two() {
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        assert_eq!(Log2Histogram::bucket_of(1), 1);
        assert_eq!(Log2Histogram::bucket_of(2), 2);
        assert_eq!(Log2Histogram::bucket_of(3), 2);
        assert_eq!(Log2Histogram::bucket_of(4), 3);
        assert_eq!(Log2Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn quantile_midpoint_within_bucket() {
        let mut h = Log2Histogram::new();
        for v in [10u64, 11, 12, 13, 14, 15] {
            h.record(v);
        }
        // All samples in bucket [8, 15]; midpoint is 11, clamped to [10, 15].
        let q = h.quantile(0.5);
        assert_eq!(
            Log2Histogram::bucket_index(q),
            Log2Histogram::bucket_index(10)
        );
        assert!((10..=15).contains(&q));
    }

    #[test]
    fn stats_track_min_max_sum() {
        let mut h = Log2Histogram::new();
        h.record(5);
        h.record(100);
        h.record(0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 105);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 35.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = Log2Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Log2Histogram::new();
        a.record(4);
        let mut b = Log2Histogram::new();
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 4);
        assert_eq!(a.max(), 1000);
    }

    #[test]
    fn buckets_expose_upper_bounds_in_order() {
        let mut h = Log2Histogram::new();
        for v in [0u64, 1, 2, 3, 9] {
            h.record(v);
        }
        // 0 → bucket [0,0]; 1 → [1,1]; 2,3 → [2,3]; 9 → [8,15].
        assert_eq!(h.buckets(), vec![(0, 1), (1, 1), (3, 2), (15, 1)]);
        assert!(Log2Histogram::new().buckets().is_empty());
    }

    #[test]
    fn extreme_quantiles_hit_min_and_max_buckets() {
        let mut h = Log2Histogram::new();
        for v in [1u64, 2, 4, 8, 1 << 20] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 1);
        let p100 = h.quantile(1.0);
        assert_eq!(
            Log2Histogram::bucket_index(p100),
            Log2Histogram::bucket_index(1 << 20)
        );
    }
}
