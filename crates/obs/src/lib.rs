//! Zero-dependency instrumentation layer shared by every crate in the
//! workspace: counters, gauges, bucketed log2 histograms, and
//! request-scoped *lifecycle spans* that record per-stage timestamps for
//! a request as it moves through the protocol (DESIGN.md §9).
//!
//! The layer is observation-only by construction: the [`Recorder`] trait
//! takes `&self`, returns nothing, and the protocol code never branches
//! on recorded state. The default [`NullRecorder`] makes every call a
//! no-op with zero allocations, so instrumentation can stay compiled-in
//! and enabled-by-default; [`MemRecorder`] aggregates in memory for the
//! harness and tests.
//!
//! Timestamps come from whoever drives the protocol — virtual time in
//! the simulator, wall-clock time in the TCP transport — via the
//! [`Clock`] trait ([`ManualClock`] / [`WallClock`]) or directly as
//! microsecond values where the caller already has a clock (the sans-io
//! `Actions::now()`).
//!
//! # Example
//!
//! ```
//! use ezbft_obs::{MemRecorder, Recorder, SpanKey, Stage};
//!
//! let rec = MemRecorder::new();
//! let key = SpanKey { client: 7, req: 0xabcd };
//! rec.stage(key, Stage::Submit, 1_000);
//! rec.stage(key, Stage::Commit, 1_450);
//! rec.stage(key, Stage::Reply, 1_500);
//! let span = rec.span(key).unwrap();
//! assert_eq!(span.duration_us(), Some(500));
//! assert_eq!(span.at(Stage::Commit), Some(1_450));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod clock;
mod exposition;
mod health;
mod hist;
mod recorder;
mod span;

pub use clock::{Clock, ManualClock, WallClock};
pub use health::{HealthReport, Introspect, SpaceHealth};
pub use hist::Log2Histogram;
pub use recorder::{GaugeStat, MemRecorder, NullRecorder, Recorder};
pub use span::{RecoveryKey, RecoverySpan, RecoveryStage, Span, SpanKey, Stage};
