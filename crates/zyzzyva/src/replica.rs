//! The Zyzzyva replica.

use std::collections::{BTreeMap, HashMap};

use ezbft_crypto::{Audience, Digest, KeyStore};
use ezbft_smr::{
    Actions, Application, ClientId, ClusterConfig, Micros, NodeId, ProtocolNode, ReplicaId,
    TimerId, Timestamp, VoteTally,
};

use crate::msg::{
    CommitCert, HistoryEntry, IHatePrimary, LocalCommit, Msg, NewView, OrderReq, OrderReqBody,
    Request, SpecResponse, SpecResponseBody, ViewChange,
};

/// Zyzzyva configuration.
#[derive(Clone, Copy, Debug)]
pub struct ZyzzyvaConfig {
    /// The cluster.
    pub cluster: ClusterConfig,
    /// The primary of view 0 (experiments place it in a chosen region).
    pub first_primary: ReplicaId,
    /// Client-side timer before falling back to the commit-certificate path.
    pub commit_timeout: Micros,
    /// Client-side retransmission timer.
    pub retry_delay: Micros,
    /// Replica-side timer between forwarding a retransmitted request to the
    /// primary and accusing it.
    pub accuse_timeout: Micros,
}

impl ZyzzyvaConfig {
    /// Defaults for WAN simulations.
    pub fn new(cluster: ClusterConfig, first_primary: ReplicaId) -> Self {
        ZyzzyvaConfig {
            cluster,
            first_primary,
            commit_timeout: Micros::from_millis(600),
            retry_delay: Micros::from_millis(1_500),
            accuse_timeout: Micros::from_millis(600),
        }
    }

    /// The primary of `view`.
    pub fn primary(&self, view: u64) -> ReplicaId {
        let n = self.cluster.n() as u64;
        ReplicaId::new(((self.first_primary.index() as u64 + view) % n) as u8)
    }
}

#[derive(Clone, Debug)]
struct LogEntry<C, R> {
    body: OrderReqBody,
    sig: ezbft_crypto::Signature,
    req: Request<C>,
    /// Kept so tests can audit what this replica replied per slot.
    #[allow(dead_code)]
    response: Option<R>,
}

#[derive(Clone, Debug)]
struct ClientRec<R> {
    last_ts: Timestamp,
    cached: Option<SpecResponse<R>>,
}

impl<R> Default for ClientRec<R> {
    fn default() -> Self {
        ClientRec {
            last_ts: Timestamp::ZERO,
            cached: None,
        }
    }
}

/// Counters for tests and reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ZyzzyvaStats {
    /// Requests ordered (primary role).
    pub ordered: u64,
    /// Requests speculatively executed.
    pub executed: u64,
    /// Commit certificates acknowledged.
    pub commits_acked: u64,
    /// View changes completed.
    pub view_changes: u64,
    /// Messages rejected by validation.
    pub rejected: u64,
}

enum Timer {
    Accuse { client: ClientId, ts: Timestamp },
}

/// The Zyzzyva replica node.
pub struct ZyzzyvaReplica<A: Application> {
    id: ReplicaId,
    cfg: ZyzzyvaConfig,
    keys: KeyStore,
    /// Pristine application state, kept for view-change replay.
    initial: A,
    app: A,
    view: u64,
    in_view_change: bool,
    /// Primary only: next sequence number to assign (1-based).
    next_n: u64,
    log: BTreeMap<u64, LogEntry<A::Command, A::Response>>,
    /// Highest contiguously executed sequence number.
    exec_upto: u64,
    /// History digest after `exec_upto`.
    hist: Digest,
    pending_orders: BTreeMap<u64, OrderReq<A::Command>>,
    clients: HashMap<ClientId, ClientRec<A::Response>>,
    /// Highest sequence number covered by a commit certificate.
    max_cc: u64,
    ihp_votes: HashMap<u64, VoteTally>,
    vc_reports: HashMap<u64, Vec<ViewChange<A::Command>>>,
    timers: HashMap<u64, Timer>,
    accuse_waits: HashMap<(ClientId, Timestamp), u64>,
    next_timer: u64,
    stats: ZyzzyvaStats,
}

impl<A: Application> std::fmt::Debug for ZyzzyvaReplica<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ZyzzyvaReplica")
            .field("id", &self.id)
            .field("view", &self.view)
            .field("exec_upto", &self.exec_upto)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

type Out<A> = Actions<
    Msg<<A as Application>::Command, <A as Application>::Response>,
    <A as Application>::Response,
>;

impl<A: Application> ZyzzyvaReplica<A> {
    /// Creates a replica.
    ///
    /// # Panics
    ///
    /// Panics if `keys` does not belong to `id`.
    pub fn new(id: ReplicaId, cfg: ZyzzyvaConfig, keys: KeyStore, app: A) -> Self {
        assert_eq!(keys.me(), NodeId::Replica(id), "keystore identity mismatch");
        ZyzzyvaReplica {
            id,
            cfg,
            keys,
            initial: app.clone(),
            app,
            view: 0,
            in_view_change: false,
            next_n: 1,
            log: BTreeMap::new(),
            exec_upto: 0,
            hist: Digest::ZERO,
            pending_orders: BTreeMap::new(),
            clients: HashMap::new(),
            max_cc: 0,
            ihp_votes: HashMap::new(),
            vc_reports: HashMap::new(),
            timers: HashMap::new(),
            accuse_waits: HashMap::new(),
            next_timer: 0,
            stats: ZyzzyvaStats::default(),
        }
    }

    /// Counters for tests and reports.
    pub fn stats(&self) -> ZyzzyvaStats {
        self.stats
    }

    /// The application state (speculative, per Zyzzyva's design).
    pub fn app(&self) -> &A {
        &self.app
    }

    /// Current view.
    pub fn view(&self) -> u64 {
        self.view
    }

    /// Highest executed sequence number.
    pub fn executed_upto(&self) -> u64 {
        self.exec_upto
    }

    fn is_primary(&self) -> bool {
        self.cfg.primary(self.view) == self.id
    }

    fn audience(&self, client: ClientId) -> Audience {
        Audience::replicas(self.cfg.cluster.n()).and(client)
    }

    fn verify_request(&mut self, req: &Request<A::Command>) -> bool {
        let payload = Request::signed_payload(req.client, req.ts, &req.cmd);
        self.keys
            .verify(NodeId::Client(req.client), &payload, &req.sig)
            .is_ok()
    }

    // ------------------------------------------------------------------
    // Ordering (primary) and speculative execution (all replicas)
    // ------------------------------------------------------------------

    fn on_request(&mut self, req: Request<A::Command>, out: &mut Out<A>) {
        if !self.verify_request(&req) {
            self.stats.rejected += 1;
            return;
        }
        if !self.is_primary() || self.in_view_change {
            // Not ours to order; a client that guessed wrong will
            // retransmit via broadcast.
            return;
        }
        let rec = self.clients.entry(req.client).or_default();
        if req.ts < rec.last_ts {
            return;
        }
        if req.ts == rec.last_ts {
            if let Some(cached) = rec.cached.clone() {
                out.send(NodeId::Client(req.client), Msg::SpecResponse(cached));
            }
            return;
        }

        let n = self.next_n;
        self.next_n += 1;
        let d = req.digest();
        // hist_n = H(hist_{n-1} || d): chain from the last *ordered* slot.
        let prev = self
            .log
            .get(&(n - 1))
            .map(|e| e.body.hist)
            .unwrap_or(if n == 1 { Digest::ZERO } else { self.hist });
        let hist = prev.chain(&d);
        let body = OrderReqBody {
            view: self.view,
            n,
            hist,
            req_digest: d,
        };
        let sig = self
            .keys
            .sign(&body.signed_payload(), &self.audience(req.client));
        let or = OrderReq {
            body: body.clone(),
            sig: sig.clone(),
            req: req.clone(),
        };
        let peers: Vec<ReplicaId> = self.cfg.cluster.peers(self.id).collect();
        out.broadcast(peers, Msg::OrderReq(or.clone()));
        self.stats.ordered += 1;
        self.accept_order(or, out);
    }

    fn on_request_broadcast(&mut self, req: Request<A::Command>, out: &mut Out<A>) {
        if !self.verify_request(&req) {
            self.stats.rejected += 1;
            return;
        }
        let rec = self.clients.entry(req.client).or_default();
        if req.ts <= rec.last_ts {
            if let Some(cached) = rec.cached.clone() {
                if cached.body.ts == req.ts {
                    out.send(NodeId::Client(req.client), Msg::SpecResponse(cached));
                    return;
                }
            }
            if req.ts < rec.last_ts {
                return;
            }
        }
        if self.is_primary() {
            self.on_request(req, out);
            return;
        }
        // Forward to the primary and accuse it if nothing happens.
        let primary = self.cfg.primary(self.view);
        let key = (req.client, req.ts);
        out.send(NodeId::Replica(primary), Msg::Request(req));
        if !self.accuse_waits.contains_key(&key) {
            let id = self.next_timer;
            self.next_timer += 1;
            self.timers.insert(
                id,
                Timer::Accuse {
                    client: key.0,
                    ts: key.1,
                },
            );
            self.accuse_waits.insert(key, id);
            out.set_timer(TimerId(id), self.cfg.accuse_timeout);
        }
    }

    fn on_order_req(&mut self, or: OrderReq<A::Command>, from: NodeId, out: &mut Out<A>) {
        if self.in_view_change {
            return;
        }
        let primary = self.cfg.primary(or.body.view);
        if or.body.view != self.view || from != NodeId::Replica(primary) {
            self.stats.rejected += 1;
            return;
        }
        if self
            .keys
            .verify(NodeId::Replica(primary), &or.body.signed_payload(), &or.sig)
            .is_err()
            || or.req.digest() != or.body.req_digest
            || !self.verify_request(&or.req)
        {
            self.stats.rejected += 1;
            return;
        }
        let n = or.body.n;
        let expected = self.max_ordered() + 1;
        if n < expected {
            // Duplicate: refresh the client's response.
            if let Some(entry) = self.log.get(&n) {
                if let Some(cached) = self
                    .clients
                    .get(&entry.req.client)
                    .and_then(|r| r.cached.clone())
                {
                    out.send(NodeId::Client(entry.req.client), Msg::SpecResponse(cached));
                }
            }
            return;
        }
        if n > expected {
            self.pending_orders.insert(n, or);
            return;
        }
        self.accept_order(or, out);
        loop {
            let next = self.max_ordered() + 1;
            let Some(or) = self.pending_orders.remove(&next) else {
                break;
            };
            self.accept_order(or, out);
        }
    }

    fn max_ordered(&self) -> u64 {
        self.log.keys().next_back().copied().unwrap_or(0)
    }

    /// Accepts a contiguous ORDER-REQ: verify the history chain, execute
    /// speculatively, respond to the client.
    fn accept_order(&mut self, or: OrderReq<A::Command>, out: &mut Out<A>) {
        let n = or.body.n;
        let prev_hist = self
            .log
            .get(&(n - 1))
            .map(|e| e.body.hist)
            .unwrap_or(Digest::ZERO);
        let expected_hist = prev_hist.chain(&or.body.req_digest);
        if or.body.hist != expected_hist {
            // Primary equivocation or corruption.
            self.stats.rejected += 1;
            return;
        }

        let response = self.app.apply(&or.req.cmd);
        self.exec_upto = n;
        self.hist = or.body.hist;
        self.stats.executed += 1;

        let body = SpecResponseBody {
            view: or.body.view,
            n,
            hist: or.body.hist,
            req_digest: or.body.req_digest,
            client: or.req.client,
            ts: or.req.ts,
        };
        let payload = SpecResponse::<A::Response>::signed_payload(&body, &response);
        let sig = self.keys.sign(&payload, &self.audience(or.req.client));
        let resp = SpecResponse {
            body,
            sender: self.id,
            response: response.clone(),
            sig,
        };

        let rec = self.clients.entry(or.req.client).or_default();
        rec.last_ts = rec.last_ts.max(or.req.ts);
        rec.cached = Some(resp.clone());

        // A pending accusation for this request is satisfied.
        if let Some(id) = self.accuse_waits.remove(&(or.req.client, or.req.ts)) {
            self.timers.remove(&id);
            out.cancel_timer(TimerId(id));
        }

        self.log.insert(
            n,
            LogEntry {
                body: or.body,
                sig: or.sig,
                req: or.req.clone(),
                response: Some(response),
            },
        );
        out.send(NodeId::Client(or.req.client), Msg::SpecResponse(resp));
    }

    // ------------------------------------------------------------------
    // Commit certificates
    // ------------------------------------------------------------------

    fn on_commit(&mut self, cert: CommitCert<A::Response>, out: &mut Out<A>) {
        let Some(first) = cert.cc.first() else {
            self.stats.rejected += 1;
            return;
        };
        if cert.cc.len() < self.cfg.cluster.slow_quorum() {
            self.stats.rejected += 1;
            return;
        }
        let key = first.match_key();
        let mut senders = std::collections::BTreeSet::new();
        for r in &cert.cc {
            if r.match_key() != key || !senders.insert(r.sender) {
                self.stats.rejected += 1;
                return;
            }
            let payload = SpecResponse::<A::Response>::signed_payload(&r.body, &r.response);
            if self
                .keys
                .verify(NodeId::Replica(r.sender), &payload, &r.sig)
                .is_err()
            {
                self.stats.rejected += 1;
                return;
            }
        }
        self.max_cc = self.max_cc.max(first.body.n);
        self.stats.commits_acked += 1;
        let payload = LocalCommit::signed_payload(
            first.body.view,
            first.body.n,
            first.body.client,
            first.body.ts,
        );
        let sig = self.keys.sign(&payload, &self.audience(first.body.client));
        let lc = LocalCommit {
            view: first.body.view,
            n: first.body.n,
            client: first.body.client,
            ts: first.body.ts,
            sender: self.id,
            sig,
        };
        out.send(NodeId::Client(first.body.client), Msg::LocalCommit(lc));
    }

    // ------------------------------------------------------------------
    // View change (simplified; see crate docs)
    // ------------------------------------------------------------------

    fn on_ihp(&mut self, ihp: IHatePrimary, from: NodeId, out: &mut Out<A>) {
        if from != NodeId::Replica(ihp.sender) || ihp.view != self.view {
            return;
        }
        let payload = IHatePrimary::signed_payload(ihp.view);
        if self
            .keys
            .verify(NodeId::Replica(ihp.sender), &payload, &ihp.sig)
            .is_err()
        {
            self.stats.rejected += 1;
            return;
        }
        let votes = self.ihp_votes.entry(ihp.view).or_default();
        votes.vote(ihp.sender);
        if votes.reached(self.cfg.cluster.weak_quorum()) {
            self.accuse(out); // amplify
            self.enter_view_change(out);
        }
    }

    fn accuse(&mut self, out: &mut Out<A>) {
        let votes = self.ihp_votes.entry(self.view).or_default();
        if votes.has_voted(self.id) {
            return;
        }
        votes.vote(self.id);
        let payload = IHatePrimary::signed_payload(self.view);
        let sig = self
            .keys
            .sign(&payload, &Audience::replicas(self.cfg.cluster.n()));
        let msg = Msg::IHatePrimary(IHatePrimary {
            view: self.view,
            sender: self.id,
            sig,
        });
        let peers: Vec<ReplicaId> = self.cfg.cluster.peers(self.id).collect();
        out.broadcast(peers, msg);
    }

    fn enter_view_change(&mut self, out: &mut Out<A>) {
        if self.in_view_change {
            return;
        }
        self.in_view_change = true;
        let new_view = self.view + 1;
        let entries: Vec<HistoryEntry<A::Command>> = self
            .log
            .values()
            .map(|e| HistoryEntry {
                body: e.body.clone(),
                sig: e.sig.clone(),
                req: e.req.clone(),
            })
            .collect();
        let payload = ViewChange::signed_payload(new_view, &entries);
        let sig = self
            .keys
            .sign(&payload, &Audience::replicas(self.cfg.cluster.n()));
        let vc = ViewChange {
            new_view,
            sender: self.id,
            entries,
            sig,
        };
        let new_primary = self.cfg.primary(new_view);
        if new_primary == self.id {
            self.on_view_change(vc, NodeId::Replica(self.id), out);
        } else {
            out.send(NodeId::Replica(new_primary), Msg::ViewChange(vc));
        }
    }

    fn verify_view_change(&mut self, vc: &ViewChange<A::Command>) -> bool {
        let payload = ViewChange::signed_payload(vc.new_view, &vc.entries);
        self.keys
            .verify(NodeId::Replica(vc.sender), &payload, &vc.sig)
            .is_ok()
    }

    fn on_view_change(&mut self, vc: ViewChange<A::Command>, from: NodeId, out: &mut Out<A>) {
        if from != NodeId::Replica(vc.sender)
            || self.cfg.primary(vc.new_view) != self.id
            || vc.new_view <= self.view
        {
            return;
        }
        if !self.verify_view_change(&vc) {
            self.stats.rejected += 1;
            return;
        }
        let reports = self.vc_reports.entry(vc.new_view).or_default();
        if reports.iter().any(|r| r.sender == vc.sender) {
            return;
        }
        reports.push(vc);
        if reports.len() < self.cfg.cluster.slow_quorum() {
            return;
        }
        let new_view = reports[0].new_view;
        let proof = reports.clone();
        let adopted = Self::adopt_history(&mut self.keys, &self.cfg, &proof);
        // Re-sign the adopted history under the new view with a fresh chain.
        let mut entries = Vec::with_capacity(adopted.len());
        let mut hist = Digest::ZERO;
        for (i, he) in adopted.into_iter().enumerate() {
            let d = he.req.digest();
            hist = hist.chain(&d);
            let body = OrderReqBody {
                view: new_view,
                n: i as u64 + 1,
                hist,
                req_digest: d,
            };
            let sig = self
                .keys
                .sign(&body.signed_payload(), &self.audience(he.req.client));
            entries.push(HistoryEntry {
                body,
                sig,
                req: he.req,
            });
        }
        let payload = NewView::signed_payload(new_view, &entries);
        let sig = self
            .keys
            .sign(&payload, &Audience::replicas(self.cfg.cluster.n()));
        let nv = NewView {
            new_view,
            proof,
            entries,
            sender: self.id,
            sig,
        };
        let peers: Vec<ReplicaId> = self.cfg.cluster.peers(self.id).collect();
        out.broadcast(peers, Msg::NewView(nv.clone()));
        self.install_new_view(nv, out);
    }

    /// Deterministic history adoption: a slot's entry is adopted if the
    /// same primary-signed body is reported by at least `f + 1` replicas;
    /// adoption stops at the first unsupported slot.
    fn adopt_history(
        keys: &mut KeyStore,
        cfg: &ZyzzyvaConfig,
        proof: &[ViewChange<A::Command>],
    ) -> Vec<HistoryEntry<A::Command>> {
        let mut adopted = Vec::new();
        let mut n = 1u64;
        loop {
            use std::collections::HashMap as Map;
            let mut groups: Map<
                Digest,
                (
                    std::collections::BTreeSet<ReplicaId>,
                    &HistoryEntry<A::Command>,
                ),
            > = Map::new();
            for vc in proof {
                for he in &vc.entries {
                    if he.body.n != n {
                        continue;
                    }
                    let primary = cfg.primary(he.body.view);
                    if keys
                        .verify(NodeId::Replica(primary), &he.body.signed_payload(), &he.sig)
                        .is_err()
                    {
                        continue;
                    }
                    let key = Digest::of(&he.body.signed_payload());
                    groups
                        .entry(key)
                        .or_insert_with(|| (Default::default(), he))
                        .0
                        .insert(vc.sender);
                }
            }
            let winner = groups
                .values()
                .filter(|(s, _)| s.len() >= cfg.cluster.weak_quorum())
                .max_by_key(|(s, _)| s.len());
            match winner {
                Some((_, he)) => {
                    adopted.push((*he).clone());
                    n += 1;
                }
                None => break,
            }
        }
        adopted
    }

    fn on_new_view(&mut self, nv: NewView<A::Command>, from: NodeId, out: &mut Out<A>) {
        if from != NodeId::Replica(nv.sender)
            || self.cfg.primary(nv.new_view) != nv.sender
            || nv.new_view <= self.view
        {
            return;
        }
        let payload = NewView::signed_payload(nv.new_view, &nv.entries);
        if self
            .keys
            .verify(NodeId::Replica(nv.sender), &payload, &nv.sig)
            .is_err()
        {
            self.stats.rejected += 1;
            return;
        }
        if nv.proof.len() < self.cfg.cluster.slow_quorum() {
            self.stats.rejected += 1;
            return;
        }
        let mut senders = std::collections::BTreeSet::new();
        for vc in &nv.proof {
            if vc.new_view != nv.new_view
                || !senders.insert(vc.sender)
                || !self.verify_view_change(vc)
            {
                self.stats.rejected += 1;
                return;
            }
        }
        // The adopted request sequence must match the proof.
        let adopted = Self::adopt_history(&mut self.keys, &self.cfg, &nv.proof);
        let same = adopted.len() == nv.entries.len()
            && adopted
                .iter()
                .zip(&nv.entries)
                .all(|(a, b)| a.req.digest() == b.req.digest());
        if !same {
            self.stats.rejected += 1;
            return;
        }
        self.install_new_view(nv, out);
    }

    fn install_new_view(&mut self, nv: NewView<A::Command>, out: &mut Out<A>) {
        self.view = nv.new_view;
        self.in_view_change = false;
        self.log.clear();
        self.pending_orders.clear();
        self.clients.clear();
        self.app = self.initial.clone();
        self.exec_upto = 0;
        self.hist = Digest::ZERO;
        self.stats.view_changes += 1;
        // Replay the adopted history.
        for he in nv.entries {
            let or = OrderReq {
                body: he.body,
                sig: he.sig,
                req: he.req,
            };
            self.accept_order(or, out);
        }
        self.next_n = self.exec_upto + 1;
        // Clear stale accusation timers: the new primary starts clean.
        for (_, id) in self.accuse_waits.drain() {
            self.timers.remove(&id);
            out.cancel_timer(TimerId(id));
        }
    }
}

impl<A: Application> ProtocolNode for ZyzzyvaReplica<A> {
    type Message = Msg<A::Command, A::Response>;
    type Response = A::Response;

    fn id(&self) -> NodeId {
        NodeId::Replica(self.id)
    }

    fn on_message(&mut self, from: NodeId, msg: Self::Message, out: &mut Out<A>) {
        match msg {
            Msg::Request(req) => self.on_request(req, out),
            Msg::RequestBroadcast(req) => self.on_request_broadcast(req, out),
            Msg::OrderReq(or) => self.on_order_req(or, from, out),
            Msg::Commit(cert) => self.on_commit(cert, out),
            Msg::IHatePrimary(ihp) => self.on_ihp(ihp, from, out),
            Msg::ViewChange(vc) => self.on_view_change(vc, from, out),
            Msg::NewView(nv) => self.on_new_view(nv, from, out),
            Msg::SpecResponse(_) | Msg::LocalCommit(_) => {
                self.stats.rejected += 1;
            }
        }
    }

    fn on_timer(&mut self, id: TimerId, out: &mut Out<A>) {
        let Some(timer) = self.timers.remove(&id.0) else {
            return;
        };
        match timer {
            Timer::Accuse { client, ts } => {
                self.accuse_waits.remove(&(client, ts));
                self.accuse(out);
            }
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}
