//! Zyzzyva protocol messages.

use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};

use ezbft_crypto::{Digest, Signature};
use ezbft_smr::{ClientId, ReplicaId, Timestamp};

/// Bound on message payload types.
pub trait Payload:
    Clone + std::fmt::Debug + Eq + Serialize + DeserializeOwned + Send + 'static
{
}
impl<T: Clone + std::fmt::Debug + Eq + Serialize + DeserializeOwned + Send + 'static> Payload
    for T
{
}

/// A signed client request.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Request<C> {
    /// Issuing client.
    pub client: ClientId,
    /// Client-monotonic timestamp.
    pub ts: Timestamp,
    /// The command.
    pub cmd: C,
    /// Client signature.
    pub sig: Signature,
}

impl<C: Payload> Request<C> {
    /// Canonical signed bytes.
    pub fn signed_payload(client: ClientId, ts: Timestamp, cmd: &C) -> Vec<u8> {
        ezbft_wire::to_bytes(&(b"zyzzyva-req", client, ts, cmd)).expect("request encodes")
    }

    /// Request digest.
    pub fn digest(&self) -> Digest {
        Digest::of(&Self::signed_payload(self.client, self.ts, &self.cmd))
    }
}

/// The primary-signed body of ORDER-REQ: `⟨OR, v, n, h_n, d⟩`.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct OrderReqBody {
    /// Current view.
    pub view: u64,
    /// Assigned sequence number.
    pub n: u64,
    /// History digest after this request: `h_n = H(h_{n-1} || d)`.
    pub hist: Digest,
    /// Request digest `d`.
    pub req_digest: Digest,
}

impl OrderReqBody {
    /// Canonical signed bytes.
    pub fn signed_payload(&self) -> Vec<u8> {
        ezbft_wire::to_bytes(self).expect("order-req body encodes")
    }
}

/// ORDER-REQ: the primary's ordering decision plus the request.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct OrderReq<C> {
    /// Signed ordering metadata.
    pub body: OrderReqBody,
    /// Primary signature over the body.
    pub sig: Signature,
    /// The client request.
    pub req: Request<C>,
}

/// The replica-signed body of SPEC-RESPONSE.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct SpecResponseBody {
    /// View.
    pub view: u64,
    /// Sequence number.
    pub n: u64,
    /// History digest after executing n.
    pub hist: Digest,
    /// Request digest.
    pub req_digest: Digest,
    /// The client.
    pub client: ClientId,
    /// The request timestamp.
    pub ts: Timestamp,
}

/// SPEC-RESPONSE: speculative result to the client.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct SpecResponse<R> {
    /// Signed metadata.
    pub body: SpecResponseBody,
    /// The replying replica.
    pub sender: ReplicaId,
    /// Speculative execution result.
    pub response: R,
    /// Signature over `(body, response)`.
    pub sig: Signature,
}

impl<R: Payload> SpecResponse<R> {
    /// Canonical signed bytes.
    pub fn signed_payload(body: &SpecResponseBody, response: &R) -> Vec<u8> {
        ezbft_wire::to_bytes(&(body, response)).expect("spec-response encodes")
    }

    /// The client-side matching key: view, n, history, request identity and
    /// result must all agree.
    pub fn match_key(&self) -> Digest {
        Digest::of(&Self::signed_payload(&self.body, &self.response))
    }
}

/// COMMIT: the client's certificate of `2f + 1` matching spec-responses.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct CommitCert<R> {
    /// The issuing client.
    pub client: ClientId,
    /// The matching responses.
    pub cc: Vec<SpecResponse<R>>,
}

/// LOCAL-COMMIT: a replica's ack of a commit certificate.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct LocalCommit {
    /// View.
    pub view: u64,
    /// Sequence number covered.
    pub n: u64,
    /// The client.
    pub client: ClientId,
    /// The request timestamp.
    pub ts: Timestamp,
    /// The acking replica.
    pub sender: ReplicaId,
    /// Signature over the above.
    pub sig: Signature,
}

impl LocalCommit {
    /// Canonical signed bytes.
    pub fn signed_payload(view: u64, n: u64, client: ClientId, ts: Timestamp) -> Vec<u8> {
        ezbft_wire::to_bytes(&(b"local-commit", view, n, client, ts)).expect("encodes")
    }
}

/// I-HATE-THE-PRIMARY: a replica's accusation.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct IHatePrimary {
    /// The view being accused.
    pub view: u64,
    /// The accusing replica.
    pub sender: ReplicaId,
    /// Signature over `(view)`.
    pub sig: Signature,
}

impl IHatePrimary {
    /// Canonical signed bytes.
    pub fn signed_payload(view: u64) -> Vec<u8> {
        ezbft_wire::to_bytes(&(b"i-hate-the-primary", view)).expect("encodes")
    }
}

/// One ordered entry carried in a VIEW-CHANGE.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct HistoryEntry<C> {
    /// The primary-signed ORDER-REQ body for this slot.
    pub body: OrderReqBody,
    /// The primary's signature.
    pub sig: Signature,
    /// The request.
    pub req: Request<C>,
}

/// VIEW-CHANGE: a replica's ordered history for the new primary.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ViewChange<C> {
    /// The new view.
    pub new_view: u64,
    /// The reporting replica.
    pub sender: ReplicaId,
    /// Its ordered history (n-ascending).
    pub entries: Vec<HistoryEntry<C>>,
    /// Signature over `(new_view, digest(entries))`.
    pub sig: Signature,
}

impl<C: Payload> ViewChange<C> {
    /// Canonical signed bytes.
    pub fn signed_payload(new_view: u64, entries: &[HistoryEntry<C>]) -> Vec<u8> {
        let d = Digest::of(&ezbft_wire::to_bytes(entries).expect("entries encode"));
        ezbft_wire::to_bytes(&(b"view-change", new_view, d)).expect("encodes")
    }
}

/// NEW-VIEW: the new primary's re-issued history.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct NewView<C> {
    /// The new view.
    pub new_view: u64,
    /// The proof: `2f + 1` VIEW-CHANGE messages.
    pub proof: Vec<ViewChange<C>>,
    /// The adopted history, re-signed under the new view.
    pub entries: Vec<HistoryEntry<C>>,
    /// The new primary.
    pub sender: ReplicaId,
    /// Signature over `(new_view, digest(entries))`.
    pub sig: Signature,
}

impl<C: Payload> NewView<C> {
    /// Canonical signed bytes.
    pub fn signed_payload(new_view: u64, entries: &[HistoryEntry<C>]) -> Vec<u8> {
        let d = Digest::of(&ezbft_wire::to_bytes(entries).expect("entries encode"));
        ezbft_wire::to_bytes(&(b"new-view", new_view, d)).expect("encodes")
    }
}

/// The Zyzzyva wire message.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
#[allow(clippy::large_enum_variant)]
pub enum Msg<C, R> {
    /// Client → primary (or broadcast on retransmission).
    Request(Request<C>),
    /// Broadcast retransmission marker: replicas forward to the primary and
    /// start an accusation timer.
    RequestBroadcast(Request<C>),
    /// Primary → replicas.
    OrderReq(OrderReq<C>),
    /// Replica → client.
    SpecResponse(SpecResponse<R>),
    /// Client → replicas (commit certificate).
    Commit(CommitCert<R>),
    /// Replica → client.
    LocalCommit(LocalCommit),
    /// Replica → replicas.
    IHatePrimary(IHatePrimary),
    /// Replica → new primary.
    ViewChange(ViewChange<C>),
    /// New primary → replicas.
    NewView(NewView<C>),
}

impl<C, R> Msg<C, R> {
    /// Short kind tag (traces, cost models).
    pub fn kind(&self) -> &'static str {
        match self {
            Msg::Request(_) => "request",
            Msg::RequestBroadcast(_) => "request-broadcast",
            Msg::OrderReq(_) => "order-req",
            Msg::SpecResponse(_) => "spec-response",
            Msg::Commit(_) => "commit",
            Msg::LocalCommit(_) => "local-commit",
            Msg::IHatePrimary(_) => "i-hate-the-primary",
            Msg::ViewChange(_) => "view-change",
            Msg::NewView(_) => "new-view",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezbft_crypto::Signature;

    #[test]
    fn request_digest_stable() {
        let r = Request {
            client: ClientId::new(1),
            ts: Timestamp(1),
            cmd: 5u32,
            sig: Signature::Null,
        };
        assert_eq!(r.digest(), r.clone().digest());
        let r2 = Request {
            ts: Timestamp(2),
            ..r.clone()
        };
        assert_ne!(r.digest(), r2.digest());
    }

    #[test]
    fn spec_response_match_key_is_sender_independent() {
        let body = SpecResponseBody {
            view: 0,
            n: 1,
            hist: Digest::ZERO,
            req_digest: Digest::of(b"m"),
            client: ClientId::new(1),
            ts: Timestamp(1),
        };
        let a = SpecResponse {
            body: body.clone(),
            sender: ReplicaId::new(0),
            response: 7u32,
            sig: Signature::Null,
        };
        let b = SpecResponse {
            sender: ReplicaId::new(2),
            ..a.clone()
        };
        assert_eq!(a.match_key(), b.match_key());
        let c = SpecResponse {
            response: 8,
            ..a.clone()
        };
        assert_ne!(a.match_key(), c.match_key());
        // Diverging history digests break matching (inconsistent logs).
        let mut body2 = body;
        body2.hist = Digest::of(b"x");
        let d = SpecResponse {
            body: body2,
            ..a.clone()
        };
        assert_ne!(a.match_key(), d.match_key());
    }

    #[test]
    fn wire_roundtrip() {
        let m: Msg<u32, u32> = Msg::IHatePrimary(IHatePrimary {
            view: 3,
            sender: ReplicaId::new(1),
            sig: Signature::Null,
        });
        let bytes = ezbft_wire::to_bytes(&m).unwrap();
        let back: Msg<u32, u32> = ezbft_wire::from_bytes(&bytes).unwrap();
        assert_eq!(back, m);
        assert_eq!(m.kind(), "i-hate-the-primary");
    }
}
