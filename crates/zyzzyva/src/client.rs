//! The Zyzzyva client: completes on `3f + 1` matching speculative
//! responses; falls back to the commit-certificate path with `2f + 1`.

use std::collections::HashMap;

use ezbft_crypto::{Audience, Digest, KeyStore};
use ezbft_smr::{
    Actions, ClientId, ClientNode, NodeId, ProtocolNode, ReplicaId, TimerId, Timestamp,
};

use crate::msg::{CommitCert, LocalCommit, Msg, Payload, Request, SpecResponse};
use crate::replica::ZyzzyvaConfig;

/// Counters for tests and reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ZyzzyvaClientStats {
    /// Fast (3f+1) completions.
    pub fast: u64,
    /// Commit-certificate completions.
    pub committed: u64,
    /// Retransmissions.
    pub retries: u64,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    Spec,
    Committing,
}

struct Pending<C, R> {
    cmd: C,
    ts: Timestamp,
    phase: Phase,
    responses: HashMap<ReplicaId, SpecResponse<R>>,
    local_commits: HashMap<(u64, u64), HashMap<ReplicaId, LocalCommit>>,
    commit_timer_fired: bool,
}

/// The Zyzzyva client node.
pub struct ZyzzyvaClient<C, R> {
    id: ClientId,
    cfg: ZyzzyvaConfig,
    keys: KeyStore,
    next_ts: Timestamp,
    /// Best guess of the current view (updated from responses).
    view: u64,
    pending: Option<Pending<C, R>>,
    stats: ZyzzyvaClientStats,
}

impl<C, R> std::fmt::Debug for ZyzzyvaClient<C, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ZyzzyvaClient")
            .field("id", &self.id)
            .field("view", &self.view)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

const TIMER_COMMIT: u64 = 0;
const TIMER_RETRY: u64 = 1;

impl<C: Payload, R: Payload> ZyzzyvaClient<C, R> {
    /// Creates a client.
    ///
    /// # Panics
    ///
    /// Panics if `keys` does not belong to `id`.
    pub fn new(id: ClientId, cfg: ZyzzyvaConfig, keys: KeyStore) -> Self {
        assert_eq!(keys.me(), NodeId::Client(id), "keystore identity mismatch");
        ZyzzyvaClient {
            id,
            cfg,
            keys,
            next_ts: Timestamp::ZERO,
            view: 0,
            pending: None,
            stats: ZyzzyvaClientStats::default(),
        }
    }

    /// Counters for tests and reports.
    pub fn stats(&self) -> ZyzzyvaClientStats {
        self.stats
    }

    fn complete(&mut self, response: R, fast: bool, out: &mut Actions<Msg<C, R>, R>) {
        let pending = self.pending.take().expect("pending");
        out.cancel_timer(TimerId(TIMER_COMMIT));
        out.cancel_timer(TimerId(TIMER_RETRY));
        if fast {
            self.stats.fast += 1;
        } else {
            self.stats.committed += 1;
        }
        out.deliver(pending.ts, response, fast);
    }

    fn on_spec_response(&mut self, resp: SpecResponse<R>, out: &mut Actions<Msg<C, R>, R>) {
        let Some(pending) = &mut self.pending else {
            return;
        };
        if pending.phase != Phase::Spec || resp.body.client != self.id || resp.body.ts != pending.ts
        {
            return;
        }
        let payload = SpecResponse::<R>::signed_payload(&resp.body, &resp.response);
        if self
            .keys
            .verify(NodeId::Replica(resp.sender), &payload, &resp.sig)
            .is_err()
        {
            return;
        }
        self.view = self.view.max(resp.body.view);
        pending.responses.insert(resp.sender, resp);

        let mut groups: HashMap<Digest, Vec<ReplicaId>> = HashMap::new();
        for (sender, r) in &pending.responses {
            groups.entry(r.match_key()).or_default().push(*sender);
        }
        // Fast path: all 3f+1 match.
        if let Some((_, members)) = groups
            .iter()
            .find(|(_, m)| m.len() >= self.cfg.cluster.fast_quorum())
        {
            let response = pending.responses[&members[0]].response.clone();
            self.complete(response, true, out);
            return;
        }
        // Commit-certificate path once enough responses are in and either
        // the timer fired or all replicas answered.
        let ready = pending.responses.len() == self.cfg.cluster.n() || pending.commit_timer_fired;
        if ready {
            self.try_commit_path(out);
        }
    }

    fn try_commit_path(&mut self, out: &mut Actions<Msg<C, R>, R>) {
        let Some(pending) = &mut self.pending else {
            return;
        };
        if pending.phase != Phase::Spec {
            return;
        }
        let mut groups: HashMap<Digest, Vec<ReplicaId>> = HashMap::new();
        for (sender, r) in &pending.responses {
            groups.entry(r.match_key()).or_default().push(*sender);
        }
        let Some((_, members)) = groups
            .iter()
            .find(|(_, m)| m.len() >= self.cfg.cluster.slow_quorum())
        else {
            return;
        };
        let cc: Vec<SpecResponse<R>> = members
            .iter()
            .map(|m| pending.responses[m].clone())
            .collect();
        let msg = Msg::Commit(CommitCert {
            client: self.id,
            cc,
        });
        let replicas: Vec<ReplicaId> = self.cfg.cluster.replicas().collect();
        out.broadcast(replicas, msg);
        pending.phase = Phase::Committing;
    }

    fn on_local_commit(&mut self, lc: LocalCommit, out: &mut Actions<Msg<C, R>, R>) {
        let Some(pending) = &mut self.pending else {
            return;
        };
        if lc.client != self.id || lc.ts != pending.ts {
            return;
        }
        let payload = LocalCommit::signed_payload(lc.view, lc.n, lc.client, lc.ts);
        if self
            .keys
            .verify(NodeId::Replica(lc.sender), &payload, &lc.sig)
            .is_err()
        {
            return;
        }
        let group = pending.local_commits.entry((lc.view, lc.n)).or_default();
        let (view, n) = (lc.view, lc.n);
        group.insert(lc.sender, lc);
        if group.len() >= self.cfg.cluster.slow_quorum() {
            // The speculative response for this (view, n) is now stable.
            let response = pending
                .responses
                .values()
                .find(|r| r.body.view == view && r.body.n == n)
                .map(|r| r.response.clone());
            if let Some(response) = response {
                self.complete(response, false, out);
            }
        }
    }

    fn on_retry(&mut self, out: &mut Actions<Msg<C, R>, R>) {
        let Some(pending) = &mut self.pending else {
            return;
        };
        self.stats.retries += 1;
        let payload = Request::<C>::signed_payload(self.id, pending.ts, &pending.cmd);
        let sig = self
            .keys
            .sign(&payload, &Audience::replicas(self.cfg.cluster.n()));
        let req = Request {
            client: self.id,
            ts: pending.ts,
            cmd: pending.cmd.clone(),
            sig,
        };
        let replicas: Vec<ReplicaId> = self.cfg.cluster.replicas().collect();
        out.broadcast(replicas, Msg::RequestBroadcast(req));
        out.set_timer(TimerId(TIMER_RETRY), self.cfg.retry_delay);
    }
}

impl<C: Payload, R: Payload> ProtocolNode for ZyzzyvaClient<C, R> {
    type Message = Msg<C, R>;
    type Response = R;

    fn id(&self) -> NodeId {
        NodeId::Client(self.id)
    }

    fn on_message(&mut self, _from: NodeId, msg: Self::Message, out: &mut Actions<Msg<C, R>, R>) {
        match msg {
            Msg::SpecResponse(resp) => self.on_spec_response(resp, out),
            Msg::LocalCommit(lc) => self.on_local_commit(lc, out),
            _ => {}
        }
    }

    fn on_timer(&mut self, id: TimerId, out: &mut Actions<Msg<C, R>, R>) {
        match id.0 {
            TIMER_COMMIT => {
                if let Some(p) = &mut self.pending {
                    p.commit_timer_fired = true;
                }
                self.try_commit_path(out);
            }
            TIMER_RETRY => self.on_retry(out),
            _ => {}
        }
    }
}

impl<C: Payload, R: Payload> ClientNode for ZyzzyvaClient<C, R> {
    type Command = C;

    fn submit(&mut self, cmd: C, out: &mut Actions<Msg<C, R>, R>) {
        assert!(self.pending.is_none(), "one outstanding request per client");
        self.next_ts = self.next_ts.next();
        let ts = self.next_ts;
        let payload = Request::<C>::signed_payload(self.id, ts, &cmd);
        let sig = self
            .keys
            .sign(&payload, &Audience::replicas(self.cfg.cluster.n()));
        let req = Request {
            client: self.id,
            ts,
            cmd: cmd.clone(),
            sig,
        };
        let primary = self.cfg.primary(self.view);
        out.send(NodeId::Replica(primary), Msg::Request(req));
        out.set_timer(TimerId(TIMER_COMMIT), self.cfg.commit_timeout);
        out.set_timer(TimerId(TIMER_RETRY), self.cfg.retry_delay);
        self.pending = Some(Pending {
            cmd,
            ts,
            phase: Phase::Spec,
            responses: HashMap::new(),
            local_commits: HashMap::new(),
            commit_timer_fired: false,
        });
    }

    fn in_flight(&self) -> bool {
        self.pending.is_some()
    }
}
