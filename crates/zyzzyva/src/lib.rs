//! # ezbft-zyzzyva — the Zyzzyva baseline
//!
//! A message-pattern-faithful implementation of Zyzzyva (Kotla et al.,
//! SOSP 2007) — the strongest baseline in the ezBFT evaluation: speculative
//! BFT with **three communication steps** (client → primary → replicas →
//! client) in the fault-free case.
//!
//! Implemented:
//! - the agreement sub-protocol: ORDER-REQ with chained history digests,
//!   speculative execution in sequence order, SPEC-RESPONSE to the client;
//! - the client: `3f + 1` matching spec-responses complete a request;
//!   with only `2f + 1 .. 3f` matching responses the client broadcasts a
//!   commit certificate and completes on `2f + 1` LOCAL-COMMIT acks;
//! - retransmission: clients re-broadcast to all replicas, replicas forward
//!   to the primary and accuse it (I-HATE-THE-PRIMARY) on timeout;
//! - a simplified view change: on `f + 1` accusations replicas broadcast
//!   VIEW-CHANGE carrying their ordered history; the new primary re-issues
//!   ORDER-REQs for the `2f + 1`-supported prefix. (Zyzzyva's full
//!   view-change bookkeeping — per-request commit certificates carried
//!   across views, fill-hole subprotocol — is simplified; the evaluation
//!   exercises the fault-free path, and the fault tests exercise crash-stop
//!   primaries.)
//!
//! Like every protocol in this workspace it is a sans-io state machine,
//! driven by the simulator or the TCP transport.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod client;
mod msg;
mod replica;

pub use client::{ZyzzyvaClient, ZyzzyvaClientStats};
pub use msg::{Msg, OrderReq, OrderReqBody, Request, SpecResponse, SpecResponseBody};
pub use replica::{ZyzzyvaConfig, ZyzzyvaReplica, ZyzzyvaStats};

/// Static protocol properties (paper Table II row).
pub mod properties {
    /// Resilience: f < n/3.
    pub const RESILIENCE: &str = "f < n/3";
    /// Best-case communication steps (client-inclusive).
    pub const BEST_CASE_STEPS: u32 = 3;
    /// Extra steps on the slow path.
    pub const SLOW_PATH_EXTRA_STEPS: u32 = 2;
    /// Leadership structure.
    pub const LEADER: &str = "single";
}
