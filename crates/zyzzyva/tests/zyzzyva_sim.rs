//! End-to-end Zyzzyva over the WAN simulator.

use std::collections::VecDeque;

use ezbft_crypto::{CryptoKind, KeyStore};
use ezbft_kv::{Key, KvOp, KvResponse, KvStore};
use ezbft_simnet::{Region, SimConfig, SimNet, Topology};
use ezbft_smr::{
    Actions, ClientId, ClientNode, ClusterConfig, Micros, NodeId, ProtocolNode, ReplicaId, TimerId,
};
use ezbft_zyzzyva::{Msg, ZyzzyvaClient, ZyzzyvaConfig, ZyzzyvaReplica};

type KvMsg = Msg<KvOp, KvResponse>;

struct ScriptedClient {
    inner: ZyzzyvaClient<KvOp, KvResponse>,
    script: VecDeque<KvOp>,
}

impl ScriptedClient {
    fn pump(&mut self, out: &mut Actions<KvMsg, KvResponse>) {
        if !self.inner.in_flight() {
            if let Some(op) = self.script.pop_front() {
                self.inner.submit(op, out);
            }
        }
    }
}

impl ProtocolNode for ScriptedClient {
    type Message = KvMsg;
    type Response = KvResponse;

    fn id(&self) -> NodeId {
        ProtocolNode::id(&self.inner)
    }
    fn on_start(&mut self, out: &mut Actions<KvMsg, KvResponse>) {
        self.pump(out);
    }
    fn on_message(&mut self, from: NodeId, msg: KvMsg, out: &mut Actions<KvMsg, KvResponse>) {
        self.inner.on_message(from, msg, out);
        self.pump(out);
    }
    fn on_timer(&mut self, id: TimerId, out: &mut Actions<KvMsg, KvResponse>) {
        self.inner.on_timer(id, out);
        self.pump(out);
    }
}

fn build(
    primary: u8,
    clients: Vec<(u64, usize, Vec<KvOp>)>,
    seed: u64,
) -> (SimNet<KvMsg, KvResponse>, usize) {
    let cluster = ClusterConfig::for_faults(1);
    let cfg = ZyzzyvaConfig::new(cluster, ReplicaId::new(primary));
    let mut nodes: Vec<NodeId> = cluster.replicas().map(NodeId::Replica).collect();
    for (id, ..) in &clients {
        nodes.push(NodeId::Client(ClientId::new(*id)));
    }
    let mut stores = KeyStore::cluster(CryptoKind::Mac, b"zyzzyva-sim", &nodes);
    let client_stores = stores.split_off(cluster.n());
    let mut sim: SimNet<KvMsg, KvResponse> = SimNet::new(
        Topology::exp1(),
        SimConfig {
            seed,
            ..Default::default()
        },
    );
    for (i, rid) in cluster.replicas().enumerate() {
        let replica = ZyzzyvaReplica::new(rid, cfg, stores.remove(0), KvStore::new());
        sim.add_node(Region(i % 4), Box::new(replica));
    }
    let mut total = 0;
    for ((id, region, script), keys) in clients.into_iter().zip(client_stores) {
        total += script.len();
        let client = ZyzzyvaClient::new(ClientId::new(id), cfg, keys);
        sim.add_node(
            Region(region),
            Box::new(ScriptedClient {
                inner: client,
                script: script.into(),
            }),
        );
    }
    (sim, total)
}

fn put(c: u64, i: u64) -> KvOp {
    KvOp::Put {
        key: Key(c * 100 + i),
        value: vec![i as u8; 16],
    }
}

fn replica(sim: &SimNet<KvMsg, KvResponse>, r: u8) -> &ZyzzyvaReplica<KvStore> {
    sim.inspect(NodeId::Replica(ReplicaId::new(r)))
        .unwrap()
        .downcast_ref::<ZyzzyvaReplica<KvStore>>()
        .unwrap()
}

#[test]
fn fault_free_requests_complete_fast() {
    let clients = (0..4u64)
        .map(|c| (c, c as usize, (0..5).map(|i| put(c, i)).collect()))
        .collect();
    let (mut sim, total) = build(0, clients, 1);
    sim.run_until_deliveries(total);
    assert_eq!(sim.deliveries().len(), total);
    for d in sim.deliveries() {
        assert!(
            d.delivery.fast_path,
            "fault-free Zyzzyva completes in one round"
        );
    }
    // All replicas executed everything with identical state.
    let fp0 = replica(&sim, 0).app().fingerprint();
    for r in 1..4u8 {
        assert_eq!(replica(&sim, r).app().fingerprint(), fp0);
        assert_eq!(replica(&sim, r).executed_upto(), total as u64);
    }
}

#[test]
fn latency_matches_analytic_formula() {
    // Client in Japan, primary in Virginia:
    //   owd(J,V) + max_j [owd(V,j) + owd(j,J)] = 80 + max(155, 160, 152)
    //   = 80 + 155 (via Australia) ≈ 235ms... with j = Japan itself:
    //   owd(V,J) + owd(J,J) ≈ 80: the binding term is Australia: 100+55.
    let (mut sim, _) = build(0, vec![(0, 1, vec![put(0, 0)])], 2);
    sim.run_until_deliveries(1);
    let at = sim.deliveries()[0].at;
    assert!(
        at >= Micros::from_millis(235) && at <= Micros::from_millis(250),
        "Zyzzyva Japan→Virginia-primary latency {at:?}, expected ≈ 235-240ms"
    );
}

#[test]
fn primary_in_client_region_is_fastest() {
    // Table I shape: co-located primary minimises latency.
    let mut lat = Vec::new();
    for primary in 0..4u8 {
        let (mut sim, _) = build(primary, vec![(0, 0, vec![put(0, 0)])], 3);
        sim.run_until_deliveries(1);
        lat.push(sim.deliveries()[0].at);
    }
    let min = lat.iter().min().unwrap();
    assert_eq!(
        lat[0], *min,
        "Virginia primary is fastest for a Virginia client: {lat:?}"
    );
}

#[test]
fn non_primary_replica_crash_forces_commit_path() {
    // With one replica down, 3f+1 responses are impossible: the client must
    // complete through the commit-certificate path.
    let (mut sim, total) = build(0, vec![(0, 0, (0..3).map(|i| put(0, i)).collect())], 4);
    sim.faults_mut().crash(ReplicaId::new(2));
    sim.run_until_deliveries(total);
    assert_eq!(sim.deliveries().len(), total);
    for d in sim.deliveries() {
        assert!(!d.delivery.fast_path);
    }
    let fp0 = replica(&sim, 0).app().fingerprint();
    assert_eq!(replica(&sim, 1).app().fingerprint(), fp0);
    assert_eq!(replica(&sim, 3).app().fingerprint(), fp0);
}

#[test]
fn primary_crash_triggers_view_change() {
    let (mut sim, total) = build(0, vec![(0, 1, (0..2).map(|i| put(0, i)).collect())], 5);
    sim.faults_mut().crash(ReplicaId::new(0));
    sim.run_until_deliveries(total);
    assert_eq!(
        sim.deliveries().len(),
        total,
        "liveness across the view change"
    );
    // The survivors moved to view ≥ 1 (primary rotated off the dead node).
    for r in [1u8, 2, 3] {
        assert!(replica(&sim, r).view() >= 1, "replica {r} still in view 0");
        assert!(replica(&sim, r).stats().view_changes >= 1);
    }
    let fp1 = replica(&sim, 1).app().fingerprint();
    assert_eq!(replica(&sim, 2).app().fingerprint(), fp1);
    assert_eq!(replica(&sim, 3).app().fingerprint(), fp1);
}

#[test]
fn mid_run_primary_crash_preserves_completed_state() {
    let script: Vec<KvOp> = (0..6).map(|i| put(0, i)).collect();
    let (mut sim, total) = build(0, vec![(0, 0, script)], 6);
    // Let roughly half the requests finish, then kill the primary.
    sim.schedule_crash(ReplicaId::new(0), Micros::from_millis(700));
    sim.run_until_deliveries(total);
    assert_eq!(sim.deliveries().len(), total);
    let fp1 = replica(&sim, 1).app().fingerprint();
    assert_eq!(replica(&sim, 2).app().fingerprint(), fp1);
    assert_eq!(replica(&sim, 3).app().fingerprint(), fp1);
    // Every key the client wrote must be present in the surviving state.
    for i in 0..6u64 {
        assert!(
            replica(&sim, 1).app().get(Key(i)).is_some(),
            "write {i} lost across view change"
        );
    }
}

#[test]
fn deterministic_runs() {
    let run = |seed| {
        let clients = (0..2u64)
            .map(|c| (c, c as usize, (0..3).map(|i| put(c, i)).collect()))
            .collect();
        let (mut sim, total) = build(0, clients, seed);
        sim.run_until_deliveries(total);
        sim.deliveries()
            .iter()
            .map(|d| d.at.as_micros())
            .collect::<Vec<_>>()
    };
    assert_eq!(run(9), run(9));
}
