//! Message-level validation tests for Zyzzyva: history-chain integrity,
//! misrouted order requests and duplicate handling.

use ezbft_crypto::{Audience, CryptoKind, Digest, KeyStore, Signature};
use ezbft_kv::{Key, KvOp, KvResponse, KvStore};
use ezbft_smr::{
    Action, Actions, ClientId, ClusterConfig, Micros, NodeId, ProtocolNode, ReplicaId, Timestamp,
};
use ezbft_zyzzyva::{Msg, OrderReq, OrderReqBody, Request, ZyzzyvaConfig, ZyzzyvaReplica};

type KvMsg = Msg<KvOp, KvResponse>;
type Out = Actions<KvMsg, KvResponse>;

struct Fixture {
    cfg: ZyzzyvaConfig,
    replicas: Vec<ZyzzyvaReplica<KvStore>>,
    client_keys: KeyStore,
    primary_keys_copy: KeyStore,
}

fn fixture() -> Fixture {
    let cluster = ClusterConfig::for_faults(1);
    let cfg = ZyzzyvaConfig::new(cluster, ReplicaId::new(0));
    let mut nodes: Vec<NodeId> = cluster.replicas().map(NodeId::Replica).collect();
    nodes.push(NodeId::Client(ClientId::new(0)));
    let mut stores = KeyStore::cluster(CryptoKind::Mac, b"zyzzyva-validation", &nodes);
    let client_keys = stores.pop().unwrap();
    let primary_keys_copy = {
        let extra = KeyStore::cluster(CryptoKind::Mac, b"zyzzyva-validation", &nodes);
        extra.into_iter().next().unwrap()
    };
    let replicas = cluster
        .replicas()
        .map(|rid| ZyzzyvaReplica::new(rid, cfg, stores.remove(0), KvStore::new()))
        .collect();
    Fixture {
        cfg,
        replicas,
        client_keys,
        primary_keys_copy,
    }
}

fn out() -> Out {
    Actions::new(Micros::ZERO)
}

fn signed_request(fx: &mut Fixture, ts: u64) -> Request<KvOp> {
    let client = ClientId::new(0);
    let op = KvOp::Put {
        key: Key(ts),
        value: vec![ts as u8],
    };
    let payload = Request::signed_payload(client, Timestamp(ts), &op);
    let sig = fx
        .client_keys
        .sign(&payload, &Audience::replicas(fx.cfg.cluster.n()));
    Request {
        client,
        ts: Timestamp(ts),
        cmd: op,
        sig,
    }
}

fn signed_order(fx: &mut Fixture, n: u64, prev_hist: Digest, req: Request<KvOp>) -> OrderReq<KvOp> {
    let hist = prev_hist.chain(&req.digest());
    let body = OrderReqBody {
        view: 0,
        n,
        hist,
        req_digest: req.digest(),
    };
    let audience = Audience::replicas(fx.cfg.cluster.n()).and(ClientId::new(0));
    let sig = fx.primary_keys_copy.sign(&body.signed_payload(), &audience);
    OrderReq { body, sig, req }
}

#[test]
fn valid_order_req_produces_spec_response() {
    let mut fx = fixture();
    let req = signed_request(&mut fx, 1);
    let or = signed_order(&mut fx, 1, Digest::ZERO, req);
    let mut o = out();
    fx.replicas[1].on_message(
        NodeId::Replica(ReplicaId::new(0)),
        Msg::OrderReq(or),
        &mut o,
    );
    assert!(o.as_slice().iter().any(|a| matches!(
        a,
        Action::Send {
            to: NodeId::Client(_),
            msg: Msg::SpecResponse(_)
        }
    )));
    assert_eq!(fx.replicas[1].executed_upto(), 1);
}

#[test]
fn broken_history_chain_is_rejected() {
    let mut fx = fixture();
    let req = signed_request(&mut fx, 1);
    // hist claims to chain from a bogus predecessor.
    let or = signed_order(&mut fx, 1, Digest::of(b"bogus-history"), req);
    let mut o = out();
    fx.replicas[1].on_message(
        NodeId::Replica(ReplicaId::new(0)),
        Msg::OrderReq(or),
        &mut o,
    );
    assert!(o.is_empty(), "history-chain violation must be silent");
    assert_eq!(fx.replicas[1].executed_upto(), 0);
    assert!(fx.replicas[1].stats().rejected >= 1);
}

#[test]
fn order_req_from_non_primary_is_rejected() {
    let mut fx = fixture();
    let req = signed_request(&mut fx, 1);
    let or = signed_order(&mut fx, 1, Digest::ZERO, req);
    let mut o = out();
    fx.replicas[1].on_message(
        NodeId::Replica(ReplicaId::new(2)),
        Msg::OrderReq(or),
        &mut o,
    );
    assert!(o.is_empty());
    assert_eq!(fx.replicas[1].executed_upto(), 0);
}

#[test]
fn out_of_order_order_reqs_are_buffered_until_contiguous() {
    let mut fx = fixture();
    let req1 = signed_request(&mut fx, 1);
    let req2 = signed_request(&mut fx, 2);
    let h1 = Digest::ZERO.chain(&req1.digest());
    let or1 = signed_order(&mut fx, 1, Digest::ZERO, req1);
    let or2 = signed_order(&mut fx, 2, h1, req2);

    // Deliver n=2 first: buffered, nothing executes.
    let mut o = out();
    fx.replicas[1].on_message(
        NodeId::Replica(ReplicaId::new(0)),
        Msg::OrderReq(or2),
        &mut o,
    );
    assert_eq!(fx.replicas[1].executed_upto(), 0);
    // n=1 arrives: both execute in order.
    let mut o2 = out();
    fx.replicas[1].on_message(
        NodeId::Replica(ReplicaId::new(0)),
        Msg::OrderReq(or1),
        &mut o2,
    );
    assert_eq!(fx.replicas[1].executed_upto(), 2);
    let responses = o2
        .as_slice()
        .iter()
        .filter(|a| {
            matches!(
                a,
                Action::Send {
                    msg: Msg::SpecResponse(_),
                    ..
                }
            )
        })
        .count();
    assert_eq!(responses, 2, "both buffered slots respond once unblocked");
}

#[test]
fn forged_order_req_signature_is_rejected() {
    let mut fx = fixture();
    let req = signed_request(&mut fx, 1);
    let mut or = signed_order(&mut fx, 1, Digest::ZERO, req);
    or.sig = Signature::Null;
    let mut o = out();
    fx.replicas[1].on_message(
        NodeId::Replica(ReplicaId::new(0)),
        Msg::OrderReq(or),
        &mut o,
    );
    assert!(o.is_empty());
    assert_eq!(fx.replicas[1].executed_upto(), 0);
}
