//! Message-level validation tests for PBFT: primary equivocation, forged
//! votes and replay handling.

use ezbft_crypto::{Audience, CryptoKind, KeyStore, Signature};
use ezbft_kv::{Key, KvOp, KvResponse, KvStore};
use ezbft_pbft::{Msg, PbftConfig, PbftReplica, PrePrepare, PrePrepareBody, Request};
use ezbft_smr::{
    Action, Actions, ClientId, ClusterConfig, Micros, NodeId, ProtocolNode, ReplicaId, Timestamp,
};

type KvMsg = Msg<KvOp, KvResponse>;
type Out = Actions<KvMsg, KvResponse>;

struct Fixture {
    cfg: PbftConfig,
    replicas: Vec<PbftReplica<KvStore>>,
    client_keys: KeyStore,
    primary_keys_copy: KeyStore,
}

fn fixture() -> Fixture {
    let cluster = ClusterConfig::for_faults(1);
    let cfg = PbftConfig::new(cluster, ReplicaId::new(0));
    let mut nodes: Vec<NodeId> = cluster.replicas().map(NodeId::Replica).collect();
    nodes.push(NodeId::Client(ClientId::new(0)));
    let mut stores = KeyStore::cluster(CryptoKind::Mac, b"pbft-validation", &nodes);
    let client_keys = stores.pop().unwrap();
    // A second keystore for the primary: lets the test sign equivocating
    // pre-prepares "as" the (byzantine) primary.
    let primary_keys_copy = {
        let extra = KeyStore::cluster(CryptoKind::Mac, b"pbft-validation", &nodes);
        extra.into_iter().next().unwrap()
    };
    let replicas = cluster
        .replicas()
        .map(|rid| PbftReplica::new(rid, cfg, stores.remove(0), KvStore::new()))
        .collect();
    Fixture {
        cfg,
        replicas,
        client_keys,
        primary_keys_copy,
    }
}

fn out() -> Out {
    Actions::new(Micros::ZERO)
}

fn signed_request(fx: &mut Fixture, ts: u64, op: KvOp) -> Request<KvOp> {
    let client = ClientId::new(0);
    let payload = Request::signed_payload(client, Timestamp(ts), &op);
    let sig = fx
        .client_keys
        .sign(&payload, &Audience::replicas(fx.cfg.cluster.n()));
    Request {
        client,
        ts: Timestamp(ts),
        cmd: op,
        sig,
    }
}

fn signed_pre_prepare(fx: &mut Fixture, n: u64, req: Request<KvOp>) -> PrePrepare<KvOp> {
    let body = PrePrepareBody {
        view: 0,
        n,
        req_digest: req.digest(),
    };
    let sig = fx.primary_keys_copy.sign(
        &body.signed_payload(),
        &Audience::replicas(fx.cfg.cluster.n()),
    );
    PrePrepare { body, sig, req }
}

#[test]
fn primary_equivocation_on_a_slot_is_rejected() {
    let mut fx = fixture();
    let req_a = signed_request(
        &mut fx,
        1,
        KvOp::Put {
            key: Key(1),
            value: vec![1],
        },
    );
    let req_b = signed_request(
        &mut fx,
        2,
        KvOp::Put {
            key: Key(2),
            value: vec![2],
        },
    );
    let pp_a = signed_pre_prepare(&mut fx, 1, req_a);
    let pp_b = signed_pre_prepare(&mut fx, 1, req_b); // same n, different digest

    let mut o = out();
    fx.replicas[1].on_message(
        NodeId::Replica(ReplicaId::new(0)),
        Msg::PrePrepare(pp_a),
        &mut o,
    );
    // The first pre-prepare triggers a PREPARE broadcast.
    assert!(o.as_slice().iter().any(|a| matches!(
        a,
        Action::Broadcast { msg, .. } if matches!(&**msg, Msg::Prepare(_))
    )));

    let rejected_before = fx.replicas[1].stats().rejected;
    let mut o2 = out();
    fx.replicas[1].on_message(
        NodeId::Replica(ReplicaId::new(0)),
        Msg::PrePrepare(pp_b),
        &mut o2,
    );
    assert!(
        o2.is_empty(),
        "conflicting pre-prepare must produce no actions"
    );
    assert_eq!(fx.replicas[1].stats().rejected, rejected_before + 1);
}

#[test]
fn pre_prepare_from_non_primary_is_rejected() {
    let mut fx = fixture();
    let req = signed_request(
        &mut fx,
        1,
        KvOp::Put {
            key: Key(1),
            value: vec![1],
        },
    );
    let pp = signed_pre_prepare(&mut fx, 1, req);
    let mut o = out();
    // Claimed sender is replica 2, not the view-0 primary.
    fx.replicas[1].on_message(
        NodeId::Replica(ReplicaId::new(2)),
        Msg::PrePrepare(pp),
        &mut o,
    );
    assert!(o.is_empty());
    assert!(fx.replicas[1].stats().rejected >= 1);
}

#[test]
fn unsigned_request_to_primary_is_rejected() {
    let mut fx = fixture();
    let req = Request {
        client: ClientId::new(0),
        ts: Timestamp(1),
        cmd: KvOp::Put {
            key: Key(1),
            value: vec![1],
        },
        sig: Signature::Null,
    };
    let mut o = out();
    fx.replicas[0].on_message(NodeId::Client(ClientId::new(0)), Msg::Request(req), &mut o);
    assert!(o.is_empty());
    assert_eq!(fx.replicas[0].stats().ordered, 0);
}

#[test]
fn duplicate_pre_prepare_is_idempotent() {
    let mut fx = fixture();
    let req = signed_request(
        &mut fx,
        1,
        KvOp::Put {
            key: Key(1),
            value: vec![1],
        },
    );
    let pp = signed_pre_prepare(&mut fx, 1, req);
    let mut o = out();
    fx.replicas[1].on_message(
        NodeId::Replica(ReplicaId::new(0)),
        Msg::PrePrepare(pp.clone()),
        &mut o,
    );
    let mut o2 = out();
    fx.replicas[1].on_message(
        NodeId::Replica(ReplicaId::new(0)),
        Msg::PrePrepare(pp),
        &mut o2,
    );
    // No second prepare broadcast for the same slot.
    assert!(!o2.as_slice().iter().any(|a| matches!(
        a,
        Action::Broadcast { msg, .. } if matches!(&**msg, Msg::Prepare(_))
    )));
}

#[test]
fn primary_orders_fresh_requests_in_sequence() {
    let mut fx = fixture();
    for ts in 1..=3u64 {
        let req = signed_request(
            &mut fx,
            ts,
            KvOp::Put {
                key: Key(ts),
                value: vec![],
            },
        );
        let mut o = out();
        fx.replicas[0].on_message(NodeId::Client(ClientId::new(0)), Msg::Request(req), &mut o);
        let n = o
            .as_slice()
            .iter()
            .find_map(|a| match a {
                Action::Broadcast { msg, .. } => match &**msg {
                    Msg::PrePrepare(pp) => Some(pp.body.n),
                    _ => None,
                },
                _ => None,
            })
            .expect("primary broadcasts a pre-prepare");
        assert_eq!(n, ts, "sequence numbers are dense and ordered");
    }
    assert_eq!(fx.replicas[0].stats().ordered, 3);
}
