//! End-to-end PBFT over the WAN simulator.

use std::collections::VecDeque;

use ezbft_crypto::{CryptoKind, KeyStore};
use ezbft_kv::{Key, KvOp, KvResponse, KvStore};
use ezbft_pbft::{Msg, PbftClient, PbftConfig, PbftReplica};
use ezbft_simnet::{Region, SimConfig, SimNet, Topology};
use ezbft_smr::{
    Actions, ClientId, ClientNode, ClusterConfig, Micros, NodeId, ProtocolNode, ReplicaId, TimerId,
};

type KvMsg = Msg<KvOp, KvResponse>;

struct ScriptedClient {
    inner: PbftClient<KvOp, KvResponse>,
    script: VecDeque<KvOp>,
}

impl ScriptedClient {
    fn pump(&mut self, out: &mut Actions<KvMsg, KvResponse>) {
        if !self.inner.in_flight() {
            if let Some(op) = self.script.pop_front() {
                self.inner.submit(op, out);
            }
        }
    }
}

impl ProtocolNode for ScriptedClient {
    type Message = KvMsg;
    type Response = KvResponse;

    fn id(&self) -> NodeId {
        ProtocolNode::id(&self.inner)
    }
    fn on_start(&mut self, out: &mut Actions<KvMsg, KvResponse>) {
        self.pump(out);
    }
    fn on_message(&mut self, from: NodeId, msg: KvMsg, out: &mut Actions<KvMsg, KvResponse>) {
        self.inner.on_message(from, msg, out);
        self.pump(out);
    }
    fn on_timer(&mut self, id: TimerId, out: &mut Actions<KvMsg, KvResponse>) {
        self.inner.on_timer(id, out);
        self.pump(out);
    }
}

fn build(
    primary: u8,
    checkpoint_interval: u64,
    clients: Vec<(u64, usize, Vec<KvOp>)>,
    seed: u64,
) -> (SimNet<KvMsg, KvResponse>, usize) {
    let cluster = ClusterConfig::for_faults(1);
    let mut cfg = PbftConfig::new(cluster, ReplicaId::new(primary));
    cfg.checkpoint_interval = checkpoint_interval;
    let mut nodes: Vec<NodeId> = cluster.replicas().map(NodeId::Replica).collect();
    for (id, ..) in &clients {
        nodes.push(NodeId::Client(ClientId::new(*id)));
    }
    let mut stores = KeyStore::cluster(CryptoKind::Mac, b"pbft-sim", &nodes);
    let client_stores = stores.split_off(cluster.n());
    let mut sim: SimNet<KvMsg, KvResponse> = SimNet::new(
        Topology::exp1(),
        SimConfig {
            seed,
            ..Default::default()
        },
    );
    for (i, rid) in cluster.replicas().enumerate() {
        let replica = PbftReplica::new(rid, cfg, stores.remove(0), KvStore::new());
        sim.add_node(Region(i % 4), Box::new(replica));
    }
    let mut total = 0;
    for ((id, region, script), keys) in clients.into_iter().zip(client_stores) {
        total += script.len();
        let client = PbftClient::new(ClientId::new(id), cfg, keys);
        sim.add_node(
            Region(region),
            Box::new(ScriptedClient {
                inner: client,
                script: script.into(),
            }),
        );
    }
    (sim, total)
}

fn put(c: u64, i: u64) -> KvOp {
    KvOp::Put {
        key: Key(c * 100 + i),
        value: vec![i as u8; 16],
    }
}

fn replica(sim: &SimNet<KvMsg, KvResponse>, r: u8) -> &PbftReplica<KvStore> {
    sim.inspect(NodeId::Replica(ReplicaId::new(r)))
        .unwrap()
        .downcast_ref::<PbftReplica<KvStore>>()
        .unwrap()
}

#[test]
fn fault_free_multi_client() {
    let clients = (0..4u64)
        .map(|c| (c, c as usize, (0..4).map(|i| put(c, i)).collect()))
        .collect();
    let (mut sim, total) = build(0, 64, clients, 1);
    sim.run_until_deliveries(total);
    assert_eq!(sim.deliveries().len(), total);
    let deadline = sim.now() + Micros::from_secs(2);
    sim.run_until_time(deadline);
    let fp0 = replica(&sim, 0).app().fingerprint();
    for r in 1..4u8 {
        assert_eq!(
            replica(&sim, r).app().fingerprint(),
            fp0,
            "replica {r} diverged"
        );
        assert_eq!(replica(&sim, r).executed_upto(), total as u64);
    }
}

#[test]
fn latency_is_five_steps() {
    // Client co-located with the primary in Virginia: the five-step pattern
    // (request, pre-prepare, prepare, commit, reply) costs at least two
    // inter-replica round trips: prepare and commit quorums each wait on
    // the 2f+1-th fastest replica.
    let (mut sim, _) = build(0, 64, vec![(0, 0, vec![put(0, 0)])], 2);
    sim.run_until_deliveries(1);
    let at = sim.deliveries()[0].at;
    // Analytic lower bound: pre-prepare to India (92) + prepare round (the
    // slowest pair inside the quorum) + reply: ≳ 276ms for the exp1 matrix.
    assert!(
        at >= Micros::from_millis(270) && at <= Micros::from_millis(420),
        "PBFT Virginia latency {at:?}"
    );
}

#[test]
fn pbft_is_slower_than_one_round() {
    // PBFT can never beat the 3-step protocols: even co-located clients pay
    // the inter-replica agreement rounds.
    let (mut sim, _) = build(0, 64, vec![(0, 0, vec![put(0, 0)])], 3);
    sim.run_until_deliveries(1);
    // One-round protocols finish in ≈ max RTT (200ms); PBFT must exceed it.
    assert!(sim.deliveries()[0].at > Micros::from_millis(210));
}

#[test]
fn checkpointing_truncates_log() {
    let script: Vec<KvOp> = (0..12).map(|i| put(0, i)).collect();
    let (mut sim, total) = build(0, 4, vec![(0, 0, script)], 4);
    sim.run_until_deliveries(total);
    let deadline = sim.now() + Micros::from_secs(2);
    sim.run_until_time(deadline);
    for r in 0..4u8 {
        let rep = replica(&sim, r);
        assert!(
            rep.stats().checkpoints >= 1,
            "replica {r} never checkpointed"
        );
        assert!(
            rep.live_slots() < 12,
            "replica {r} keeps {} slots despite checkpoints",
            rep.live_slots()
        );
    }
}

#[test]
fn primary_crash_view_change_liveness() {
    let (mut sim, total) = build(0, 64, vec![(0, 1, (0..2).map(|i| put(0, i)).collect())], 5);
    sim.faults_mut().crash(ReplicaId::new(0));
    sim.run_until_deliveries(total);
    assert_eq!(sim.deliveries().len(), total, "liveness across view change");
    for r in [1u8, 2, 3] {
        assert!(replica(&sim, r).view() >= 1);
    }
    let fp1 = replica(&sim, 1).app().fingerprint();
    assert_eq!(replica(&sim, 2).app().fingerprint(), fp1);
    assert_eq!(replica(&sim, 3).app().fingerprint(), fp1);
}

#[test]
fn mid_run_primary_crash_preserves_state() {
    let script: Vec<KvOp> = (0..6).map(|i| put(0, i)).collect();
    let (mut sim, total) = build(0, 64, vec![(0, 0, script)], 6);
    sim.schedule_crash(ReplicaId::new(0), Micros::from_millis(900));
    sim.run_until_deliveries(total);
    assert_eq!(sim.deliveries().len(), total);
    let fp1 = replica(&sim, 1).app().fingerprint();
    assert_eq!(replica(&sim, 2).app().fingerprint(), fp1);
    assert_eq!(replica(&sim, 3).app().fingerprint(), fp1);
    for i in 0..6u64 {
        assert!(
            replica(&sim, 1).app().get(Key(i)).is_some(),
            "write {i} lost"
        );
    }
}

#[test]
fn message_loss_recovered_by_retransmission() {
    let (mut sim, total) = build(0, 64, vec![(0, 0, (0..3).map(|i| put(0, i)).collect())], 7);
    sim.faults_mut().set_drop_probability(0.02);
    sim.run_until_deliveries(total);
    assert_eq!(sim.deliveries().len(), total);
}
