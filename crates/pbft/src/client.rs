//! The PBFT client: sends to the primary, accepts a result once `f + 1`
//! replicas report the same response.

use std::collections::HashMap;

use ezbft_crypto::{Audience, Digest, KeyStore};
use ezbft_smr::{
    Actions, ClientId, ClientNode, NodeId, ProtocolNode, ReplicaId, TimerId, Timestamp,
};

use crate::msg::{Msg, Payload, Reply, Request};
use crate::replica::PbftConfig;

/// Counters for tests and reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PbftClientStats {
    /// Requests completed.
    pub completed: u64,
    /// Retransmissions.
    pub retries: u64,
}

struct Pending<C, R> {
    cmd: C,
    ts: Timestamp,
    replies: HashMap<Digest, HashMap<ReplicaId, Reply<R>>>,
}

/// The PBFT client node.
pub struct PbftClient<C, R> {
    id: ClientId,
    cfg: PbftConfig,
    keys: KeyStore,
    next_ts: Timestamp,
    view: u64,
    pending: Option<Pending<C, R>>,
    stats: PbftClientStats,
}

impl<C, R> std::fmt::Debug for PbftClient<C, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PbftClient")
            .field("id", &self.id)
            .field("view", &self.view)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

const TIMER_RETRY: u64 = 0;

impl<C: Payload, R: Payload> PbftClient<C, R> {
    /// Creates a client.
    ///
    /// # Panics
    ///
    /// Panics if `keys` does not belong to `id`.
    pub fn new(id: ClientId, cfg: PbftConfig, keys: KeyStore) -> Self {
        assert_eq!(keys.me(), NodeId::Client(id), "keystore identity mismatch");
        PbftClient {
            id,
            cfg,
            keys,
            next_ts: Timestamp::ZERO,
            view: 0,
            pending: None,
            stats: PbftClientStats::default(),
        }
    }

    /// Counters for tests and reports.
    pub fn stats(&self) -> PbftClientStats {
        self.stats
    }

    fn on_reply(&mut self, reply: Reply<R>, out: &mut Actions<Msg<C, R>, R>) {
        let Some(pending) = &mut self.pending else {
            return;
        };
        if reply.client != self.id || reply.ts != pending.ts {
            return;
        }
        let payload =
            Reply::<R>::signed_payload(reply.view, reply.client, reply.ts, &reply.response);
        if self
            .keys
            .verify(NodeId::Replica(reply.sender), &payload, &reply.sig)
            .is_err()
        {
            return;
        }
        self.view = self.view.max(reply.view);
        let key = reply.match_key();
        let group = pending.replies.entry(key).or_default();
        group.insert(reply.sender, reply);
        if group.len() >= self.cfg.cluster.weak_quorum() {
            let response = group.values().next().expect("non-empty").response.clone();
            let ts = pending.ts;
            self.pending = None;
            out.cancel_timer(TimerId(TIMER_RETRY));
            self.stats.completed += 1;
            // PBFT has a single path; report it as the non-speculative one.
            out.deliver(ts, response, false);
        }
    }

    fn on_retry(&mut self, out: &mut Actions<Msg<C, R>, R>) {
        let Some(pending) = &self.pending else { return };
        self.stats.retries += 1;
        let payload = Request::<C>::signed_payload(self.id, pending.ts, &pending.cmd);
        let sig = self
            .keys
            .sign(&payload, &Audience::replicas(self.cfg.cluster.n()));
        let req = Request {
            client: self.id,
            ts: pending.ts,
            cmd: pending.cmd.clone(),
            sig,
        };
        let replicas: Vec<ReplicaId> = self.cfg.cluster.replicas().collect();
        out.broadcast(replicas, Msg::RequestBroadcast(req));
        out.set_timer(TimerId(TIMER_RETRY), self.cfg.retry_delay);
    }
}

impl<C: Payload, R: Payload> ProtocolNode for PbftClient<C, R> {
    type Message = Msg<C, R>;
    type Response = R;

    fn id(&self) -> NodeId {
        NodeId::Client(self.id)
    }

    fn on_message(&mut self, _from: NodeId, msg: Self::Message, out: &mut Actions<Msg<C, R>, R>) {
        if let Msg::Reply(reply) = msg {
            self.on_reply(reply, out);
        }
    }

    fn on_timer(&mut self, id: TimerId, out: &mut Actions<Msg<C, R>, R>) {
        if id.0 == TIMER_RETRY {
            self.on_retry(out);
        }
    }
}

impl<C: Payload, R: Payload> ClientNode for PbftClient<C, R> {
    type Command = C;

    fn submit(&mut self, cmd: C, out: &mut Actions<Msg<C, R>, R>) {
        assert!(self.pending.is_none(), "one outstanding request per client");
        self.next_ts = self.next_ts.next();
        let ts = self.next_ts;
        let payload = Request::<C>::signed_payload(self.id, ts, &cmd);
        let sig = self
            .keys
            .sign(&payload, &Audience::replicas(self.cfg.cluster.n()));
        let req = Request {
            client: self.id,
            ts,
            cmd: cmd.clone(),
            sig,
        };
        let primary = self.cfg.primary(self.view);
        out.send(NodeId::Replica(primary), Msg::Request(req));
        out.set_timer(TimerId(TIMER_RETRY), self.cfg.retry_delay);
        self.pending = Some(Pending {
            cmd,
            ts,
            replies: HashMap::new(),
        });
    }

    fn in_flight(&self) -> bool {
        self.pending.is_some()
    }
}
