//! PBFT protocol messages.

use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};

use ezbft_crypto::{Digest, Signature};
use ezbft_smr::{ClientId, ReplicaId, Timestamp};

/// Bound on message payload types.
pub trait Payload:
    Clone + std::fmt::Debug + Eq + Serialize + DeserializeOwned + Send + 'static
{
}
impl<T: Clone + std::fmt::Debug + Eq + Serialize + DeserializeOwned + Send + 'static> Payload
    for T
{
}

/// A signed client request.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Request<C> {
    /// Issuing client.
    pub client: ClientId,
    /// Client-monotonic timestamp.
    pub ts: Timestamp,
    /// The command.
    pub cmd: C,
    /// Client signature.
    pub sig: Signature,
}

impl<C: Payload> Request<C> {
    /// Canonical signed bytes.
    pub fn signed_payload(client: ClientId, ts: Timestamp, cmd: &C) -> Vec<u8> {
        ezbft_wire::to_bytes(&(b"pbft-req", client, ts, cmd)).expect("request encodes")
    }

    /// Request digest `d`.
    pub fn digest(&self) -> Digest {
        Digest::of(&Self::signed_payload(self.client, self.ts, &self.cmd))
    }
}

/// The primary-signed body of PRE-PREPARE: `⟨PP, v, n, d⟩`.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct PrePrepareBody {
    /// View.
    pub view: u64,
    /// Sequence number.
    pub n: u64,
    /// Request digest.
    pub req_digest: Digest,
}

impl PrePrepareBody {
    /// Canonical signed bytes.
    pub fn signed_payload(&self) -> Vec<u8> {
        ezbft_wire::to_bytes(self).expect("pre-prepare body encodes")
    }
}

/// PRE-PREPARE with the request piggybacked.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct PrePrepare<C> {
    /// Signed ordering metadata.
    pub body: PrePrepareBody,
    /// Primary signature.
    pub sig: Signature,
    /// The request.
    pub req: Request<C>,
}

/// PREPARE / COMMIT share a shape: `⟨phase, v, n, d, i⟩`.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct PhaseVote {
    /// View.
    pub view: u64,
    /// Sequence number.
    pub n: u64,
    /// Request digest.
    pub req_digest: Digest,
    /// The voting replica.
    pub sender: ReplicaId,
    /// Signature over `(phase-tag, view, n, d)`.
    pub sig: Signature,
}

impl PhaseVote {
    /// Canonical signed bytes for a given phase tag (`b"prepare"` or
    /// `b"commit"`).
    pub fn signed_payload(tag: &'static [u8], view: u64, n: u64, d: Digest) -> Vec<u8> {
        ezbft_wire::to_bytes(&(tag, view, n, d)).expect("phase vote encodes")
    }
}

/// REPLY to the client.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Reply<R> {
    /// View in which the request executed.
    pub view: u64,
    /// The client.
    pub client: ClientId,
    /// The request timestamp.
    pub ts: Timestamp,
    /// Execution result.
    pub response: R,
    /// The replying replica.
    pub sender: ReplicaId,
    /// Signature over `(view, client, ts, response)`.
    pub sig: Signature,
}

impl<R: Payload> Reply<R> {
    /// Canonical signed bytes.
    pub fn signed_payload(view: u64, client: ClientId, ts: Timestamp, response: &R) -> Vec<u8> {
        ezbft_wire::to_bytes(&(b"pbft-reply", view, client, ts, response)).expect("encodes")
    }

    /// Matching key for the client's `f + 1` tally (response identity; the
    /// view is excluded so replies straddling a view change still match).
    pub fn match_key(&self) -> Digest {
        Digest::of(&ezbft_wire::to_bytes(&(self.ts, &self.response)).expect("encodes"))
    }
}

/// CHECKPOINT: `⟨n, state-digest, i⟩` — the shared subsystem's vote with
/// the sequence number as its mark (the checkpoint/truncation machinery
/// itself lives in `ezbft-checkpoint` and is shared with ezBFT).
pub type Checkpoint = ezbft_checkpoint::CheckpointVote<u64>;

/// One prepared entry carried inside VIEW-CHANGE.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct PreparedEntry<C> {
    /// The primary-signed PRE-PREPARE body.
    pub body: PrePrepareBody,
    /// The old primary's signature.
    pub sig: Signature,
    /// The request.
    pub req: Request<C>,
}

/// VIEW-CHANGE.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ViewChange<C> {
    /// The view being moved to.
    pub new_view: u64,
    /// The sender's prepared (or better) entries above its stable
    /// checkpoint.
    pub prepared: Vec<PreparedEntry<C>>,
    /// The sender's stable-checkpoint sequence number.
    pub stable_n: u64,
    /// The reporting replica.
    pub sender: ReplicaId,
    /// Signature over `(new_view, stable_n, digest(prepared))`.
    pub sig: Signature,
}

impl<C: Payload> ViewChange<C> {
    /// Canonical signed bytes.
    pub fn signed_payload(new_view: u64, stable_n: u64, prepared: &[PreparedEntry<C>]) -> Vec<u8> {
        let d = Digest::of(&ezbft_wire::to_bytes(prepared).expect("encodes"));
        ezbft_wire::to_bytes(&(b"pbft-view-change", new_view, stable_n, d)).expect("encodes")
    }
}

/// NEW-VIEW.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct NewView<C> {
    /// The installed view.
    pub new_view: u64,
    /// The `2f + 1` VIEW-CHANGE proof.
    pub proof: Vec<ViewChange<C>>,
    /// Re-issued PRE-PREPAREs for the adopted entries.
    pub pre_prepares: Vec<PrePrepare<C>>,
    /// The new primary.
    pub sender: ReplicaId,
    /// Signature over `(new_view, digest(pre_prepares))`.
    pub sig: Signature,
}

impl<C: Payload> NewView<C> {
    /// Canonical signed bytes.
    pub fn signed_payload(new_view: u64, pre_prepares: &[PrePrepare<C>]) -> Vec<u8> {
        let d = Digest::of(&ezbft_wire::to_bytes(pre_prepares).expect("encodes"));
        ezbft_wire::to_bytes(&(b"pbft-new-view", new_view, d)).expect("encodes")
    }
}

/// The PBFT wire message.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
#[allow(clippy::large_enum_variant)]
pub enum Msg<C, R> {
    /// Client → primary.
    Request(Request<C>),
    /// Client → all replicas (retransmission).
    RequestBroadcast(Request<C>),
    /// Primary → replicas.
    PrePrepare(PrePrepare<C>),
    /// Replica → replicas.
    Prepare(PhaseVote),
    /// Replica → replicas.
    Commit(PhaseVote),
    /// Replica → client.
    Reply(Reply<R>),
    /// Replica → replicas (garbage collection).
    Checkpoint(Checkpoint),
    /// Replica → new primary.
    ViewChange(ViewChange<C>),
    /// New primary → replicas.
    NewView(NewView<C>),
}

impl<C, R> Msg<C, R> {
    /// Short kind tag (traces, cost models).
    pub fn kind(&self) -> &'static str {
        match self {
            Msg::Request(_) => "request",
            Msg::RequestBroadcast(_) => "request-broadcast",
            Msg::PrePrepare(_) => "pre-prepare",
            Msg::Prepare(_) => "prepare",
            Msg::Commit(_) => "commit",
            Msg::Reply(_) => "reply",
            Msg::Checkpoint(_) => "checkpoint",
            Msg::ViewChange(_) => "view-change",
            Msg::NewView(_) => "new-view",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reply_match_key_ignores_view_and_sender() {
        let a: Reply<u32> = Reply {
            view: 0,
            client: ClientId::new(1),
            ts: Timestamp(1),
            response: 7,
            sender: ReplicaId::new(0),
            sig: Signature::Null,
        };
        let b = Reply {
            view: 5,
            sender: ReplicaId::new(2),
            ..a.clone()
        };
        assert_eq!(a.match_key(), b.match_key());
        let c = Reply {
            response: 8,
            ..a.clone()
        };
        assert_ne!(a.match_key(), c.match_key());
    }

    #[test]
    fn phase_payload_distinguishes_phases() {
        let d = Digest::of(b"m");
        assert_ne!(
            PhaseVote::signed_payload(b"prepare", 0, 1, d),
            PhaseVote::signed_payload(b"commit", 0, 1, d)
        );
    }

    #[test]
    fn wire_roundtrip() {
        let m: Msg<u32, u32> = Msg::Checkpoint(Checkpoint {
            mark: 100,
            digest: Digest::of(b"s"),
            sender: ReplicaId::new(2),
            sig: Signature::Null,
        });
        let bytes = ezbft_wire::to_bytes(&m).unwrap();
        assert_eq!(ezbft_wire::from_bytes::<Msg<u32, u32>>(&bytes).unwrap(), m);
        assert_eq!(m.kind(), "checkpoint");
    }
}
