//! The PBFT replica: three-phase agreement, in-order execution,
//! checkpoints and view changes.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use ezbft_checkpoint::{CheckpointTracker, CheckpointVote, Snapshotable};
use ezbft_crypto::{Audience, Digest, KeyStore};
use ezbft_smr::{
    Actions, Application, ClientId, ClusterConfig, Micros, NodeId, ProtocolNode, ReplicaId,
    TimerId, Timestamp, VoteTally,
};

use crate::msg::{
    Checkpoint, Msg, NewView, PhaseVote, PrePrepare, PrePrepareBody, PreparedEntry, Reply, Request,
    ViewChange,
};

/// PBFT configuration.
#[derive(Clone, Copy, Debug)]
pub struct PbftConfig {
    /// The cluster.
    pub cluster: ClusterConfig,
    /// The primary of view 0.
    pub first_primary: ReplicaId,
    /// Client retransmission timer.
    pub retry_delay: Micros,
    /// Replica accusation timer after forwarding a retransmitted request.
    pub accuse_timeout: Micros,
    /// Checkpoint interval (sequence numbers).
    pub checkpoint_interval: u64,
}

impl PbftConfig {
    /// Defaults for WAN simulations.
    pub fn new(cluster: ClusterConfig, first_primary: ReplicaId) -> Self {
        PbftConfig {
            cluster,
            first_primary,
            retry_delay: Micros::from_millis(1_500),
            accuse_timeout: Micros::from_millis(800),
            checkpoint_interval: 64,
        }
    }

    /// The primary of `view`.
    pub fn primary(&self, view: u64) -> ReplicaId {
        let n = self.cluster.n() as u64;
        ReplicaId::new(((self.first_primary.index() as u64 + view) % n) as u8)
    }
}

#[derive(Clone, Debug)]
struct Slot<C> {
    pre_prepare: Option<PrePrepare<C>>,
    prepares: BTreeSet<ReplicaId>,
    commits: BTreeSet<ReplicaId>,
    prepared: bool,
    committed: bool,
    executed: bool,
    /// Whether this replica already broadcast its COMMIT for the slot.
    commit_sent: bool,
}

impl<C> Default for Slot<C> {
    fn default() -> Self {
        Slot {
            pre_prepare: None,
            prepares: BTreeSet::new(),
            commits: BTreeSet::new(),
            prepared: false,
            committed: false,
            executed: false,
            commit_sent: false,
        }
    }
}

#[derive(Clone, Debug)]
struct ClientRec<R> {
    last_executed_ts: Timestamp,
    cached: Option<Reply<R>>,
    /// Timestamps currently in the pipeline (assigned a slot, not executed).
    in_pipeline: Timestamp,
}

impl<R> Default for ClientRec<R> {
    fn default() -> Self {
        ClientRec {
            last_executed_ts: Timestamp::ZERO,
            cached: None,
            in_pipeline: Timestamp::ZERO,
        }
    }
}

/// Counters for tests and reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PbftStats {
    /// Requests assigned a sequence number (primary role).
    pub ordered: u64,
    /// Requests executed.
    pub executed: u64,
    /// Stable checkpoints reached.
    pub checkpoints: u64,
    /// View changes completed.
    pub view_changes: u64,
    /// Messages rejected by validation.
    pub rejected: u64,
}

enum Timer {
    Accuse { client: ClientId, ts: Timestamp },
}

/// The PBFT replica node.
pub struct PbftReplica<A: Application> {
    id: ReplicaId,
    cfg: PbftConfig,
    keys: KeyStore,
    initial: A,
    app: A,
    view: u64,
    in_view_change: bool,
    next_n: u64,
    slots: BTreeMap<u64, Slot<A::Command>>,
    exec_upto: u64,
    stable_n: u64,
    clients: HashMap<ClientId, ClientRec<A::Response>>,
    /// Stable-checkpoint agreement via the shared subsystem
    /// (`ezbft-checkpoint`): marks are sequence numbers.
    ckpt_tracker: CheckpointTracker<u64>,
    ihp_votes: HashMap<u64, VoteTally>,
    vc_reports: HashMap<u64, Vec<ViewChange<A::Command>>>,
    timers: HashMap<u64, Timer>,
    accuse_waits: HashMap<(ClientId, Timestamp), u64>,
    next_timer: u64,
    stats: PbftStats,
}

impl<A: Application> std::fmt::Debug for PbftReplica<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PbftReplica")
            .field("id", &self.id)
            .field("view", &self.view)
            .field("exec_upto", &self.exec_upto)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

type Out<A> = Actions<
    Msg<<A as Application>::Command, <A as Application>::Response>,
    <A as Application>::Response,
>;

impl<A: Application + Snapshotable> PbftReplica<A> {
    /// Creates a replica.
    ///
    /// # Panics
    ///
    /// Panics if `keys` does not belong to `id`.
    pub fn new(id: ReplicaId, cfg: PbftConfig, keys: KeyStore, app: A) -> Self {
        assert_eq!(keys.me(), NodeId::Replica(id), "keystore identity mismatch");
        PbftReplica {
            id,
            cfg,
            keys,
            initial: app.clone(),
            app,
            view: 0,
            in_view_change: false,
            next_n: 1,
            slots: BTreeMap::new(),
            exec_upto: 0,
            stable_n: 0,
            clients: HashMap::new(),
            ckpt_tracker: CheckpointTracker::new(),
            ihp_votes: HashMap::new(),
            vc_reports: HashMap::new(),
            timers: HashMap::new(),
            accuse_waits: HashMap::new(),
            next_timer: 0,
            stats: PbftStats::default(),
        }
    }

    /// Counters for tests and reports.
    pub fn stats(&self) -> PbftStats {
        self.stats
    }

    /// The (committed) application state.
    pub fn app(&self) -> &A {
        &self.app
    }

    /// Current view.
    pub fn view(&self) -> u64 {
        self.view
    }

    /// Highest executed sequence number.
    pub fn executed_upto(&self) -> u64 {
        self.exec_upto
    }

    /// Number of live (non-truncated) slots — bounded by checkpointing.
    pub fn live_slots(&self) -> usize {
        self.slots.len()
    }

    fn is_primary(&self) -> bool {
        self.cfg.primary(self.view) == self.id
    }

    fn verify_request(&mut self, req: &Request<A::Command>) -> bool {
        let payload = Request::signed_payload(req.client, req.ts, &req.cmd);
        self.keys
            .verify(NodeId::Client(req.client), &payload, &req.sig)
            .is_ok()
    }

    fn replica_audience(&self) -> Audience {
        Audience::replicas(self.cfg.cluster.n())
    }

    // ------------------------------------------------------------------
    // Normal case
    // ------------------------------------------------------------------

    fn on_request(&mut self, req: Request<A::Command>, out: &mut Out<A>) {
        if !self.verify_request(&req) {
            self.stats.rejected += 1;
            return;
        }
        if !self.is_primary() || self.in_view_change {
            return;
        }
        let rec = self.clients.entry(req.client).or_default();
        if req.ts <= rec.last_executed_ts {
            if let Some(cached) = rec.cached.clone() {
                if cached.ts == req.ts {
                    out.send(NodeId::Client(req.client), Msg::Reply(cached));
                }
            }
            return;
        }
        if req.ts <= rec.in_pipeline {
            return; // already assigned a slot
        }
        rec.in_pipeline = req.ts;

        let n = self.next_n;
        self.next_n += 1;
        let body = PrePrepareBody {
            view: self.view,
            n,
            req_digest: req.digest(),
        };
        let sig = self
            .keys
            .sign(&body.signed_payload(), &self.replica_audience());
        let pp = PrePrepare { body, sig, req };
        let peers: Vec<ReplicaId> = self.cfg.cluster.peers(self.id).collect();
        out.broadcast(peers, Msg::PrePrepare(pp.clone()));
        self.stats.ordered += 1;
        // The primary's pre-prepare doubles as its prepare.
        self.accept_pre_prepare(pp, out);
    }

    fn on_request_broadcast(&mut self, req: Request<A::Command>, out: &mut Out<A>) {
        if !self.verify_request(&req) {
            self.stats.rejected += 1;
            return;
        }
        let rec = self.clients.entry(req.client).or_default();
        if req.ts <= rec.last_executed_ts {
            if let Some(cached) = rec.cached.clone() {
                if cached.ts == req.ts {
                    out.send(NodeId::Client(req.client), Msg::Reply(cached));
                    return;
                }
            }
            if req.ts < rec.last_executed_ts {
                return;
            }
        }
        if self.is_primary() {
            self.on_request(req, out);
            return;
        }
        let primary = self.cfg.primary(self.view);
        let key = (req.client, req.ts);
        out.send(NodeId::Replica(primary), Msg::Request(req));
        if !self.accuse_waits.contains_key(&key) {
            let id = self.next_timer;
            self.next_timer += 1;
            self.timers.insert(
                id,
                Timer::Accuse {
                    client: key.0,
                    ts: key.1,
                },
            );
            self.accuse_waits.insert(key, id);
            out.set_timer(TimerId(id), self.cfg.accuse_timeout);
        }
    }

    fn on_pre_prepare(&mut self, pp: PrePrepare<A::Command>, from: NodeId, out: &mut Out<A>) {
        if self.in_view_change || pp.body.view != self.view {
            return;
        }
        let primary = self.cfg.primary(pp.body.view);
        if from != NodeId::Replica(primary) || primary == self.id {
            self.stats.rejected += 1;
            return;
        }
        if self
            .keys
            .verify(NodeId::Replica(primary), &pp.body.signed_payload(), &pp.sig)
            .is_err()
            || pp.req.digest() != pp.body.req_digest
            || !self.verify_request(&pp.req)
            || pp.body.n <= self.stable_n
        {
            self.stats.rejected += 1;
            return;
        }
        // Reject a second pre-prepare for the same (view, n) with a
        // different digest (primary equivocation).
        if let Some(slot) = self.slots.get(&pp.body.n) {
            if let Some(existing) = &slot.pre_prepare {
                if existing.body.req_digest != pp.body.req_digest {
                    self.stats.rejected += 1;
                    return;
                }
                return; // duplicate
            }
        }
        self.accept_pre_prepare(pp.clone(), out);
        // Broadcast PREPARE.
        let payload =
            PhaseVote::signed_payload(b"prepare", pp.body.view, pp.body.n, pp.body.req_digest);
        let sig = self.keys.sign(&payload, &self.replica_audience());
        let vote = PhaseVote {
            view: pp.body.view,
            n: pp.body.n,
            req_digest: pp.body.req_digest,
            sender: self.id,
            sig,
        };
        let peers: Vec<ReplicaId> = self.cfg.cluster.peers(self.id).collect();
        out.broadcast(peers, Msg::Prepare(vote.clone()));
        self.record_prepare(vote, out);
    }

    fn accept_pre_prepare(&mut self, pp: PrePrepare<A::Command>, out: &mut Out<A>) {
        let n = pp.body.n;
        let rec = self.clients.entry(pp.req.client).or_default();
        rec.in_pipeline = rec.in_pipeline.max(pp.req.ts);
        if let Some(id) = self.accuse_waits.remove(&(pp.req.client, pp.req.ts)) {
            self.timers.remove(&id);
            out.cancel_timer(TimerId(id));
        }
        let slot = self.slots.entry(n).or_default();
        slot.pre_prepare = Some(pp);
        self.check_prepared(n, out);
    }

    fn record_prepare(&mut self, vote: PhaseVote, out: &mut Out<A>) {
        let slot = self.slots.entry(vote.n).or_default();
        slot.prepares.insert(vote.sender);
        self.check_prepared(vote.n, out);
    }

    fn on_prepare(&mut self, vote: PhaseVote, from: NodeId, out: &mut Out<A>) {
        if vote.view != self.view || self.in_view_change || from != NodeId::Replica(vote.sender) {
            return;
        }
        let payload = PhaseVote::signed_payload(b"prepare", vote.view, vote.n, vote.req_digest);
        if self
            .keys
            .verify(NodeId::Replica(vote.sender), &payload, &vote.sig)
            .is_err()
        {
            self.stats.rejected += 1;
            return;
        }
        self.record_prepare(vote, out);
    }

    /// Prepared = pre-prepare + 2f prepares (the primary's pre-prepare
    /// counts as its prepare).
    fn check_prepared(&mut self, n: u64, out: &mut Out<A>) {
        let view = self.view;
        let needed = 2 * self.cfg.cluster.f();
        let Some(slot) = self.slots.get_mut(&n) else {
            return;
        };
        let Some(pp) = &slot.pre_prepare else { return };
        if slot.prepared || slot.prepares.len() < needed {
            return;
        }
        slot.prepared = true;
        let d = pp.body.req_digest;
        if !slot.commit_sent {
            slot.commit_sent = true;
            let payload = PhaseVote::signed_payload(b"commit", view, n, d);
            let sig = self.keys.sign(&payload, &self.replica_audience());
            let vote = PhaseVote {
                view,
                n,
                req_digest: d,
                sender: self.id,
                sig,
            };
            let peers: Vec<ReplicaId> = self.cfg.cluster.peers(self.id).collect();
            out.broadcast(peers, Msg::Commit(vote.clone()));
            self.record_commit(vote, out);
        }
    }

    fn on_commit(&mut self, vote: PhaseVote, from: NodeId, out: &mut Out<A>) {
        if vote.view != self.view || self.in_view_change || from != NodeId::Replica(vote.sender) {
            return;
        }
        let payload = PhaseVote::signed_payload(b"commit", vote.view, vote.n, vote.req_digest);
        if self
            .keys
            .verify(NodeId::Replica(vote.sender), &payload, &vote.sig)
            .is_err()
        {
            self.stats.rejected += 1;
            return;
        }
        self.record_commit(vote, out);
    }

    fn record_commit(&mut self, vote: PhaseVote, out: &mut Out<A>) {
        let quorum = self.cfg.cluster.slow_quorum();
        {
            let slot = self.slots.entry(vote.n).or_default();
            slot.commits.insert(vote.sender);
            if slot.committed || !slot.prepared || slot.commits.len() < quorum {
                // Committed-local requires prepared + 2f+1 commits.
                if !(slot.prepared && slot.commits.len() >= quorum) {
                    return;
                }
            }
            slot.committed = true;
        }
        self.execute_ready(out);
    }

    fn execute_ready(&mut self, out: &mut Out<A>) {
        loop {
            let n = self.exec_upto + 1;
            let ready = self
                .slots
                .get(&n)
                .map(|s| s.committed && !s.executed && s.pre_prepare.is_some())
                .unwrap_or(false);
            if !ready {
                break;
            }
            let (client, ts, cmd) = {
                let slot = self.slots.get(&n).expect("checked");
                let pp = slot.pre_prepare.as_ref().expect("checked");
                (pp.req.client, pp.req.ts, pp.req.cmd.clone())
            };
            let rec = self.clients.entry(client).or_default();
            let response = if ts <= rec.last_executed_ts {
                // Duplicate slot for an executed request: reply from cache.
                rec.cached.as_ref().map(|c| c.response.clone())
            } else {
                let response = self.app.apply(&cmd);
                Some(response)
            };
            self.exec_upto = n;
            if let Some(slot) = self.slots.get_mut(&n) {
                slot.executed = true;
            }
            self.stats.executed += 1;
            if let Some(response) = response {
                let payload =
                    Reply::<A::Response>::signed_payload(self.view, client, ts, &response);
                let sig = self
                    .keys
                    .sign(&payload, &Audience::nodes([NodeId::Client(client)]));
                let reply = Reply {
                    view: self.view,
                    client,
                    ts,
                    response,
                    sender: self.id,
                    sig,
                };
                let rec = self.clients.entry(client).or_default();
                rec.last_executed_ts = rec.last_executed_ts.max(ts);
                rec.cached = Some(reply.clone());
                out.send(NodeId::Client(client), Msg::Reply(reply));
            }
            // Periodic checkpoint.
            if n.is_multiple_of(self.cfg.checkpoint_interval) {
                self.emit_checkpoint(n, out);
            }
        }
    }

    // ------------------------------------------------------------------
    // Checkpoints and log truncation
    // ------------------------------------------------------------------

    fn state_digest(&self, n: u64) -> Digest {
        // The application's canonical snapshot digest bound to the
        // sequence number — byzantine replicas whose execution diverged
        // cannot contribute to a stable checkpoint.
        let app = self.app.state_digest();
        Digest::of(&ezbft_wire::to_bytes(&(b"pbft-state", n, app)).expect("encodes"))
    }

    fn emit_checkpoint(&mut self, n: u64, out: &mut Out<A>) {
        let d = self.state_digest(n);
        let payload = CheckpointVote::<u64>::signed_payload(&n, d);
        let sig = self.keys.sign(&payload, &self.replica_audience());
        let cp = Checkpoint {
            mark: n,
            digest: d,
            sender: self.id,
            sig,
        };
        let peers: Vec<ReplicaId> = self.cfg.cluster.peers(self.id).collect();
        out.broadcast(peers, Msg::Checkpoint(cp.clone()));
        self.record_checkpoint(cp);
    }

    fn on_checkpoint(&mut self, cp: Checkpoint, from: NodeId) {
        if from != NodeId::Replica(cp.sender) {
            return;
        }
        let payload = CheckpointVote::<u64>::signed_payload(&cp.mark, cp.digest);
        if self
            .keys
            .verify(NodeId::Replica(cp.sender), &payload, &cp.sig)
            .is_err()
        {
            self.stats.rejected += 1;
            return;
        }
        self.record_checkpoint(cp);
    }

    fn record_checkpoint(&mut self, cp: Checkpoint) {
        let quorum = self.cfg.cluster.slow_quorum();
        if let Some(stable) = self.ckpt_tracker.record(cp, quorum) {
            self.stable_n = stable.mark;
            self.stats.checkpoints += 1;
            // Truncate the log below the stable checkpoint (the tracker
            // prunes its own votes).
            self.slots.retain(|&n, _| n > stable.mark);
        }
    }

    // ------------------------------------------------------------------
    // View change (prepared-certificate carrying, simplified)
    // ------------------------------------------------------------------

    fn accuse(&mut self, out: &mut Out<A>) {
        let view = self.view;
        let votes = self.ihp_votes.entry(view).or_default();
        if votes.has_voted(self.id) {
            return;
        }
        votes.vote(self.id);
        let payload = PhaseVote::signed_payload(b"accuse", view, 0, Digest::ZERO);
        let sig = self.keys.sign(&payload, &self.replica_audience());
        let vote = PhaseVote {
            view,
            n: 0,
            req_digest: Digest::ZERO,
            sender: self.id,
            sig,
        };
        let peers: Vec<ReplicaId> = self.cfg.cluster.peers(self.id).collect();
        // Reuse the Prepare envelope shape via a dedicated variant? An
        // accusation is a Commit-shaped vote with n = 0 on the current
        // view; we give it its own meaning through the signed tag.
        out.broadcast(peers, Msg::Commit(vote.clone()));
        self.on_accusation(vote, out);
    }

    fn on_accusation(&mut self, vote: PhaseVote, out: &mut Out<A>) {
        let votes = self.ihp_votes.entry(vote.view).or_default();
        votes.vote(vote.sender);
        if votes.reached(self.cfg.cluster.weak_quorum()) {
            self.accuse(out); // amplify
            self.enter_view_change(out);
        }
    }

    fn enter_view_change(&mut self, out: &mut Out<A>) {
        if self.in_view_change {
            return;
        }
        self.in_view_change = true;
        let new_view = self.view + 1;
        let prepared: Vec<PreparedEntry<A::Command>> = self
            .slots
            .values()
            .filter(|s| s.prepared)
            .filter_map(|s| s.pre_prepare.as_ref())
            .map(|pp| PreparedEntry {
                body: pp.body.clone(),
                sig: pp.sig.clone(),
                req: pp.req.clone(),
            })
            .collect();
        let payload = ViewChange::signed_payload(new_view, self.stable_n, &prepared);
        let sig = self.keys.sign(&payload, &self.replica_audience());
        let vc = ViewChange {
            new_view,
            prepared,
            stable_n: self.stable_n,
            sender: self.id,
            sig,
        };
        let new_primary = self.cfg.primary(new_view);
        if new_primary == self.id {
            self.on_view_change(vc, NodeId::Replica(self.id), out);
        } else {
            out.send(NodeId::Replica(new_primary), Msg::ViewChange(vc));
        }
    }

    fn verify_view_change(&mut self, vc: &ViewChange<A::Command>) -> bool {
        let payload = ViewChange::signed_payload(vc.new_view, vc.stable_n, &vc.prepared);
        self.keys
            .verify(NodeId::Replica(vc.sender), &payload, &vc.sig)
            .is_ok()
    }

    fn on_view_change(&mut self, vc: ViewChange<A::Command>, from: NodeId, out: &mut Out<A>) {
        if from != NodeId::Replica(vc.sender)
            || self.cfg.primary(vc.new_view) != self.id
            || vc.new_view <= self.view
        {
            return;
        }
        if !self.verify_view_change(&vc) {
            self.stats.rejected += 1;
            return;
        }
        let reports = self.vc_reports.entry(vc.new_view).or_default();
        if reports.iter().any(|r| r.sender == vc.sender) {
            return;
        }
        reports.push(vc);
        if reports.len() < self.cfg.cluster.slow_quorum() {
            return;
        }
        let new_view = reports[0].new_view;
        let proof = reports.clone();
        let adopted = Self::adopt_prepared(&mut self.keys, &self.cfg, &proof);
        let mut pre_prepares = Vec::with_capacity(adopted.len());
        for (i, pe) in adopted.into_iter().enumerate() {
            let body = PrePrepareBody {
                view: new_view,
                n: i as u64 + 1,
                req_digest: pe.req.digest(),
            };
            let sig = self
                .keys
                .sign(&body.signed_payload(), &self.replica_audience());
            pre_prepares.push(PrePrepare {
                body,
                sig,
                req: pe.req,
            });
        }
        let payload = NewView::signed_payload(new_view, &pre_prepares);
        let sig = self.keys.sign(&payload, &self.replica_audience());
        let nv = NewView {
            new_view,
            proof,
            pre_prepares,
            sender: self.id,
            sig,
        };
        let peers: Vec<ReplicaId> = self.cfg.cluster.peers(self.id).collect();
        out.broadcast(peers, Msg::NewView(nv.clone()));
        self.install_new_view(nv, out);
    }

    /// Deterministic adoption: a prepared entry survives the view change if
    /// any report carries it with a valid old-primary signature (PBFT's
    /// safety comes from the prepared-certificate intersection; a single
    /// valid report suffices because prepared means 2f+1 replicas agreed).
    fn adopt_prepared(
        keys: &mut KeyStore,
        cfg: &PbftConfig,
        proof: &[ViewChange<A::Command>],
    ) -> Vec<PreparedEntry<A::Command>> {
        let mut by_n: BTreeMap<u64, PreparedEntry<A::Command>> = BTreeMap::new();
        let mut sorted: Vec<&ViewChange<A::Command>> = proof.iter().collect();
        sorted.sort_by_key(|vc| vc.sender);
        for vc in sorted {
            for pe in &vc.prepared {
                let old_primary = cfg.primary(pe.body.view);
                if keys
                    .verify(
                        NodeId::Replica(old_primary),
                        &pe.body.signed_payload(),
                        &pe.sig,
                    )
                    .is_err()
                {
                    continue;
                }
                by_n.entry(pe.body.n).or_insert_with(|| pe.clone());
            }
        }
        // Contiguous prefix from 1.
        let mut adopted = Vec::new();
        let mut n = 1u64;
        while let Some(pe) = by_n.remove(&n) {
            adopted.push(pe);
            n += 1;
        }
        adopted
    }

    fn on_new_view(&mut self, nv: NewView<A::Command>, from: NodeId, out: &mut Out<A>) {
        if from != NodeId::Replica(nv.sender)
            || self.cfg.primary(nv.new_view) != nv.sender
            || nv.new_view <= self.view
        {
            return;
        }
        let payload = NewView::signed_payload(nv.new_view, &nv.pre_prepares);
        if self
            .keys
            .verify(NodeId::Replica(nv.sender), &payload, &nv.sig)
            .is_err()
        {
            self.stats.rejected += 1;
            return;
        }
        if nv.proof.len() < self.cfg.cluster.slow_quorum() {
            self.stats.rejected += 1;
            return;
        }
        let mut senders = BTreeSet::new();
        for vc in &nv.proof {
            if vc.new_view != nv.new_view
                || !senders.insert(vc.sender)
                || !self.verify_view_change(vc)
            {
                self.stats.rejected += 1;
                return;
            }
        }
        let adopted = Self::adopt_prepared(&mut self.keys, &self.cfg, &nv.proof);
        let consistent = adopted.len() == nv.pre_prepares.len()
            && adopted
                .iter()
                .zip(&nv.pre_prepares)
                .all(|(a, b)| a.req.digest() == b.body.req_digest);
        if !consistent {
            self.stats.rejected += 1;
            return;
        }
        self.install_new_view(nv, out);
    }

    fn install_new_view(&mut self, nv: NewView<A::Command>, out: &mut Out<A>) {
        self.view = nv.new_view;
        self.in_view_change = false;
        self.slots.clear();
        self.clients.clear();
        self.app = self.initial.clone();
        self.exec_upto = 0;
        self.stable_n = 0;
        // Sequence numbers restart in the new view; old stable marks must
        // not block new checkpoints from stabilising.
        self.ckpt_tracker = CheckpointTracker::new();
        self.next_n = nv.pre_prepares.len() as u64 + 1;
        self.stats.view_changes += 1;
        for (_, id) in self.accuse_waits.drain() {
            self.timers.remove(&id);
            out.cancel_timer(TimerId(id));
        }
        // Run the adopted entries through the normal three-phase pipeline:
        // each replica re-prepares them under the new view.
        let is_primary = self.is_primary();
        for pp in nv.pre_prepares {
            if is_primary {
                self.accept_pre_prepare(pp, out);
            } else {
                self.on_pre_prepare(pp, NodeId::Replica(nv.sender), out);
            }
        }
    }
}

impl<A: Application + Snapshotable> ProtocolNode for PbftReplica<A> {
    type Message = Msg<A::Command, A::Response>;
    type Response = A::Response;

    fn id(&self) -> NodeId {
        NodeId::Replica(self.id)
    }

    fn on_message(&mut self, from: NodeId, msg: Self::Message, out: &mut Out<A>) {
        match msg {
            Msg::Request(req) => self.on_request(req, out),
            Msg::RequestBroadcast(req) => self.on_request_broadcast(req, out),
            Msg::PrePrepare(pp) => self.on_pre_prepare(pp, from, out),
            Msg::Prepare(vote) => self.on_prepare(vote, from, out),
            Msg::Commit(vote) => {
                if from != NodeId::Replica(vote.sender) {
                    return;
                }
                // Accusations ride in Commit envelopes with n = 0.
                if vote.n == 0 {
                    let payload = PhaseVote::signed_payload(b"accuse", vote.view, 0, Digest::ZERO);
                    if self
                        .keys
                        .verify(NodeId::Replica(vote.sender), &payload, &vote.sig)
                        .is_ok()
                        && vote.view == self.view
                    {
                        self.on_accusation(vote, out);
                    }
                    return;
                }
                self.on_commit(vote, from, out);
            }
            Msg::Checkpoint(cp) => self.on_checkpoint(cp, from),
            Msg::ViewChange(vc) => self.on_view_change(vc, from, out),
            Msg::NewView(nv) => self.on_new_view(nv, from, out),
            Msg::Reply(_) => {
                self.stats.rejected += 1;
            }
        }
    }

    fn on_timer(&mut self, id: TimerId, out: &mut Out<A>) {
        let Some(timer) = self.timers.remove(&id.0) else {
            return;
        };
        match timer {
            Timer::Accuse { client, ts } => {
                self.accuse_waits.remove(&(client, ts));
                self.accuse(out);
            }
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}
