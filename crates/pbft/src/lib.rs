//! # ezbft-pbft — the PBFT baseline
//!
//! A message-pattern-faithful implementation of Practical Byzantine Fault
//! Tolerance (Castro & Liskov, OSDI '99): the canonical five-step BFT
//! protocol the ezBFT paper compares against (client → primary →
//! PRE-PREPARE → PREPARE → COMMIT → reply).
//!
//! Implemented: the three-phase agreement protocol with in-order execution
//! and client reply caching, `f + 1`-matching client completion,
//! retransmission with primary forwarding, stable checkpoints with log
//! truncation, and a view-change protocol (VIEW-CHANGE / NEW-VIEW carrying
//! the prepared-entry certificates; the proactive-recovery machinery of the
//! 2002 journal version is out of scope — see DESIGN.md).

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod client;
mod msg;
mod replica;

pub use client::{PbftClient, PbftClientStats};
pub use msg::{Msg, PrePrepare, PrePrepareBody, Reply, Request};
pub use replica::{PbftConfig, PbftReplica, PbftStats};

/// Static protocol properties (paper Table II row).
pub mod properties {
    /// Resilience: f < n/3.
    pub const RESILIENCE: &str = "f < n/3";
    /// Best-case communication steps (client-inclusive).
    pub const BEST_CASE_STEPS: u32 = 5;
    /// Extra steps on the slow path (none: PBFT has a single path).
    pub const SLOW_PATH_EXTRA_STEPS: u32 = 0;
    /// Leadership structure.
    pub const LEADER: &str = "single";
}
