//! FaB protocol messages.

use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};

use ezbft_crypto::{Digest, Signature};
use ezbft_smr::{ClientId, ReplicaId, Timestamp};

/// Bound on message payload types.
pub trait Payload:
    Clone + std::fmt::Debug + Eq + Serialize + DeserializeOwned + Send + 'static
{
}
impl<T: Clone + std::fmt::Debug + Eq + Serialize + DeserializeOwned + Send + 'static> Payload
    for T
{
}

/// A signed client request.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Request<C> {
    /// Issuing client.
    pub client: ClientId,
    /// Client-monotonic timestamp.
    pub ts: Timestamp,
    /// The command.
    pub cmd: C,
    /// Client signature.
    pub sig: Signature,
}

impl<C: Payload> Request<C> {
    /// Canonical signed bytes.
    pub fn signed_payload(client: ClientId, ts: Timestamp, cmd: &C) -> Vec<u8> {
        ezbft_wire::to_bytes(&(b"fab-req", client, ts, cmd)).expect("request encodes")
    }

    /// Request digest.
    pub fn digest(&self) -> Digest {
        Digest::of(&Self::signed_payload(self.client, self.ts, &self.cmd))
    }
}

/// The leader-signed body of PROPOSE.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct ProposeBody {
    /// Proposer number (view).
    pub view: u64,
    /// Sequence number.
    pub n: u64,
    /// Request digest.
    pub req_digest: Digest,
}

impl ProposeBody {
    /// Canonical signed bytes.
    pub fn signed_payload(&self) -> Vec<u8> {
        ezbft_wire::to_bytes(self).expect("propose body encodes")
    }
}

/// PROPOSE with the request piggybacked.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Propose<C> {
    /// Signed proposal metadata.
    pub body: ProposeBody,
    /// Leader signature.
    pub sig: Signature,
    /// The request.
    pub req: Request<C>,
}

/// ACCEPT: an acceptor's endorsement, sent to all learners.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Accept {
    /// View.
    pub view: u64,
    /// Sequence number.
    pub n: u64,
    /// Request digest.
    pub req_digest: Digest,
    /// The accepting replica.
    pub sender: ReplicaId,
    /// Signature over `(view, n, d)`.
    pub sig: Signature,
}

impl Accept {
    /// Canonical signed bytes.
    pub fn signed_payload(view: u64, n: u64, d: Digest) -> Vec<u8> {
        ezbft_wire::to_bytes(&(b"fab-accept", view, n, d)).expect("encodes")
    }
}

/// REPLY to the client from a learner.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Reply<R> {
    /// View.
    pub view: u64,
    /// The client.
    pub client: ClientId,
    /// The request timestamp.
    pub ts: Timestamp,
    /// Execution result.
    pub response: R,
    /// The replying replica.
    pub sender: ReplicaId,
    /// Signature over `(client, ts, response)`.
    pub sig: Signature,
}

impl<R: Payload> Reply<R> {
    /// Canonical signed bytes.
    pub fn signed_payload(client: ClientId, ts: Timestamp, response: &R) -> Vec<u8> {
        ezbft_wire::to_bytes(&(b"fab-reply", client, ts, response)).expect("encodes")
    }

    /// Matching key for the client's `f + 1` tally.
    pub fn match_key(&self) -> Digest {
        Digest::of(&ezbft_wire::to_bytes(&(self.ts, &self.response)).expect("encodes"))
    }
}

/// One accepted entry carried in an ELECTME report.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct AcceptedEntry<C> {
    /// The leader-signed proposal.
    pub body: ProposeBody,
    /// The old leader's signature.
    pub sig: Signature,
    /// The request.
    pub req: Request<C>,
}

/// Leader-election report (simplified recovery; see crate docs).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ElectMe<C> {
    /// The view being moved to.
    pub new_view: u64,
    /// The reporting replica's accepted history.
    pub accepted: Vec<AcceptedEntry<C>>,
    /// The reporting replica.
    pub sender: ReplicaId,
    /// Signature over `(new_view, digest(accepted))`.
    pub sig: Signature,
}

impl<C: Payload> ElectMe<C> {
    /// Canonical signed bytes.
    pub fn signed_payload(new_view: u64, accepted: &[AcceptedEntry<C>]) -> Vec<u8> {
        let d = Digest::of(&ezbft_wire::to_bytes(accepted).expect("encodes"));
        ezbft_wire::to_bytes(&(b"fab-electme", new_view, d)).expect("encodes")
    }
}

/// NEW-LEADER: the new leader's adopted history.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct NewLeader<C> {
    /// The installed view.
    pub new_view: u64,
    /// The `2f + 1` ELECTME proof.
    pub proof: Vec<ElectMe<C>>,
    /// Re-issued proposals.
    pub proposals: Vec<Propose<C>>,
    /// The new leader.
    pub sender: ReplicaId,
    /// Signature over `(new_view, digest(proposals))`.
    pub sig: Signature,
}

impl<C: Payload> NewLeader<C> {
    /// Canonical signed bytes.
    pub fn signed_payload(new_view: u64, proposals: &[Propose<C>]) -> Vec<u8> {
        let d = Digest::of(&ezbft_wire::to_bytes(proposals).expect("encodes"));
        ezbft_wire::to_bytes(&(b"fab-new-leader", new_view, d)).expect("encodes")
    }
}

/// Accusation against the current leader.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Accuse {
    /// The accused view.
    pub view: u64,
    /// The accusing replica.
    pub sender: ReplicaId,
    /// Signature over `(view)`.
    pub sig: Signature,
}

impl Accuse {
    /// Canonical signed bytes.
    pub fn signed_payload(view: u64) -> Vec<u8> {
        ezbft_wire::to_bytes(&(b"fab-accuse", view)).expect("encodes")
    }
}

/// The FaB wire message.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
#[allow(clippy::large_enum_variant)]
pub enum Msg<C, R> {
    /// Client → leader.
    Request(Request<C>),
    /// Client → all replicas (retransmission).
    RequestBroadcast(Request<C>),
    /// Leader → acceptors.
    Propose(Propose<C>),
    /// Acceptor → learners.
    Accept(Accept),
    /// Learner → client.
    Reply(Reply<R>),
    /// Replica → replicas.
    Accuse(Accuse),
    /// Replica → new leader.
    ElectMe(ElectMe<C>),
    /// New leader → replicas.
    NewLeader(NewLeader<C>),
}

impl<C, R> Msg<C, R> {
    /// Short kind tag (traces, cost models).
    pub fn kind(&self) -> &'static str {
        match self {
            Msg::Request(_) => "request",
            Msg::RequestBroadcast(_) => "request-broadcast",
            Msg::Propose(_) => "propose",
            Msg::Accept(_) => "accept",
            Msg::Reply(_) => "reply",
            Msg::Accuse(_) => "accuse",
            Msg::ElectMe(_) => "elect-me",
            Msg::NewLeader(_) => "new-leader",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reply_match_key_ignores_sender_and_view() {
        let a: Reply<u32> = Reply {
            view: 0,
            client: ClientId::new(1),
            ts: Timestamp(2),
            response: 9,
            sender: ReplicaId::new(0),
            sig: Signature::Null,
        };
        let b = Reply {
            view: 3,
            sender: ReplicaId::new(1),
            ..a.clone()
        };
        assert_eq!(a.match_key(), b.match_key());
    }

    #[test]
    fn wire_roundtrip() {
        let m: Msg<u32, u32> = Msg::Accept(Accept {
            view: 1,
            n: 2,
            req_digest: Digest::of(b"x"),
            sender: ReplicaId::new(3),
            sig: Signature::Null,
        });
        let bytes = ezbft_wire::to_bytes(&m).unwrap();
        assert_eq!(ezbft_wire::from_bytes::<Msg<u32, u32>>(&bytes).unwrap(), m);
        assert_eq!(m.kind(), "accept");
    }
}
