//! # ezbft-fab — the FaB baseline
//!
//! A message-pattern-faithful implementation of Parameterized FaB Paxos
//! (Martin & Alvisi, "Fast Byzantine Consensus") in its `t = 0`
//! configuration, which runs on `N = 3f + 1` replicas — the configuration
//! the ezBFT paper deploys on four nodes. The common case takes **four
//! communication steps**: client → leader (PROPOSE) → acceptors (ACCEPT) →
//! learners execute and reply → client, completing on `f + 1` matching
//! replies.
//!
//! A learner learns a value once `⌈(N + f + 1) / 2⌉` acceptors accepted it
//! (for `N = 4, f = 1`: 3 accepts). Recovery uses the same simplified
//! accusation → leader-election pattern as the other baselines in this
//! workspace (see DESIGN.md).

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod client;
mod msg;
mod replica;

pub use client::{FabClient, FabClientStats};
pub use msg::{Accept, Msg, Propose, ProposeBody, Request};
pub use replica::{FabConfig, FabReplica, FabStats};

/// Static protocol properties (paper Table II context).
pub mod properties {
    /// Resilience in the t=0 parameterized configuration.
    pub const RESILIENCE: &str = "f < n/3";
    /// Best-case communication steps (client-inclusive).
    pub const BEST_CASE_STEPS: u32 = 4;
    /// Extra steps on the slow path.
    pub const SLOW_PATH_EXTRA_STEPS: u32 = 1;
    /// Leadership structure.
    pub const LEADER: &str = "single";
}
