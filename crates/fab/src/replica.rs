//! The FaB replica: proposer + acceptor + learner in one node.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use ezbft_crypto::{Audience, KeyStore};
use ezbft_smr::{
    Actions, Application, ClientId, ClusterConfig, Micros, NodeId, ProtocolNode, ReplicaId,
    TimerId, Timestamp, VoteTally,
};

use crate::msg::{
    Accept, AcceptedEntry, Accuse, ElectMe, Msg, NewLeader, Propose, ProposeBody, Reply, Request,
};

/// FaB configuration (parameterized, `t = 0`).
#[derive(Clone, Copy, Debug)]
pub struct FabConfig {
    /// The cluster (N = 3f + 1).
    pub cluster: ClusterConfig,
    /// The leader of view 0.
    pub first_leader: ReplicaId,
    /// Client retransmission timer.
    pub retry_delay: Micros,
    /// Replica accusation timer.
    pub accuse_timeout: Micros,
}

impl FabConfig {
    /// Defaults for WAN simulations.
    pub fn new(cluster: ClusterConfig, first_leader: ReplicaId) -> Self {
        FabConfig {
            cluster,
            first_leader,
            retry_delay: Micros::from_millis(1_500),
            accuse_timeout: Micros::from_millis(800),
        }
    }

    /// The leader of `view`.
    pub fn leader(&self, view: u64) -> ReplicaId {
        let n = self.cluster.n() as u64;
        ReplicaId::new(((self.first_leader.index() as u64 + view) % n) as u8)
    }

    /// The learning quorum `⌈(N + f + 1) / 2⌉` (3 for N = 4, f = 1).
    pub fn learn_quorum(&self) -> usize {
        (self.cluster.n() + self.cluster.f() + 1).div_ceil(2)
    }
}

#[derive(Clone, Debug)]
struct Slot<C> {
    proposal: Option<Propose<C>>,
    accepts: BTreeSet<ReplicaId>,
    learned: bool,
    executed: bool,
    accept_sent: bool,
}

impl<C> Default for Slot<C> {
    fn default() -> Self {
        Slot {
            proposal: None,
            accepts: BTreeSet::new(),
            learned: false,
            executed: false,
            accept_sent: false,
        }
    }
}

#[derive(Clone, Debug)]
struct ClientRec<R> {
    last_executed_ts: Timestamp,
    in_pipeline: Timestamp,
    cached: Option<Reply<R>>,
}

impl<R> Default for ClientRec<R> {
    fn default() -> Self {
        ClientRec {
            last_executed_ts: Timestamp::ZERO,
            in_pipeline: Timestamp::ZERO,
            cached: None,
        }
    }
}

/// Counters for tests and reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FabStats {
    /// Requests proposed (leader role).
    pub proposed: u64,
    /// Requests learned and executed.
    pub executed: u64,
    /// Leader elections completed.
    pub elections: u64,
    /// Messages rejected by validation.
    pub rejected: u64,
}

enum Timer {
    Accuse { client: ClientId, ts: Timestamp },
}

/// The FaB replica node.
pub struct FabReplica<A: Application> {
    id: ReplicaId,
    cfg: FabConfig,
    keys: KeyStore,
    initial: A,
    app: A,
    view: u64,
    electing: bool,
    next_n: u64,
    slots: BTreeMap<u64, Slot<A::Command>>,
    exec_upto: u64,
    clients: HashMap<ClientId, ClientRec<A::Response>>,
    accuse_votes: HashMap<u64, VoteTally>,
    elect_reports: HashMap<u64, Vec<ElectMe<A::Command>>>,
    timers: HashMap<u64, Timer>,
    accuse_waits: HashMap<(ClientId, Timestamp), u64>,
    next_timer: u64,
    stats: FabStats,
}

impl<A: Application> std::fmt::Debug for FabReplica<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FabReplica")
            .field("id", &self.id)
            .field("view", &self.view)
            .field("exec_upto", &self.exec_upto)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

type Out<A> = Actions<
    Msg<<A as Application>::Command, <A as Application>::Response>,
    <A as Application>::Response,
>;

impl<A: Application> FabReplica<A> {
    /// Creates a replica.
    ///
    /// # Panics
    ///
    /// Panics if `keys` does not belong to `id`.
    pub fn new(id: ReplicaId, cfg: FabConfig, keys: KeyStore, app: A) -> Self {
        assert_eq!(keys.me(), NodeId::Replica(id), "keystore identity mismatch");
        FabReplica {
            id,
            cfg,
            keys,
            initial: app.clone(),
            app,
            view: 0,
            electing: false,
            next_n: 1,
            slots: BTreeMap::new(),
            exec_upto: 0,
            clients: HashMap::new(),
            accuse_votes: HashMap::new(),
            elect_reports: HashMap::new(),
            timers: HashMap::new(),
            accuse_waits: HashMap::new(),
            next_timer: 0,
            stats: FabStats::default(),
        }
    }

    /// Counters for tests and reports.
    pub fn stats(&self) -> FabStats {
        self.stats
    }

    /// The application state.
    pub fn app(&self) -> &A {
        &self.app
    }

    /// Current view.
    pub fn view(&self) -> u64 {
        self.view
    }

    /// Highest executed sequence number.
    pub fn executed_upto(&self) -> u64 {
        self.exec_upto
    }

    fn is_leader(&self) -> bool {
        self.cfg.leader(self.view) == self.id
    }

    fn audience(&self) -> Audience {
        Audience::replicas(self.cfg.cluster.n())
    }

    fn verify_request(&mut self, req: &Request<A::Command>) -> bool {
        let payload = Request::signed_payload(req.client, req.ts, &req.cmd);
        self.keys
            .verify(NodeId::Client(req.client), &payload, &req.sig)
            .is_ok()
    }

    fn on_request(&mut self, req: Request<A::Command>, out: &mut Out<A>) {
        if !self.verify_request(&req) {
            self.stats.rejected += 1;
            return;
        }
        if !self.is_leader() || self.electing {
            return;
        }
        let rec = self.clients.entry(req.client).or_default();
        if req.ts <= rec.last_executed_ts {
            if let Some(cached) = rec.cached.clone() {
                if cached.ts == req.ts {
                    out.send(NodeId::Client(req.client), Msg::Reply(cached));
                }
            }
            return;
        }
        if req.ts <= rec.in_pipeline {
            return;
        }
        rec.in_pipeline = req.ts;

        let n = self.next_n;
        self.next_n += 1;
        let body = ProposeBody {
            view: self.view,
            n,
            req_digest: req.digest(),
        };
        let sig = self.keys.sign(&body.signed_payload(), &self.audience());
        let proposal = Propose { body, sig, req };
        let peers: Vec<ReplicaId> = self.cfg.cluster.peers(self.id).collect();
        out.broadcast(peers, Msg::Propose(proposal.clone()));
        self.stats.proposed += 1;
        self.accept_proposal(proposal, out);
    }

    fn on_request_broadcast(&mut self, req: Request<A::Command>, out: &mut Out<A>) {
        if !self.verify_request(&req) {
            self.stats.rejected += 1;
            return;
        }
        let rec = self.clients.entry(req.client).or_default();
        if req.ts <= rec.last_executed_ts {
            if let Some(cached) = rec.cached.clone() {
                if cached.ts == req.ts {
                    out.send(NodeId::Client(req.client), Msg::Reply(cached));
                    return;
                }
            }
            if req.ts < rec.last_executed_ts {
                return;
            }
        }
        if self.is_leader() {
            self.on_request(req, out);
            return;
        }
        let leader = self.cfg.leader(self.view);
        let key = (req.client, req.ts);
        out.send(NodeId::Replica(leader), Msg::Request(req));
        if !self.accuse_waits.contains_key(&key) {
            let id = self.next_timer;
            self.next_timer += 1;
            self.timers.insert(
                id,
                Timer::Accuse {
                    client: key.0,
                    ts: key.1,
                },
            );
            self.accuse_waits.insert(key, id);
            out.set_timer(TimerId(id), self.cfg.accuse_timeout);
        }
    }

    fn on_propose(&mut self, p: Propose<A::Command>, from: NodeId, out: &mut Out<A>) {
        if self.electing || p.body.view != self.view {
            return;
        }
        let leader = self.cfg.leader(p.body.view);
        if from != NodeId::Replica(leader) || leader == self.id {
            self.stats.rejected += 1;
            return;
        }
        if self
            .keys
            .verify(NodeId::Replica(leader), &p.body.signed_payload(), &p.sig)
            .is_err()
            || p.req.digest() != p.body.req_digest
            || !self.verify_request(&p.req)
        {
            self.stats.rejected += 1;
            return;
        }
        // Equivocation defence: one proposal per (view, n).
        if let Some(slot) = self.slots.get(&p.body.n) {
            if let Some(existing) = &slot.proposal {
                if existing.body.req_digest != p.body.req_digest {
                    self.stats.rejected += 1;
                }
                return;
            }
        }
        self.accept_proposal(p, out);
    }

    /// Acceptor role: record the proposal and broadcast ACCEPT to all
    /// learners (every replica).
    fn accept_proposal(&mut self, p: Propose<A::Command>, out: &mut Out<A>) {
        let n = p.body.n;
        let d = p.body.req_digest;
        let view = p.body.view;
        let rec = self.clients.entry(p.req.client).or_default();
        rec.in_pipeline = rec.in_pipeline.max(p.req.ts);
        if let Some(id) = self.accuse_waits.remove(&(p.req.client, p.req.ts)) {
            self.timers.remove(&id);
            out.cancel_timer(TimerId(id));
        }
        let slot = self.slots.entry(n).or_default();
        slot.proposal = Some(p);
        if !slot.accept_sent {
            slot.accept_sent = true;
            let payload = Accept::signed_payload(view, n, d);
            let sig = self.keys.sign(&payload, &self.audience());
            let accept = Accept {
                view,
                n,
                req_digest: d,
                sender: self.id,
                sig,
            };
            let peers: Vec<ReplicaId> = self.cfg.cluster.peers(self.id).collect();
            out.broadcast(peers, Msg::Accept(accept.clone()));
            self.record_accept(accept, out);
        }
    }

    fn on_accept(&mut self, a: Accept, from: NodeId, out: &mut Out<A>) {
        if a.view != self.view || self.electing || from != NodeId::Replica(a.sender) {
            return;
        }
        let payload = Accept::signed_payload(a.view, a.n, a.req_digest);
        if self
            .keys
            .verify(NodeId::Replica(a.sender), &payload, &a.sig)
            .is_err()
        {
            self.stats.rejected += 1;
            return;
        }
        self.record_accept(a, out);
    }

    fn record_accept(&mut self, a: Accept, out: &mut Out<A>) {
        let quorum = self.cfg.learn_quorum();
        {
            let slot = self.slots.entry(a.n).or_default();
            slot.accepts.insert(a.sender);
            if (slot.learned || slot.accepts.len() < quorum || slot.proposal.is_none())
                && !(slot.accepts.len() >= quorum && slot.proposal.is_some())
            {
                return;
            }
            slot.learned = true;
        }
        self.execute_ready(out);
    }

    fn execute_ready(&mut self, out: &mut Out<A>) {
        loop {
            let n = self.exec_upto + 1;
            let ready = self
                .slots
                .get(&n)
                .map(|s| s.learned && !s.executed && s.proposal.is_some())
                .unwrap_or(false);
            if !ready {
                break;
            }
            let (client, ts, cmd) = {
                let slot = self.slots.get(&n).expect("checked");
                let p = slot.proposal.as_ref().expect("checked");
                (p.req.client, p.req.ts, p.req.cmd.clone())
            };
            let rec = self.clients.entry(client).or_default();
            let response = if ts <= rec.last_executed_ts {
                rec.cached.as_ref().map(|c| c.response.clone())
            } else {
                Some(self.app.apply(&cmd))
            };
            self.exec_upto = n;
            if let Some(slot) = self.slots.get_mut(&n) {
                slot.executed = true;
            }
            self.stats.executed += 1;
            if let Some(response) = response {
                let payload = Reply::<A::Response>::signed_payload(client, ts, &response);
                let sig = self
                    .keys
                    .sign(&payload, &Audience::nodes([NodeId::Client(client)]));
                let reply = Reply {
                    view: self.view,
                    client,
                    ts,
                    response,
                    sender: self.id,
                    sig,
                };
                let rec = self.clients.entry(client).or_default();
                rec.last_executed_ts = rec.last_executed_ts.max(ts);
                rec.cached = Some(reply.clone());
                out.send(NodeId::Client(client), Msg::Reply(reply));
            }
        }
    }

    // ------------------------------------------------------------------
    // Leader election (simplified recovery)
    // ------------------------------------------------------------------

    fn accuse(&mut self, out: &mut Out<A>) {
        let view = self.view;
        let votes = self.accuse_votes.entry(view).or_default();
        if votes.has_voted(self.id) {
            return;
        }
        votes.vote(self.id);
        let payload = Accuse::signed_payload(view);
        let sig = self.keys.sign(&payload, &self.audience());
        let msg = Msg::Accuse(Accuse {
            view,
            sender: self.id,
            sig,
        });
        let peers: Vec<ReplicaId> = self.cfg.cluster.peers(self.id).collect();
        out.broadcast(peers, msg);
        self.check_accusations(view, out);
    }

    fn on_accuse(&mut self, a: Accuse, from: NodeId, out: &mut Out<A>) {
        if from != NodeId::Replica(a.sender) || a.view != self.view {
            return;
        }
        let payload = Accuse::signed_payload(a.view);
        if self
            .keys
            .verify(NodeId::Replica(a.sender), &payload, &a.sig)
            .is_err()
        {
            self.stats.rejected += 1;
            return;
        }
        self.accuse_votes.entry(a.view).or_default().vote(a.sender);
        self.check_accusations(a.view, out);
    }

    fn check_accusations(&mut self, view: u64, out: &mut Out<A>) {
        let reached = self
            .accuse_votes
            .get(&view)
            .map(|v| v.reached(self.cfg.cluster.weak_quorum()))
            .unwrap_or(false);
        if reached && view == self.view {
            self.accuse(out); // amplify
            self.start_election(out);
        }
    }

    fn start_election(&mut self, out: &mut Out<A>) {
        if self.electing {
            return;
        }
        self.electing = true;
        let new_view = self.view + 1;
        let accepted: Vec<AcceptedEntry<A::Command>> = self
            .slots
            .values()
            .filter_map(|s| s.proposal.as_ref())
            .map(|p| AcceptedEntry {
                body: p.body.clone(),
                sig: p.sig.clone(),
                req: p.req.clone(),
            })
            .collect();
        let payload = ElectMe::signed_payload(new_view, &accepted);
        let sig = self.keys.sign(&payload, &self.audience());
        let em = ElectMe {
            new_view,
            accepted,
            sender: self.id,
            sig,
        };
        let new_leader = self.cfg.leader(new_view);
        if new_leader == self.id {
            self.on_elect_me(em, NodeId::Replica(self.id), out);
        } else {
            out.send(NodeId::Replica(new_leader), Msg::ElectMe(em));
        }
    }

    fn verify_elect_me(&mut self, em: &ElectMe<A::Command>) -> bool {
        let payload = ElectMe::signed_payload(em.new_view, &em.accepted);
        self.keys
            .verify(NodeId::Replica(em.sender), &payload, &em.sig)
            .is_ok()
    }

    fn on_elect_me(&mut self, em: ElectMe<A::Command>, from: NodeId, out: &mut Out<A>) {
        if from != NodeId::Replica(em.sender)
            || self.cfg.leader(em.new_view) != self.id
            || em.new_view <= self.view
        {
            return;
        }
        if !self.verify_elect_me(&em) {
            self.stats.rejected += 1;
            return;
        }
        let reports = self.elect_reports.entry(em.new_view).or_default();
        if reports.iter().any(|r| r.sender == em.sender) {
            return;
        }
        reports.push(em);
        if reports.len() < self.cfg.cluster.slow_quorum() {
            return;
        }
        let new_view = reports[0].new_view;
        let proof = reports.clone();
        let adopted = Self::adopt_accepted(&mut self.keys, &self.cfg, &proof);
        let mut proposals = Vec::with_capacity(adopted.len());
        for (i, ae) in adopted.into_iter().enumerate() {
            let body = ProposeBody {
                view: new_view,
                n: i as u64 + 1,
                req_digest: ae.req.digest(),
            };
            let sig = self.keys.sign(&body.signed_payload(), &self.audience());
            proposals.push(Propose {
                body,
                sig,
                req: ae.req,
            });
        }
        let payload = NewLeader::signed_payload(new_view, &proposals);
        let sig = self.keys.sign(&payload, &self.audience());
        let nl = NewLeader {
            new_view,
            proof,
            proposals,
            sender: self.id,
            sig,
        };
        let peers: Vec<ReplicaId> = self.cfg.cluster.peers(self.id).collect();
        out.broadcast(peers, Msg::NewLeader(nl.clone()));
        self.install_new_leader(nl, out);
    }

    fn adopt_accepted(
        keys: &mut KeyStore,
        cfg: &FabConfig,
        proof: &[ElectMe<A::Command>],
    ) -> Vec<AcceptedEntry<A::Command>> {
        let mut by_n: BTreeMap<u64, AcceptedEntry<A::Command>> = BTreeMap::new();
        let mut sorted: Vec<&ElectMe<A::Command>> = proof.iter().collect();
        sorted.sort_by_key(|em| em.sender);
        for em in sorted {
            for ae in &em.accepted {
                let old_leader = cfg.leader(ae.body.view);
                if keys
                    .verify(
                        NodeId::Replica(old_leader),
                        &ae.body.signed_payload(),
                        &ae.sig,
                    )
                    .is_err()
                {
                    continue;
                }
                by_n.entry(ae.body.n).or_insert_with(|| ae.clone());
            }
        }
        let mut adopted = Vec::new();
        let mut n = 1u64;
        while let Some(ae) = by_n.remove(&n) {
            adopted.push(ae);
            n += 1;
        }
        adopted
    }

    fn on_new_leader(&mut self, nl: NewLeader<A::Command>, from: NodeId, out: &mut Out<A>) {
        if from != NodeId::Replica(nl.sender)
            || self.cfg.leader(nl.new_view) != nl.sender
            || nl.new_view <= self.view
        {
            return;
        }
        let payload = NewLeader::signed_payload(nl.new_view, &nl.proposals);
        if self
            .keys
            .verify(NodeId::Replica(nl.sender), &payload, &nl.sig)
            .is_err()
            || nl.proof.len() < self.cfg.cluster.slow_quorum()
        {
            self.stats.rejected += 1;
            return;
        }
        let mut senders = BTreeSet::new();
        for em in &nl.proof {
            if em.new_view != nl.new_view || !senders.insert(em.sender) || !self.verify_elect_me(em)
            {
                self.stats.rejected += 1;
                return;
            }
        }
        let adopted = Self::adopt_accepted(&mut self.keys, &self.cfg, &nl.proof);
        let consistent = adopted.len() == nl.proposals.len()
            && adopted
                .iter()
                .zip(&nl.proposals)
                .all(|(a, b)| a.req.digest() == b.body.req_digest);
        if !consistent {
            self.stats.rejected += 1;
            return;
        }
        self.install_new_leader(nl, out);
    }

    fn install_new_leader(&mut self, nl: NewLeader<A::Command>, out: &mut Out<A>) {
        self.view = nl.new_view;
        self.electing = false;
        self.slots.clear();
        self.clients.clear();
        self.app = self.initial.clone();
        self.exec_upto = 0;
        self.next_n = nl.proposals.len() as u64 + 1;
        self.stats.elections += 1;
        for (_, id) in self.accuse_waits.drain() {
            self.timers.remove(&id);
            out.cancel_timer(TimerId(id));
        }
        let leader = nl.sender;
        let is_leader = self.is_leader();
        for p in nl.proposals {
            if is_leader {
                self.accept_proposal(p, out);
            } else {
                self.on_propose(p, NodeId::Replica(leader), out);
            }
        }
    }
}

impl<A: Application> ProtocolNode for FabReplica<A> {
    type Message = Msg<A::Command, A::Response>;
    type Response = A::Response;

    fn id(&self) -> NodeId {
        NodeId::Replica(self.id)
    }

    fn on_message(&mut self, from: NodeId, msg: Self::Message, out: &mut Out<A>) {
        match msg {
            Msg::Request(req) => self.on_request(req, out),
            Msg::RequestBroadcast(req) => self.on_request_broadcast(req, out),
            Msg::Propose(p) => self.on_propose(p, from, out),
            Msg::Accept(a) => self.on_accept(a, from, out),
            Msg::Accuse(a) => self.on_accuse(a, from, out),
            Msg::ElectMe(em) => self.on_elect_me(em, from, out),
            Msg::NewLeader(nl) => self.on_new_leader(nl, from, out),
            Msg::Reply(_) => {
                self.stats.rejected += 1;
            }
        }
    }

    fn on_timer(&mut self, id: TimerId, out: &mut Out<A>) {
        let Some(timer) = self.timers.remove(&id.0) else {
            return;
        };
        match timer {
            Timer::Accuse { client, ts } => {
                self.accuse_waits.remove(&(client, ts));
                self.accuse(out);
            }
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}
