//! End-to-end FaB over the WAN simulator.

use std::collections::VecDeque;

use ezbft_crypto::{CryptoKind, KeyStore};
use ezbft_fab::{FabClient, FabConfig, FabReplica, Msg};
use ezbft_kv::{Key, KvOp, KvResponse, KvStore};
use ezbft_simnet::{Region, SimConfig, SimNet, Topology};
use ezbft_smr::{
    Actions, ClientId, ClientNode, ClusterConfig, Micros, NodeId, ProtocolNode, ReplicaId, TimerId,
};

type KvMsg = Msg<KvOp, KvResponse>;

struct ScriptedClient {
    inner: FabClient<KvOp, KvResponse>,
    script: VecDeque<KvOp>,
}

impl ScriptedClient {
    fn pump(&mut self, out: &mut Actions<KvMsg, KvResponse>) {
        if !self.inner.in_flight() {
            if let Some(op) = self.script.pop_front() {
                self.inner.submit(op, out);
            }
        }
    }
}

impl ProtocolNode for ScriptedClient {
    type Message = KvMsg;
    type Response = KvResponse;

    fn id(&self) -> NodeId {
        ProtocolNode::id(&self.inner)
    }
    fn on_start(&mut self, out: &mut Actions<KvMsg, KvResponse>) {
        self.pump(out);
    }
    fn on_message(&mut self, from: NodeId, msg: KvMsg, out: &mut Actions<KvMsg, KvResponse>) {
        self.inner.on_message(from, msg, out);
        self.pump(out);
    }
    fn on_timer(&mut self, id: TimerId, out: &mut Actions<KvMsg, KvResponse>) {
        self.inner.on_timer(id, out);
        self.pump(out);
    }
}

fn build(
    leader: u8,
    clients: Vec<(u64, usize, Vec<KvOp>)>,
    seed: u64,
) -> (SimNet<KvMsg, KvResponse>, usize) {
    let cluster = ClusterConfig::for_faults(1);
    let cfg = FabConfig::new(cluster, ReplicaId::new(leader));
    let mut nodes: Vec<NodeId> = cluster.replicas().map(NodeId::Replica).collect();
    for (id, ..) in &clients {
        nodes.push(NodeId::Client(ClientId::new(*id)));
    }
    let mut stores = KeyStore::cluster(CryptoKind::Mac, b"fab-sim", &nodes);
    let client_stores = stores.split_off(cluster.n());
    let mut sim: SimNet<KvMsg, KvResponse> = SimNet::new(
        Topology::exp1(),
        SimConfig {
            seed,
            ..Default::default()
        },
    );
    for (i, rid) in cluster.replicas().enumerate() {
        let replica = FabReplica::new(rid, cfg, stores.remove(0), KvStore::new());
        sim.add_node(Region(i % 4), Box::new(replica));
    }
    let mut total = 0;
    for ((id, region, script), keys) in clients.into_iter().zip(client_stores) {
        total += script.len();
        let client = FabClient::new(ClientId::new(id), cfg, keys);
        sim.add_node(
            Region(region),
            Box::new(ScriptedClient {
                inner: client,
                script: script.into(),
            }),
        );
    }
    (sim, total)
}

fn put(c: u64, i: u64) -> KvOp {
    KvOp::Put {
        key: Key(c * 100 + i),
        value: vec![i as u8; 16],
    }
}

fn replica(sim: &SimNet<KvMsg, KvResponse>, r: u8) -> &FabReplica<KvStore> {
    sim.inspect(NodeId::Replica(ReplicaId::new(r)))
        .unwrap()
        .downcast_ref::<FabReplica<KvStore>>()
        .unwrap()
}

#[test]
fn learn_quorum_is_ceil() {
    let cfg = FabConfig::new(ClusterConfig::for_faults(1), ReplicaId::new(0));
    assert_eq!(cfg.learn_quorum(), 3);
    let cfg2 = FabConfig::new(ClusterConfig::for_faults(2), ReplicaId::new(0));
    assert_eq!(cfg2.learn_quorum(), 5);
}

#[test]
fn fault_free_multi_client() {
    let clients = (0..4u64)
        .map(|c| (c, c as usize, (0..4).map(|i| put(c, i)).collect()))
        .collect();
    let (mut sim, total) = build(0, clients, 1);
    sim.run_until_deliveries(total);
    assert_eq!(sim.deliveries().len(), total);
    let deadline = sim.now() + Micros::from_secs(2);
    sim.run_until_time(deadline);
    let fp0 = replica(&sim, 0).app().fingerprint();
    for r in 1..4u8 {
        assert_eq!(replica(&sim, r).app().fingerprint(), fp0);
        assert_eq!(replica(&sim, r).executed_upto(), total as u64);
    }
}

#[test]
fn four_step_latency_between_pbft_and_zyzzyva() {
    // Client co-located with the Virginia leader: FaB takes 4 steps —
    // request (local), propose, accept, reply. The accept round means a
    // learner needs ⌈(N+f+1)/2⌉ = 3 accepts, so latency sits above the
    // one-round 200ms but below PBFT's two inter-replica rounds.
    let (mut sim, _) = build(0, vec![(0, 0, vec![put(0, 0)])], 2);
    sim.run_until_deliveries(1);
    let at = sim.deliveries()[0].at;
    assert!(
        at > Micros::from_millis(200) && at < Micros::from_millis(330),
        "FaB Virginia latency {at:?}"
    );
}

#[test]
fn leader_crash_election_liveness() {
    let (mut sim, total) = build(0, vec![(0, 1, (0..2).map(|i| put(0, i)).collect())], 3);
    sim.faults_mut().crash(ReplicaId::new(0));
    sim.run_until_deliveries(total);
    assert_eq!(
        sim.deliveries().len(),
        total,
        "liveness across leader election"
    );
    for r in [1u8, 2, 3] {
        assert!(replica(&sim, r).view() >= 1);
        assert!(replica(&sim, r).stats().elections >= 1);
    }
    let fp1 = replica(&sim, 1).app().fingerprint();
    assert_eq!(replica(&sim, 2).app().fingerprint(), fp1);
    assert_eq!(replica(&sim, 3).app().fingerprint(), fp1);
}

#[test]
fn mid_run_leader_crash_preserves_state() {
    let script: Vec<KvOp> = (0..6).map(|i| put(0, i)).collect();
    let (mut sim, total) = build(0, vec![(0, 0, script)], 4);
    sim.schedule_crash(ReplicaId::new(0), Micros::from_millis(800));
    sim.run_until_deliveries(total);
    assert_eq!(sim.deliveries().len(), total);
    for i in 0..6u64 {
        assert!(
            replica(&sim, 1).app().get(Key(i)).is_some(),
            "write {i} lost"
        );
    }
}

#[test]
fn deterministic_runs() {
    let run = |seed| {
        let clients = (0..2u64)
            .map(|c| (c, c as usize, (0..3).map(|i| put(c, i)).collect()))
            .collect();
        let (mut sim, total) = build(0, clients, seed);
        sim.run_until_deliveries(total);
        sim.deliveries()
            .iter()
            .map(|d| d.at.as_micros())
            .collect::<Vec<_>>()
    };
    assert_eq!(run(8), run(8));
}
