//! Owner-change recovery logic (paper §IV-E).
//!
//! When a command-leader is suspected, every committed replica sends the
//! prospective new owner its view of the suspected instance space
//! (OWNERCHANGE). From a weak quorum (`f + 1`) of such reports, the new
//! owner computes the *safe instance set* `G`:
//!
//! - **Condition 1**: an entry proven by a commit certificate (a
//!   client-signed COMMIT or a 3f+1 fast certificate) with the highest
//!   owner number is adopted with its committed dependencies;
//! - **Condition 2**: an entry whose identical leader-signed SPECORDER is
//!   reported by at least `f + 1` replicas (with the highest owner number)
//!   is adopted with the leader's proposed dependencies. (On the fast path
//!   all `3f + 1` replies match the leader's proposal exactly — the leader
//!   itself replies with `D' = D` — so a fast-committed command always
//!   re-commits with the same dependencies.)
//!
//! `G` is the longest prefix of slots recoverable this way; the extension
//! rules of the paper are realised by the slot-by-slot scan (a later slot
//! may be proven by either condition as long as every earlier slot was).
//!
//! The computation is deterministic in the report set, so every replica
//! can re-derive `G` from the proof `P` carried by NEWOWNER and reject a
//! byzantine new owner that lies about it.
//!
//! **Known caveat** (documented in DESIGN.md §5/§5a): with only `f + 1`
//! reports, a slow-path commit certificate held by `2f + 1` replicas is
//! guaranteed to intersect the report set in at least one replica, but that
//! replica may be byzantine and withhold the evidence; later literature
//! ("Revisiting EZBFT") identified this as a safety weakness of the
//! published protocol, and the adversarial campaign reproduces the break
//! (`Behaviour::WithholdEvidence`). By default `EzConfig::oc_strong_quorum`
//! therefore raises the report quorum to `2f + 1`, which intersects every
//! slow-commit certificate in at least one *correct* replica — fix (a),
//! DESIGN.md §5a. `EzConfig::as_published()` restores the paper's `f + 1`
//! for reproduction runs.

use std::collections::BTreeSet;

use ezbft_crypto::{Digest, KeyStore, SignerBitmap};
use ezbft_smr::{NodeId, ReplicaId};

use crate::config::EzConfig;
use crate::instance::InstanceId;
use crate::msg::{
    batch_digests, AckCert, BarrierAck, BarrierCert, CommitBody, EntrySnapshot, Evidence,
    OwnerChange, ReplyCert, SpecAck, SpecReply, WirePayload,
};

/// Expands a compact certificate's signer bitmap into replica node ids,
/// rejecting indices outside the cluster. `None` invalidates the
/// certificate (a bitmap claiming non-members proves nothing).
pub(crate) fn bitmap_signers(cfg: &EzConfig, signers: &SignerBitmap) -> Option<Vec<NodeId>> {
    let n = cfg.cluster.n();
    let mut out = Vec::with_capacity(signers.count());
    for i in signers.iter() {
        if i >= n {
            return None;
        }
        out.push(NodeId::Replica(ReplicaId::new(i as u8)));
    }
    Some(out)
}

/// Verifies an OWNERCHANGE message: sender signature and entry shape.
pub(crate) fn verify_owner_change<C: WirePayload, R: WirePayload>(
    keys: &mut KeyStore,
    cfg: &EzConfig,
    oc: &OwnerChange<C, R>,
) -> bool {
    if !cfg.cluster.contains(oc.sender) || !cfg.cluster.contains(oc.space) {
        return false;
    }
    let payload = OwnerChange::signed_payload(oc.space, oc.new_owner, oc.floor, &oc.entries);
    if keys
        .verify(NodeId::Replica(oc.sender), &payload, &oc.sig)
        .is_err()
    {
        return false;
    }
    oc.entries
        .iter()
        .all(|e| e.inst.space == oc.space && e.inst.slot >= oc.floor)
}

/// Validates a slow-commit evidence body against its snapshot.
pub(crate) fn slow_commit_valid<C: WirePayload, R: WirePayload>(
    keys: &mut KeyStore,
    snap: &EntrySnapshot<C, R>,
    body: &CommitBody,
    sig: &ezbft_crypto::Signature,
) -> bool {
    body.inst == snap.inst
        && snap.reqs.iter().any(|r| r.digest() == body.req_digest)
        && keys
            .verify(NodeId::Client(body.client), &body.signed_payload(), sig)
            .is_ok()
}

/// Validates a fast-commit certificate against its snapshot (either the
/// explicit `3f + 1` matching-reply vector or its compact aggregate
/// form, DESIGN.md §10).
pub(crate) fn fast_commit_valid<C: WirePayload, R: WirePayload>(
    keys: &mut KeyStore,
    cfg: &EzConfig,
    snap: &EntrySnapshot<C, R>,
    cert: &ReplyCert<C, R>,
) -> bool {
    match cert {
        ReplyCert::Votes(replies) => {
            if replies.len() < cfg.cluster.fast_quorum() {
                return false;
            }
            let mut key = None;
            let mut senders = BTreeSet::new();
            for reply in replies {
                let digest_in_batch = snap
                    .reqs
                    .get(reply.body.offset as usize)
                    .map(|r| r.digest() == reply.body.req_digest)
                    .unwrap_or(false);
                // Encode the certificate body once per reply: the same bytes are
                // the matching key (digested) and the signature payload.
                let payload = SpecReply::<C, R>::signed_payload(&reply.body, &reply.response);
                let reply_key = Digest::of(&payload);
                if reply.body.inst != snap.inst
                    || !digest_in_batch
                    || *key.get_or_insert(reply_key) != reply_key
                    || !senders.insert(reply.sender)
                {
                    return false;
                }
                if keys
                    .verify(NodeId::Replica(reply.sender), &payload, &reply.sig)
                    .is_err()
                {
                    return false;
                }
            }
            senders.len() >= cfg.cluster.fast_quorum()
        }
        ReplyCert::Compact(c) => {
            if c.signers.count() < cfg.cluster.fast_quorum() {
                return false;
            }
            let Some(signers) = bitmap_signers(cfg, &c.signers) else {
                return false;
            };
            let digest_in_batch = snap
                .reqs
                .get(c.body.offset as usize)
                .map(|r| r.digest() == c.body.req_digest)
                .unwrap_or(false);
            if c.body.inst != snap.inst || !digest_in_batch {
                return false;
            }
            let payload = SpecReply::<C, R>::signed_payload(&c.body, &c.response);
            keys.verify_agg(&signers, &payload, &c.agg).is_ok()
        }
    }
}

/// Validates an instance-level aggregated commit certificate (DESIGN.md
/// §7/§10). Two acceptance rungs for the explicit vote form:
///
/// - **fast**: `3f + 1` pairwise *matching* [`SpecAck`]s agreeing with
///   the stated decision (the fast-path rule of §IV-A step 4.1 with the
///   command-leader in the certificate-collecting role);
/// - **slow**: `2f + 1` acks for the same batch whose dependency union
///   and sequence max equal the decision (the slow-path combination rule
///   of §IV-C with the leader standing in for the client — the commit
///   aggregation slow rung).
///
/// The compact aggregate form encodes only the fast rung (non-matching
/// acks sign different payloads and cannot share one aggregate).
///
/// `batch_digest`, when given, pins the certificate to a concrete
/// batch content (suffix/owner-change verification); `None` accepts the
/// acks' own digest (live path, where the local entry is checked by the
/// caller or does not exist yet).
pub(crate) fn verify_agg_certificate(
    keys: &mut KeyStore,
    cfg: &EzConfig,
    inst: InstanceId,
    deps: &BTreeSet<InstanceId>,
    seq: u64,
    batch_digest: Option<Digest>,
    cc: &AckCert,
) -> bool {
    match cc {
        AckCert::Votes(cc) => {
            if cc.len() < cfg.cluster.slow_quorum() {
                return false;
            }
            let Some(first) = cc.first() else {
                return false;
            };
            if let Some(expect) = batch_digest {
                if first.batch_digest != expect {
                    return false;
                }
            }
            let mut senders = BTreeSet::new();
            let mut union: BTreeSet<InstanceId> = BTreeSet::new();
            let mut max_seq = 0u64;
            let mut matching = true;
            for ack in cc {
                if ack.inst != inst
                    || ack.owner != first.owner
                    || ack.batch_digest != first.batch_digest
                {
                    return false;
                }
                if !cfg.cluster.contains(ack.sender) || !senders.insert(ack.sender) {
                    return false;
                }
                let payload = SpecAck::signed_payload(
                    ack.owner,
                    ack.inst,
                    &ack.deps,
                    ack.seq,
                    ack.batch_digest,
                );
                if keys
                    .verify(NodeId::Replica(ack.sender), &payload, &ack.sig)
                    .is_err()
                {
                    return false;
                }
                union.extend(ack.deps.iter().copied());
                max_seq = max_seq.max(ack.seq);
                matching &= ack.deps == *deps && ack.seq == seq;
            }
            (matching && cc.len() >= cfg.cluster.fast_quorum())
                || (union == *deps && max_seq == seq)
        }
        AckCert::Compact(c) => {
            if c.signers.count() < cfg.cluster.fast_quorum() {
                return false;
            }
            if let Some(expect) = batch_digest {
                if c.batch_digest != expect {
                    return false;
                }
            }
            let Some(signers) = bitmap_signers(cfg, &c.signers) else {
                return false;
            };
            let payload = SpecAck::signed_payload(c.owner, inst, deps, seq, c.batch_digest);
            keys.verify_agg(&signers, &payload, &c.agg).is_ok()
        }
    }
}

/// Validates a barrier commit certificate: `2f + 1` validly signed
/// BARRIERACKs from distinct replicas whose union/max equals the decision
/// (the slow-path rule with the barrier leader in the client's role;
/// DESIGN.md §6). The compact form carries one aggregate per distinct
/// `(deps, seq)` view; the groups' signer bitmaps must be pairwise
/// disjoint and their union/max must equal the decision (DESIGN.md §10).
pub(crate) fn verify_barrier_certificate(
    keys: &mut KeyStore,
    cfg: &EzConfig,
    inst: InstanceId,
    deps: &BTreeSet<InstanceId>,
    seq: u64,
    cc: &BarrierCert,
) -> bool {
    match cc {
        BarrierCert::Votes(cc) => {
            if cc.len() < cfg.cluster.slow_quorum() {
                return false;
            }
            let Some(first) = cc.first() else {
                return false;
            };
            let mut senders = BTreeSet::new();
            let mut union: BTreeSet<InstanceId> = BTreeSet::new();
            let mut max_seq = 0u64;
            for ack in cc {
                if ack.inst != inst || ack.owner != first.owner {
                    return false;
                }
                if !cfg.cluster.contains(ack.sender) || !senders.insert(ack.sender) {
                    return false;
                }
                let payload = BarrierAck::signed_payload(ack.owner, ack.inst, &ack.deps, ack.seq);
                if keys
                    .verify(NodeId::Replica(ack.sender), &payload, &ack.sig)
                    .is_err()
                {
                    return false;
                }
                union.extend(ack.deps.iter().copied());
                max_seq = max_seq.max(ack.seq);
            }
            union == *deps && max_seq == seq
        }
        BarrierCert::Compact(groups) => {
            let Some(first) = groups.first() else {
                return false;
            };
            let mut seen = SignerBitmap::EMPTY;
            let mut total = 0usize;
            let mut union: BTreeSet<InstanceId> = BTreeSet::new();
            let mut max_seq = 0u64;
            for group in groups {
                if group.owner != first.owner
                    || group.signers.count() == 0
                    || !seen.is_disjoint(&group.signers)
                {
                    return false;
                }
                let Some(signers) = bitmap_signers(cfg, &group.signers) else {
                    return false;
                };
                let payload = BarrierAck::signed_payload(group.owner, inst, &group.deps, group.seq);
                if keys.verify_agg(&signers, &payload, &group.agg).is_err() {
                    return false;
                }
                for i in group.signers.iter() {
                    seen.insert(i);
                }
                total += group.signers.count();
                union.extend(group.deps.iter().copied());
                max_seq = max_seq.max(group.seq);
            }
            total >= cfg.cluster.slow_quorum() && union == *deps && max_seq == seq
        }
    }
}

/// Computes the safe instance set `G` from a proof set of OWNERCHANGE
/// reports. Deterministic in the report set (reports are scanned in sender
/// order).
pub(crate) fn compute_safe_set<C: WirePayload, R: WirePayload>(
    keys: &mut KeyStore,
    cfg: &EzConfig,
    space: ReplicaId,
    proof: &[OwnerChange<C, R>],
) -> Vec<EntrySnapshot<C, R>> {
    let mut reports: Vec<&OwnerChange<C, R>> = proof.iter().collect();
    reports.sort_by_key(|r| r.sender);

    let mut safe = Vec::new();
    // Start at the lowest floor among the reports: a slot below every
    // reporting replica's floor was executed (hence committed) at each of
    // them, so it is final and needs no recovery; a slot below only *some*
    // floors is still recoverable from the replicas that kept it.
    let mut slot = reports.iter().map(|r| r.floor).min().unwrap_or(0);
    loop {
        let inst = InstanceId::new(space, slot);
        #[allow(clippy::type_complexity)]
        let candidates: Vec<(&OwnerChange<C, R>, &EntrySnapshot<C, R>)> = reports
            .iter()
            .flat_map(|r| {
                r.entries
                    .iter()
                    .filter(|e| e.inst == inst)
                    .map(move |e| (*r, e))
            })
            .collect();
        if candidates.is_empty() {
            break;
        }

        // Condition 1: a valid commit certificate, preferring the highest
        // owner number.
        let mut committed: Vec<&EntrySnapshot<C, R>> = Vec::new();
        for (_, snap) in &candidates {
            match &snap.evidence {
                Evidence::SlowCommit { body, sig } => {
                    if slow_commit_valid(keys, snap, body, sig) {
                        committed.push(snap);
                    }
                }
                Evidence::FastCommit { replies } => {
                    if fast_commit_valid(keys, cfg, snap, replies) {
                        committed.push(snap);
                    }
                }
                Evidence::AggCommit { acks } => {
                    let batch = crate::msg::batch_digest_of(&batch_digests(&snap.reqs));
                    if !snap.reqs.is_empty()
                        && verify_agg_certificate(
                            keys,
                            cfg,
                            snap.inst,
                            &snap.deps,
                            snap.seq,
                            Some(batch),
                            acks,
                        )
                    {
                        committed.push(snap);
                    }
                }
                Evidence::BarrierCommit { acks } => {
                    if snap.reqs.is_empty()
                        && verify_barrier_certificate(
                            keys, cfg, snap.inst, &snap.deps, snap.seq, acks,
                        )
                    {
                        committed.push(snap);
                    }
                }
                Evidence::SpecOrdered(_) => {}
            }
        }
        if let Some(best) = committed.iter().max_by_key(|s| (s.owner, s.inst.slot)) {
            let mut adopted = (*best).clone();
            if let Evidence::SlowCommit { body, .. } = &adopted.evidence {
                adopted.deps = body.deps.clone();
                adopted.seq = body.seq;
            }
            safe.push(adopted);
            slot += 1;
            continue;
        }

        // Condition 2: f+1 identical, validly-signed SPECORDER headers.
        use std::collections::HashMap;
        let mut groups: HashMap<Digest, (BTreeSet<ReplicaId>, &EntrySnapshot<C, R>)> =
            HashMap::new();
        for (report, snap) in &candidates {
            let Evidence::SpecOrdered(header) = &snap.evidence else {
                continue;
            };
            let leader = header.body.owner.owner(&cfg.cluster);
            let snap_digests: Vec<_> = snap.reqs.iter().map(|r| r.digest()).collect();
            if header.body.req_digests != snap_digests {
                continue;
            }
            if keys
                .verify(
                    NodeId::Replica(leader),
                    &header.body.signed_payload(),
                    &header.sig,
                )
                .is_err()
            {
                continue;
            }
            let key = Digest::of(&header.body.signed_payload());
            let slot_entry = groups.entry(key).or_insert_with(|| (BTreeSet::new(), snap));
            slot_entry.0.insert(report.sender);
        }
        let winner = groups
            .values()
            .filter(|(senders, _)| senders.len() >= cfg.cluster.weak_quorum())
            .max_by_key(|(senders, snap)| (snap.owner, senders.len()));
        if let Some((_, snap)) = winner {
            let mut adopted = (*snap).clone();
            // Adopt the leader's proposed order exactly (see module docs).
            if let Evidence::SpecOrdered(header) = &adopted.evidence {
                adopted.deps = header.body.deps.clone();
                adopted.seq = header.body.seq;
            }
            safe.push(adopted);
            slot += 1;
            continue;
        }

        break;
    }
    safe
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{EntryStatus, OwnerNum};
    use crate::msg::{Request, SpecOrderBody, SpecOrderHeader};
    use ezbft_crypto::{Audience, CryptoKind, Signature};
    use ezbft_smr::{ClientId, ClusterConfig, Timestamp};
    use std::sync::Arc;

    type Snap = EntrySnapshot<u32, u32>;
    type Oc = OwnerChange<u32, u32>;

    struct Setup {
        cfg: EzConfig,
        stores: Vec<KeyStore>,
        client_store: KeyStore,
    }

    fn setup() -> Setup {
        let cluster = ClusterConfig::for_faults(1);
        let mut nodes: Vec<NodeId> = cluster.replicas().map(NodeId::Replica).collect();
        nodes.push(NodeId::Client(ClientId::new(0)));
        let mut stores = KeyStore::cluster(CryptoKind::Mac, b"test", &nodes);
        let client_store = stores.pop().unwrap();
        Setup {
            cfg: EzConfig::new(cluster),
            stores,
            client_store,
        }
    }

    fn request(setup: &mut Setup, cmd: u32) -> Request<u32> {
        let client = ClientId::new(0);
        let ts = Timestamp(1);
        let payload = Request::signed_payload(client, ts, &cmd);
        let sig = setup
            .client_store
            .sign(&payload, &Audience::replicas(setup.cfg.cluster.n()));
        Request {
            client,
            ts,
            cmd,
            original: None,
            sig,
        }
    }

    fn signed_header(
        setup: &mut Setup,
        leader: usize,
        inst: InstanceId,
        req: &Request<u32>,
    ) -> SpecOrderHeader {
        let body = SpecOrderBody {
            owner: OwnerNum(leader as u64),
            inst,
            deps: BTreeSet::new(),
            seq: 1,
            log_digest: Digest::ZERO,
            req_digests: vec![req.digest()],
        };
        let audience = Audience::replicas(setup.cfg.cluster.n()).and(ClientId::new(0));
        let sig = setup.stores[leader].sign(&body.signed_payload(), &audience);
        SpecOrderHeader { body, sig }
    }

    fn spec_snapshot(header: SpecOrderHeader, req: Request<u32>) -> Snap {
        EntrySnapshot {
            inst: header.body.inst,
            owner: header.body.owner,
            reqs: Arc::new(vec![req]),
            deps: header.body.deps.clone(),
            seq: header.body.seq,
            status: EntryStatus::SpecOrdered,
            evidence: Evidence::SpecOrdered(header),
        }
    }

    fn signed_report(setup: &mut Setup, sender: usize, entries: Vec<Snap>) -> Oc {
        let space = ReplicaId::new(0);
        let new_owner = OwnerNum(1);
        let payload = OwnerChange::signed_payload(space, new_owner, 0, &entries);
        let sig = setup.stores[sender].sign(&payload, &Audience::replicas(setup.cfg.cluster.n()));
        OwnerChange {
            space,
            new_owner,
            sender: ReplicaId::new(sender as u8),
            floor: 0,
            entries,
            sig,
        }
    }

    #[test]
    fn condition2_recovers_with_f_plus_1_matching_headers() {
        let mut s = setup();
        let req = request(&mut s, 42);
        let inst = InstanceId::new(ReplicaId::new(0), 0);
        let header = signed_header(&mut s, 0, inst, &req);
        let snap = spec_snapshot(header, req);
        let r1 = signed_report(&mut s, 1, vec![snap.clone()]);
        let r2 = signed_report(&mut s, 2, vec![snap.clone()]);
        let cfg = s.cfg;
        let safe = compute_safe_set(&mut s.stores[1], &cfg, ReplicaId::new(0), &[r1, r2]);
        assert_eq!(safe.len(), 1);
        assert_eq!(safe[0].inst, inst);
    }

    #[test]
    fn single_report_is_not_enough_for_condition2() {
        let mut s = setup();
        let req = request(&mut s, 42);
        let inst = InstanceId::new(ReplicaId::new(0), 0);
        let header = signed_header(&mut s, 0, inst, &req);
        let snap = spec_snapshot(header, req);
        let r1 = signed_report(&mut s, 1, vec![snap.clone()]);
        let r2 = signed_report(&mut s, 2, vec![]); // second report is empty
        let cfg = s.cfg;
        let safe = compute_safe_set(&mut s.stores[1], &cfg, ReplicaId::new(0), &[r1, r2]);
        assert!(safe.is_empty());
    }

    #[test]
    fn condition1_slow_commit_overrides_headers() {
        let mut s = setup();
        let req = request(&mut s, 42);
        let inst = InstanceId::new(ReplicaId::new(0), 0);
        let header = signed_header(&mut s, 0, inst, &req);
        // A committed snapshot with different (final) deps.
        let mut deps = BTreeSet::new();
        deps.insert(InstanceId::new(ReplicaId::new(2), 0));
        let body = CommitBody {
            client: ClientId::new(0),
            inst,
            deps: deps.clone(),
            seq: 9,
            req_digest: req.digest(),
        };
        let sig = s.client_store.sign(
            &body.signed_payload(),
            &Audience::replicas(s.cfg.cluster.n()),
        );
        let committed_snap = EntrySnapshot {
            inst,
            owner: OwnerNum(0),
            reqs: Arc::new(vec![req.clone()]),
            deps: deps.clone(),
            seq: 9,
            status: EntryStatus::Committed,
            evidence: Evidence::SlowCommit { body, sig },
        };
        let spec_snap = spec_snapshot(header, req);
        let r1 = signed_report(&mut s, 1, vec![committed_snap]);
        let r2 = signed_report(&mut s, 2, vec![spec_snap.clone()]);
        let r3 = signed_report(&mut s, 3, vec![spec_snap]);
        let cfg = s.cfg;
        let safe = compute_safe_set(&mut s.stores[1], &cfg, ReplicaId::new(0), &[r1, r2, r3]);
        assert_eq!(safe.len(), 1);
        // The committed deps (not the leader's empty proposal) win.
        assert_eq!(safe[0].deps, deps);
        assert_eq!(safe[0].seq, 9);
    }

    #[test]
    fn recovery_stops_at_first_gap() {
        let mut s = setup();
        let req = request(&mut s, 42);
        let inst0 = InstanceId::new(ReplicaId::new(0), 0);
        let inst2 = InstanceId::new(ReplicaId::new(0), 2); // gap at slot 1
        let h0 = signed_header(&mut s, 0, inst0, &req);
        let h2 = signed_header(&mut s, 0, inst2, &req);
        let s0 = spec_snapshot(h0, req.clone());
        let s2 = spec_snapshot(h2, req);
        let r1 = signed_report(&mut s, 1, vec![s0.clone(), s2.clone()]);
        let r2 = signed_report(&mut s, 2, vec![s0, s2]);
        let cfg = s.cfg;
        let safe = compute_safe_set(&mut s.stores[1], &cfg, ReplicaId::new(0), &[r1, r2]);
        assert_eq!(safe.len(), 1);
        assert_eq!(safe[0].inst, inst0);
    }

    #[test]
    fn forged_header_is_ignored() {
        let mut s = setup();
        let req = request(&mut s, 42);
        let inst = InstanceId::new(ReplicaId::new(0), 0);
        // Replica 3 (byzantine) forges a header "from replica 0" with its
        // own key.
        let body = SpecOrderBody {
            owner: OwnerNum(0),
            inst,
            deps: BTreeSet::new(),
            seq: 1,
            log_digest: Digest::ZERO,
            req_digests: vec![req.digest()],
        };
        let audience = Audience::replicas(s.cfg.cluster.n());
        let forged_sig = s.stores[3].sign(&body.signed_payload(), &audience);
        let forged = SpecOrderHeader {
            body,
            sig: forged_sig,
        };
        let snap = spec_snapshot(forged, req);
        let r1 = signed_report(&mut s, 1, vec![snap.clone()]);
        let r2 = signed_report(&mut s, 2, vec![snap]);
        let cfg = s.cfg;
        let safe = compute_safe_set(&mut s.stores[1], &cfg, ReplicaId::new(0), &[r1, r2]);
        assert!(safe.is_empty());
    }

    #[test]
    fn verify_owner_change_rejects_bad_signature() {
        let mut s = setup();
        let req = request(&mut s, 42);
        let inst = InstanceId::new(ReplicaId::new(0), 0);
        let header = signed_header(&mut s, 0, inst, &req);
        let snap = spec_snapshot(header, req);
        let mut oc = signed_report(&mut s, 1, vec![snap]);
        let cfg = s.cfg;
        assert!(verify_owner_change(&mut s.stores[2], &cfg, &oc));
        oc.sender = ReplicaId::new(2); // signature no longer matches sender
        assert!(!verify_owner_change(&mut s.stores[2], &cfg, &oc));
        oc.sig = Signature::Null;
        assert!(!verify_owner_change(&mut s.stores[2], &cfg, &oc));
    }
}
