//! # ezbft-core — the ezBFT protocol
//!
//! A faithful implementation of *"ezBFT: Decentralizing Byzantine
//! Fault-Tolerant State Machine Replication"* (Arun, Peluso, Ravindran —
//! ICDCS 2019) as sans-io state machines:
//!
//! - [`Replica`] — command-leader + follower roles over per-replica
//!   instance spaces (§IV-A), speculative execution with SCC-based final
//!   execution (§IV-B), slow-path commitment (§IV-C) and the owner-change
//!   protocol (§IV-E);
//! - [`Client`] — the actively-participating client: fast-path matching,
//!   dependency combining, proof-of-misbehaviour detection and
//!   retransmission (§IV-A step 4, §IV-C, §IV-D);
//! - [`ByzantineReplica`] — pluggable byzantine behaviours for fault
//!   injection.
//!
//! The protocol tolerates `f` byzantine replicas with `N = 3f + 1`,
//! committing in **three communication steps** (client → leader →
//! replicas → client) when there is no contention and no faults, and in
//! five steps otherwise.
//!
//! # Example
//!
//! Build a replica and a client over the KV application:
//!
//! ```
//! use ezbft_core::{EzConfig, Replica, Client};
//! use ezbft_crypto::{CryptoKind, KeyStore};
//! use ezbft_kv::{KvStore, KvOp, KvResponse};
//! use ezbft_smr::{ClusterConfig, ClientId, NodeId, ReplicaId};
//!
//! let cluster = ClusterConfig::for_faults(1);
//! let cfg = EzConfig::new(cluster);
//! let mut nodes: Vec<NodeId> = cluster.replicas().map(NodeId::Replica).collect();
//! nodes.push(NodeId::Client(ClientId::new(0)));
//! let mut keys = KeyStore::cluster(CryptoKind::Mac, b"example", &nodes);
//! let client_keys = keys.pop().unwrap();
//!
//! let replica0 = Replica::new(ReplicaId::new(0), cfg, keys.remove(0), KvStore::new());
//! let client: Client<KvOp, KvResponse> =
//!     Client::new(ClientId::new(0), cfg, client_keys, ReplicaId::new(0));
//! # let _ = (replica0, client);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod byzantine;
mod client;
mod config;
mod deps;
mod graph;
mod instance;
pub mod msg;
mod owner;
mod replica;
mod telemetry;

pub use byzantine::{Behaviour, ByzantineReplica};
pub use client::{Client, ClientStats};
pub use config::EzConfig;
pub use deps::DepTracker;
pub use graph::{execution_order, execution_units, ExecNode};
pub use instance::{EntryStatus, ExecRef, InstanceId, OwnerNum};
pub use msg::{CkptMark, Msg};
pub use replica::{CommittedView, Replica, ReplicaStats};
