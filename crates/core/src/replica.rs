//! The ezBFT replica (paper §IV).
//!
//! A replica plays two roles at once:
//!
//! - **command-leader** for requests its clients send to it: assign the next
//!   slot in *its own* instance space, collect dependencies, assign a
//!   sequence number, broadcast SPECORDER (§IV-A step 2);
//! - **follower** for every other replica's instance space: validate
//!   SPECORDER, extend the dependency set from the local log, speculatively
//!   execute and reply to the client (§IV-A step 3).
//!
//! Commitment arrives from clients (COMMITFAST / COMMIT); final execution
//! follows the SCC algorithm in [`crate::graph`]; misbehaving
//! command-leaders are removed by the owner-change protocol in
//! [`crate::owner`] (§IV-E).

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use ezbft_checkpoint::{
    chunk_snapshot, CheckpointProof, CheckpointTracker, CheckpointVote, ChunkAssembler,
    SnapshotChunk, Snapshotable, StableCheckpoint,
};
use ezbft_crypto::{Audience, Digest, KeyStore, SignerBitmap};
use ezbft_obs::{
    HealthReport, Introspect, NullRecorder, Recorder, RecoveryKey, RecoveryStage, SpaceHealth,
    Stage,
};
use ezbft_smr::{
    estimate_makespan, Actions, Application, ClientId, CloneReplay, Command, ExecItem, ExecUnit,
    Executor, Micros, NodeId, ParallelExecutor, ProtocolNode, ReplicaId, TimerId, Timestamp,
    VoteTally,
};

use crate::config::EzConfig;
use crate::graph::{execution_units, ExecNode};
use crate::instance::{EntryStatus, ExecRef, InstanceId, OwnerNum};
use crate::msg::{
    batch_digests, AckCert, BarrierAck, BarrierCert, BarrierCommit, CkptMark, ClientMark, Commit,
    CommitAgg, CommitConfirm, CommitFast, CommitReply, CompactAck, CompactBarrierGroup, Evidence,
    EzSnapshot, FillGap, Msg, NewOwner, OwnerChange, Pom, ReplyCert, Request, ResendReq,
    SpaceSuffix, SpecAck, SpecOrder, SpecOrderBody, SpecOrderHeader, SpecReply, SpecReplyBody,
    StartOwnerChange, StateRequest, StateSuffix,
};
use crate::owner::{
    bitmap_signers, compute_safe_set, verify_agg_certificate, verify_barrier_certificate,
    verify_owner_change,
};

use crate::deps::DepTracker;
use crate::telemetry::span_key;

/// How far ahead of a space's applied owner number we are willing to
/// vote in an owner-change round. Escalation past mute prospective
/// owners (fix (b), DESIGN.md §5a) needs rounds above `owner + 1`; the
/// cap keeps the per-round vote/report maps bounded against a byzantine
/// replica spamming votes for far-future owner numbers.
const OC_ESCALATION_WINDOW: u64 = 8;

/// Upper bound on SPECORDERs re-sent for one FILLGAP NACK.
const GAP_FILL_MAX_SLOTS: u64 = 64;

/// One slot's state in an instance space. A slot holds a *batch* of one
/// or more client requests ordered as a unit (DESIGN.md §3); agreement
/// state (deps, seq, status) is per slot, responses are per offset.
#[derive(Clone, Debug)]
pub(crate) struct Entry<C, R> {
    /// The ordered batch, `Arc`-shared with the SPECORDER it arrived in
    /// (or was broadcast as) — the retained entry, the reorder buffer and
    /// the fan-out body never deep-copy the request payloads (DESIGN.md §7).
    pub reqs: Arc<Vec<Request<C>>>,
    pub owner: OwnerNum,
    pub deps: BTreeSet<InstanceId>,
    pub seq: u64,
    pub status: EntryStatus,
    /// Speculative responses, one per offset (dropped on invalidation).
    pub spec_responses: Option<Vec<R>>,
    /// Final responses, filled per offset at execution.
    pub final_responses: Vec<Option<R>>,
    /// Offsets whose client must receive a COMMITREPLY after final
    /// execution (slow path and recovered entries).
    pub reply_on_final: BTreeSet<u32>,
    /// The command-leader's signed header (owner-change evidence, POM raw
    /// material).
    pub header: SpecOrderHeader,
    /// [`SpecOrderBody::batch_digest`] of the header, computed once at
    /// entry creation: the ack-matching hot path must not re-encode the
    /// digest list per SPECACK (DESIGN.md §7).
    pub batch_digest: Digest,
    /// Commitment proof, once committed.
    pub commit_evidence: Option<Evidence<C, R>>,
}

impl<C, R> Entry<C, R> {
    /// The request at `offset`, if within the batch.
    fn req_at(&self, offset: u32) -> Option<&Request<C>> {
        self.reqs.get(offset as usize)
    }
}

/// One instance space as seen by this replica.
#[derive(Clone, Debug)]
pub(crate) struct Space<C, R> {
    pub owner: OwnerNum,
    /// Frozen spaces accept no further SPECORDERs (post owner change).
    pub frozen: bool,
    /// First non-compacted slot: everything below was executed and
    /// discarded ("since the last checkpoint", §IV-E).
    pub compact_floor: u64,
    /// Whether this replica committed to an ownership change away from
    /// `owner` (stops participation until NEWOWNER arrives).
    pub committed_to_change: bool,
    /// The owner number the committed-to change is moving the space *to*.
    /// Meaningful only while `committed_to_change`; escalation rounds
    /// (fix (b), DESIGN.md §5a) advance it past `owner.next()` when a
    /// prospective new owner turns out to be mute.
    pub oc_target: OwnerNum,
    pub next_slot: u64,
    /// Rolling digest `h` over accepted slots.
    pub log_digest: Digest,
    pub entries: BTreeMap<u64, Entry<C, R>>,
    /// Out-of-order SPECORDER buffer (network reordering).
    pub pending_orders: BTreeMap<u64, SpecOrder<C>>,
    /// Commit decisions that arrived before their SPECORDER.
    pub pending_commits: BTreeMap<u64, PendingCommit<C, R>>,
}

/// One retained committed instance as seen by a replica: the agreement
/// fingerprint the adversarial campaign's safety checkers compare across
/// replicas (two correct replicas must never commit different batches or
/// different `(deps, seq)` under the same `(owner, inst)`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommittedView {
    /// The committed instance.
    pub inst: InstanceId,
    /// Owner number the batch was ordered under.
    pub owner: OwnerNum,
    /// Digest over the ordered batch (request digests + order metadata).
    pub batch_digest: Digest,
    /// The agreed sequence number.
    pub seq: u64,
}

/// A commit decision that arrived before its SPECORDER. Several clients of
/// one batch may each deliver a certificate while the order is still in
/// flight; the first decision's (deps, seq) is kept and every client's
/// COMMITREPLY obligation accumulates (an overwrite would silently drop an
/// earlier client's reply). The certificate itself is carried along and
/// adopted as the entry's commit evidence when the SPECORDER lands, so
/// early-arriving commitment is not downgraded to spec-ordered in
/// owner-change reports or state-transfer suffixes (ROADMAP PR 2
/// follow-on).
#[derive(Clone, Debug)]
pub(crate) struct PendingCommit<C, R> {
    pub deps: BTreeSet<InstanceId>,
    pub seq: u64,
    /// Batch offsets whose clients expect a COMMITREPLY after execution.
    pub reply_offsets: BTreeSet<u32>,
    /// The certificate that proved the decision (first one wins).
    pub evidence: Option<Evidence<C, R>>,
}

impl<C, R> Space<C, R> {
    fn new(space_owner: ReplicaId) -> Self {
        Space {
            owner: OwnerNum::initial(space_owner),
            frozen: false,
            compact_floor: 0,
            committed_to_change: false,
            oc_target: OwnerNum::initial(space_owner),
            next_slot: 0,
            log_digest: Digest::ZERO,
            entries: BTreeMap::new(),
            pending_orders: BTreeMap::new(),
            pending_commits: BTreeMap::new(),
        }
    }
}

/// Per-client bookkeeping: exactly-once guard and cached replies.
#[derive(Clone, Debug)]
struct ClientRecord<C, R> {
    /// Highest timestamp seen in a proposal by this replica.
    last_ts: Timestamp,
    /// Batch position assigned to the highest-timestamp proposal (if this
    /// replica has seen it ordered anywhere).
    last_at: Option<ExecRef>,
    /// Highest timestamp finally executed and its response (exactly-once).
    executed_ts: Timestamp,
    executed_response: Option<R>,
    /// Cached replies for retransmission handling.
    cached_spec: Option<SpecReply<C, R>>,
    cached_commit: Option<CommitReply<R>>,
    /// Batch positions holding (possibly duplicate) proposals of this
    /// client's not-yet-executed requests. When one executes, the others
    /// are neutralised so they cannot block dependents (exactly-once).
    live: Vec<(Timestamp, ExecRef)>,
}

impl<C, R> Default for ClientRecord<C, R> {
    fn default() -> Self {
        ClientRecord {
            last_ts: Timestamp::ZERO,
            last_at: None,
            executed_ts: Timestamp::ZERO,
            executed_response: None,
            cached_spec: None,
            cached_commit: None,
            live: Vec::new(),
        }
    }
}

/// Counters exposed for tests and reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplicaStats {
    /// Commands this replica led.
    pub led: u64,
    /// SPECORDERs accepted as follower.
    pub followed: u64,
    /// Fast-path commits applied.
    pub fast_commits: u64,
    /// Slow-path commits applied.
    pub slow_commits: u64,
    /// Instance-level aggregated commits applied (led or received).
    pub agg_commits: u64,
    /// Commands finally executed.
    pub executed: u64,
    /// Valid proofs of misbehaviour received.
    pub poms: u64,
    /// Owner changes completed (NEWOWNER applied).
    pub owner_changes: u64,
    /// Messages dropped by validation.
    pub rejected: u64,
    /// Checkpoint barriers this replica led.
    pub barriers_led: u64,
    /// Stable checkpoints observed (2f+1 matching digests).
    pub stable_checkpoints: u64,
    /// Successful state transfers completed (recovery).
    pub state_transfers: u64,
}

enum ReplicaTimer {
    /// Waiting for the original command-leader to SPECORDER a forwarded
    /// request (§IV-D step 4.3).
    ResendWait {
        space: ReplicaId,
        client: ClientId,
        ts: Timestamp,
    },
    /// The batch window expired: flush the pending batch (DESIGN.md §3).
    BatchFlush,
    /// Waiting for a committed entry's dependency to commit locally. If it
    /// never does (e.g. a byzantine replica invented the dependency, or its
    /// leader died before propagating it), the dep's space owner is
    /// suspected so the owner change can resolve the slot either way.
    /// (Dependency resolution is left unspecified by the paper; see
    /// DESIGN.md §5.)
    DepWait { dep: InstanceId },
    /// Recovering: no usable state-transfer response arrived yet;
    /// re-broadcast the STATEREQUEST.
    StateRetry,
    /// Stashed COMMITCONFIRMs found no SPECREPLY to piggyback on (the
    /// client went quiet): flush them as dedicated messages before the
    /// client's COMMITFAST fallback fires (DESIGN.md §7).
    ConfirmFlush,
    /// Committed to an ownership change towards `new_owner` and still
    /// waiting for its NEWOWNER. If it never arrives — the prospective
    /// new owner is crashed, mute or byzantine — escalate: re-send our
    /// OWNERCHANGE report to the *next* prospective owner in ring order,
    /// with exponential backoff so dueling escalations converge instead
    /// of livelocking (hardening beyond the paper; DESIGN.md §5a).
    OwnerChangeEscalate {
        space: ReplicaId,
        new_owner: OwnerNum,
        attempt: u32,
    },
}

/// A locally retained snapshot: the canonical bytes plus the per-space
/// contiguous-executed-prefix cut at the instant the barrier executed.
/// Once this snapshot's mark goes stable, the cut is the compaction limit
/// (entries at or above it must stay to keep the servable suffix complete).
#[derive(Clone, Debug)]
struct SnapshotRecord {
    bytes: Arc<Vec<u8>>,
    cut: Vec<u64>,
}

/// The ezBFT replica node.
pub struct Replica<A: Application> {
    id: ReplicaId,
    cfg: EzConfig,
    keys: KeyStore,
    engine: CloneReplay<A>,
    spaces: Vec<Space<A::Command, A::Response>>,
    max_seq: u64,
    deps: DepTracker,
    clients: HashMap<ClientId, ClientRecord<A::Command, A::Response>>,
    /// Validated requests awaiting aggregation into the next SPECORDER
    /// (only ever non-empty when `cfg.batch_size > 1`).
    pending_batch: Vec<Request<A::Command>>,
    /// The armed batch-flush timer, if any.
    batch_timer: Option<u64>,
    /// Committed-but-unexecuted instances (execution worklist).
    committed_pending: BTreeSet<InstanceId>,
    timers: HashMap<u64, ReplicaTimer>,
    resend_waits: HashMap<(ClientId, Timestamp), u64>,
    dep_waits: HashMap<InstanceId, u64>,
    next_timer: u64,
    /// STARTOWNERCHANGE tallies keyed by (space, owner being abandoned).
    oc_votes: HashMap<(ReplicaId, OwnerNum), VoteTally>,
    /// Whether we already broadcast STARTOWNERCHANGE for the key.
    oc_started: HashMap<(ReplicaId, OwnerNum), bool>,
    /// OWNERCHANGE messages collected by a prospective new owner.
    #[allow(clippy::type_complexity)]
    oc_reports: HashMap<(ReplicaId, OwnerNum), Vec<OwnerChange<A::Command, A::Response>>>,
    /// Gap-fill dedup: per space, the reorder-buffer front (`next_slot`)
    /// we last NACKed — one FILLGAP per observed gap front, so a burst of
    /// buffered orders behind one hole produces one NACK, not a storm.
    gap_nacks: HashMap<ReplicaId, u64>,
    /// Finally-executed commands in execution order (safety checkers).
    executed_log: Vec<ExecRef>,
    /// The subset of [`Replica::executed_log`] that actually mutated
    /// application state. A duplicate proposal replayed at the client's
    /// executed watermark lands in `executed_log` (it produced a reply)
    /// but not here — exactly-once is a property of *applies*, and this
    /// is what the adversarial safety checkers must read.
    applied_log: Vec<ExecRef>,
    // --- checkpointing (DESIGN.md §6) ---
    /// Barriers executed so far (the next barrier gets `ckpt_seq + 1`).
    ckpt_seq: u64,
    /// Commands finally executed since we last led or executed a barrier
    /// (proposal pacing only).
    executed_since_ckpt: u64,
    /// Commands finally executed since the last barrier *execution*. This
    /// is a cluster-wide deterministic quantity (the command set between
    /// two barriers is identical at every correct replica) and gates the
    /// snapshot/vote in [`Replica::on_barrier_executed`].
    executed_since_barrier: u64,
    /// Our own in-flight barrier, if any (one at a time).
    barrier_inflight: Option<InstanceId>,
    /// BARRIERACKs collected as barrier leader.
    barrier_acks: HashMap<InstanceId, Vec<BarrierAck>>,
    /// SPECACKs collected as command-leader for instances of our own space
    /// (commit aggregation, DESIGN.md §7). Entries are dropped as soon as
    /// the instance commits by any path, so the map is bounded by the
    /// in-flight batch count.
    spec_acks: HashMap<InstanceId, Vec<SpecAck>>,
    /// Signed COMMITCONFIRMs awaiting a ride: instead of a dedicated
    /// message per aggregated commit, each confirmation piggybacks on the
    /// next SPECREPLY this replica owes the same client (DESIGN.md §7).
    /// Bounded by the clients' in-flight requests; a flush timer sends any
    /// confirm that finds no ride as a dedicated message, well before the
    /// client's COMMITFAST fallback would fire.
    pending_confirms: HashMap<ClientId, Vec<CommitConfirm>>,
    /// The armed [`ReplicaTimer::ConfirmFlush`], if any.
    confirm_flush_timer: Option<u64>,
    /// CHECKPOINT vote tallies → stable certificates.
    ckpt_tracker: CheckpointTracker<CkptMark>,
    /// Retained snapshots (at most the stable one plus newer candidates).
    snapshots: BTreeMap<CkptMark, SnapshotRecord>,
    /// Compaction limit per space: the stable checkpoint's cut.
    stable_cut: Option<Vec<u64>>,
    // --- state transfer (fetcher side) ---
    /// Whether this replica is still catching up via state transfer.
    recovering: bool,
    /// Best verified stable-checkpoint certificate received so far.
    st_cert: Option<StableCheckpoint<CkptMark>>,
    /// Chunk reassembly for the certified snapshot digest.
    st_assembler: Option<ChunkAssembler>,
    /// Chunks that raced ahead of their certificate (bounded); replayed
    /// into the assembler once the certificate arrives.
    st_early_chunks: Vec<SnapshotChunk>,
    /// The decoded snapshot, once all chunks verified.
    st_snapshot: Option<EzSnapshot<A::Response>>,
    /// Log suffixes received so far, one per claimed base mark (a suffix
    /// may race ahead of its certificate on the wire, so suffixes for
    /// bases we cannot use *yet* are buffered rather than dropped).
    st_suffixes: BTreeMap<Option<CkptMark>, StateSuffix<A::Command, A::Response>>,
    /// Donors that reported "no stable checkpoint" (genesis suffixes);
    /// the genesis recovery path requires `f + 1` of them.
    st_genesis_donors: BTreeSet<ReplicaId>,
    /// When the state transfer completed (driver clock), for reports.
    recovered_at: Option<Micros>,
    stats: ReplicaStats,
    /// Telemetry sink (no-op by default; see [`Replica::with_recorder`]).
    rec: Arc<dyn Recorder>,
}

impl<A: Application> std::fmt::Debug for Replica<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replica")
            .field("id", &self.id)
            .field("max_seq", &self.max_seq)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

type Out<A> = Actions<
    Msg<<A as Application>::Command, <A as Application>::Response>,
    <A as Application>::Response,
>;

impl<A: Application + Snapshotable> Replica<A> {
    /// Creates a replica with identity `id`, running `app`.
    ///
    /// # Panics
    ///
    /// Panics if `keys` does not belong to `id`.
    pub fn new(id: ReplicaId, cfg: EzConfig, keys: KeyStore, app: A) -> Self {
        assert_eq!(keys.me(), NodeId::Replica(id), "keystore identity mismatch");
        let spaces = cfg.cluster.replicas().map(Space::new).collect();
        Replica {
            id,
            cfg,
            keys,
            engine: CloneReplay::new(app),
            spaces,
            max_seq: 0,
            deps: DepTracker::new(),
            clients: HashMap::new(),
            pending_batch: Vec::new(),
            batch_timer: None,
            committed_pending: BTreeSet::new(),
            timers: HashMap::new(),
            resend_waits: HashMap::new(),
            dep_waits: HashMap::new(),
            next_timer: 0,
            oc_votes: HashMap::new(),
            oc_started: HashMap::new(),
            oc_reports: HashMap::new(),
            gap_nacks: HashMap::new(),
            executed_log: Vec::new(),
            applied_log: Vec::new(),
            ckpt_seq: 0,
            executed_since_ckpt: 0,
            executed_since_barrier: 0,
            barrier_inflight: None,
            barrier_acks: HashMap::new(),
            spec_acks: HashMap::new(),
            pending_confirms: HashMap::new(),
            confirm_flush_timer: None,
            ckpt_tracker: CheckpointTracker::new(),
            snapshots: BTreeMap::new(),
            stable_cut: None,
            recovering: false,
            st_cert: None,
            st_assembler: None,
            st_early_chunks: Vec::new(),
            st_snapshot: None,
            st_suffixes: BTreeMap::new(),
            st_genesis_donors: BTreeSet::new(),
            recovered_at: None,
            stats: ReplicaStats::default(),
            rec: Arc::new(NullRecorder),
        }
    }

    /// Attaches a telemetry sink: the replica records lifecycle stages
    /// (specorder-accept, ack-collect, commit, exec-ready, exec-done) for
    /// every request it observes, commit-path counters mirroring
    /// [`ReplicaStats`], and owner-change events (DESIGN.md §9).
    /// Observation-only — protocol behaviour and the executed log are
    /// bit-identical with any recorder (pinned by
    /// `tests/telemetry_sim.rs`).
    pub fn with_recorder(mut self, rec: Arc<dyn Recorder>) -> Self {
        self.rec = rec;
        self
    }

    /// Creates a replica that starts **empty and recovering**: on start it
    /// broadcasts STATEREQ, ignores ordinary protocol traffic until it has
    /// adopted a digest-verified stable checkpoint plus log suffix from a
    /// peer, then participates normally. This is the crash-restart path: a
    /// replica without durable storage rejoins from the cluster's stable
    /// checkpoint instead of replaying the entire history (DESIGN.md §6).
    ///
    /// # Panics
    ///
    /// Panics if `keys` does not belong to `id`.
    pub fn new_recovering(id: ReplicaId, cfg: EzConfig, keys: KeyStore, app: A) -> Self {
        let mut replica = Self::new(id, cfg, keys, app);
        replica.recovering = true;
        replica
    }

    /// Whether this replica is still catching up via state transfer.
    pub fn is_recovering(&self) -> bool {
        self.recovering
    }

    /// The instant (driver clock) at which state transfer completed, if
    /// this replica was started recovering and has finished.
    pub fn recovery_completed_at(&self) -> Option<Micros> {
        self.recovered_at
    }

    /// This replica's id.
    pub fn replica_id(&self) -> ReplicaId {
        self.id
    }

    /// Counters for tests and reports.
    pub fn stats(&self) -> ReplicaStats {
        self.stats
    }

    /// The application's final state (post finally-executed commands).
    pub fn app(&self) -> &A {
        self.engine.final_state()
    }

    /// Status of an instance as known locally.
    pub fn instance_status(&self, inst: InstanceId) -> Option<EntryStatus> {
        self.spaces[inst.space.index()]
            .entries
            .get(&inst.slot)
            .map(|e| e.status)
    }

    /// The kind of commit certificate held for `inst`, if any ("slow",
    /// "fast", "agg", "barrier", or `None` while only spec-ordered).
    /// Exposed so tests can assert which path proved commitment — e.g.
    /// that a certificate arriving before its SPECORDER is not downgraded.
    pub fn commit_evidence_kind(&self, inst: InstanceId) -> Option<&'static str> {
        self.spaces[inst.space.index()]
            .entries
            .get(&inst.slot)
            .and_then(|e| e.commit_evidence.as_ref())
            .map(|ev| match ev {
                Evidence::SpecOrdered(_) => "spec-ordered",
                Evidence::SlowCommit { .. } => "slow",
                Evidence::FastCommit { .. } => "fast",
                Evidence::AggCommit { .. } => "agg",
                Evidence::BarrierCommit { .. } => "barrier",
            })
    }

    /// The finally-executed commands in execution order is not tracked
    /// globally; this returns the count.
    pub fn executed_count(&self) -> u64 {
        self.stats.executed
    }

    /// Current owner number of `space`.
    pub fn space_owner(&self, space: ReplicaId) -> OwnerNum {
        self.spaces[space.index()].owner
    }

    /// Finally-executed commands, in local execution order.
    pub fn executed_log(&self) -> &[ExecRef] {
        &self.executed_log
    }

    /// Commands that actually mutated application state, in apply order.
    /// Excludes watermark replays of duplicate proposals (which appear in
    /// [`Replica::executed_log`] because they produced a reply, but were
    /// never re-applied). The exactly-once and execution-order safety
    /// checkers read this log.
    pub fn applied_log(&self) -> &[ExecRef] {
        &self.applied_log
    }

    /// The latest stable checkpoint mark, if any.
    pub fn stable_mark(&self) -> Option<CkptMark> {
        self.ckpt_tracker.stable().map(|s| s.mark)
    }

    /// Number of checkpoint barriers executed locally.
    pub fn barriers_executed(&self) -> u64 {
        self.ckpt_seq
    }

    /// The retained-log size: every instance this replica still holds
    /// (entries plus reorder/commit buffers) plus the per-client
    /// exactly-once bookkeeping and the dependency-tracker frontier. This
    /// is the quantity checkpointing bounds: with checkpoints enabled it
    /// stays O(clients + checkpoint interval) instead of growing with the
    /// total committed command count.
    pub fn retained_log_size(&self) -> usize {
        let instances: usize = self
            .spaces
            .iter()
            .map(|s| s.entries.len() + s.pending_orders.len() + s.pending_commits.len())
            .sum();
        let clients: usize = self.clients.values().map(|r| 1 + r.live.len()).sum();
        instances + clients + self.deps.tracked_keys()
    }

    /// The command ordered at batch position `at`, if known locally.
    pub fn command_of(&self, at: ExecRef) -> Option<&A::Command> {
        self.spaces[at.inst.space.index()]
            .entries
            .get(&at.inst.slot)
            .and_then(|e| e.req_at(at.offset))
            .map(|r| &r.cmd)
    }

    /// Number of requests in the batch ordered at `inst` (0 if unknown).
    pub fn batch_len(&self, inst: InstanceId) -> usize {
        self.spaces[inst.space.index()]
            .entries
            .get(&inst.slot)
            .map(|e| e.reqs.len())
            .unwrap_or(0)
    }

    /// The `(client, timestamp)` identity of the request ordered at `at`,
    /// if the entry is still retained. Lets the adversarial campaign's
    /// liveness check tie executed slots back to submitted requests.
    pub fn request_id_of(&self, at: ExecRef) -> Option<(ClientId, Timestamp)> {
        self.spaces[at.inst.space.index()]
            .entries
            .get(&at.inst.slot)
            .and_then(|e| e.req_at(at.offset))
            .map(|r| (r.client, r.ts))
    }

    /// Whether `space` is frozen (post owner change).
    pub fn space_frozen(&self, space: ReplicaId) -> bool {
        self.spaces[space.index()].frozen
    }

    /// Whether this replica has committed to an ownership change for
    /// `space` that has not been applied yet (mid-recovery; a replica
    /// stuck here past the liveness bound is wedged).
    pub fn space_committed_to_change(&self, space: ReplicaId) -> bool {
        self.spaces[space.index()].committed_to_change
    }

    /// Every retained committed-or-executed instance with its agreement
    /// fingerprint, for cross-replica safety checks (the adversarial
    /// campaign's commit-agreement invariant).
    pub fn committed_views(&self) -> Vec<CommittedView> {
        let mut out = Vec::new();
        for space in &self.spaces {
            for e in space.entries.values() {
                if e.status.is_committed() {
                    out.push(CommittedView {
                        inst: e.header.body.inst,
                        owner: e.owner,
                        batch_digest: e.batch_digest,
                        seq: e.seq,
                    });
                }
            }
        }
        out
    }

    /// Builds the live health snapshot served on the introspection
    /// endpoint's `/status` (DESIGN.md §9b): protocol-level state the
    /// recorder cannot see — per-space ownership and owner-change
    /// progress, log length against the stable checkpoint, reorder-buffer
    /// gaps, the execution worklist depth, and the commit-path mix.
    /// Read-only and allocation-light (one `SpaceHealth` per space), so
    /// it is safe to call between protocol events while under load.
    pub fn introspect(&self) -> HealthReport {
        let stable = self.stable_mark().map(|m| m.seq).unwrap_or(0);
        // Highest armed owner-change escalation attempt: non-zero means a
        // prospective new owner went mute and the backoff is climbing.
        let oc_backoff_attempt = self
            .timers
            .values()
            .filter_map(|t| match t {
                ReplicaTimer::OwnerChangeEscalate { attempt, .. } => Some(u64::from(*attempt)),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        let spaces: Vec<SpaceHealth> = self
            .spaces
            .iter()
            .enumerate()
            .map(|(i, s)| SpaceHealth {
                space: i as u64,
                owner: s.owner.0,
                owner_replica: s.owner.owner(&self.cfg.cluster).index() as u64,
                frozen: s.frozen,
                committed_to_change: s.committed_to_change,
                oc_target: s.committed_to_change.then_some(s.oc_target.0),
                next_slot: s.next_slot,
                compact_floor: s.compact_floor,
                entries: s.entries.len() as u64,
                reorder_buffered: s.pending_orders.len() as u64,
                pending_commits: s.pending_commits.len() as u64,
            })
            .collect();
        HealthReport {
            replica: self.id.index() as u64,
            recovering: self.recovering,
            executed: self.stats.executed,
            exec_queue_depth: self.committed_pending.len() as u64,
            retained_log: self.retained_log_size() as u64,
            checkpoint_seq: self.ckpt_seq,
            stable_checkpoint: stable,
            checkpoint_lag: self.ckpt_seq.saturating_sub(stable),
            reorder_buffered: spaces.iter().map(|s| s.reorder_buffered).sum(),
            fast_commits: self.stats.fast_commits,
            slow_commits: self.stats.slow_commits,
            agg_commits: self.stats.agg_commits,
            owner_changes: self.stats.owner_changes,
            oc_backoff_attempt,
            spaces,
        }
    }

    fn reply_audience(&self, client: ClientId) -> Audience {
        Audience::replicas(self.cfg.cluster.n()).and(client)
    }

    /// The audience of a SPECORDER: every replica plus every client with a
    /// request in the batch (each verifies the relayed header, §IV-D 4.4).
    fn batch_audience(&self, reqs: &[Request<A::Command>]) -> Audience {
        reqs.iter()
            .fold(Audience::replicas(self.cfg.cluster.n()), |a, r| {
                a.and(r.client)
            })
    }

    /// Highest sequence number among the given (locally known) instances.
    fn max_seq_of(&self, insts: &BTreeSet<InstanceId>) -> u64 {
        insts
            .iter()
            .filter_map(|i| {
                self.spaces[i.space.index()]
                    .entries
                    .get(&i.slot)
                    .map(|e| e.seq)
            })
            .max()
            .unwrap_or(0)
    }

    // ------------------------------------------------------------------
    // Request handling (§IV-A steps 1-2, §IV-D step 4.3)
    // ------------------------------------------------------------------

    fn on_request(&mut self, req: Request<A::Command>, out: &mut Out<A>) {
        let payload = Request::signed_payload(req.client, req.ts, &req.cmd);
        if self
            .keys
            .verify(NodeId::Client(req.client), &payload, &req.sig)
            .is_err()
        {
            self.stats.rejected += 1;
            return;
        }

        // Retransmission addressed at another replica (§IV-D 4.3).
        if let Some(original) = req.original {
            if original != self.id {
                self.handle_retransmission(req, original, out);
                return;
            }
        }

        let record = self.clients.entry(req.client).or_default();
        if req.ts < record.last_ts {
            self.stats.rejected += 1;
            return;
        }
        if req.ts == record.last_ts {
            // Duplicate: resend cached replies if the ordered entry is
            // still alive, otherwise re-propose (the original order was
            // lost to an owner change).
            let alive = record
                .last_at
                .map(|at| {
                    self.spaces[at.inst.space.index()]
                        .entries
                        .contains_key(&at.inst.slot)
                })
                .unwrap_or(false);
            if alive {
                let record = self.clients.get(&req.client).expect("just inserted");
                if let Some(cached) = &record.cached_commit {
                    out.send(NodeId::Client(req.client), Msg::CommitReply(cached.clone()));
                } else if let Some(cached) = &record.cached_spec {
                    out.send(NodeId::Client(req.client), Msg::SpecReply(cached.clone()));
                }
                return;
            }
        }

        self.enqueue_for_leading(req, out);
    }

    /// Admits a validated request to the leader's batch, flushing when the
    /// batch fills (or immediately when batching is off).
    fn enqueue_for_leading(&mut self, req: Request<A::Command>, out: &mut Out<A>) {
        if self.cfg.batch_size <= 1 {
            self.lead_batch(vec![req], out);
            return;
        }
        // A duplicate may already sit in the open batch (a client retry or
        // RESENDREQ racing the flush timer): never order it twice. This
        // must be checked here — client records only advance at flush, so
        // the timestamp guards upstream cannot see an unflushed request.
        if self
            .pending_batch
            .iter()
            .any(|r| r.client == req.client && r.ts == req.ts)
        {
            return;
        }
        self.pending_batch.push(req);
        if self.pending_batch.len() >= self.cfg.batch_size {
            self.flush_batch(out);
        } else if self.batch_timer.is_none() {
            let id = self.arm_timer(ReplicaTimer::BatchFlush, self.cfg.batch_delay, out);
            self.batch_timer = Some(id);
        }
    }

    /// Orders the currently open batch, if any.
    fn flush_batch(&mut self, out: &mut Out<A>) {
        if let Some(id) = self.batch_timer.take() {
            self.timers.remove(&id);
            out.cancel_timer(TimerId(id));
        }
        let reqs = std::mem::take(&mut self.pending_batch);
        if reqs.is_empty() {
            return;
        }
        self.lead_batch(reqs, out);
    }

    /// Become the command-leader for a batch of requests (§IV-A step 2;
    /// batching per DESIGN.md §3). The whole batch occupies one slot of
    /// this replica's instance space: one dependency collection, one
    /// signature, one broadcast — amortised over every request in it.
    fn lead_batch(&mut self, reqs: Vec<Request<A::Command>>, out: &mut Out<A>) {
        debug_assert!(!reqs.is_empty(), "never lead an empty batch");
        let space = &mut self.spaces[self.id.index()];
        if space.frozen || space.committed_to_change {
            // Our own space was taken from us; we cannot lead. The clients
            // will rotate to another replica.
            self.stats.rejected += reqs.len() as u64;
            return;
        }
        let slot = space.next_slot;
        let inst = InstanceId::new(self.id, slot);
        let owner = space.owner;
        let log_digest = space.log_digest;

        // Dependencies are collected per command but attributed to the one
        // shared instance; intra-batch interference needs no edges because
        // the batch executes in offset order at every replica.
        let mut deps = BTreeSet::new();
        for req in &reqs {
            deps.extend(
                self.deps
                    .collect_and_register(inst, &req.cmd.conflict_keys()),
            );
        }
        deps.remove(&inst);
        // "A sequence number S … is calculated as the maximum of sequence
        // numbers of all commands in the dependency set" plus one (§IV-A
        // step 2 with the TLA+ +1): non-interfering commands keep seq 1,
        // which is what lets concurrent independent commands match on the
        // fast path.
        let seq = 1 + self.max_seq_of(&deps);

        // The batch is shared from here on: the retained entry, the
        // broadcast body and the reorder buffers all hold the same
        // allocation (zero-copy commit path, DESIGN.md §7).
        let reqs = Arc::new(reqs);
        let req_digests = batch_digests(&reqs);
        let body = SpecOrderBody {
            owner,
            inst,
            deps: deps.clone(),
            seq,
            log_digest,
            req_digests,
        };
        let sig = self
            .keys
            .sign(&body.signed_payload(), &self.batch_audience(&reqs));
        let header = SpecOrderHeader {
            body: body.clone(),
            sig,
        };

        // Record the entry and speculatively execute each command in batch
        // order.
        let mut spec_responses = Vec::with_capacity(reqs.len());
        for (offset, req) in reqs.iter().enumerate() {
            let at = inst.at(offset as u32);
            spec_responses.push(self.engine.spec_apply(at.tag(), &req.cmd));
            let record = self.clients.entry(req.client).or_default();
            record.last_ts = req.ts;
            record.last_at = Some(at);
            record.live.push((req.ts, at));
        }

        let entry = Entry {
            reqs: Arc::clone(&reqs),
            owner,
            deps,
            seq,
            status: EntryStatus::SpecOrdered,
            spec_responses: Some(spec_responses),
            final_responses: vec![None; reqs.len()],
            reply_on_final: BTreeSet::new(),
            header: header.clone(),
            batch_digest: header.body.batch_digest(),
            commit_evidence: None,
        };
        let space = &mut self.spaces[self.id.index()];
        space.entries.insert(slot, entry);
        space.next_slot = slot + 1;
        for d in &header.body.req_digests {
            space.log_digest = space.log_digest.chain(d);
        }

        self.stats.led += reqs.len() as u64;
        if self.rec.enabled() {
            self.rec.counter("replica.led", reqs.len() as u64);
            let now = out.now().as_micros();
            for (req, digest) in reqs.iter().zip(&header.body.req_digests) {
                self.rec
                    .stage(span_key(req.client, digest), Stage::SpecOrderAccept, now);
            }
        }

        // Broadcast the one SPECORDER to the other replicas
        // (serialize-once fan-out at the driver, see Action::Broadcast).
        let so = Msg::SpecOrder(SpecOrder {
            body,
            sig: header.sig.clone(),
            reqs: Arc::clone(&reqs),
        });
        let peers: Vec<ReplicaId> = self.cfg.cluster.peers(self.id).collect();
        out.broadcast(peers, so);

        // The leader also replies speculatively to each client, and any
        // pending RESENDREQ waits are now satisfied.
        for (offset, req) in reqs.iter().enumerate() {
            self.send_spec_reply(inst.at(offset as u32), out);
            self.cancel_resend_wait(req.client, req.ts, out);
        }
        // Under aggregation the leader's own acknowledgement opens the
        // instance's certificate (it collects the rest).
        self.send_spec_ack(inst, out);
    }

    fn handle_retransmission(
        &mut self,
        req: Request<A::Command>,
        original: ReplicaId,
        out: &mut Out<A>,
    ) {
        let record = self.clients.entry(req.client).or_default();
        if req.ts <= record.last_ts {
            // We have seen this (or a newer) request: return cached replies.
            if let Some(cached) = &record.cached_commit {
                if cached.ts == req.ts {
                    out.send(NodeId::Client(req.client), Msg::CommitReply(cached.clone()));
                    return;
                }
            }
            if let Some(cached) = &record.cached_spec {
                if cached.body.ts == req.ts {
                    out.send(NodeId::Client(req.client), Msg::SpecReply(cached.clone()));
                    return;
                }
            }
            if req.ts < record.last_ts {
                return;
            }
        }
        // Unknown request: nudge the original command-leader and start the
        // suspicion timer.
        out.send(
            NodeId::Replica(original),
            Msg::ResendReq(ResendReq {
                req: req.clone(),
                forwarder: self.id,
            }),
        );
        let timer = self.arm_timer(
            ReplicaTimer::ResendWait {
                space: original,
                client: req.client,
                ts: req.ts,
            },
            self.cfg.resend_timeout,
            out,
        );
        self.resend_waits.insert((req.client, req.ts), timer);
    }

    fn on_resend_req(&mut self, rr: ResendReq<A::Command>, out: &mut Out<A>) {
        let req = rr.req;
        let payload = Request::signed_payload(req.client, req.ts, &req.cmd);
        if self
            .keys
            .verify(NodeId::Client(req.client), &payload, &req.sig)
            .is_err()
        {
            self.stats.rejected += 1;
            return;
        }
        // If we already ordered it, rebroadcast the SPECORDER (it may have
        // been lost) and refresh the client's reply.
        let record = self.clients.entry(req.client).or_default();
        if req.ts == record.last_ts {
            if let Some(at) = record.last_at {
                if at.inst.space == self.id
                    && self.spaces[at.inst.space.index()]
                        .entries
                        .contains_key(&at.inst.slot)
                {
                    // Rebroadcast the whole batch's SPECORDER (it may
                    // have been lost) and refresh this client's reply.
                    let entry = &self.spaces[at.inst.space.index()].entries[&at.inst.slot];
                    let so = Msg::SpecOrder(SpecOrder {
                        body: entry.header.body.clone(),
                        sig: entry.header.sig.clone(),
                        reqs: entry.reqs.clone(),
                    });
                    let peers: Vec<ReplicaId> = self.cfg.cluster.peers(self.id).collect();
                    out.broadcast(peers, so);
                    self.send_spec_reply(at, out);
                    return;
                }
            }
        }
        // Otherwise order it now.
        let mut fresh = req;
        fresh.original = None;
        self.on_request(fresh, out);
    }

    // ------------------------------------------------------------------
    // Gap fill (beyond the paper; DESIGN.md §5a)
    // ------------------------------------------------------------------

    /// Signs and sends a FILLGAP NACK for slots `[from_slot, to_slot)` of
    /// `space` to the space's leader under `owner`.
    fn send_fill_gap(
        &mut self,
        space: ReplicaId,
        owner: OwnerNum,
        from_slot: u64,
        to_slot: u64,
        out: &mut Out<A>,
    ) {
        let leader = owner.owner(&self.cfg.cluster);
        if leader == self.id || from_slot >= to_slot {
            return;
        }
        let payload = FillGap::signed_payload(space, owner, from_slot, to_slot);
        let sig = self
            .keys
            .sign(&payload, &Audience::replicas(self.cfg.cluster.n()));
        out.send(
            NodeId::Replica(leader),
            Msg::FillGap(FillGap {
                space,
                owner,
                from_slot,
                to_slot,
                sender: self.id,
                sig,
            }),
        );
        if self.rec.enabled() {
            self.rec.counter("replica.gap_nacks_sent", 1);
        }
    }

    /// A follower NACKed a missing SPECORDER range of a space we lead:
    /// re-unicast the retained orders. Only the current leader under the
    /// requester's owner number serves (a stale NACK from before an owner
    /// change is dropped — the change re-ships history itself).
    fn on_fill_gap(&mut self, fg: FillGap, from: NodeId, out: &mut Out<A>) {
        if from != NodeId::Replica(fg.sender) || fg.from_slot >= fg.to_slot {
            self.stats.rejected += 1;
            return;
        }
        let payload = FillGap::signed_payload(fg.space, fg.owner, fg.from_slot, fg.to_slot);
        if self
            .keys
            .verify(NodeId::Replica(fg.sender), &payload, &fg.sig)
            .is_err()
        {
            self.stats.rejected += 1;
            return;
        }
        let space = &self.spaces[fg.space.index()];
        if space.owner != fg.owner || fg.owner.owner(&self.cfg.cluster) != self.id {
            return;
        }
        // Bound the work a single NACK can demand of us.
        let to = fg
            .to_slot
            .min(space.next_slot)
            .min(fg.from_slot.saturating_add(GAP_FILL_MAX_SLOTS));
        let mut resent = 0u64;
        for slot in fg.from_slot..to {
            let Some(e) = space.entries.get(&slot) else {
                continue; // compacted: unservable, state transfer covers it
            };
            if e.owner != fg.owner || matches!(e.header.sig, ezbft_crypto::Signature::Null) {
                continue; // adopted without an original signed header
            }
            out.send(
                from,
                Msg::SpecOrder(SpecOrder {
                    body: e.header.body.clone(),
                    sig: e.header.sig.clone(),
                    reqs: e.reqs.clone(),
                }),
            );
            resent += 1;
        }
        if resent > 0 && self.rec.enabled() {
            self.rec.counter("replica.gap_fills_served", resent);
        }
    }

    // ------------------------------------------------------------------
    // Follower path (§IV-A step 3)
    // ------------------------------------------------------------------

    fn on_spec_order(&mut self, so: SpecOrder<A::Command>, from: NodeId, out: &mut Out<A>) {
        let space_id = so.body.inst.space;
        if !self.cfg.cluster.contains(space_id) {
            self.stats.rejected += 1;
            return;
        }
        let leader = so.body.owner.owner(&self.cfg.cluster);
        // Only the current owner of a space may order into it, and the
        // message must come from that owner.
        if from != NodeId::Replica(leader) {
            self.stats.rejected += 1;
            return;
        }
        {
            let space = &self.spaces[space_id.index()];
            if space.frozen || space.committed_to_change || so.body.owner != space.owner {
                self.stats.rejected += 1;
                return;
            }
        }
        // Verify the leader's signature, the batch shape, and every
        // embedded client request against its signed digest.
        if self
            .keys
            .verify(NodeId::Replica(leader), &so.body.signed_payload(), &so.sig)
            .is_err()
        {
            self.stats.rejected += 1;
            return;
        }
        // An empty batch is a checkpoint *barrier* (DESIGN.md §6); any
        // other count mismatch between requests and signed digests is
        // malformed.
        if so.reqs.len() != so.body.req_digests.len() {
            self.stats.rejected += 1;
            return;
        }
        for (req, digest) in so.reqs.iter().zip(&so.body.req_digests) {
            let payload = Request::signed_payload(req.client, req.ts, &req.cmd);
            if self
                .keys
                .verify(NodeId::Client(req.client), &payload, &req.sig)
                .is_err()
                || req.digest() != *digest
            {
                self.stats.rejected += 1;
                return;
            }
        }

        let slot = so.body.inst.slot;
        let space = &mut self.spaces[space_id.index()];
        if slot < space.next_slot {
            // Duplicate of an accepted slot: refresh every client's reply
            // (and, under aggregation, the leader's instance-level ack —
            // the original may have been lost).
            if space.entries.contains_key(&slot) {
                let inst = so.body.inst;
                for offset in 0..so.reqs.len() {
                    self.send_spec_reply(inst.at(offset as u32), out);
                }
                if !so.reqs.is_empty() {
                    self.send_spec_ack(inst, out);
                }
            }
            return;
        }
        if slot > space.next_slot {
            // Gap: buffer until contiguous (the quasi-reliable network may
            // reorder, §II). Beyond the paper, NACK the missing range to
            // the space's leader so a *lost* SPECORDER is refilled
            // directly instead of waiting for client retransmission or an
            // owner change (gap-fill protocol, DESIGN.md §5a). One NACK
            // per observed gap front: a burst of buffered orders behind
            // one hole produces a single FILLGAP.
            let front = space.next_slot;
            let owner = space.owner;
            space.pending_orders.insert(slot, so);
            let to_slot = space
                .pending_orders
                .range(front..slot)
                .next()
                .map(|(s, _)| *s)
                .unwrap_or(slot);
            if self.cfg.gap_fill && self.gap_nacks.get(&space_id) != Some(&front) {
                self.gap_nacks.insert(space_id, front);
                self.send_fill_gap(space_id, owner, front, to_slot, out);
            }
            return;
        }
        self.accept_spec_order(so, out);
        // Drain any now-contiguous buffered orders.
        loop {
            let space = &mut self.spaces[space_id.index()];
            let Some(next) = space.pending_orders.remove(&space.next_slot) else {
                break;
            };
            self.accept_spec_order(next, out);
        }
    }

    /// Validated, contiguous SPECORDER: extend deps, spec-execute, reply.
    fn accept_spec_order(&mut self, so: SpecOrder<A::Command>, out: &mut Out<A>) {
        let inst = so.body.inst;
        let space_id = inst.space;

        // The leader's space digest must match ours at this point; a
        // mismatch means the leader equivocated on an earlier slot.
        {
            let space = &self.spaces[space_id.index()];
            if so.body.log_digest != space.log_digest {
                self.stats.rejected += 1;
                return;
            }
        }

        // The message is decomposed by move: the body/signature become the
        // retained header and the Arc'd batch is adopted as-is — accepting
        // an order copies no request payloads (DESIGN.md §7).
        let SpecOrder { body, sig, reqs } = so;

        // D' = D ∪ (local interfering instances ∖ D); S' = max(S, 1 + max
        // seq of the locally known interfering commands) (§IV-A step 3).
        // The union runs over every command in the batch. A barrier (empty
        // batch) interferes with everything: its local extension is the
        // whole dependency frontier.
        let mut local = BTreeSet::new();
        if reqs.is_empty() {
            local.extend(self.deps.collect_and_register_barrier(inst));
        }
        for req in reqs.iter() {
            local.extend(
                self.deps
                    .collect_and_register(inst, &req.cmd.conflict_keys()),
            );
        }
        let seq = body.seq.max(1 + self.max_seq_of(&local));
        let mut deps = body.deps.clone();
        deps.extend(local);
        deps.remove(&inst);

        let mut spec_responses = Vec::with_capacity(reqs.len());
        for (offset, req) in reqs.iter().enumerate() {
            let at = inst.at(offset as u32);
            spec_responses.push(self.engine.spec_apply(at.tag(), &req.cmd));
            let record = self.clients.entry(req.client).or_default();
            if req.ts > record.last_ts {
                record.last_ts = req.ts;
                record.last_at = Some(at);
            }
            record.live.push((req.ts, at));
        }

        {
            let space = &mut self.spaces[space_id.index()];
            for d in &body.req_digests {
                space.log_digest = space.log_digest.chain(d);
            }
        }
        let owner = body.owner;
        let batch_digest = body.batch_digest();
        let entry = Entry {
            reqs: Arc::clone(&reqs),
            owner,
            deps,
            seq,
            status: EntryStatus::SpecOrdered,
            spec_responses: Some(spec_responses),
            final_responses: vec![None; reqs.len()],
            reply_on_final: BTreeSet::new(),
            header: SpecOrderHeader { body, sig },
            batch_digest,
            commit_evidence: None,
        };
        let space = &mut self.spaces[space_id.index()];
        space.entries.insert(inst.slot, entry);
        space.next_slot = inst.slot + 1;
        self.stats.followed += 1;
        if self.rec.enabled() {
            self.rec.counter("replica.followed", 1);
            let now = out.now().as_micros();
            let digests = &self.spaces[space_id.index()].entries[&inst.slot]
                .header
                .body
                .req_digests;
            for (req, digest) in reqs.iter().zip(digests) {
                self.rec
                    .stage(span_key(req.client, digest), Stage::SpecOrderAccept, now);
            }
        }

        for (offset, req) in reqs.iter().enumerate() {
            self.send_spec_reply(inst.at(offset as u32), out);
            self.cancel_resend_wait(req.client, req.ts, out);
        }
        if reqs.is_empty() {
            // Barriers have no clients: acknowledge to the barrier leader,
            // who plays the certificate-collecting role.
            self.send_barrier_ack(inst, out);
        } else {
            // Under aggregation the leader additionally collects one
            // instance-level acknowledgement per follower (DESIGN.md §7).
            self.send_spec_ack(inst, out);
        }

        // A commit decision may have arrived before the SPECORDER: adopt
        // its certificate so the entry is not downgraded to spec-ordered
        // in owner-change reports or state-transfer suffixes.
        let pending = self.spaces[space_id.index()]
            .pending_commits
            .remove(&inst.slot);
        if let Some(pc) = pending {
            if let Some(ev) = pc.evidence {
                if let Some(entry) = self.spaces[space_id.index()].entries.get_mut(&inst.slot) {
                    entry.commit_evidence.get_or_insert(ev);
                }
            }
            self.commit_entry(inst, pc.deps, pc.seq, pc.reply_offsets, out);
        }
    }

    /// Sends the speculative reply for the request at batch position `at`
    /// to its issuing client.
    fn send_spec_reply(&mut self, at: ExecRef, out: &mut Out<A>) {
        let Some(entry) = self.spaces[at.inst.space.index()]
            .entries
            .get(&at.inst.slot)
        else {
            return;
        };
        let Some(req) = entry.req_at(at.offset) else {
            return;
        };
        let (client, ts, req_digest) = (req.client, req.ts, req.digest());
        let body = SpecReplyBody {
            owner: entry.owner,
            inst: at.inst,
            offset: at.offset,
            deps: entry.deps.clone(),
            seq: entry.seq,
            req_digest,
            client,
            ts,
        };
        let Some(responses) = &entry.spec_responses else {
            // Speculation was invalidated (divergent commit decision); the
            // client will be answered by COMMITREPLY after final execution.
            return;
        };
        let response = responses[at.offset as usize].clone();
        let header = entry.header.clone();
        let payload = SpecReply::<A::Command, A::Response>::signed_payload(&body, &response);
        let sig = self.keys.sign(&payload, &self.reply_audience(client));
        let mut reply = SpecReply::new(body, self.id, response, sig, header);
        // Attach any COMMITCONFIRMs waiting for this client (self-signed,
        // outside the reply's signed payload; DESIGN.md §7).
        if let Some(confirms) = self.pending_confirms.remove(&client) {
            reply.confirms = confirms;
        }
        self.clients.entry(client).or_default().cached_spec = Some(reply.clone());
        out.send(NodeId::Client(client), Msg::SpecReply(reply));
    }

    // ------------------------------------------------------------------
    // Instance-level commit aggregation (DESIGN.md §7)
    // ------------------------------------------------------------------

    /// Acknowledges a (locally accepted, non-barrier) instance to its
    /// command-leader with our extended `(D′, S′)` and the batch digest —
    /// the instance-level sibling of the per-request SPECREPLY. No-op
    /// unless aggregation is enabled.
    fn send_spec_ack(&mut self, inst: InstanceId, out: &mut Out<A>) {
        if !self.cfg.commit_aggregation {
            return;
        }
        let Some(entry) = self.spaces[inst.space.index()].entries.get(&inst.slot) else {
            return;
        };
        if entry.reqs.is_empty() || entry.status.is_committed() {
            return; // barriers use BarrierAck; committed needs no ack
        }
        let (owner, deps, seq) = (entry.owner, entry.deps.clone(), entry.seq);
        let batch_digest = entry.batch_digest;
        let payload = SpecAck::signed_payload(owner, inst, &deps, seq, batch_digest);
        let sig = self
            .keys
            .sign(&payload, &Audience::replicas(self.cfg.cluster.n()));
        let ack = SpecAck {
            owner,
            inst,
            deps,
            seq,
            batch_digest,
            sender: self.id,
            sig,
        };
        let leader = owner.owner(&self.cfg.cluster);
        if leader == self.id {
            self.record_spec_ack(ack, out);
        } else {
            out.send(NodeId::Replica(leader), Msg::SpecAck(ack));
        }
    }

    fn on_spec_ack(&mut self, ack: SpecAck, from: NodeId, out: &mut Out<A>) {
        if from != NodeId::Replica(ack.sender) || !self.cfg.cluster.contains(ack.sender) {
            self.stats.rejected += 1;
            return;
        }
        let payload =
            SpecAck::signed_payload(ack.owner, ack.inst, &ack.deps, ack.seq, ack.batch_digest);
        if self
            .keys
            .verify(NodeId::Replica(ack.sender), &payload, &ack.sig)
            .is_err()
        {
            self.stats.rejected += 1;
            return;
        }
        self.record_spec_ack(ack, out);
    }

    /// Tallies an instance-level acknowledgement as the command-leader; at
    /// `3f + 1` *matching* acks (the fast-path condition of §IV-A step 4.1
    /// with the leader as collector) the certificate is broadcast as one
    /// COMMITAGG covering the whole batch, and each client is sent a
    /// COMMITCONFIRM disarming its COMMITFAST fallback.
    fn record_spec_ack(&mut self, ack: SpecAck, out: &mut Out<A>) {
        if !self.cfg.commit_aggregation {
            return;
        }
        let inst = ack.inst;
        if inst.space != self.id || ack.owner.owner(&self.cfg.cluster) != self.id {
            return; // not our instance to commit
        }
        {
            let Some(entry) = self.spaces[inst.space.index()].entries.get(&inst.slot) else {
                return;
            };
            if entry.reqs.is_empty()
                || entry.owner != ack.owner
                || entry.status.is_committed()
                || ack.batch_digest != entry.batch_digest
            {
                return;
            }
        }
        let acks = self.spec_acks.entry(inst).or_default();
        if acks.iter().any(|a| a.sender == ack.sender) {
            return;
        }
        acks.push(ack);
        let fast_quorum = self.cfg.cluster.fast_quorum();
        if acks.len() < fast_quorum {
            return;
        }
        // Group by the signed projection; a full fast quorum must agree.
        let mut groups: HashMap<Digest, Vec<usize>> = HashMap::new();
        for (i, a) in acks.iter().enumerate() {
            let key = Digest::of(&SpecAck::signed_payload(
                a.owner,
                a.inst,
                &a.deps,
                a.seq,
                a.batch_digest,
            ));
            groups.entry(key).or_default().push(i);
        }
        let (cc, fast): (Vec<SpecAck>, bool) =
            match groups.iter().find(|(_, m)| m.len() >= fast_quorum) {
                Some((_, members)) => {
                    let acks = self.spec_acks.remove(&inst).expect("tallied above");
                    (members.iter().map(|&i| acks[i].clone()).collect(), true)
                }
                None => {
                    // Unequal views (contention): combine by union/max over
                    // the *designated* slow quorum's acks — the §IV-C
                    // slow-path rule with the leader as collector (the
                    // commit-aggregation slow rung, DESIGN.md §7) — instead
                    // of leaving commitment to the clients' COMMIT fallback.
                    // Restricting the combination to the designated members
                    // makes it identical to what any client computes from
                    // the same replicas' SPECREPLYs, so the two deciders
                    // can never certify the same instance with different
                    // `(deps, seq)`.
                    let designated = self.cfg.designated_slow_quorum(self.id);
                    let chosen: Vec<SpecAck> = acks
                        .iter()
                        .filter(|a| designated.contains(a.sender))
                        .cloned()
                        .collect();
                    if chosen.len() < self.cfg.cluster.slow_quorum() {
                        return;
                    }
                    self.spec_acks.remove(&inst);
                    self.rec.counter("replica.agg_slow_commits", 1);
                    (chosen, false)
                }
            };
        // Union/max combination: on the fast rung every ack matches, so
        // this equals the common (deps, seq) exactly.
        let mut deps: BTreeSet<InstanceId> = BTreeSet::new();
        let mut seq = 0u64;
        for a in &cc {
            deps.extend(a.deps.iter().copied());
            seq = seq.max(a.seq);
        }
        // Slow-rung certificates keep the explicit vote form: non-matching
        // acks sign different payloads and cannot share one aggregate.
        let cert = if fast {
            self.build_ack_cert(cc)
        } else {
            AckCert::Votes(cc)
        };
        if let Some(entry) = self.spaces[inst.space.index()].entries.get_mut(&inst.slot) {
            entry.commit_evidence = Some(Evidence::AggCommit { acks: cert.clone() });
        }
        let ca = CommitAgg {
            inst,
            deps: deps.clone(),
            seq,
            cc: cert,
        };
        let peers: Vec<ReplicaId> = self.cfg.cluster.peers(self.id).collect();
        out.broadcast(peers, Msg::CommitAgg(ca));
        // One confirmation per batched client: "your certificate is on the
        // wire" — the clients already hold their fast-path responses.
        // Signed now, but delivered by piggybacking on the next SPECREPLY
        // this replica owes the client rather than as a dedicated message
        // (DESIGN.md §7): closed-loop clients always have a next request in
        // flight, and a confirm that never finds a ride is covered by the
        // client's COMMITFAST fallback.
        let confirms: Vec<(ClientId, Timestamp)> = self.spaces[inst.space.index()].entries
            [&inst.slot]
            .reqs
            .iter()
            .map(|r| (r.client, r.ts))
            .collect();
        for (client, ts) in confirms {
            let payload = CommitConfirm::signed_payload(inst, client, ts);
            let sig = self
                .keys
                .sign(&payload, &Audience::nodes([NodeId::Client(client)]));
            self.pending_confirms
                .entry(client)
                .or_default()
                .push(CommitConfirm {
                    inst,
                    client,
                    ts,
                    sender: self.id,
                    sig,
                });
        }
        if self.confirm_flush_timer.is_none() {
            // A quiet client (no further request, hence no SPECREPLY to
            // ride) must still be confirmed before its fallback fires;
            // a quarter of the fallback delay leaves ample margin.
            let delay = Micros(self.cfg.commit_fallback.as_micros() / 4);
            let id = self.arm_timer(ReplicaTimer::ConfirmFlush, delay, out);
            self.confirm_flush_timer = Some(id);
        }
        self.stats.agg_commits += 1;
        if self.rec.enabled() {
            self.rec.counter("replica.agg_commits", 1);
            let now = out.now().as_micros();
            let entry = &self.spaces[inst.space.index()].entries[&inst.slot];
            for (req, digest) in entry.reqs.iter().zip(&entry.header.body.req_digests) {
                self.rec
                    .stage(span_key(req.client, digest), Stage::AckCollect, now);
            }
        }
        self.commit_entry(inst, deps, seq, BTreeSet::new(), out);
    }

    /// Packages a matching ack quorum as a certificate: the compact
    /// aggregate form (one aggregate signature plus a signer bitmap,
    /// DESIGN.md §10) when enabled and the provider supports it, the
    /// explicit vote vector otherwise. Callers must pass a *matching*
    /// quorum — every ack signing the same payload — or the aggregate
    /// would not verify.
    fn build_ack_cert(&self, cc: Vec<SpecAck>) -> AckCert {
        if self.cfg.compact_certs && self.keys.supports_aggregation() {
            let sigs: Vec<&ezbft_crypto::Signature> = cc.iter().map(|a| &a.sig).collect();
            if let Ok(agg) = self.keys.aggregate(&sigs) {
                let first = &cc[0];
                return AckCert::Compact(CompactAck {
                    owner: first.owner,
                    batch_digest: first.batch_digest,
                    signers: SignerBitmap::from_indices(cc.iter().map(|a| a.sender.index())),
                    agg,
                });
            }
        }
        AckCert::Votes(cc)
    }

    /// A command-leader's aggregated certificate: verify the `3f + 1`
    /// matching acks and commit the whole batch (buffering if the
    /// SPECORDER has not arrived yet, certificate carried along).
    fn on_commit_agg(&mut self, ca: CommitAgg, out: &mut Out<A>) {
        let inst = ca.inst;
        if !self.cfg.cluster.contains(inst.space)
            || !verify_agg_certificate(
                &mut self.keys,
                &self.cfg,
                inst,
                &ca.deps,
                ca.seq,
                None,
                &ca.cc,
            )
        {
            self.stats.rejected += 1;
            return;
        }
        let space = &mut self.spaces[inst.space.index()];
        if let Some(entry) = space.entries.get(&inst.slot) {
            // The certificate must cover the batch we accepted.
            if ca.cc.batch_digest() != Some(entry.batch_digest) {
                self.stats.rejected += 1;
                return;
            }
        } else {
            let pc = space
                .pending_commits
                .entry(inst.slot)
                .or_insert_with(|| PendingCommit {
                    deps: ca.deps,
                    seq: ca.seq,
                    reply_offsets: BTreeSet::new(),
                    evidence: None,
                });
            pc.evidence
                .get_or_insert(Evidence::AggCommit { acks: ca.cc });
            return;
        }
        if let Some(entry) = space.entries.get_mut(&inst.slot) {
            if entry.commit_evidence.is_none() {
                entry.commit_evidence = Some(Evidence::AggCommit { acks: ca.cc });
            }
        }
        self.stats.agg_commits += 1;
        self.commit_entry(inst, ca.deps, ca.seq, BTreeSet::new(), out);
    }

    // ------------------------------------------------------------------
    // Commitment (§IV-A step 5.1, §IV-C step 5.2)
    // ------------------------------------------------------------------

    fn on_commit_fast(&mut self, cf: CommitFast<A::Command, A::Response>, out: &mut Out<A>) {
        let Some((deps, seq)) = self.validate_fast_certificate(cf.inst, &cf.cc) else {
            self.stats.rejected += 1;
            return;
        };
        let space = &mut self.spaces[cf.inst.space.index()];
        if !space.entries.contains_key(&cf.inst.slot) {
            let pc = space
                .pending_commits
                .entry(cf.inst.slot)
                .or_insert_with(|| PendingCommit {
                    deps,
                    seq,
                    reply_offsets: BTreeSet::new(),
                    evidence: None,
                });
            pc.evidence
                .get_or_insert(Evidence::FastCommit { replies: cf.cc });
            return;
        }
        if let Some(entry) = space.entries.get_mut(&cf.inst.slot) {
            if entry.commit_evidence.is_none() {
                entry.commit_evidence = Some(Evidence::FastCommit { replies: cf.cc });
            }
        }
        self.commit_entry(cf.inst, deps, seq, BTreeSet::new(), out);
        self.stats.fast_commits += 1;
        self.rec.counter("replica.fast_commits", 1);
    }

    fn on_commit(&mut self, cm: Commit<A::Command, A::Response>, out: &mut Out<A>) {
        if self
            .keys
            .verify(
                NodeId::Client(cm.body.client),
                &cm.body.signed_payload(),
                &cm.sig,
            )
            .is_err()
        {
            self.stats.rejected += 1;
            return;
        }
        if !self.validate_slow_certificate(&cm.body.inst, &cm.body.deps, cm.body.seq, &cm.cc) {
            self.stats.rejected += 1;
            return;
        }
        let inst = cm.body.inst;
        // The committing client's batch offset, from the certificate's
        // replies (all replies were validated to agree on it).
        let reply_offset = cm.cc.first().map(|r| r.body.offset);
        let space = &mut self.spaces[inst.space.index()];
        if !space.entries.contains_key(&inst.slot) {
            // Merge with any earlier pending decision: the first (deps,
            // seq) wins, reply obligations accumulate across clients, the
            // first certificate is carried through to the entry.
            let pc = space
                .pending_commits
                .entry(inst.slot)
                .or_insert_with(|| PendingCommit {
                    deps: cm.body.deps.clone(),
                    seq: cm.body.seq,
                    reply_offsets: BTreeSet::new(),
                    evidence: None,
                });
            pc.reply_offsets.extend(reply_offset);
            pc.evidence.get_or_insert(Evidence::SlowCommit {
                body: cm.body.clone(),
                sig: cm.sig.clone(),
            });
            return;
        }
        if let Some(entry) = space.entries.get_mut(&inst.slot) {
            if entry.commit_evidence.is_none() {
                entry.commit_evidence = Some(Evidence::SlowCommit {
                    body: cm.body.clone(),
                    sig: cm.sig.clone(),
                });
            }
        }
        self.commit_entry(
            inst,
            cm.body.deps,
            cm.body.seq,
            reply_offset.into_iter().collect(),
            out,
        );
        self.stats.slow_commits += 1;
        self.rec.counter("replica.slow_commits", 1);
    }

    /// Checks a fast-path certificate: `3f + 1` matching, validly signed
    /// SPECREPLYs from distinct replicas — either the explicit vote vector
    /// or its compact aggregate form (DESIGN.md §10). Returns the agreed
    /// (deps, seq).
    fn validate_fast_certificate(
        &mut self,
        inst: InstanceId,
        cert: &ReplyCert<A::Command, A::Response>,
    ) -> Option<(BTreeSet<InstanceId>, u64)> {
        let cc = match cert {
            ReplyCert::Votes(cc) => cc,
            ReplyCert::Compact(c) => {
                if c.signers.count() < self.cfg.cluster.fast_quorum() || c.body.inst != inst {
                    return None;
                }
                let signers = bitmap_signers(&self.cfg, &c.signers)?;
                let payload =
                    SpecReply::<A::Command, A::Response>::signed_payload(&c.body, &c.response);
                self.keys.verify_agg(&signers, &payload, &c.agg).ok()?;
                return Some((c.body.deps.clone(), c.body.seq));
            }
        };
        if cc.len() < self.cfg.cluster.fast_quorum() {
            return None;
        }
        let mut senders = BTreeSet::new();
        let first = cc.first()?;
        let mut key = None;
        for reply in cc {
            // One encoding per reply serves both the match key and the
            // signature check (DESIGN.md §7).
            let payload =
                SpecReply::<A::Command, A::Response>::signed_payload(&reply.body, &reply.response);
            let reply_key = Digest::of(&payload);
            if reply.body.inst != inst
                || reply.body.offset != first.body.offset
                || *key.get_or_insert(reply_key) != reply_key
            {
                return None;
            }
            if !senders.insert(reply.sender) {
                return None;
            }
            if self
                .keys
                .verify(NodeId::Replica(reply.sender), &payload, &reply.sig)
                .is_err()
            {
                return None;
            }
        }
        if senders.len() < self.cfg.cluster.fast_quorum() {
            return None;
        }
        let first = cc.first()?;
        Some((first.body.deps.clone(), first.body.seq))
    }

    /// Checks a slow-path certificate: `2f + 1` validly signed SPECREPLYs
    /// from distinct replicas whose union/max matches the decision. The
    /// client *prefers* the leader-designated quorum (§IV-C nitpick, for
    /// deterministic combination under contention) but may certify with
    /// any 2f+1 repliers when designated members are faulty, so the
    /// replica accepts any distinct sender set.
    fn validate_slow_certificate(
        &mut self,
        inst: &InstanceId,
        deps: &BTreeSet<InstanceId>,
        seq: u64,
        cc: &[SpecReply<A::Command, A::Response>],
    ) -> bool {
        if cc.len() < self.cfg.cluster.slow_quorum() {
            return false;
        }
        let Some(first) = cc.first() else {
            return false;
        };
        let mut senders = BTreeSet::new();
        let mut union: BTreeSet<InstanceId> = BTreeSet::new();
        let mut max_seq = 0u64;
        for reply in cc {
            if reply.body.inst != *inst
                || reply.body.offset != first.body.offset
                || reply.body.req_digest != first.body.req_digest
                || reply.body.owner != first.body.owner
            {
                return false;
            }
            if !self.cfg.cluster.contains(reply.sender) || !senders.insert(reply.sender) {
                return false;
            }
            let payload =
                SpecReply::<A::Command, A::Response>::signed_payload(&reply.body, &reply.response);
            if self
                .keys
                .verify(NodeId::Replica(reply.sender), &payload, &reply.sig)
                .is_err()
            {
                return false;
            }
            union.extend(reply.body.deps.iter().copied());
            max_seq = max_seq.max(reply.body.seq);
        }
        senders.len() >= self.cfg.cluster.slow_quorum() && union == *deps && max_seq == seq
    }

    /// Marks `inst` committed with the final (deps, seq); invalidates the
    /// speculative results if the decision differs from the speculation
    /// (§IV-C step 5.2); enqueues final execution. `reply_offset` is the
    /// batch offset whose client requested a COMMITREPLY after final
    /// execution (slow path); with batching, later certificates for an
    /// already-committed instance still register (or immediately answer)
    /// their client's reply.
    fn commit_entry(
        &mut self,
        inst: InstanceId,
        deps: BTreeSet<InstanceId>,
        seq: u64,
        reply_offsets: BTreeSet<u32>,
        out: &mut Out<A>,
    ) {
        {
            let space = &mut self.spaces[inst.space.index()];
            let Some(entry) = space.entries.get_mut(&inst.slot) else {
                return;
            };
            if entry.status.is_committed() {
                // Already committed (another client of the same batch, or a
                // duplicate certificate): only the reply obligations are new.
                if entry.status == EntryStatus::Executed {
                    for offset in reply_offsets {
                        self.send_commit_reply(inst.at(offset), out);
                    }
                } else {
                    entry.reply_on_final.extend(reply_offsets);
                }
                return;
            }
            let speculation_matches = entry.deps == deps && entry.seq == seq;
            if !speculation_matches {
                // "The state produced after the speculative execution of L
                // is invalidated" (§IV-C 5.2) — for every command in the
                // batch, since they share the agreement state.
                for offset in 0..entry.reqs.len() as u32 {
                    self.engine.invalidate(inst.at(offset).tag());
                }
                entry.spec_responses = None;
            }
            entry.deps = deps;
            entry.seq = seq;
            entry.status = EntryStatus::Committed;
            entry.reply_on_final.extend(reply_offsets);
            self.max_seq = self.max_seq.max(seq);
            if self.rec.enabled() {
                let now = out.now().as_micros();
                for (req, digest) in entry.reqs.iter().zip(&entry.header.body.req_digests) {
                    self.rec
                        .stage(span_key(req.client, digest), Stage::Commit, now);
                }
            }
        }
        // Any ack tally for the instance is moot once it committed.
        self.spec_acks.remove(&inst);
        self.committed_pending.insert(inst);
        // Watch dependencies we have not seen committed: a dependency that
        // never commits (phantom or orphaned) must eventually trigger an
        // owner change so the execution of `inst` can proceed.
        let unresolved: Vec<InstanceId> = {
            let entry = &self.spaces[inst.space.index()].entries[&inst.slot];
            entry
                .deps
                .iter()
                .copied()
                .filter(|d| self.dep_needs_watch(*d))
                .collect()
        };
        for dep in unresolved {
            if self.dep_waits.contains_key(&dep) {
                continue;
            }
            let id = self.arm_timer(ReplicaTimer::DepWait { dep }, self.cfg.resend_timeout, out);
            self.dep_waits.insert(dep, id);
        }
        self.try_execute(out);
    }

    /// Whether dependency `d` still needs a watchdog: it is neither
    /// committed/executed locally nor permanently resolved as a phantom
    /// (its space froze without recovering the slot). Spec-ordered-only
    /// dependencies are watched too — their client may be gone, in which
    /// case only an owner change can commit or discard them.
    fn dep_needs_watch(&self, d: InstanceId) -> bool {
        let space = &self.spaces[d.space.index()];
        if d.slot < space.compact_floor {
            return false;
        }
        match space.entries.get(&d.slot) {
            Some(e) => !e.status.is_committed(),
            None => !space.frozen,
        }
    }

    // ------------------------------------------------------------------
    // Final execution (§IV-B)
    // ------------------------------------------------------------------

    fn try_execute(&mut self, out: &mut Out<A>) {
        if self.committed_pending.is_empty() {
            return;
        }
        let mut nodes: BTreeMap<InstanceId, ExecNode> = BTreeMap::new();
        for &inst in &self.committed_pending {
            if let Some(entry) = self.spaces[inst.space.index()].entries.get(&inst.slot) {
                nodes.insert(
                    inst,
                    ExecNode {
                        seq: entry.seq,
                        deps: entry.deps.clone(),
                    },
                );
            }
        }
        let spaces = &self.spaces;
        let units = execution_units(&nodes, |d| {
            let space = &spaces[d.space.index()];
            if d.slot < space.compact_floor {
                return true; // compacted ⇒ executed long ago
            }
            match space.entries.get(&d.slot) {
                Some(e) => e.status == EntryStatus::Executed,
                // A dependency absent from a frozen space is a phantom: the
                // owner change recovered the space without it, so it can
                // never commit anywhere. All correct replicas adopt the
                // same recovered history, so this resolution is uniform.
                None => space.frozen,
            }
        });
        if self.cfg.exec_workers <= 1 {
            // The sequential engine: the pre-engine behaviour, preserved
            // bit-for-bit (DESIGN.md §8).
            let before = self.stats.executed;
            for inst in units.into_iter().flatten() {
                self.execute_one(inst, out);
            }
            if self.cfg.exec_cost_us > 0 {
                let n = self.stats.executed - before;
                out.work(Micros(n * self.cfg.exec_cost_us));
            }
        } else {
            self.execute_units_parallel(units, out);
        }
        self.maybe_lead_barrier(out);
    }

    /// Drains a wave of execution units through the parallel engine
    /// (DESIGN.md §8). Checkpoint barriers segment the wave: a barrier
    /// interferes with everything by construction and its execution
    /// snapshots the state, so every unit before it must fully apply first
    /// and it runs through the sequential path.
    fn execute_units_parallel(&mut self, units: Vec<Vec<InstanceId>>, out: &mut Out<A>) {
        let mut segment: Vec<Vec<InstanceId>> = Vec::new();
        for unit in units {
            let has_barrier = unit.iter().any(|inst| {
                self.spaces[inst.space.index()]
                    .entries
                    .get(&inst.slot)
                    .map(|e| e.reqs.is_empty())
                    .unwrap_or(false)
            });
            if has_barrier {
                self.execute_segment(std::mem::take(&mut segment), out);
                for inst in unit {
                    self.execute_one(inst, out);
                }
            } else {
                segment.push(unit);
            }
        }
        self.execute_segment(segment, out);
    }

    /// Executes one barrier-free run of units: a sequential prologue makes
    /// every exactly-once decision in flattened unit order, the worker pool
    /// applies the surviving commands respecting conflict-key interference,
    /// and a sequential epilogue publishes responses, the executed log and
    /// replies — again in flattened unit order, so everything observable is
    /// deterministic regardless of the physical schedule (DESIGN.md §8).
    fn execute_segment(&mut self, unit_insts: Vec<Vec<InstanceId>>, out: &mut Out<A>) {
        if unit_insts.is_empty() {
            return;
        }

        /// What the prologue decided for one batch position.
        enum Decision<R> {
            /// Fresh request: index of its singleton [`ExecUnit`] in the
            /// wave-wide unit list.
            Apply(usize),
            /// Duplicate at the client's executed watermark: reply with the
            /// cached response (`Some`), or with the response the watermark
            /// holder produces earlier in this very wave (`None`).
            Replay(Option<R>),
            /// Below the watermark: terminal no-op.
            Stale,
        }
        struct Pos<R> {
            at: ExecRef,
            client: ClientId,
            ts: Timestamp,
            wants_reply: bool,
            decision: Decision<R>,
            /// Lifecycle span key, populated only when telemetry is on.
            key: Option<ezbft_obs::SpanKey>,
        }
        let telemetry_on = self.rec.enabled();
        let now_us = out.now().as_micros();

        // --- Prologue: exactly-once decisions, watermark updates. ---
        // Every surviving command becomes a *singleton* unit: the per-key
        // conflict chains in [`ezbft_smr::unit_dependencies`] already pin
        // interfering commands to the wave's flattened (canonical SCC)
        // order, while commuting commands — including those inside one
        // batch — are free to run on different workers.
        let mut exec_units: Vec<ExecUnit<A::Command>> = Vec::new();
        let mut plan: Vec<Vec<Pos<A::Response>>> = Vec::with_capacity(unit_insts.len());
        // Clients whose executed watermark was raised by *this* wave's
        // prologue (their response materialises in the epilogue).
        let mut wave_applied: HashMap<ClientId, Timestamp> = HashMap::new();
        for unit in &unit_insts {
            let mut positions: Vec<Pos<A::Response>> = Vec::new();
            for &inst in unit {
                self.committed_pending.remove(&inst);
                let (reqs, reply_set, digests) = {
                    let entry = self.spaces[inst.space.index()]
                        .entries
                        .get(&inst.slot)
                        .expect("executing a known entry");
                    let digests = if telemetry_on {
                        entry.header.body.req_digests.clone()
                    } else {
                        Vec::new()
                    };
                    (
                        Arc::clone(&entry.reqs),
                        entry.reply_on_final.clone(),
                        digests,
                    )
                };
                for (offset, req) in reqs.iter().enumerate() {
                    let at = inst.at(offset as u32);
                    let record = self.clients.entry(req.client).or_default();
                    let decision = if req.ts > record.executed_ts {
                        record.executed_ts = req.ts;
                        wave_applied.insert(req.client, req.ts);
                        exec_units.push(ExecUnit::from_items(vec![ExecItem {
                            tag: at.tag(),
                            cmd: req.cmd.clone(),
                        }]));
                        Decision::Apply(exec_units.len() - 1)
                    } else if req.ts == record.executed_ts {
                        self.engine.invalidate(at.tag());
                        if wave_applied.get(&req.client) == Some(&req.ts) {
                            Decision::Replay(None)
                        } else if let Some(r) = self
                            .clients
                            .get(&req.client)
                            .and_then(|rec| rec.executed_response.clone())
                        {
                            Decision::Replay(Some(r))
                        } else {
                            Decision::Stale
                        }
                    } else {
                        self.engine.invalidate(at.tag());
                        Decision::Stale
                    };
                    let key = digests.get(offset).map(|d| span_key(req.client, d));
                    if let Some(k) = key {
                        self.rec.stage(k, Stage::ExecReady, now_us);
                    }
                    positions.push(Pos {
                        at,
                        client: req.client,
                        ts: req.ts,
                        wants_reply: reply_set.contains(&at.offset),
                        decision,
                        key,
                    });
                }
            }
            plan.push(positions);
        }

        // --- Parallel apply on the final state. ---
        let flat_tags: Vec<u128> = exec_units
            .iter()
            .flat_map(|u| u.items.iter().map(|it| it.tag))
            .collect();
        let pool = ParallelExecutor::new(self.cfg.exec_workers)
            // The modelled per-command cost doubles as the profitability
            // hint (a zero hint keeps the engine's default).
            .with_cost_hint(Micros(self.cfg.exec_cost_us))
            .with_recorder(Arc::clone(&self.rec));
        let results: Vec<Vec<A::Response>> = self
            .engine
            .final_apply_batch(&flat_tags, |state| pool.execute(state, &exec_units));
        if self.cfg.exec_cost_us > 0 {
            out.work(estimate_makespan(
                &exec_units,
                self.cfg.exec_workers,
                Micros(self.cfg.exec_cost_us),
            ));
        }

        // --- Epilogue: publish in flattened unit order. ---
        for (unit, positions) in unit_insts.iter().zip(plan) {
            for pos in positions {
                let response = match pos.decision {
                    Decision::Apply(idx) => {
                        let r = results[idx][0].clone();
                        let record = self.clients.entry(pos.client).or_default();
                        record.executed_response = Some(r.clone());
                        self.applied_log.push(pos.at);
                        r
                    }
                    Decision::Replay(Some(r)) => r,
                    Decision::Replay(None) => self
                        .clients
                        .get(&pos.client)
                        .and_then(|rec| rec.executed_response.clone())
                        .expect("watermark holder applied earlier in this wave"),
                    Decision::Stale => continue,
                };
                {
                    let entry = self.spaces[pos.at.inst.space.index()]
                        .entries
                        .get_mut(&pos.at.inst.slot)
                        .expect("entry exists");
                    entry.final_responses[pos.at.offset as usize] = Some(response.clone());
                }
                self.executed_log.push(pos.at);
                self.stats.executed += 1;
                self.executed_since_ckpt += 1;
                self.executed_since_barrier += 1;
                if let Some(k) = pos.key {
                    self.rec.counter("replica.executed", 1);
                    self.rec.stage(k, Stage::ExecDone, now_us);
                }

                let stale: Vec<ExecRef> = {
                    let record = self.clients.entry(pos.client).or_default();
                    let stale = record
                        .live
                        .iter()
                        .filter(|(ts, dup)| *ts <= pos.ts && *dup != pos.at)
                        .map(|(_, dup)| *dup)
                        .collect();
                    record.live.retain(|(ts, _)| *ts > pos.ts);
                    stale
                };
                for dup in stale {
                    self.neutralise_if_stale(dup.inst);
                }

                if pos.wants_reply {
                    let payload = CommitReply::<A::Response>::signed_payload(
                        pos.at.inst,
                        pos.client,
                        pos.ts,
                        &response,
                    );
                    let sig = self
                        .keys
                        .sign(&payload, &Audience::nodes([NodeId::Client(pos.client)]));
                    let reply = CommitReply {
                        inst: pos.at.inst,
                        client: pos.client,
                        ts: pos.ts,
                        response,
                        sender: self.id,
                        sig,
                    };
                    self.clients.entry(pos.client).or_default().cached_commit = Some(reply.clone());
                    out.send(NodeId::Client(pos.client), Msg::CommitReply(reply));
                }
            }
            for &inst in unit {
                let entry = self.spaces[inst.space.index()]
                    .entries
                    .get_mut(&inst.slot)
                    .expect("entry exists");
                entry.status = EntryStatus::Executed;
                self.maybe_compact(inst.space);
            }
        }
    }

    fn execute_one(&mut self, inst: InstanceId, out: &mut Out<A>) {
        self.committed_pending.remove(&inst);
        let batch_len = {
            let entry = self.spaces[inst.space.index()]
                .entries
                .get(&inst.slot)
                .expect("executing a known entry");
            entry.reqs.len()
        };
        // Commands inside a batch execute in offset order — the same
        // deterministic order at every replica (DESIGN.md §3).
        for offset in 0..batch_len as u32 {
            self.execute_offset(inst.at(offset), out);
        }
        let entry = self.spaces[inst.space.index()]
            .entries
            .get_mut(&inst.slot)
            .expect("entry exists");
        entry.status = EntryStatus::Executed;
        if batch_len == 0 {
            // A checkpoint barrier reached its final position: every
            // command ordered before it (cluster-wide) has executed, none
            // after — snapshot the consistent cut.
            self.on_barrier_executed(inst, out);
        }
        self.maybe_compact(inst.space);
    }

    /// Executes the single command at batch position `at`, honouring
    /// exactly-once semantics per client timestamp.
    fn execute_offset(&mut self, at: ExecRef, out: &mut Out<A>) {
        let (req, wants_reply) = {
            let entry = self.spaces[at.inst.space.index()]
                .entries
                .get(&at.inst.slot)
                .expect("executing a known entry");
            let req = entry.req_at(at.offset).expect("offset in range").clone();
            (req, entry.reply_on_final.contains(&at.offset))
        };

        // Exactly-once: a duplicate proposal of an already-executed request
        // must not re-apply (§IV-A step 1: timestamps ensure exactly-once).
        let record = self.clients.entry(req.client).or_default();
        let response = if req.ts <= record.executed_ts {
            match record.executed_response.clone() {
                Some(r) if req.ts == record.executed_ts => {
                    self.engine.invalidate(at.tag());
                    r
                }
                _ => {
                    // Stale duplicate below the executed watermark: drop its
                    // speculation and do not reply.
                    self.engine.invalidate(at.tag());
                    return;
                }
            }
        } else {
            let response = self.engine.final_apply(at.tag(), &req.cmd);
            let record = self.clients.entry(req.client).or_default();
            record.executed_ts = req.ts;
            record.executed_response = Some(response.clone());
            self.applied_log.push(at);
            response
        };

        {
            let entry = self.spaces[at.inst.space.index()]
                .entries
                .get_mut(&at.inst.slot)
                .expect("entry exists");
            entry.final_responses[at.offset as usize] = Some(response.clone());
        }
        self.executed_log.push(at);
        self.stats.executed += 1;
        self.executed_since_ckpt += 1;
        self.executed_since_barrier += 1;
        if self.rec.enabled() {
            self.rec.counter("replica.executed", 1);
            let now = out.now().as_micros();
            let body = &self.spaces[at.inst.space.index()].entries[&at.inst.slot]
                .header
                .body;
            if let Some(digest) = body.req_digests.get(at.offset as usize) {
                let key = span_key(req.client, digest);
                self.rec.stage(key, Stage::ExecReady, now);
                self.rec.stage(key, Stage::ExecDone, now);
            }
        }

        // Neutralise duplicate proposals of this (or an older) request so
        // they cannot block dependents: their offsets are terminal no-ops
        // now, and a batch consisting solely of stale duplicates becomes a
        // terminal no-op entry.
        let stale: Vec<ExecRef> = {
            let record = self.clients.entry(req.client).or_default();
            let stale = record
                .live
                .iter()
                .filter(|(ts, dup)| *ts <= req.ts && *dup != at)
                .map(|(_, dup)| *dup)
                .collect();
            record.live.retain(|(ts, _)| *ts > req.ts);
            stale
        };
        for dup in stale {
            self.neutralise_if_stale(dup.inst);
        }

        if wants_reply {
            let payload =
                CommitReply::<A::Response>::signed_payload(at.inst, req.client, req.ts, &response);
            let sig = self
                .keys
                .sign(&payload, &Audience::nodes([NodeId::Client(req.client)]));
            let reply = CommitReply {
                inst: at.inst,
                client: req.client,
                ts: req.ts,
                response,
                sender: self.id,
                sig,
            };
            self.clients.entry(req.client).or_default().cached_commit = Some(reply.clone());
            out.send(NodeId::Client(req.client), Msg::CommitReply(reply));
        }
    }

    /// Sends the COMMITREPLY for an already-executed batch position (a
    /// late commit certificate from another client of the batch).
    fn send_commit_reply(&mut self, at: ExecRef, out: &mut Out<A>) {
        let Some(entry) = self.spaces[at.inst.space.index()]
            .entries
            .get(&at.inst.slot)
        else {
            return;
        };
        let Some(req) = entry.req_at(at.offset) else {
            return;
        };
        let Some(response) = entry
            .final_responses
            .get(at.offset as usize)
            .cloned()
            .flatten()
        else {
            return; // the offset was a stale duplicate: nothing to report
        };
        let (client, ts) = (req.client, req.ts);
        let payload = CommitReply::<A::Response>::signed_payload(at.inst, client, ts, &response);
        let sig = self
            .keys
            .sign(&payload, &Audience::nodes([NodeId::Client(client)]));
        let reply = CommitReply {
            inst: at.inst,
            client,
            ts,
            response,
            sender: self.id,
            sig,
        };
        self.clients.entry(client).or_default().cached_commit = Some(reply.clone());
        out.send(NodeId::Client(client), Msg::CommitReply(reply));
    }

    /// If the uncommitted entry at `inst` consists entirely of requests at
    /// or below their clients' executed watermarks, it can never produce
    /// an effect: mark it terminally executed so dependents stop waiting.
    fn neutralise_if_stale(&mut self, inst: InstanceId) {
        let all_stale = {
            let Some(entry) = self.spaces[inst.space.index()].entries.get(&inst.slot) else {
                return;
            };
            if entry.status == EntryStatus::Executed || entry.reqs.is_empty() {
                return;
            }
            if entry.status == EntryStatus::Committed {
                // Committed entries execute through the normal path; the
                // exactly-once check neutralises their stale offsets there.
                return;
            }
            entry.reqs.iter().all(|r| {
                self.clients
                    .get(&r.client)
                    .map(|rec| r.ts <= rec.executed_ts)
                    .unwrap_or(false)
            })
        };
        if !all_stale {
            return;
        }
        let entry = self.spaces[inst.space.index()]
            .entries
            .get_mut(&inst.slot)
            .expect("checked above");
        let len = entry.reqs.len() as u32;
        entry.status = EntryStatus::Executed;
        for offset in 0..len {
            self.engine.invalidate(inst.at(offset).tag());
        }
        self.committed_pending.remove(&inst);
    }

    // ------------------------------------------------------------------
    // Checkpointing: barriers, votes, stability (DESIGN.md §6)
    // ------------------------------------------------------------------

    /// Leads a checkpoint barrier when one is due: the executed-command
    /// counter crossed the interval, no own barrier is in flight, and this
    /// replica is the round-robin designated proposer for the next
    /// checkpoint (anyone steps in after a full extra interval, in case
    /// the designated proposer is crashed or its space frozen).
    fn maybe_lead_barrier(&mut self, out: &mut Out<A>) {
        let interval = self.cfg.checkpoint_interval;
        if interval == 0 || self.recovering {
            return;
        }
        if let Some(inst) = self.barrier_inflight {
            let alive = self.spaces[inst.space.index()]
                .entries
                .get(&inst.slot)
                .map(|e| !e.status.is_committed())
                .unwrap_or(false);
            if alive {
                return;
            }
            self.barrier_inflight = None;
        }
        if self.executed_since_ckpt < interval {
            return;
        }
        let designated = self.cfg.cluster.owner_of(self.ckpt_seq);
        if designated != self.id && self.executed_since_ckpt < 2 * interval {
            return;
        }
        {
            let space = &self.spaces[self.id.index()];
            if space.frozen || space.committed_to_change {
                return;
            }
        }
        self.lead_barrier(out);
    }

    /// Orders a barrier into our own instance space: an *empty* batch whose
    /// dependency set is the entire local frontier, so it interferes with
    /// every command — all correct replicas execute it at the same point of
    /// the interference order, which is what makes its snapshot a
    /// consistent cut.
    fn lead_barrier(&mut self, out: &mut Out<A>) {
        let (slot, inst, owner, log_digest) = {
            let space = &self.spaces[self.id.index()];
            let slot = space.next_slot;
            let inst = InstanceId::new(self.id, slot);
            (slot, inst, space.owner, space.log_digest)
        };
        let deps = self.deps.collect_and_register_barrier(inst);
        let seq = 1 + self.max_seq_of(&deps);
        let body = SpecOrderBody {
            owner,
            inst,
            deps: deps.clone(),
            seq,
            log_digest,
            req_digests: Vec::new(),
        };
        let sig = self.keys.sign(
            &body.signed_payload(),
            &Audience::replicas(self.cfg.cluster.n()),
        );
        let header = SpecOrderHeader {
            body: body.clone(),
            sig: sig.clone(),
        };
        let entry = Entry {
            reqs: Arc::new(Vec::new()),
            owner,
            deps,
            seq,
            status: EntryStatus::SpecOrdered,
            spec_responses: Some(Vec::new()),
            final_responses: Vec::new(),
            reply_on_final: BTreeSet::new(),
            batch_digest: header.body.batch_digest(),
            header,
            commit_evidence: None,
        };
        let space = &mut self.spaces[self.id.index()];
        space.entries.insert(slot, entry);
        space.next_slot = slot + 1;
        // No request digests: the rolling log digest is unchanged.
        self.barrier_inflight = Some(inst);
        self.executed_since_ckpt = 0;
        self.stats.barriers_led += 1;
        let so = Msg::SpecOrder(SpecOrder {
            body,
            sig,
            reqs: Arc::new(Vec::new()),
        });
        let peers: Vec<ReplicaId> = self.cfg.cluster.peers(self.id).collect();
        out.broadcast(peers, so);
        // Our own acknowledgement opens the certificate.
        self.send_barrier_ack(inst, out);
    }

    /// Acknowledges a (locally accepted) barrier to its leader with our
    /// extended `(D′, S′)` — the slow-path reply, replica-to-replica.
    fn send_barrier_ack(&mut self, inst: InstanceId, out: &mut Out<A>) {
        let Some(entry) = self.spaces[inst.space.index()].entries.get(&inst.slot) else {
            return;
        };
        let (owner, deps, seq) = (entry.owner, entry.deps.clone(), entry.seq);
        let payload = BarrierAck::signed_payload(owner, inst, &deps, seq);
        let sig = self
            .keys
            .sign(&payload, &Audience::replicas(self.cfg.cluster.n()));
        let ack = BarrierAck {
            owner,
            inst,
            deps,
            seq,
            sender: self.id,
            sig,
        };
        let leader = owner.owner(&self.cfg.cluster);
        if leader == self.id {
            self.record_barrier_ack(ack, out);
        } else {
            out.send(NodeId::Replica(leader), Msg::BarrierAck(ack));
        }
    }

    fn on_barrier_ack(&mut self, ack: BarrierAck, from: NodeId, out: &mut Out<A>) {
        if from != NodeId::Replica(ack.sender) || !self.cfg.cluster.contains(ack.sender) {
            self.stats.rejected += 1;
            return;
        }
        let payload = BarrierAck::signed_payload(ack.owner, ack.inst, &ack.deps, ack.seq);
        if self
            .keys
            .verify(NodeId::Replica(ack.sender), &payload, &ack.sig)
            .is_err()
        {
            self.stats.rejected += 1;
            return;
        }
        self.record_barrier_ack(ack, out);
    }

    /// Tallies a barrier acknowledgement as the barrier's leader; at
    /// `2f + 1` distinct acks the final order is the union/max combination
    /// (§IV-C, with the leader in the client's role) and the certificate is
    /// broadcast as BARRIERCOMMIT.
    fn record_barrier_ack(&mut self, ack: BarrierAck, out: &mut Out<A>) {
        let inst = ack.inst;
        if inst.space != self.id || ack.owner.owner(&self.cfg.cluster) != self.id {
            return; // not our barrier to commit
        }
        {
            let Some(entry) = self.spaces[inst.space.index()].entries.get(&inst.slot) else {
                return;
            };
            if !entry.reqs.is_empty() || entry.owner != ack.owner || entry.status.is_committed() {
                return;
            }
        }
        let acks = self.barrier_acks.entry(inst).or_default();
        if acks.iter().any(|a| a.sender == ack.sender) {
            return;
        }
        acks.push(ack);
        if acks.len() < self.cfg.cluster.slow_quorum() {
            return;
        }
        let cc = self.barrier_acks.remove(&inst).expect("tallied above");
        let mut deps: BTreeSet<InstanceId> = BTreeSet::new();
        let mut seq = 0u64;
        for a in &cc {
            deps.extend(a.deps.iter().copied());
            seq = seq.max(a.seq);
        }
        let cert = self.build_barrier_cert(cc);
        if let Some(entry) = self.spaces[inst.space.index()].entries.get_mut(&inst.slot) {
            entry.commit_evidence = Some(Evidence::BarrierCommit { acks: cert.clone() });
        }
        let bc = BarrierCommit {
            inst,
            deps: deps.clone(),
            seq,
            cc: cert,
        };
        let peers: Vec<ReplicaId> = self.cfg.cluster.peers(self.id).collect();
        out.broadcast(peers, Msg::BarrierCommit(bc));
        self.commit_entry(inst, deps, seq, BTreeSet::new(), out);
    }

    /// Packages a barrier-ack quorum as a certificate. Barrier acks under
    /// contention disagree on (deps, seq), so the compact form carries one
    /// aggregate per distinct view with disjoint signer bitmaps
    /// (DESIGN.md §10); the verifier recomputes union/max across groups.
    fn build_barrier_cert(&self, cc: Vec<BarrierAck>) -> BarrierCert {
        if self.cfg.compact_certs && self.keys.supports_aggregation() {
            let mut views: BTreeMap<Vec<u8>, Vec<&BarrierAck>> = BTreeMap::new();
            for a in &cc {
                let key = ezbft_wire::to_bytes(&(&a.deps, a.seq)).expect("barrier view encodes");
                views.entry(key).or_default().push(a);
            }
            let mut groups = Vec::with_capacity(views.len());
            for members in views.values() {
                let sigs: Vec<&ezbft_crypto::Signature> = members.iter().map(|a| &a.sig).collect();
                let Ok(agg) = self.keys.aggregate(&sigs) else {
                    return BarrierCert::Votes(cc);
                };
                let first = members[0];
                groups.push(CompactBarrierGroup {
                    owner: first.owner,
                    deps: first.deps.clone(),
                    seq: first.seq,
                    signers: SignerBitmap::from_indices(members.iter().map(|a| a.sender.index())),
                    agg,
                });
            }
            return BarrierCert::Compact(groups);
        }
        BarrierCert::Votes(cc)
    }

    fn on_barrier_commit(&mut self, bc: BarrierCommit, out: &mut Out<A>) {
        if !self.cfg.cluster.contains(bc.inst.space)
            || !verify_barrier_certificate(
                &mut self.keys,
                &self.cfg,
                bc.inst,
                &bc.deps,
                bc.seq,
                &bc.cc,
            )
        {
            self.stats.rejected += 1;
            return;
        }
        let space = &mut self.spaces[bc.inst.space.index()];
        if !space.entries.contains_key(&bc.inst.slot) {
            let pc = space
                .pending_commits
                .entry(bc.inst.slot)
                .or_insert_with(|| PendingCommit {
                    deps: bc.deps,
                    seq: bc.seq,
                    reply_offsets: BTreeSet::new(),
                    evidence: None,
                });
            pc.evidence
                .get_or_insert(Evidence::BarrierCommit { acks: bc.cc });
            return;
        }
        if let Some(entry) = space.entries.get_mut(&bc.inst.slot) {
            if entry.commit_evidence.is_none() {
                entry.commit_evidence = Some(Evidence::BarrierCommit {
                    acks: bc.cc.clone(),
                });
            }
        }
        self.commit_entry(bc.inst, bc.deps, bc.seq, BTreeSet::new(), out);
    }

    /// The contiguous executed prefix of a space (first slot *not* in it).
    fn executed_prefix(&self, idx: usize) -> u64 {
        let space = &self.spaces[idx];
        let mut prefix = space.compact_floor;
        while space
            .entries
            .get(&prefix)
            .map(|e| e.status == EntryStatus::Executed)
            .unwrap_or(false)
        {
            prefix += 1;
        }
        prefix
    }

    /// A barrier reached final execution: snapshot the consistent cut,
    /// remember the per-space compaction cut, and broadcast our signed
    /// CHECKPOINT vote.
    fn on_barrier_executed(&mut self, inst: InstanceId, out: &mut Out<A>) {
        if self.barrier_inflight == Some(inst) {
            self.barrier_inflight = None;
        }
        self.ckpt_seq += 1;
        let gap = self.executed_since_barrier;
        self.executed_since_barrier = 0;
        self.executed_since_ckpt = 0;
        if self.cfg.checkpoint_interval == 0 {
            // A peer runs checkpointing but we have it disabled: order and
            // execute the barrier (agreement must not depend on local
            // config), just don't snapshot or vote.
            return;
        }
        if gap == 0 {
            // Nothing executed since the previous barrier: the cut is
            // unchanged, so skip the O(state) snapshot and the vote. The
            // command set between two barriers is identical at every
            // correct replica, so all of them skip the same barriers and
            // votes never fragment — and a byzantine owner spamming
            // back-to-back barriers buys O(1) work per slot, not a full
            // state serialization per ~100-byte message.
            return;
        }
        let mark = CkptMark {
            seq: self.ckpt_seq,
            inst,
        };
        let mut clients: Vec<ClientMark<A::Response>> = self
            .clients
            .iter()
            .filter(|(_, r)| r.executed_ts > Timestamp::ZERO)
            .map(|(c, r)| ClientMark {
                client: *c,
                executed_ts: r.executed_ts,
                response: r.executed_response.clone(),
            })
            .collect();
        clients.sort_by_key(|m| m.client);
        let snap = EzSnapshot {
            mark,
            app: self.engine.final_state().snapshot(),
            clients,
        };
        let bytes = ezbft_wire::to_bytes(&snap).expect("snapshot encodes");
        let digest = Digest::of(&bytes);
        let cut: Vec<u64> = (0..self.spaces.len())
            .map(|i| self.executed_prefix(i))
            .collect();
        self.snapshots.insert(
            mark,
            SnapshotRecord {
                bytes: Arc::new(bytes),
                cut,
            },
        );
        // Bound the candidate set: the stable snapshot plus a few newest.
        let stable = self.ckpt_tracker.stable().map(|s| s.mark);
        while self.snapshots.len() > 4 {
            let victim = self
                .snapshots
                .keys()
                .copied()
                .find(|m| Some(*m) != stable && *m < mark);
            match victim {
                Some(m) => {
                    self.snapshots.remove(&m);
                }
                None => break,
            }
        }
        let payload = CheckpointVote::<CkptMark>::signed_payload(&mark, digest);
        let sig = self
            .keys
            .sign(&payload, &Audience::replicas(self.cfg.cluster.n()));
        let vote = CheckpointVote {
            mark,
            digest,
            sender: self.id,
            sig,
        };
        let peers: Vec<ReplicaId> = self.cfg.cluster.peers(self.id).collect();
        out.broadcast(peers, Msg::Checkpoint(vote.clone()));
        self.record_checkpoint_vote(vote);
        // The quorum may have stabilised this mark before we executed the
        // barrier; our freshly recorded cut enables the clamp only now.
        if self.ckpt_tracker.stable().map(|s| s.mark) == Some(mark) {
            self.apply_stable_checkpoint();
        }
    }

    fn on_checkpoint_vote(&mut self, vote: CheckpointVote<CkptMark>, from: NodeId) {
        if from != NodeId::Replica(vote.sender) || !self.cfg.cluster.contains(vote.sender) {
            self.stats.rejected += 1;
            return;
        }
        let payload = CheckpointVote::<CkptMark>::signed_payload(&vote.mark, vote.digest);
        if self
            .keys
            .verify(NodeId::Replica(vote.sender), &payload, &vote.sig)
            .is_err()
        {
            self.stats.rejected += 1;
            return;
        }
        self.record_checkpoint_vote(vote);
    }

    fn record_checkpoint_vote(&mut self, vote: CheckpointVote<CkptMark>) {
        let quorum = self.cfg.cluster.slow_quorum();
        if self.ckpt_tracker.record(vote, quorum).is_some() {
            self.stats.stable_checkpoints += 1;
            self.apply_stable_checkpoint();
        }
    }

    /// A checkpoint went stable: everything at or below its cut is certified
    /// recoverable from the snapshot, so compaction may (and does, eagerly)
    /// reclaim it; snapshots older than stable are dropped.
    fn apply_stable_checkpoint(&mut self) {
        let Some(stable) = self.ckpt_tracker.stable() else {
            return;
        };
        let mark = stable.mark;
        if let Some(rec) = self.snapshots.get(&mark) {
            self.stable_cut = Some(rec.cut.clone());
        }
        self.snapshots.retain(|m, _| *m >= mark);
        for space in self.cfg.cluster.replicas() {
            self.compact_space(space, true);
        }
    }

    // ------------------------------------------------------------------
    // State transfer (DESIGN.md §6): donor and fetcher
    // ------------------------------------------------------------------

    /// (Re-)broadcasts our STATEREQ and arms the retry timer.
    fn request_state(&mut self, out: &mut Out<A>) {
        let payload = StateRequest::signed_payload(self.id);
        let sig = self
            .keys
            .sign(&payload, &Audience::replicas(self.cfg.cluster.n()));
        let msg = Msg::StateRequest(StateRequest {
            sender: self.id,
            sig,
        });
        let peers: Vec<ReplicaId> = self.cfg.cluster.peers(self.id).collect();
        out.broadcast(peers, msg);
        let retry = self.cfg.state_retry;
        self.arm_timer(ReplicaTimer::StateRetry, retry, out);
    }

    /// Donor side: answer a rejoining replica with our stable certificate,
    /// the chunked snapshot, and the live log suffix. Without a stable
    /// checkpoint the suffix alone covers genesis (floor 0), which is the
    /// bootstrap path for young clusters.
    fn on_state_request(&mut self, sr: StateRequest, from: NodeId, out: &mut Out<A>) {
        if from != NodeId::Replica(sr.sender)
            || !self.cfg.cluster.contains(sr.sender)
            || sr.sender == self.id
        {
            self.stats.rejected += 1;
            return;
        }
        let payload = StateRequest::signed_payload(sr.sender);
        if self
            .keys
            .verify(NodeId::Replica(sr.sender), &payload, &sr.sig)
            .is_err()
        {
            self.stats.rejected += 1;
            return;
        }
        let to = NodeId::Replica(sr.sender);
        let stable = self.ckpt_tracker.stable().cloned();
        let base = match stable {
            Some(cert) if self.snapshots.contains_key(&cert.mark) => {
                let mark = cert.mark;
                // The tracker always keeps the explicit vote vector; a
                // donor compacts the proof at hand-off time when compact
                // certificates are on (DESIGN.md §10).
                out.send(to, Msg::StateCert(self.compact_ckpt_proof(cert)));
                let bytes = Arc::clone(&self.snapshots[&mark].bytes);
                for chunk in chunk_snapshot(&bytes, self.cfg.state_chunk_bytes.max(1)) {
                    out.send(to, Msg::StateChunk(chunk));
                }
                Some(mark)
            }
            _ => {
                // No servable snapshot: the suffix alone is complete only
                // if nothing was ever compacted (genesis bootstrap). A
                // partial suffix would silently lose the compacted prefix.
                if self.spaces.iter().any(|s| s.compact_floor > 0) {
                    return;
                }
                None
            }
        };
        out.send(to, Msg::StateSuffix(self.build_suffix(base)));
    }

    /// Our per-space live state for a rejoining replica.
    fn build_suffix(&self, base: Option<CkptMark>) -> StateSuffix<A::Command, A::Response> {
        let spaces = self
            .cfg
            .cluster
            .replicas()
            .map(|rid| {
                let sp = &self.spaces[rid.index()];
                SpaceSuffix {
                    space: rid,
                    owner: sp.owner,
                    frozen: sp.frozen,
                    floor: sp.compact_floor,
                    next_slot: sp.next_slot,
                    log_digest: sp.log_digest,
                    entries: sp
                        .entries
                        .iter()
                        .map(|(slot, e)| crate::msg::EntrySnapshot {
                            inst: InstanceId::new(rid, *slot),
                            owner: e.owner,
                            reqs: e.reqs.clone(),
                            deps: e.deps.clone(),
                            seq: e.seq,
                            status: e.status,
                            evidence: e
                                .commit_evidence
                                .clone()
                                .unwrap_or(Evidence::SpecOrdered(e.header.clone())),
                        })
                        .collect(),
                }
            })
            .collect();
        StateSuffix {
            sender: self.id,
            base,
            spaces,
        }
    }

    /// Fetcher: a stable-checkpoint certificate arrived. Verify the quorum
    /// and every vote, then start assembling chunks for its digest.
    fn on_state_cert(&mut self, cert: StableCheckpoint<CkptMark>, out: &mut Out<A>) {
        if !self.recovering {
            return;
        }
        if let Some(cur) = &self.st_cert {
            if cert.mark <= cur.mark {
                return;
            }
        }
        if !self.verify_state_cert(&cert) {
            self.stats.rejected += 1;
            return;
        }
        self.st_assembler = Some(ChunkAssembler::new(cert.digest));
        self.st_snapshot = None;
        self.st_cert = Some(cert);
        // Chunks may have outrun the certificate on the wire: replay them
        // (the assembler ignores any that address a different digest).
        for chunk in std::mem::take(&mut self.st_early_chunks) {
            self.on_state_chunk(chunk, out);
        }
        self.try_finish_recovery(out);
    }

    /// Compacts a stable-checkpoint proof into its aggregate form when
    /// compact certificates are on — every vote signs the same
    /// `(mark, digest)` payload, so one aggregate covers the quorum.
    fn compact_ckpt_proof(&self, cert: StableCheckpoint<CkptMark>) -> StableCheckpoint<CkptMark> {
        if !(self.cfg.compact_certs && self.keys.supports_aggregation()) {
            return cert;
        }
        let CheckpointProof::Votes(votes) = &cert.proof else {
            return cert;
        };
        let sigs: Vec<&ezbft_crypto::Signature> = votes.iter().map(|v| &v.sig).collect();
        let Ok(agg) = self.keys.aggregate(&sigs) else {
            return cert;
        };
        StableCheckpoint {
            mark: cert.mark,
            digest: cert.digest,
            proof: CheckpointProof::Compact {
                signers: SignerBitmap::from_indices(votes.iter().map(|v| v.sender.index())),
                agg,
            },
        }
    }

    fn verify_state_cert(&mut self, cert: &StableCheckpoint<CkptMark>) -> bool {
        if cert.proof.signer_count() < self.cfg.cluster.slow_quorum() {
            return false;
        }
        let votes = match &cert.proof {
            CheckpointProof::Votes(votes) => votes,
            CheckpointProof::Compact { signers, agg } => {
                let Some(signers) = bitmap_signers(&self.cfg, signers) else {
                    return false;
                };
                let payload = CheckpointVote::<CkptMark>::signed_payload(&cert.mark, cert.digest);
                return self.keys.verify_agg(&signers, &payload, agg).is_ok();
            }
        };
        let mut senders = BTreeSet::new();
        for vote in votes {
            if vote.mark != cert.mark
                || vote.digest != cert.digest
                || !self.cfg.cluster.contains(vote.sender)
                || !senders.insert(vote.sender)
            {
                return false;
            }
            let payload = CheckpointVote::<CkptMark>::signed_payload(&vote.mark, vote.digest);
            if self
                .keys
                .verify(NodeId::Replica(vote.sender), &payload, &vote.sig)
                .is_err()
            {
                return false;
            }
        }
        true
    }

    fn on_state_chunk(&mut self, chunk: SnapshotChunk, out: &mut Out<A>) {
        if !self.recovering {
            return;
        }
        let Some(asm) = &mut self.st_assembler else {
            // No certificate yet: buffer (bounded) rather than drop, so a
            // chunk reordered ahead of its certificate costs nothing.
            if self.st_early_chunks.len() < 1024 {
                self.st_early_chunks.push(chunk);
            }
            return;
        };
        let Some(bytes) = asm.offer(chunk) else {
            return;
        };
        // The bytes digest-verified against the certificate; decode.
        if let Ok(snap) = ezbft_wire::from_bytes::<EzSnapshot<A::Response>>(&bytes) {
            if Some(snap.mark) == self.st_cert.as_ref().map(|c| c.mark) {
                self.st_snapshot = Some(snap);
                self.try_finish_recovery(out);
            }
        }
    }

    fn on_state_suffix(
        &mut self,
        sfx: StateSuffix<A::Command, A::Response>,
        from: NodeId,
        out: &mut Out<A>,
    ) {
        if !self.recovering || from != NodeId::Replica(sfx.sender) {
            return;
        }
        if sfx.base.is_none() {
            // Genesis suffixes carry no certificate, so a single (possibly
            // byzantine) donor must not be able to finalize our recovery:
            // require f + 1 distinct donors to agree that no stable
            // checkpoint exists before the genesis path may complete.
            self.st_genesis_donors.insert(sfx.sender);
        }
        // Buffer per base (a suffix may outrun its certificate on the
        // wire); the base count is bounded by the donors' distinct stable
        // marks, capped defensively against byzantine spam.
        if self.st_suffixes.len() < 4 || self.st_suffixes.contains_key(&sfx.base) {
            self.st_suffixes.insert(sfx.base, sfx);
        }
        self.try_finish_recovery(out);
    }

    /// Completes recovery once a matching (certificate, snapshot, suffix)
    /// triple is on hand: restore the application and client watermarks
    /// from the certified snapshot, adopt the evidence-verified suffix
    /// entries, and rejoin normal operation.
    fn try_finish_recovery(&mut self, out: &mut Out<A>) {
        if !self.recovering {
            return;
        }
        let base_mark = self.st_cert.as_ref().map(|c| c.mark);
        if !self.st_suffixes.contains_key(&base_mark) {
            return;
        }
        if base_mark.is_some() && self.st_snapshot.is_none() {
            return;
        }
        if base_mark.is_none() && self.st_genesis_donors.len() < self.cfg.cluster.weak_quorum() {
            return; // genesis path needs f + 1 corroborating donors
        }
        let mut restored_mark = None;
        if let Some(snap) = self.st_snapshot.take() {
            let Ok(app) = A::restore(&snap.app) else {
                // Undecodable despite a matching digest: hold out for a
                // different certificate (the retry timer re-asks).
                self.st_assembler = self.st_cert.as_ref().map(|c| ChunkAssembler::new(c.digest));
                return;
            };
            self.engine = CloneReplay::new(app);
            // Retain the canonical bytes: once recovered, we can serve
            // state transfers for this mark ourselves.
            let bytes = ezbft_wire::to_bytes(&snap).expect("snapshot re-encodes");
            restored_mark = Some((snap.mark, bytes));
            for cm in snap.clients {
                let rec = self.clients.entry(cm.client).or_default();
                rec.executed_ts = cm.executed_ts;
                rec.executed_response = cm.response;
                rec.last_ts = cm.executed_ts;
            }
            self.ckpt_seq = snap.mark.seq;
        }
        if let Some(cert) = self.st_cert.take() {
            self.ckpt_tracker.adopt(cert);
        }
        let suffix = self.st_suffixes.remove(&base_mark).expect("checked above");
        for sp in suffix.spaces {
            if !self.cfg.cluster.contains(sp.space) {
                continue;
            }
            {
                let space = &mut self.spaces[sp.space.index()];
                space.owner = sp.owner;
                space.frozen = sp.frozen;
                space.committed_to_change = false;
                space.compact_floor = sp.floor;
                space.next_slot = sp.next_slot;
                space.log_digest = sp.log_digest;
                space.pending_orders.clear();
                space.pending_commits.clear();
            }
            for snap in sp.entries {
                if snap.inst.space != sp.space || snap.inst.slot < sp.floor {
                    continue;
                }
                if !self.verify_suffix_entry(&snap) {
                    continue;
                }
                self.adopt_suffix_entry(snap);
            }
        }
        // The adopted floors are (at most) the donor's stable cut; they are
        // this replica's compaction clamp and, with the retained bytes, its
        // own servable snapshot record.
        let floors: Vec<u64> = self.spaces.iter().map(|s| s.compact_floor).collect();
        if let Some((mark, bytes)) = restored_mark {
            self.snapshots.insert(
                mark,
                SnapshotRecord {
                    bytes: Arc::new(bytes),
                    cut: floors.clone(),
                },
            );
            self.stable_cut = Some(floors);
        }
        self.recovering = false;
        self.st_assembler = None;
        self.st_early_chunks = Vec::new();
        self.st_suffixes.clear();
        self.stats.state_transfers += 1;
        self.recovered_at = Some(out.now());
        self.try_execute(out);
    }

    /// Whether a suffix entry's evidence proves what it claims: every
    /// client signature, plus the leader header (spec-ordered) or a commit
    /// certificate (committed). The donor's *status* field is never
    /// trusted — commitment is adopted only with committed-kind evidence.
    fn verify_suffix_entry(
        &mut self,
        snap: &crate::msg::EntrySnapshot<A::Command, A::Response>,
    ) -> bool {
        for req in snap.reqs.iter() {
            let payload = Request::signed_payload(req.client, req.ts, &req.cmd);
            if self
                .keys
                .verify(NodeId::Client(req.client), &payload, &req.sig)
                .is_err()
            {
                return false;
            }
        }
        match &snap.evidence {
            Evidence::SpecOrdered(header) => {
                let leader = header.body.owner.owner(&self.cfg.cluster);
                header.body.inst == snap.inst
                    && header.body.req_digests == batch_digests(&snap.reqs)
                    && self
                        .keys
                        .verify(
                            NodeId::Replica(leader),
                            &header.body.signed_payload(),
                            &header.sig,
                        )
                        .is_ok()
            }
            Evidence::SlowCommit { body, sig } => {
                crate::owner::slow_commit_valid(&mut self.keys, snap, body, sig)
            }
            Evidence::FastCommit { replies } => {
                crate::owner::fast_commit_valid(&mut self.keys, &self.cfg, snap, replies)
            }
            Evidence::AggCommit { acks } => {
                let batch = crate::msg::batch_digest_of(&batch_digests(&snap.reqs));
                !snap.reqs.is_empty()
                    && verify_agg_certificate(
                        &mut self.keys,
                        &self.cfg,
                        snap.inst,
                        &snap.deps,
                        snap.seq,
                        Some(batch),
                        acks,
                    )
            }
            Evidence::BarrierCommit { acks } => {
                snap.reqs.is_empty()
                    && verify_barrier_certificate(
                        &mut self.keys,
                        &self.cfg,
                        snap.inst,
                        &snap.deps,
                        snap.seq,
                        acks,
                    )
            }
        }
    }

    fn adopt_suffix_entry(&mut self, snap: crate::msg::EntrySnapshot<A::Command, A::Response>) {
        let inst = snap.inst;
        let committed = !matches!(snap.evidence, Evidence::SpecOrdered(_));
        let header = match &snap.evidence {
            Evidence::SpecOrdered(h) => h.clone(),
            _ => SpecOrderHeader {
                body: SpecOrderBody {
                    owner: snap.owner,
                    inst,
                    deps: snap.deps.clone(),
                    seq: snap.seq,
                    log_digest: Digest::ZERO,
                    req_digests: batch_digests(&snap.reqs),
                },
                sig: ezbft_crypto::Signature::Null,
            },
        };
        for (offset, req) in snap.reqs.iter().enumerate() {
            self.deps.register(inst, &req.cmd.conflict_keys());
            let rec = self.clients.entry(req.client).or_default();
            if req.ts > rec.last_ts {
                rec.last_ts = req.ts;
                rec.last_at = Some(inst.at(offset as u32));
            }
        }
        let entry = Entry {
            reqs: snap.reqs.clone(),
            owner: snap.owner,
            deps: snap.deps.clone(),
            seq: snap.seq,
            status: if committed {
                EntryStatus::Committed
            } else {
                EntryStatus::SpecOrdered
            },
            spec_responses: None,
            final_responses: vec![None; snap.reqs.len()],
            reply_on_final: BTreeSet::new(),
            batch_digest: header.body.batch_digest(),
            header,
            commit_evidence: committed.then(|| snap.evidence.clone()),
        };
        self.max_seq = self.max_seq.max(snap.seq);
        let space = &mut self.spaces[inst.space.index()];
        space.entries.insert(inst.slot, entry);
        if committed {
            self.committed_pending.insert(inst);
        }
    }

    // ------------------------------------------------------------------
    // Owner change (§IV-D, §IV-E)
    // ------------------------------------------------------------------

    fn on_pom(&mut self, pom: Pom, out: &mut Out<A>) {
        if !pom.is_structurally_valid() {
            self.stats.rejected += 1;
            return;
        }
        let leader = pom.owner.owner(&self.cfg.cluster);
        let ok_first = self
            .keys
            .verify(
                NodeId::Replica(leader),
                &pom.first.body.signed_payload(),
                &pom.first.sig,
            )
            .is_ok();
        let ok_second = self
            .keys
            .verify(
                NodeId::Replica(leader),
                &pom.second.body.signed_payload(),
                &pom.second.sig,
            )
            .is_ok();
        if !ok_first || !ok_second {
            self.stats.rejected += 1;
            return;
        }
        self.stats.poms += 1;
        self.start_owner_change(pom.space, pom.owner, out);
    }

    /// Broadcasts STARTOWNERCHANGE for `(space, owner)` once. `owner` is
    /// the owner number being *abandoned*: normally the space's current
    /// owner, or — during escalation (fix (b), DESIGN.md §5a) — a
    /// prospective new owner that went mute before completing the round.
    fn start_owner_change(&mut self, space: ReplicaId, owner: OwnerNum, out: &mut Out<A>) {
        if !self.oc_round_plausible(space, owner) {
            return;
        }
        let key = (space, owner);
        if *self.oc_started.get(&key).unwrap_or(&false) {
            return;
        }
        self.oc_started.insert(key, true);
        self.rec.recovery(
            RecoveryKey {
                space: space.index() as u8,
                new_owner: owner.0 + 1,
            },
            RecoveryStage::Suspected,
            out.now().as_micros(),
        );
        if self.rec.enabled() {
            self.rec.event(
                "replica.owner_change_started",
                "startownerchange broadcast",
                out.now().as_micros(),
            );
        }
        let payload = StartOwnerChange::signed_payload(space, owner);
        let sig = self
            .keys
            .sign(&payload, &Audience::replicas(self.cfg.cluster.n()));
        let msg = Msg::StartOwnerChange(StartOwnerChange {
            space,
            owner,
            sender: self.id,
            sig,
        });
        let peers: Vec<ReplicaId> = self.cfg.cluster.peers(self.id).collect();
        out.broadcast(peers, msg);
        // Count our own vote.
        self.oc_votes.entry(key).or_default().vote(self.id);
        self.maybe_commit_owner_change(space, owner, out);
    }

    fn on_start_owner_change(&mut self, soc: StartOwnerChange, from: NodeId, out: &mut Out<A>) {
        if from != NodeId::Replica(soc.sender) {
            self.stats.rejected += 1;
            return;
        }
        let payload = StartOwnerChange::signed_payload(soc.space, soc.owner);
        if self
            .keys
            .verify(NodeId::Replica(soc.sender), &payload, &soc.sig)
            .is_err()
        {
            self.stats.rejected += 1;
            return;
        }
        if !self.oc_round_plausible(soc.space, soc.owner) {
            return; // stale, or implausibly far ahead of our view
        }
        self.oc_votes
            .entry((soc.space, soc.owner))
            .or_default()
            .vote(soc.sender);
        self.maybe_commit_owner_change(soc.space, soc.owner, out);
    }

    /// Whether a STARTOWNERCHANGE round abandoning `owner` is one we are
    /// willing to vote in: not behind the space's current owner (stale),
    /// and at most [`OC_ESCALATION_WINDOW`] numbers ahead of it. The
    /// window admits escalation rounds past mute prospective owners while
    /// keeping the per-round vote/report maps bounded against a byzantine
    /// replica spamming votes for far-future owner numbers.
    fn oc_round_plausible(&self, space: ReplicaId, owner: OwnerNum) -> bool {
        let cur = self.spaces[space.index()].owner;
        owner >= cur && owner.0 - cur.0 <= OC_ESCALATION_WINDOW
    }

    fn maybe_commit_owner_change(&mut self, space: ReplicaId, owner: OwnerNum, out: &mut Out<A>) {
        let votes = self
            .oc_votes
            .get(&(space, owner))
            .map(|t| t.count())
            .unwrap_or(0);
        if votes < self.cfg.cluster.weak_quorum() {
            return;
        }
        // Amplify so every correct replica reaches f+1 (§IV-E: committing
        // replicas stop participating and report to the new owner).
        self.start_owner_change(space, owner, out);
        let sp = &mut self.spaces[space.index()];
        let new_owner = owner.next();
        if sp.owner > owner || (sp.committed_to_change && sp.oc_target >= new_owner) {
            return; // stale, or this (or a later) round already committed
        }
        sp.committed_to_change = true;
        sp.oc_target = new_owner;
        self.rec.recovery(
            RecoveryKey {
                space: space.index() as u8,
                new_owner: new_owner.0,
            },
            RecoveryStage::Committed,
            out.now().as_micros(),
        );
        self.send_owner_change_report(space, new_owner, out);
        // Fix (b), DESIGN.md §5a: a committed replica stops participating
        // in the space, so a mute prospective owner would otherwise stall
        // it forever. Arm an escalation timer; if NEWOWNER has not been
        // applied when it fires, the report is re-sent (lost-message
        // case) and the round votes to escalate past the prospective
        // owner (mute-owner case), with exponential backoff.
        if self.cfg.oc_backoff_base > Micros::ZERO {
            let t = ReplicaTimer::OwnerChangeEscalate {
                space,
                new_owner,
                attempt: 0,
            };
            self.arm_timer(t, self.cfg.oc_backoff_base, out);
        }
    }

    /// Builds and sends this replica's OWNERCHANGE report (entry
    /// snapshots + compaction floor, §IV-E) to the prospective
    /// `new_owner`'s leader. Shared by the commit path and escalation
    /// re-sends.
    fn send_owner_change_report(
        &mut self,
        space: ReplicaId,
        new_owner: OwnerNum,
        out: &mut Out<A>,
    ) {
        let sp = &self.spaces[space.index()];
        // Snapshot our view of the space (spec-ordered/committed entries).
        let entries: Vec<_> = sp
            .entries
            .values()
            .map(|e| crate::msg::EntrySnapshot {
                inst: e.header.body.inst,
                owner: e.owner,
                reqs: e.reqs.clone(),
                deps: e.deps.clone(),
                seq: e.seq,
                status: e.status,
                evidence: e
                    .commit_evidence
                    .clone()
                    .unwrap_or(Evidence::SpecOrdered(e.header.clone())),
            })
            .collect();
        let floor = sp.compact_floor;
        let payload = OwnerChange::signed_payload(space, new_owner, floor, &entries);
        let sig = self
            .keys
            .sign(&payload, &Audience::replicas(self.cfg.cluster.n()));
        let oc = OwnerChange {
            space,
            new_owner,
            sender: self.id,
            floor,
            entries,
            sig,
        };
        let new_leader = new_owner.owner(&self.cfg.cluster);
        if new_leader == self.id {
            self.on_owner_change(oc, NodeId::Replica(self.id), out);
        } else {
            out.send(NodeId::Replica(new_leader), Msg::OwnerChange(oc));
        }
    }

    fn on_owner_change(
        &mut self,
        oc: OwnerChange<A::Command, A::Response>,
        from: NodeId,
        out: &mut Out<A>,
    ) {
        if from != NodeId::Replica(oc.sender) {
            self.stats.rejected += 1;
            return;
        }
        if oc.new_owner.owner(&self.cfg.cluster) != self.id {
            self.stats.rejected += 1;
            return;
        }
        if !verify_owner_change(&mut self.keys, &self.cfg, &oc) {
            self.stats.rejected += 1;
            return;
        }
        let key = (oc.space, oc.new_owner);
        let reports = self.oc_reports.entry(key).or_default();
        if reports.iter().any(|r| r.sender == oc.sender) {
            return;
        }
        reports.push(oc);
        // Fix (a), DESIGN.md §5a: with `oc_strong_quorum` (default) we
        // wait for 2f+1 reports instead of the paper's f+1. Any 2f+1
        // report set intersects any 2f+1 commit-certificate set in at
        // least f+1 replicas, so at least one *correct* reporter carries
        // the evidence for every slow-committed instance — f colluding
        // reporters can no longer make a committed command vanish from G.
        if reports.len() < self.cfg.oc_report_quorum() {
            return;
        }
        let proof = reports.clone();
        let (space, new_owner) = key;
        self.rec.recovery(
            RecoveryKey {
                space: space.index() as u8,
                new_owner: new_owner.0,
            },
            RecoveryStage::SafeSet,
            out.now().as_micros(),
        );
        let safe = compute_safe_set(&mut self.keys, &self.cfg, space, &proof);
        let payload = NewOwner::signed_payload(space, new_owner, &safe);
        let sig = self
            .keys
            .sign(&payload, &Audience::replicas(self.cfg.cluster.n()));
        let no = NewOwner {
            space,
            new_owner,
            proof,
            safe,
            sender: self.id,
            sig,
        };
        let peers: Vec<ReplicaId> = self.cfg.cluster.peers(self.id).collect();
        out.broadcast(peers, Msg::NewOwner(no.clone()));
        self.apply_new_owner(no, out);
    }

    fn on_new_owner(
        &mut self,
        no: NewOwner<A::Command, A::Response>,
        from: NodeId,
        out: &mut Out<A>,
    ) {
        if from != NodeId::Replica(no.sender) || no.new_owner.owner(&self.cfg.cluster) != no.sender
        {
            self.stats.rejected += 1;
            return;
        }
        let payload = NewOwner::signed_payload(no.space, no.new_owner, &no.safe);
        if self
            .keys
            .verify(NodeId::Replica(no.sender), &payload, &no.sig)
            .is_err()
        {
            self.stats.rejected += 1;
            return;
        }
        // Validate the proof set and recompute the safe set ourselves.
        if no.proof.len() < self.cfg.oc_report_quorum() {
            self.stats.rejected += 1;
            return;
        }
        let mut senders = BTreeSet::new();
        for oc in &no.proof {
            if oc.space != no.space
                || oc.new_owner != no.new_owner
                || !senders.insert(oc.sender)
                || !verify_owner_change(&mut self.keys, &self.cfg, oc)
            {
                self.stats.rejected += 1;
                return;
            }
        }
        let recomputed = compute_safe_set(&mut self.keys, &self.cfg, no.space, &no.proof);
        if recomputed != no.safe {
            self.stats.rejected += 1;
            return;
        }
        self.apply_new_owner(no, out);
    }

    /// Adopts the recovered history `G` (§IV-E): applies safe instances,
    /// rolls back divergent speculation, freezes the space.
    fn apply_new_owner(&mut self, no: NewOwner<A::Command, A::Response>, out: &mut Out<A>) {
        let space_idx = no.space.index();
        // Fix (c), DESIGN.md §5a: reject any NEWOWNER that does not
        // strictly advance the owner number, frozen or not. The previous
        // guard (`>= && frozen`) left a replay window: a replayed
        // NEWOWNER for the *current* owner number of a not-yet-frozen
        // space could re-apply a stale safe set over live entries.
        if self.spaces[space_idx].owner >= no.new_owner {
            return; // stale or already applied
        }

        let safe_slots: BTreeSet<u64> = no.safe.iter().map(|s| s.inst.slot).collect();
        // Slots below every reporter's floor are final; the recovery scan
        // started at the minimum reported floor.
        let base = no.proof.iter().map(|r| r.floor).min().unwrap_or(0);

        // Drop local entries not in G (the faulty leader's unrecoverable
        // speculation) and roll their speculative effects back.
        let local_slots: Vec<u64> = self.spaces[space_idx].entries.keys().copied().collect();
        for slot in local_slots {
            if slot >= base && !safe_slots.contains(&slot) {
                let inst = InstanceId::new(no.space, slot);
                let entry = self.spaces[space_idx].entries.get(&slot).expect("listed");
                if entry.status == EntryStatus::Executed {
                    // Stability: executed entries are never dropped. A
                    // correct majority cannot produce a G missing one.
                    continue;
                }
                for offset in 0..entry.reqs.len() as u32 {
                    self.engine.invalidate(inst.at(offset).tag());
                }
                self.spaces[space_idx].entries.remove(&slot);
                self.committed_pending.remove(&inst);
            }
        }

        // Adopt every safe instance.
        for snap in &no.safe {
            let inst = snap.inst;
            let existing = self.spaces[space_idx].entries.get(&inst.slot);
            let matches = existing
                .map(|e| {
                    batch_digests(&e.reqs) == batch_digests(&snap.reqs)
                        && e.deps == snap.deps
                        && e.seq == snap.seq
                })
                .unwrap_or(false);
            if let Some(e) = existing {
                if e.status == EntryStatus::Executed {
                    continue;
                }
            }
            if !matches {
                let stale_len = existing
                    .map(|e| e.reqs.len())
                    .unwrap_or(0)
                    .max(snap.reqs.len());
                for offset in 0..stale_len as u32 {
                    self.engine.invalidate(inst.at(offset).tag());
                }
            }
            let header = match &snap.evidence {
                Evidence::SpecOrdered(h) => h.clone(),
                _ => existing
                    .map(|e| e.header.clone())
                    .unwrap_or(SpecOrderHeader {
                        body: SpecOrderBody {
                            owner: snap.owner,
                            inst,
                            deps: snap.deps.clone(),
                            seq: snap.seq,
                            log_digest: Digest::ZERO,
                            req_digests: batch_digests(&snap.reqs),
                        },
                        sig: ezbft_crypto::Signature::Null,
                    }),
            };
            let entry = Entry {
                reqs: snap.reqs.clone(),
                owner: snap.owner,
                deps: snap.deps.clone(),
                seq: snap.seq,
                status: EntryStatus::Committed,
                spec_responses: None,
                final_responses: vec![None; snap.reqs.len()],
                reply_on_final: (0..snap.reqs.len() as u32).collect(),
                batch_digest: header.body.batch_digest(),
                header,
                commit_evidence: Some(snap.evidence.clone()),
            };
            self.max_seq = self.max_seq.max(snap.seq);
            for req in snap.reqs.iter() {
                self.deps.register(inst, &req.cmd.conflict_keys());
            }
            let space = &mut self.spaces[space_idx];
            space.entries.insert(inst.slot, entry);
            space.next_slot = space.next_slot.max(inst.slot + 1);
            self.committed_pending.insert(inst);
        }

        let space = &mut self.spaces[space_idx];
        space.owner = no.new_owner;
        space.frozen = true;
        space.committed_to_change = false;
        space.pending_orders.clear();
        self.gap_nacks.remove(&no.space);
        self.stats.owner_changes += 1;
        self.rec.recovery(
            RecoveryKey {
                space: no.space.index() as u8,
                new_owner: no.new_owner.0,
            },
            RecoveryStage::Applied,
            out.now().as_micros(),
        );
        if self.rec.enabled() {
            self.rec.counter("replica.owner_changes", 1);
            self.rec.event(
                "replica.owner_change_applied",
                "newowner adopted, space frozen",
                out.now().as_micros(),
            );
        }

        self.try_execute(out);
    }

    // ------------------------------------------------------------------
    // Log compaction ("since the last checkpoint", §IV-E; see DESIGN.md §5)
    // ------------------------------------------------------------------

    /// Number of retained (non-compacted) entries across all spaces.
    pub fn live_entries(&self) -> usize {
        self.spaces.iter().map(|s| s.entries.len()).sum()
    }

    /// First non-compacted slot of `space`.
    pub fn compact_floor(&self, space: ReplicaId) -> u64 {
        self.spaces[space.index()].compact_floor
    }

    /// Compacts `space`'s executed contiguous prefix once it outgrows the
    /// configured interval. Stability (§III) makes this safe locally: an
    /// executed entry is committed and can never change, so its payload is
    /// no longer needed; owner-change reports advertise the floor so the
    /// recovery scan starts where the slowest reporter still has data.
    fn maybe_compact(&mut self, space_id: ReplicaId) {
        self.compact_space(space_id, false);
    }

    /// The compaction worker. With checkpointing enabled, truncation is
    /// clamped to the *stable checkpoint's cut*: an executed entry above
    /// the cut is not yet covered by any certified snapshot, and dropping
    /// it would leave a rejoining replica unable to obtain its effects
    /// from anyone (DESIGN.md §6). Without checkpointing the clamp is
    /// absent and behaviour matches the paper-era local compaction.
    fn compact_space(&mut self, space_id: ReplicaId, force: bool) {
        let interval = self.cfg.compaction_interval.max(1);
        // The clamp keeps every entry a *servable* snapshot might need:
        // the stable cut once one exists, else the oldest retained
        // candidate's cut (it may yet stabilise; candidates age out of the
        // bounded `snapshots` map, so the clamp keeps advancing even in a
        // mixed deployment where stability never forms). With no snapshot
        // at all the paper-era local compaction runs unclamped — anything
        // executed before a barrier's execution is inside that barrier's
        // cut (⊤-interference), so a snapshot taken later always covers
        // what was compacted earlier. Donors that compacted without a
        // servable snapshot refuse to serve, so completeness holds.
        let limit = if self.cfg.checkpoint_interval == 0 {
            u64::MAX
        } else if let Some(cut) = &self.stable_cut {
            cut[space_id.index()]
        } else if let Some(rec) = self.snapshots.values().next() {
            rec.cut[space_id.index()]
        } else {
            u64::MAX
        };
        let space = &mut self.spaces[space_id.index()];
        // Advance over the executed contiguous prefix, up to the clamp.
        let mut prefix = space.compact_floor;
        while prefix < limit
            && space
                .entries
                .get(&prefix)
                .map(|e| e.status == EntryStatus::Executed)
                .unwrap_or(false)
        {
            prefix += 1;
        }
        let advance = prefix.saturating_sub(space.compact_floor);
        if advance == 0 || (!force && advance < interval) {
            return;
        }
        for slot in space.compact_floor..prefix {
            space.entries.remove(&slot);
        }
        space.compact_floor = prefix;
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    fn arm_timer(&mut self, timer: ReplicaTimer, after: Micros, out: &mut Out<A>) -> u64 {
        let id = self.next_timer;
        self.next_timer += 1;
        self.timers.insert(id, timer);
        out.set_timer(TimerId(id), after);
        id
    }

    fn cancel_resend_wait(&mut self, client: ClientId, ts: Timestamp, out: &mut Out<A>) {
        if let Some(id) = self.resend_waits.remove(&(client, ts)) {
            self.timers.remove(&id);
            out.cancel_timer(TimerId(id));
        }
    }
}

impl<A: Application + Snapshotable> Introspect for Replica<A> {
    fn health_report(&self) -> HealthReport {
        self.introspect()
    }
}

impl<A: Application + Snapshotable> ProtocolNode for Replica<A> {
    type Message = Msg<A::Command, A::Response>;
    type Response = A::Response;

    fn id(&self) -> NodeId {
        NodeId::Replica(self.id)
    }

    fn on_start(&mut self, out: &mut Out<A>) {
        if self.recovering {
            self.request_state(out);
        }
    }

    fn on_message(&mut self, from: NodeId, msg: Self::Message, out: &mut Out<A>) {
        if self.recovering {
            // Until the certified state is installed there is nothing sound
            // to validate ordinary traffic against; only the state-transfer
            // stream is processed. Anything missed meanwhile is recovered
            // by retransmission or, at worst, the dependency watchdogs.
            match msg {
                Msg::StateCert(cert) => self.on_state_cert(cert, out),
                Msg::StateChunk(chunk) => self.on_state_chunk(chunk, out),
                Msg::StateSuffix(sfx) => self.on_state_suffix(sfx, from, out),
                _ => {}
            }
            return;
        }
        match msg {
            Msg::Request(req) => {
                // Requests come from their client (or a forwarding replica
                // on retransmission; signature still binds the client).
                self.on_request(req, out);
            }
            Msg::SpecOrder(so) => self.on_spec_order(so, from, out),
            Msg::CommitFast(cf) => self.on_commit_fast(cf, out),
            Msg::SpecAck(ack) => self.on_spec_ack(ack, from, out),
            Msg::CommitAgg(ca) => self.on_commit_agg(ca, out),
            Msg::Commit(cm) => self.on_commit(cm, out),
            Msg::ResendReq(rr) => self.on_resend_req(rr, out),
            Msg::FillGap(fg) => self.on_fill_gap(fg, from, out),
            Msg::Pom(pom) => self.on_pom(pom, out),
            Msg::StartOwnerChange(soc) => self.on_start_owner_change(soc, from, out),
            Msg::OwnerChange(oc) => self.on_owner_change(oc, from, out),
            Msg::NewOwner(no) => self.on_new_owner(no, from, out),
            Msg::BarrierAck(ack) => self.on_barrier_ack(ack, from, out),
            Msg::BarrierCommit(bc) => self.on_barrier_commit(bc, out),
            Msg::Checkpoint(vote) => self.on_checkpoint_vote(vote, from),
            Msg::StateRequest(sr) => self.on_state_request(sr, from, out),
            Msg::StateCert(_) | Msg::StateChunk(_) | Msg::StateSuffix(_) => {
                // Unsolicited state transfer while not recovering: ignore.
            }
            Msg::SpecReply(_) | Msg::CommitReply(_) | Msg::CommitConfirm(_) => {
                // Client-bound messages; a replica receiving one ignores it.
                self.stats.rejected += 1;
            }
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn on_timer(&mut self, id: TimerId, out: &mut Out<A>) {
        let Some(timer) = self.timers.remove(&id.0) else {
            return;
        };
        match timer {
            ReplicaTimer::BatchFlush => {
                self.batch_timer = None;
                self.flush_batch(out);
            }
            ReplicaTimer::ResendWait { space, client, ts } => {
                self.resend_waits.remove(&(client, ts));
                // No SPECORDER arrived for the forwarded request: suspect
                // the space's owner (§IV-D step 4.3).
                let owner = self.spaces[space.index()].owner;
                self.start_owner_change(space, owner, out);
            }
            ReplicaTimer::DepWait { dep } => {
                self.dep_waits.remove(&dep);
                let space = &self.spaces[dep.space.index()];
                let committed = space
                    .entries
                    .get(&dep.slot)
                    .map(|e| e.status.is_committed())
                    .unwrap_or(false);
                if !committed && !space.frozen {
                    let owner = space.owner;
                    self.start_owner_change(dep.space, owner, out);
                }
            }
            ReplicaTimer::StateRetry => {
                if self.recovering {
                    // No usable response yet: ask again (re-arms itself).
                    self.request_state(out);
                }
            }
            ReplicaTimer::ConfirmFlush => {
                self.confirm_flush_timer = None;
                for (client, confirms) in std::mem::take(&mut self.pending_confirms) {
                    for cf in confirms {
                        out.send(NodeId::Client(client), Msg::CommitConfirm(cf));
                    }
                }
            }
            ReplicaTimer::OwnerChangeEscalate {
                space,
                new_owner,
                attempt,
            } => {
                let sp = &self.spaces[space.index()];
                if !sp.committed_to_change || sp.owner >= new_owner || sp.oc_target != new_owner {
                    return; // round resolved or superseded by a later one
                }
                // Still stuck: re-send our report (lost-message case) and
                // vote to escalate past the prospective owner (mute-owner
                // case; commits only once f+1 replicas time out too).
                self.send_owner_change_report(space, new_owner, out);
                self.start_owner_change(space, new_owner, out);
                let next = attempt.saturating_add(1);
                let backoff = Micros(
                    self.cfg
                        .oc_backoff_base
                        .as_micros()
                        .saturating_mul(1u64 << next.min(20))
                        .min(self.cfg.oc_backoff_cap.as_micros()),
                );
                let t = ReplicaTimer::OwnerChangeEscalate {
                    space,
                    new_owner,
                    attempt: next,
                };
                self.arm_timer(t, backoff, out);
            }
        }
    }
}
