//! The ezBFT client (paper §IV-A steps 1 and 4, §IV-C, §IV-D).
//!
//! "In EZBFT, the client is actively involved in the consensus process. It
//! is responsible for collecting messages from the replicas and ensuring
//! that they have committed to a single order before delivering the reply"
//! (§III). Concretely the client:
//!
//! - sends its (signed) request to the nearest replica;
//! - collects SPECREPLYs; on `3f + 1` matching replies it delivers the
//!   result and asynchronously broadcasts COMMITFAST (fast path);
//! - on unequal replies (contention) or the slow-path timer, combines the
//!   designated slow quorum's dependency sets (union) and sequence numbers
//!   (max) into a signed COMMIT, then waits for `2f + 1` matching
//!   COMMITREPLYs (slow path);
//! - inspects the SPECORDER headers embedded in replies for proofs of
//!   command-leader misbehaviour and broadcasts a POM when found (§IV-D);
//! - on timeout, re-broadcasts the request tagged with the original
//!   command-leader, and eventually rotates to a different replica; with
//!   [`EzConfig::sticky_rotation`] on, the client then sticks to the
//!   replica that served the rotated request (an owner change may have
//!   frozen the old leader's space for good).

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use ezbft_crypto::{Audience, Digest, KeyStore, SignerBitmap};
use ezbft_obs::{NullRecorder, Recorder, Stage};
use ezbft_smr::{
    Actions, ClientId, ClientNode, Micros, NodeId, ProtocolNode, ReplicaId, TimerId, Timestamp,
};

use crate::config::EzConfig;
use crate::instance::InstanceId;
use crate::msg::{
    Commit, CommitBody, CommitConfirm, CommitFast, CommitReply, CompactReply, Msg, Pom, ReplyCert,
    Request, SpecOrderHeader, SpecReply, WirePayload,
};
use crate::telemetry::span_key;

/// Counters exposed for tests and reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Requests completed on the fast path.
    pub fast: u64,
    /// Requests completed on the slow path.
    pub slow: u64,
    /// Retransmissions sent.
    pub retries: u64,
    /// Proofs of misbehaviour broadcast.
    pub poms: u64,
    /// Aggregated commitments confirmed by the command-leader (fallback
    /// disarmed without any client-driven commit traffic).
    pub confirmed: u64,
    /// COMMITFAST fallbacks broadcast because an aggregated commitment was
    /// never confirmed in time.
    pub fallbacks: u64,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    /// Collecting SPECREPLYs.
    Spec,
    /// COMMIT sent; collecting COMMITREPLYs.
    Committing,
}

struct Pending<C, R> {
    cmd: C,
    ts: Timestamp,
    req_digest: Digest,
    phase: Phase,
    /// Latest SPECREPLY per replica, with its match key cached so the
    /// fast-path tally never re-encodes a stored certificate body
    /// (DESIGN.md §7).
    replies: HashMap<ReplicaId, (Digest, SpecReply<C, R>)>,
    /// Matching COMMITREPLY tally.
    commit_groups: HashMap<Digest, HashMap<ReplicaId, CommitReply<R>>>,
    /// Distinct leader-signed headers seen (POM detection).
    headers: Vec<SpecOrderHeader>,
    /// The replica currently asked to lead.
    leader: ReplicaId,
    retries: u64,
    /// Once the slow-path timer fired, every further reply re-attempts the
    /// slow path (faulty replicas may never complete the reply set).
    slow_timer_fired: bool,
}

/// A fast-path completion whose aggregated commitment is not yet
/// confirmed: the certificate is retained so the client can fall back to
/// the paper's COMMITFAST broadcast if the command-leader goes quiet
/// between ack collection and the COMMITAGG broadcast (DESIGN.md §7).
struct Unconfirmed<C, R> {
    ts: Timestamp,
    inst: InstanceId,
    /// The command-leader expected to confirm.
    leader: ReplicaId,
    /// The retained `3f + 1` fast certificate.
    cc: ReplyCert<C, R>,
    /// When the fallback timer was armed (driver clock): the confirmation
    /// latency observed from here feeds the adaptive fallback EWMA.
    armed_at: Micros,
}

/// The ezBFT client node.
pub struct Client<C, R> {
    id: ClientId,
    cfg: EzConfig,
    keys: KeyStore,
    /// Preferred (nearest) replica.
    preferred: ReplicaId,
    next_ts: Timestamp,
    pending: Option<Pending<C, R>>,
    /// Delivered-but-unconfirmed aggregated commitment (at most one: a
    /// new fast completion flushes the previous certificate to the
    /// replicas before taking the slot).
    unconfirmed: Option<Unconfirmed<C, R>>,
    /// A verified COMMITCONFIRM that outran the client's own fast-path
    /// tally (the leader's ack round can finish before every SPECREPLY
    /// reaches the client): matched at completion time so the fallback is
    /// never armed for an already-confirmed instance.
    early_confirm: Option<(InstanceId, ReplicaId, Timestamp)>,
    /// EWMA (α = 1/8) of the observed commit-confirmation latency, in
    /// microseconds. The COMMITFAST fallback arms at
    /// `max(cfg.commit_fallback, 4 × ewma)`: the timer only ever
    /// *lengthens* under load, so a slow-but-correct leader (piggybacked
    /// confirms ride the next SPECREPLY) is not punished with spurious
    /// client-driven commit broadcasts.
    confirm_ewma_us: Option<u64>,
    stats: ClientStats,
    /// Telemetry sink (no-op by default; see [`Client::with_recorder`]).
    rec: Arc<dyn Recorder>,
}

impl<C, R> std::fmt::Debug for Client<C, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("id", &self.id)
            .field("preferred", &self.preferred)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

const TIMER_SLOW: u64 = 0;
const TIMER_RETRY: u64 = 1;
const TIMER_FALLBACK: u64 = 2;

impl<C: WirePayload, R: WirePayload> Client<C, R> {
    /// Creates a client that targets `preferred` (its nearest replica).
    ///
    /// # Panics
    ///
    /// Panics if `keys` does not belong to `id`.
    pub fn new(id: ClientId, cfg: EzConfig, keys: KeyStore, preferred: ReplicaId) -> Self {
        assert_eq!(keys.me(), NodeId::Client(id), "keystore identity mismatch");
        Client {
            id,
            cfg,
            keys,
            preferred,
            next_ts: Timestamp::ZERO,
            pending: None,
            unconfirmed: None,
            early_confirm: None,
            confirm_ewma_us: None,
            stats: ClientStats::default(),
            rec: Arc::new(NullRecorder),
        }
    }

    /// Attaches a telemetry sink: the client records the `Submit` and
    /// `Reply` lifecycle stages for each request plus fast/slow/fallback
    /// counters (DESIGN.md §9). Observation-only — protocol behaviour is
    /// identical with any recorder.
    pub fn with_recorder(mut self, rec: Arc<dyn Recorder>) -> Self {
        self.rec = rec;
        self
    }

    /// This client's id.
    pub fn client_id(&self) -> ClientId {
        self.id
    }

    /// Counters for tests and reports.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    fn slow_timer(&self) -> TimerId {
        TimerId(TIMER_SLOW)
    }

    fn retry_timer(&self) -> TimerId {
        TimerId(TIMER_RETRY)
    }

    fn fallback_timer(&self) -> TimerId {
        TimerId(TIMER_FALLBACK)
    }

    /// Broadcasts the retained fast certificate as a classic COMMITFAST —
    /// the paper's client-driven commitment, now demoted to the fallback
    /// rung of the ladder (aggregated → COMMITFAST → owner change).
    fn flush_unconfirmed(&mut self, out: &mut Actions<Msg<C, R>, R>) {
        let Some(u) = self.unconfirmed.take() else {
            return;
        };
        out.cancel_timer(self.fallback_timer());
        self.stats.fallbacks += 1;
        if self.rec.enabled() {
            self.rec.counter("client.fallbacks", 1);
            self.rec
                .event("client.fallback", "commitfast", out.now().as_micros());
        }
        let msg = Msg::CommitFast(CommitFast {
            client: self.id,
            inst: u.inst,
            cc: u.cc,
        });
        let replicas: Vec<ReplicaId> = self.cfg.cluster.replicas().collect();
        out.broadcast(replicas, msg);
    }

    fn on_commit_confirm(&mut self, cf: CommitConfirm, out: &mut Actions<Msg<C, R>, R>) {
        if cf.client != self.id {
            return;
        }
        let matches_unconfirmed = self
            .unconfirmed
            .as_ref()
            .map(|u| cf.ts == u.ts && cf.inst == u.inst && cf.sender == u.leader)
            .unwrap_or(false);
        // The confirm can outrun the client's own fast-path tally (the
        // leader's ack round needs no client hop): remember it for the
        // in-flight request and match at completion time.
        let outran_completion = !matches_unconfirmed
            && self
                .pending
                .as_ref()
                .map(|p| p.phase == Phase::Spec && cf.ts == p.ts)
                .unwrap_or(false);
        if !matches_unconfirmed && !outran_completion {
            return;
        }
        let payload = CommitConfirm::signed_payload(cf.inst, cf.client, cf.ts);
        if self
            .keys
            .verify(NodeId::Replica(cf.sender), &payload, &cf.sig)
            .is_err()
        {
            return;
        }
        if outran_completion {
            self.early_confirm = Some((cf.inst, cf.sender, cf.ts));
            return;
        }
        let u = self.unconfirmed.take().expect("matched above");
        self.observe_confirm_latency(out.now().saturating_sub(u.armed_at));
        self.stats.confirmed += 1;
        self.rec.counter("client.confirmed", 1);
        out.cancel_timer(self.fallback_timer());
    }

    /// Feeds one observed confirmation latency into the EWMA behind the
    /// adaptive fallback delay.
    fn observe_confirm_latency(&mut self, sample: Micros) {
        let s = sample.as_micros();
        self.confirm_ewma_us = Some(match self.confirm_ewma_us {
            None => s,
            // EWMA with α = 1/8: new = old + (sample - old) / 8.
            Some(e) => ((e as i64) + (s as i64 - e as i64) / 8).max(0) as u64,
        });
    }

    /// The fallback delay to arm: the configured floor, stretched to four
    /// observed confirmation latencies once measurements exist.
    fn adaptive_fallback_delay(&self) -> Micros {
        match self.confirm_ewma_us {
            None => self.cfg.commit_fallback,
            Some(e) => Micros(self.cfg.commit_fallback.as_micros().max(4 * e)),
        }
    }

    fn complete(&mut self, response: R, fast: bool, out: &mut Actions<Msg<C, R>, R>) {
        let pending = self.pending.take().expect("completing a pending request");
        out.cancel_timer(self.slow_timer());
        out.cancel_timer(self.retry_timer());
        if self.cfg.sticky_rotation && pending.retries >= 2 && pending.leader != self.preferred {
            // The request only landed after rotating away from the
            // preferred replica — its space was likely frozen by an owner
            // change, and ownership does not come back until the change
            // counter wraps. Stick to the replica that worked so later
            // requests don't pay the full rotation again
            // ([`EzConfig::sticky_rotation`]).
            self.preferred = pending.leader;
            self.rec.counter("client.preferred_moves", 1);
        }
        if fast {
            self.stats.fast += 1;
        } else {
            self.stats.slow += 1;
        }
        if self.rec.enabled() {
            self.rec.stage(
                span_key(self.id, &pending.req_digest),
                Stage::Reply,
                out.now().as_micros(),
            );
            self.rec
                .counter(if fast { "client.fast" } else { "client.slow" }, 1);
        }
        out.deliver(pending.ts, response, fast);
    }

    fn on_spec_reply(&mut self, mut reply: SpecReply<C, R>, out: &mut Actions<Msg<C, R>, R>) {
        // Piggybacked confirmations come first, and regardless of whether
        // the reply itself is still relevant: they refer to *earlier*
        // requests (DESIGN.md §7). Taking them out also strips the reply
        // before it can be retained in a commit certificate.
        for cf in std::mem::take(&mut reply.confirms) {
            self.on_commit_confirm(cf, out);
        }
        let Some(pending) = &mut self.pending else {
            return;
        };
        if pending.phase != Phase::Spec
            || reply.body.client != self.id
            || reply.body.ts != pending.ts
            || reply.body.req_digest != pending.req_digest
        {
            return;
        }
        // Verify the replying replica's signature over (body, response);
        // the same encoding, digested, is the reply's match key — computed
        // once here and cached for every later tally (DESIGN.md §7).
        let payload = SpecReply::<C, R>::signed_payload(&reply.body, &reply.response);
        let match_key = Digest::of(&payload);
        if self
            .keys
            .verify(NodeId::Replica(reply.sender), &payload, &reply.sig)
            .is_err()
        {
            return;
        }
        // Verify the embedded leader-signed SPECORDER header: our request's
        // digest must sit at exactly the offset the reply claims, so the
        // signed header pins both membership and position in the batch.
        let leader = reply.spec_order.body.owner.owner(&self.cfg.cluster);
        if reply
            .spec_order
            .body
            .req_digests
            .get(reply.body.offset as usize)
            != Some(&pending.req_digest)
            || self
                .keys
                .verify(
                    NodeId::Replica(leader),
                    &reply.spec_order.body.signed_payload(),
                    &reply.spec_order.sig,
                )
                .is_err()
        {
            return;
        }

        // POM detection (§IV-D step 4.4): two leader-signed headers for the
        // same request under the same owner must agree.
        let header = reply.spec_order.clone();
        let conflict = pending.headers.iter().find(|h| {
            h.body.owner == header.body.owner
                && h.body != header.body
                && (h
                    .body
                    .req_digests
                    .iter()
                    .any(|d| header.body.req_digests.contains(d))
                    || h.body.inst == header.body.inst)
        });
        if let Some(existing) = conflict {
            let pom = Pom {
                space: header.body.inst.space,
                owner: header.body.owner,
                first: existing.clone(),
                second: header.clone(),
            };
            if pom.is_structurally_valid() {
                let msg = Msg::Pom(pom);
                let replicas: Vec<ReplicaId> = self.cfg.cluster.replicas().collect();
                out.broadcast(replicas, msg);
                self.stats.poms += 1;
            }
        }
        if !pending.headers.iter().any(|h| h.body == header.body) {
            pending.headers.push(header);
        }

        pending.replies.insert(reply.sender, (match_key, reply));

        // Fast path: 3f+1 matching replies (§IV-A step 4.1).
        let mut groups: HashMap<Digest, Vec<ReplicaId>> = HashMap::new();
        for (sender, (key, _)) in &pending.replies {
            groups.entry(*key).or_default().push(*sender);
        }
        let fast_quorum = self.cfg.cluster.fast_quorum();
        if let Some((_, members)) = groups
            .iter()
            .find(|(_, members)| members.len() >= fast_quorum)
        {
            let representative = pending.replies[&members[0]].1.clone();
            let cc: Vec<SpecReply<C, R>> = members
                .iter()
                .map(|m| pending.replies[m].1.clone())
                .collect();
            let inst = representative.body.inst;
            let ts = pending.ts;
            let response = representative.response.clone();
            let cc = self.build_reply_cert(cc);
            if self.cfg.commit_aggregation {
                // Replica-driven commitment (DESIGN.md §7): the command
                // leader is assembling the same certificate from SPECACKs,
                // so the per-client COMMITFAST broadcast is withheld.
                // Retain the certificate and arm the fallback: if the
                // leader's confirmation never arrives, commit the paper's
                // way. A previous unconfirmed certificate is flushed to
                // the replicas rather than dropped.
                let leader = representative.body.owner.owner(&self.cfg.cluster);
                self.flush_unconfirmed(out);
                if self.early_confirm.take() == Some((inst, leader, ts)) {
                    // The leader's confirmation outran our own tally:
                    // commitment is already on the wire, nothing to retain.
                    self.stats.confirmed += 1;
                } else {
                    self.unconfirmed = Some(Unconfirmed {
                        ts,
                        inst,
                        leader,
                        cc,
                        armed_at: out.now(),
                    });
                    out.set_timer(self.fallback_timer(), self.adaptive_fallback_delay());
                }
            } else {
                let msg = Msg::CommitFast(CommitFast {
                    client: self.id,
                    inst,
                    cc,
                });
                let replicas: Vec<ReplicaId> = self.cfg.cluster.replicas().collect();
                out.broadcast(replicas, msg);
            }
            self.complete(response, true, out);
            return;
        }

        // All replies arrived but they are unequal: no point waiting for
        // the slow-path timer (contention, not faults). After the timer
        // fired, each new reply re-attempts the slow path.
        let ready = self
            .pending
            .as_ref()
            .map(|p| p.replies.len() == self.cfg.cluster.n() || p.slow_timer_fired)
            .unwrap_or(false);
        if ready {
            self.try_slow_path(out);
        }
    }

    /// Packages a matching `3f + 1` fast quorum as a certificate: the
    /// compact aggregate form (one aggregate signature plus a signer
    /// bitmap, DESIGN.md §10) when enabled and the provider supports it,
    /// the explicit vote vector otherwise. Slow-path COMMITs always carry
    /// explicit votes — unequal replies sign different payloads.
    fn build_reply_cert(&self, cc: Vec<SpecReply<C, R>>) -> ReplyCert<C, R> {
        if self.cfg.compact_certs && self.keys.supports_aggregation() {
            let sigs: Vec<&ezbft_crypto::Signature> = cc.iter().map(|r| &r.sig).collect();
            if let Ok(agg) = self.keys.aggregate(&sigs) {
                let first = &cc[0];
                return ReplyCert::Compact(CompactReply {
                    body: first.body.clone(),
                    response: first.response.clone(),
                    signers: SignerBitmap::from_indices(cc.iter().map(|r| r.sender.index())),
                    agg,
                });
            }
        }
        ReplyCert::Votes(cc)
    }

    /// Attempts the slow path (§IV-C step 4.2): requires ≥ 2f+1 replies
    /// from the command-leader's designated slow quorum agreeing on the
    /// instance.
    fn try_slow_path(&mut self, out: &mut Actions<Msg<C, R>, R>) {
        let Some(pending) = &mut self.pending else {
            return;
        };
        if pending.phase != Phase::Spec {
            return;
        }
        // Group candidate replies by (owner, inst, offset); a correct
        // leader yields exactly one group.
        let mut groups: HashMap<(u64, InstanceId, u32), Vec<ReplicaId>> = HashMap::new();
        for (sender, (_, r)) in &pending.replies {
            groups
                .entry((r.body.owner.0, r.body.inst, r.body.offset))
                .or_default()
                .push(*sender);
        }
        let slow_quorum_size = self.cfg.cluster.slow_quorum();
        let timer_fired = pending.slow_timer_fired;
        for ((owner, inst, offset), members) in groups {
            let leader = crate::instance::OwnerNum(owner).owner(&self.cfg.cluster);
            let designated = self.cfg.designated_slow_quorum(leader);
            // Prefer the leader-designated quorum (§IV-C nitpick: it makes
            // the dependency combination deterministic when more than 2f+1
            // replies arrive). If designated members are faulty and the
            // timer has expired, fall back to any 2f+1 repliers — but only
            // for unbatched instances: a batch has several committing
            // clients, and the designated quorum is what guarantees they
            // all derive the same (deps, seq) union (DESIGN.md §3). A
            // batched instance whose designated quorum is unreachable is
            // recovered through retransmission and leader rotation instead.
            // Under replica-driven aggregation the leader's slow rung
            // (DESIGN.md §7) combines over the same designated quorum, so
            // the any-member fallback is withheld there too: a second,
            // differently-combined certificate for one instance could
            // otherwise race the leader's.
            let batched = pending
                .replies
                .values()
                .find(|(_, r)| r.body.inst == inst && r.body.offset == offset)
                .map(|(_, r)| r.spec_order.body.req_digests.len() > 1)
                .unwrap_or(false);
            let mut usable: Vec<ReplicaId> = members
                .iter()
                .copied()
                .filter(|m| designated.contains(*m))
                .collect();
            if usable.len() < slow_quorum_size
                && timer_fired
                && !batched
                && !self.cfg.commit_aggregation
            {
                usable = members;
                usable.sort();
            }
            if usable.len() < slow_quorum_size {
                continue;
            }
            // Combine: union of dependency sets, max sequence number.
            let mut deps: BTreeSet<InstanceId> = BTreeSet::new();
            let mut seq = 0u64;
            let mut cc = Vec::with_capacity(usable.len());
            for m in &usable {
                let (_, r) = &pending.replies[m];
                deps.extend(r.body.deps.iter().copied());
                seq = seq.max(r.body.seq);
                cc.push(r.clone());
            }
            let body = CommitBody {
                client: self.id,
                inst,
                deps,
                seq,
                req_digest: pending.req_digest,
            };
            let sig = self.keys.sign(
                &body.signed_payload(),
                &Audience::replicas(self.cfg.cluster.n()),
            );
            let msg = Msg::Commit(Commit { body, sig, cc });
            let replicas: Vec<ReplicaId> = self.cfg.cluster.replicas().collect();
            out.broadcast(replicas, msg);
            pending.phase = Phase::Committing;
            return;
        }
        // Not enough usable replies yet; the retry timer remains armed.
    }

    fn on_commit_reply(&mut self, reply: CommitReply<R>, out: &mut Actions<Msg<C, R>, R>) {
        let Some(pending) = &mut self.pending else {
            return;
        };
        if reply.client != self.id || reply.ts != pending.ts {
            return;
        }
        let payload =
            CommitReply::<R>::signed_payload(reply.inst, reply.client, reply.ts, &reply.response);
        if self
            .keys
            .verify(NodeId::Replica(reply.sender), &payload, &reply.sig)
            .is_err()
        {
            return;
        }
        let key = reply.match_key();
        let group = pending.commit_groups.entry(key).or_default();
        group.insert(reply.sender, reply);
        if group.len() >= self.cfg.cluster.slow_quorum() {
            let response = group.values().next().expect("non-empty").response.clone();
            self.complete(response, false, out);
        }
    }

    fn on_retry(&mut self, out: &mut Actions<Msg<C, R>, R>) {
        let Some(pending) = &mut self.pending else {
            return;
        };
        self.stats.retries += 1;
        pending.retries += 1;
        let payload = Request::<C>::signed_payload(self.id, pending.ts, &pending.cmd);
        let sig = self
            .keys
            .sign(&payload, &Audience::replicas(self.cfg.cluster.n()));
        if pending.retries == 1 {
            // First retry: re-broadcast tagged with the original leader so
            // every replica nudges it (§IV-D step 4.3).
            let req = Request {
                client: self.id,
                ts: pending.ts,
                cmd: pending.cmd.clone(),
                original: Some(pending.leader),
                sig,
            };
            let replicas: Vec<ReplicaId> = self.cfg.cluster.replicas().collect();
            out.broadcast(replicas, Msg::Request(req));
        } else {
            // Subsequent retries: rotate to the next replica and ask it to
            // lead directly (the original leader's space may be frozen).
            let next = ReplicaId::new(((pending.leader.index() + 1) % self.cfg.cluster.n()) as u8);
            pending.leader = next;
            let req = Request {
                client: self.id,
                ts: pending.ts,
                cmd: pending.cmd.clone(),
                original: None,
                sig,
            };
            out.send(NodeId::Replica(next), Msg::Request(req));
        }
        out.set_timer(self.retry_timer(), self.cfg.retry_delay);
    }
}

impl<C: WirePayload, R: WirePayload> ProtocolNode for Client<C, R> {
    type Message = Msg<C, R>;
    type Response = R;

    fn id(&self) -> NodeId {
        NodeId::Client(self.id)
    }

    fn on_message(&mut self, _from: NodeId, msg: Self::Message, out: &mut Actions<Msg<C, R>, R>) {
        match msg {
            Msg::SpecReply(reply) => self.on_spec_reply(reply, out),
            Msg::CommitReply(reply) => self.on_commit_reply(reply, out),
            Msg::CommitConfirm(cf) => self.on_commit_confirm(cf, out),
            // Clients ignore replica-bound traffic.
            _ => {}
        }
    }

    fn on_timer(&mut self, id: TimerId, out: &mut Actions<Msg<C, R>, R>) {
        match id.0 {
            TIMER_SLOW => {
                if let Some(p) = &mut self.pending {
                    p.slow_timer_fired = true;
                }
                self.try_slow_path(out);
            }
            TIMER_RETRY => self.on_retry(out),
            // The leader never confirmed an aggregated commitment: fall
            // back to the paper's client-driven COMMITFAST.
            TIMER_FALLBACK => self.flush_unconfirmed(out),
            _ => {}
        }
    }
}

impl<C: WirePayload + ezbft_smr::Command, R: WirePayload> ClientNode for Client<C, R> {
    type Command = C;

    fn submit(&mut self, cmd: C, out: &mut Actions<Msg<C, R>, R>) {
        assert!(self.pending.is_none(), "one outstanding request per client");
        self.early_confirm = None; // any buffered confirm is for an old ts
        self.next_ts = self.next_ts.next();
        let ts = self.next_ts;
        let payload = Request::<C>::signed_payload(self.id, ts, &cmd);
        let sig = self
            .keys
            .sign(&payload, &Audience::replicas(self.cfg.cluster.n()));
        let req = Request {
            client: self.id,
            ts,
            cmd: cmd.clone(),
            original: None,
            sig,
        };
        let req_digest = req.digest();
        if self.rec.enabled() {
            self.rec.stage(
                span_key(self.id, &req_digest),
                Stage::Submit,
                out.now().as_micros(),
            );
        }
        out.send(NodeId::Replica(self.preferred), Msg::Request(req));
        out.set_timer(self.slow_timer(), self.cfg.slow_path_delay);
        out.set_timer(self.retry_timer(), self.cfg.retry_delay);
        self.pending = Some(Pending {
            cmd,
            ts,
            req_digest,
            phase: Phase::Spec,
            replies: HashMap::new(),
            commit_groups: HashMap::new(),
            headers: Vec::new(),
            leader: self.preferred,
            retries: 0,
            slow_timer_fired: false,
        });
    }

    fn in_flight(&self) -> bool {
        self.pending.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezbft_crypto::CryptoKind;
    use ezbft_smr::ClusterConfig;

    fn client() -> Client<u64, u64> {
        let cluster = ClusterConfig::for_faults(1);
        let nodes: Vec<NodeId> = cluster
            .replicas()
            .map(NodeId::Replica)
            .chain([NodeId::Client(ClientId::new(0))])
            .collect();
        let keys = KeyStore::cluster(CryptoKind::Mac, b"ewma-test", &nodes)
            .pop()
            .expect("client keys");
        Client::new(
            ClientId::new(0),
            EzConfig::new(cluster),
            keys,
            ReplicaId::new(0),
        )
    }

    #[test]
    fn fallback_delay_adapts_to_observed_confirm_latency() {
        let mut c = client();
        let floor = c.cfg.commit_fallback;
        // No observations yet: the configured floor.
        assert_eq!(c.adaptive_fallback_delay(), floor);
        // First sample seeds the EWMA outright.
        c.observe_confirm_latency(Micros(500_000));
        assert_eq!(c.confirm_ewma_us, Some(500_000));
        // 4× EWMA exceeds the 1.2s floor: the delay stretches.
        assert_eq!(c.adaptive_fallback_delay(), Micros(2_000_000));
        // Fast confirmations pull the EWMA down by 1/8 of the error…
        c.observe_confirm_latency(Micros(100_000));
        assert_eq!(c.confirm_ewma_us, Some(450_000));
        // …and the delay never adapts below the configured floor.
        for _ in 0..100 {
            c.observe_confirm_latency(Micros(1_000));
        }
        assert!(c.confirm_ewma_us.unwrap() < floor.as_micros() / 4);
        assert_eq!(c.adaptive_fallback_delay(), floor);
    }

    /// A command with no conflict keys, for driving the submit path.
    #[derive(Clone, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
    struct NoOp(u64);

    impl ezbft_smr::Command for NoOp {
        fn conflict_keys(&self) -> Vec<ezbft_smr::ConflictKey> {
            Vec::new()
        }
    }

    fn cmd_client() -> Client<NoOp, u64> {
        let cluster = ClusterConfig::for_faults(1);
        let nodes: Vec<NodeId> = cluster
            .replicas()
            .map(NodeId::Replica)
            .chain([NodeId::Client(ClientId::new(0))])
            .collect();
        let keys = KeyStore::cluster(CryptoKind::Mac, b"rotate-test", &nodes)
            .pop()
            .expect("client keys");
        let mut cfg = EzConfig::new(cluster);
        cfg.sticky_rotation = true;
        Client::new(ClientId::new(0), cfg, keys, ReplicaId::new(0))
    }

    #[test]
    fn rotated_request_moves_the_preferred_leader() {
        let mut c = cmd_client();
        let mut out = Actions::new(Micros::ZERO);
        c.submit(NoOp(7), &mut out);
        assert_eq!(c.preferred, ReplicaId::new(0));
        // First retry re-broadcasts at the original leader; no rotation.
        c.on_timer(c.retry_timer(), &mut out);
        c.complete(0u64, false, &mut out);
        assert_eq!(c.preferred, ReplicaId::new(0));
        // A request that only lands after rotating to r2 moves the
        // preference there: the old leader's space may be frozen for good.
        c.submit(NoOp(8), &mut out);
        c.on_timer(c.retry_timer(), &mut out);
        c.on_timer(c.retry_timer(), &mut out);
        c.on_timer(c.retry_timer(), &mut out);
        c.complete(0u64, false, &mut out);
        assert_eq!(c.preferred, ReplicaId::new(2));
        // An untroubled request leaves the preference alone.
        c.submit(NoOp(9), &mut out);
        c.complete(0u64, true, &mut out);
        assert_eq!(c.preferred, ReplicaId::new(2));
    }

    #[test]
    fn ewma_handles_samples_below_the_average() {
        let mut c = client();
        c.observe_confirm_latency(Micros(800));
        c.observe_confirm_latency(Micros(0)); // e.g. same-tick confirm
                                              // 800 + (0 - 800) / 8 = 700; no underflow/overflow.
        assert_eq!(c.confirm_ewma_us, Some(700));
    }
}
