//! ezBFT protocol configuration.

use ezbft_smr::{ClusterConfig, Micros, QuorumSet, ReplicaId};

/// Tunable protocol parameters shared by replicas and clients.
#[derive(Clone, Copy, Debug)]
pub struct EzConfig {
    /// The cluster (N = 3f + 1 and quorum sizes).
    pub cluster: ClusterConfig,
    /// Client-side timer after which the slow path is attempted with
    /// whatever (≥ 2f+1) replies arrived (§IV-C step 4.2). In the fault-free
    /// contended case the slow path triggers *before* this timer, as soon as
    /// all N (unequal) replies arrived.
    pub slow_path_delay: Micros,
    /// Client-side timer after which the request is re-broadcast to all
    /// replicas, tagged with the original command-leader (§IV-D step 4.3).
    pub retry_delay: Micros,
    /// Replica-side timer: after forwarding a RESENDREQ to the original
    /// command-leader, how long to wait for the corresponding SPECORDER
    /// before initiating an ownership change (§IV-D step 4.3).
    pub resend_timeout: Micros,
    /// Compact an instance space's executed prefix whenever it grows by
    /// this many slots (the paper's "since the last checkpoint" watermark,
    /// §IV-E; the checkpoint algorithm itself is unspecified there — see
    /// DESIGN.md §5). Compaction is local: stability of committed entries
    /// makes an executed contiguous prefix final, so dropping it frees
    /// memory without a message round.
    pub compaction_interval: u64,
    /// Maximum client requests a command-leader aggregates into one
    /// SPECORDER (DESIGN.md §3). `1` (the default) reproduces the paper's
    /// one-request-per-instance behaviour exactly; larger values amortise
    /// ordering, signatures and fan-out across the batch.
    pub batch_size: usize,
    /// How long a command-leader holds an under-full batch open waiting
    /// for more requests before flushing it. `ZERO` flushes at the next
    /// scheduling point; ignored when [`EzConfig::batch_size`] is 1
    /// (requests are then ordered inline, with no timer round-trip).
    pub batch_delay: Micros,
    /// Lead a checkpoint *barrier* after this many finally-executed
    /// commands (DESIGN.md §6). `0` (the default) disables checkpointing —
    /// the paper's behaviour, with unbounded logs. When enabled, stable
    /// checkpoints (2f+1 matching snapshot digests) bound the retained log
    /// and let a rejoining replica catch up by state transfer instead of
    /// replaying history; local compaction is then clamped to the stable
    /// cut so every correct replica can serve a complete log suffix.
    pub checkpoint_interval: u64,
    /// Instance-level commit aggregation (DESIGN.md §7). When enabled,
    /// followers send one signed SPECACK per *instance* to the
    /// command-leader, which assembles a single `3f + 1` certificate per
    /// batch and broadcasts one COMMITAGG — commit-phase traffic amortises
    /// to O(n) per batch instead of O(n) per client. Clients suppress their
    /// COMMITFAST broadcast and fall back to it only when the leader's
    /// confirmation never arrives ([`EzConfig::commit_fallback`]). `false`
    /// (the default) reproduces the paper's client-driven commitment.
    pub commit_aggregation: bool,
    /// Client-side timer after which a fast-path-completed request whose
    /// aggregated commitment was never confirmed falls back to the paper's
    /// client-driven COMMITFAST broadcast (leader crashed or lied between
    /// ack collection and the COMMITAGG broadcast).
    pub commit_fallback: Micros,
    /// Compact O(1) certificates (DESIGN.md §10). When enabled — and the
    /// cluster's crypto provider supports aggregation — collectors
    /// compress quorum certificates (COMMITAGG ack sets, client
    /// COMMITFAST reply sets, barrier and stable-checkpoint vote sets)
    /// into one constant-size aggregate signature plus a signer bitmap,
    /// so certificate bytes and verification cost stop growing with the
    /// cluster size. Verifiers accept both forms; owner-change evidence
    /// and state-transfer suffix proofs carry whichever form the
    /// certificate was built in. `false` (the default) keeps the
    /// explicit vote-vector path bit-identical to the pre-§10 protocol.
    pub compact_certs: bool,
    /// Worker threads for the final-execution engine (DESIGN.md §8). `1`
    /// (the default) uses the sequential executor — bit-for-bit identical
    /// to the pre-engine behaviour. Larger values drain the committed
    /// dependency graph with a conflict-keyed worker pool: units with
    /// disjoint conflict-key sets apply concurrently, while responses, the
    /// executed log and exactly-once watermarks stay deterministic.
    pub exec_workers: usize,
    /// Modelled per-command execution cost charged to the replica after a
    /// wave executes ([`ezbft_smr::Action::Work`]). `0` (the default) emits
    /// nothing; under the simulator a non-zero cost makes throughput
    /// sensitive to the execution makespan, which is what lets
    /// `exec_workers` show up in simulated ops/s. Ignored by the TCP
    /// runtime (real execution takes real time there).
    pub exec_cost_us: u64,
    /// Maximum snapshot bytes per STATECHUNK message during state transfer.
    pub state_chunk_bytes: usize,
    /// How long a recovering replica waits for a usable state-transfer
    /// response before re-broadcasting its STATEREQUEST.
    pub state_retry: Micros,
    /// Require a *strong* quorum (2f+1) of OWNERCHANGE reports before a
    /// prospective new owner computes the safe set, instead of the paper's
    /// weak quorum (f+1, §IV-E). `true` (the default) closes the
    /// Revisiting-EZBFT evidence-withholding safety hole: any slow-path
    /// certificate held by 2f+1 replicas intersects a 2f+1 report set in
    /// at least f+1 replicas, so at least one *correct* reporter always
    /// carries the commit evidence into the safe set. Liveness is
    /// unaffected (with the suspected leader excluded, 3f ≥ 2f+1 correct
    /// reporters remain). `false` reproduces the published protocol —
    /// useful only for regression tests that demonstrate the attack
    /// (DESIGN.md §5a).
    pub oc_strong_quorum: bool,
    /// Base delay a replica committed to an ownership change waits for
    /// the prospective new owner's NEWOWNER before *escalating*:
    /// re-sending its OWNERCHANGE report to the next prospective owner in
    /// ring order. Doubles per escalation (capped by
    /// [`EzConfig::oc_backoff_cap`]) so dueling owner changes converge
    /// instead of livelocking; a mute or byzantine new owner can no
    /// longer wedge the space forever (DESIGN.md §5a). `ZERO` disables
    /// escalation — the published protocol's behaviour.
    pub oc_backoff_base: Micros,
    /// Upper bound on the exponential owner-change escalation delay.
    pub oc_backoff_cap: Micros,
    /// Gap-fill NACKs: when a SPECORDER arrives out of order and parks in
    /// the reorder buffer, ask the space's current leader to re-send the
    /// missing slots instead of waiting for client retries / owner change
    /// (lossy links, recovery windows). One NACK per observed gap front;
    /// `false` disables (the paper sends nothing).
    pub gap_fill: bool,
    /// Client leader stickiness: when a request only completes after the
    /// retry rotation moved past the preferred replica, adopt the replica
    /// that served it as the new preferred leader. Without this, a space
    /// frozen by an owner change (ownership does not return until the
    /// change counter wraps) makes *every* subsequent request pay the
    /// full rotation — a near-total throughput collapse on a live
    /// deployment. `false` (the default) keeps the preference static;
    /// the client's sustained retry pressure at the old leader is then
    /// part of what drives stalled owner-change rounds to completion,
    /// which the adversarial campaign's liveness bounds assume. Live TCP
    /// deployments turn it on and accept that an idle space's
    /// owner-change round may linger (visible via `/status`).
    pub sticky_rotation: bool,
}

impl EzConfig {
    /// Defaults tuned for WAN simulations (hundreds of ms round trips).
    pub fn new(cluster: ClusterConfig) -> Self {
        EzConfig {
            cluster,
            slow_path_delay: Micros::from_millis(600),
            retry_delay: Micros::from_millis(1_500),
            resend_timeout: Micros::from_millis(600),
            compaction_interval: 256,
            batch_size: 1,
            batch_delay: Micros::ZERO,
            checkpoint_interval: 0,
            commit_aggregation: false,
            commit_fallback: Micros::from_millis(1_200),
            compact_certs: false,
            exec_workers: 1,
            exec_cost_us: 0,
            state_chunk_bytes: 64 * 1024,
            state_retry: Micros::from_millis(800),
            oc_strong_quorum: true,
            oc_backoff_base: Micros::from_millis(1_000),
            oc_backoff_cap: Micros::from_millis(8_000),
            gap_fill: true,
            sticky_rotation: false,
        }
    }

    /// Reverts the owner-change hardening to the protocol exactly as
    /// published (weak-quorum reports, no escalation backoff, no
    /// gap-fill). Only regression tests demonstrating the
    /// Revisiting-EZBFT attacks should want this (DESIGN.md §5a).
    pub fn as_published(mut self) -> Self {
        self.oc_strong_quorum = false;
        self.oc_backoff_base = Micros::ZERO;
        self.gap_fill = false;
        self.compact_certs = false;
        self
    }

    /// The OWNERCHANGE report / NEWOWNER proof threshold: a strong
    /// quorum (2f+1) with the hardening on, the paper's weak quorum
    /// (f+1) otherwise (see [`EzConfig::oc_strong_quorum`]).
    pub fn oc_report_quorum(&self) -> usize {
        if self.oc_strong_quorum {
            self.cluster.slow_quorum()
        } else {
            self.cluster.weak_quorum()
        }
    }

    /// Enables periodic checkpointing (see [`EzConfig::checkpoint_interval`]).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is 0 (use the default config to disable).
    pub fn with_checkpointing(mut self, interval: u64) -> Self {
        assert!(interval >= 1, "checkpoint interval must be at least 1");
        self.checkpoint_interval = interval;
        self
    }

    /// Enables replica-driven instance-level commit aggregation (see
    /// [`EzConfig::commit_aggregation`]).
    pub fn with_commit_aggregation(mut self) -> Self {
        self.commit_aggregation = true;
        self
    }

    /// Enables compact O(1) certificates (see [`EzConfig::compact_certs`];
    /// requires an aggregation-capable crypto provider to take effect).
    pub fn with_compact_certs(mut self) -> Self {
        self.compact_certs = true;
        self
    }

    /// Sets the execution-engine knobs (see [`EzConfig::exec_workers`] and
    /// [`EzConfig::exec_cost_us`]).
    ///
    /// # Panics
    ///
    /// Panics if `workers` is 0.
    pub fn with_exec_workers(mut self, workers: usize, cost_us: u64) -> Self {
        assert!(workers >= 1, "exec_workers must be at least 1");
        self.exec_workers = workers;
        self.exec_cost_us = cost_us;
        self
    }

    /// Sets the SPECORDER batching knobs (see [`EzConfig::batch_size`]).
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is 0.
    pub fn with_batching(mut self, batch_size: usize, batch_delay: Micros) -> Self {
        assert!(batch_size >= 1, "batch_size must be at least 1");
        self.batch_size = batch_size;
        self.batch_delay = batch_delay;
        self
    }

    /// The designated slow quorum for a command-leader (§IV-C nitpick:
    /// "Each command-leader specifies a known set of 2f+1 replicas that
    /// will form the slow path quorum"). Deterministic — the leader and the
    /// next `2f` replicas in ring order — so leaders, followers and clients
    /// all agree without extra messages.
    pub fn designated_slow_quorum(&self, leader: ReplicaId) -> QuorumSet {
        let n = self.cluster.n();
        (0..self.cluster.slow_quorum())
            .map(|k| ReplicaId::new(((leader.index() + k) % n) as u8))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn designated_slow_quorum_wraps_ring() {
        let cfg = EzConfig::new(ClusterConfig::for_faults(1));
        let q = cfg.designated_slow_quorum(ReplicaId::new(3));
        assert_eq!(q.len(), 3);
        assert!(q.contains(ReplicaId::new(3)));
        assert!(q.contains(ReplicaId::new(0)));
        assert!(q.contains(ReplicaId::new(1)));
        assert!(!q.contains(ReplicaId::new(2)));
    }

    #[test]
    fn designated_slow_quorum_includes_leader() {
        let cfg = EzConfig::new(ClusterConfig::for_faults(2));
        for r in cfg.cluster.replicas() {
            let q = cfg.designated_slow_quorum(r);
            assert_eq!(q.len(), 5);
            assert!(q.contains(r));
        }
    }
}
