//! The execution-order algorithm (paper §IV-B).
//!
//! Given the committed-but-not-yet-executed entries at a replica:
//!
//! 1. build the dependency graph (edges point from a command to each of its
//!    dependencies),
//! 2. find strongly connected components and sort them topologically,
//! 3. process components in inverse topological order (dependencies first),
//!    executing the commands inside each component in sequence-number order,
//!    breaking ties with the instance-space (replica) identifier.
//!
//! Entries whose dependencies are not yet committed locally — and every
//! entry that transitively depends on them — are *blocked* and excluded
//! from the returned order; they become executable once the missing
//! dependencies commit.
//!
//! The algorithm is deterministic: all inputs are ordered collections, so
//! every correct replica computes the same order from the same committed
//! state — the heart of the consistency argument (§IV-F).

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::instance::InstanceId;

/// Metadata the planner needs per committed-unexecuted entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecNode {
    /// The entry's final sequence number.
    pub seq: u64,
    /// The entry's final dependency set.
    pub deps: BTreeSet<InstanceId>,
}

/// Computes the executable prefix of the committed-unexecuted set.
///
/// `is_executed(d)` must return whether dependency `d` (not present in
/// `nodes`) has already been finally executed; a dependency that is neither
/// in `nodes` nor executed blocks its dependents.
///
/// Returns instances in execution order (the flattening of
/// [`execution_units`]).
pub fn execution_order(
    nodes: &BTreeMap<InstanceId, ExecNode>,
    is_executed: impl FnMut(InstanceId) -> bool,
) -> Vec<InstanceId> {
    execution_units(nodes, is_executed)
        .into_iter()
        .flatten()
        .collect()
}

/// Computes the executable prefix of the committed-unexecuted set as
/// *schedulable units*: one `Vec<InstanceId>` per unblocked strongly
/// connected component, emitted dependencies-first, members in
/// `(seq, space, slot)` order.
///
/// The units are what the parallel execution engine schedules (DESIGN.md
/// §8): two units may execute concurrently iff their conflict-key unions do
/// not conflict, which the planner upstream guarantees implies no
/// dependency edge between them in either direction.
pub fn execution_units(
    nodes: &BTreeMap<InstanceId, ExecNode>,
    mut is_executed: impl FnMut(InstanceId) -> bool,
) -> Vec<Vec<InstanceId>> {
    if nodes.is_empty() {
        return Vec::new();
    }

    // Adjacency restricted to the committed-unexecuted subgraph, plus the
    // set of directly blocked nodes.
    let mut adj: HashMap<InstanceId, Vec<InstanceId>> = HashMap::with_capacity(nodes.len());
    let mut directly_blocked: BTreeSet<InstanceId> = BTreeSet::new();
    for (&id, node) in nodes {
        let mut edges = Vec::new();
        for &d in &node.deps {
            if d == id {
                continue;
            }
            if nodes.contains_key(&d) {
                edges.push(d);
            } else if !is_executed(d) {
                directly_blocked.insert(id);
            }
        }
        adj.insert(id, edges);
    }

    // Iterative Tarjan. SCCs are emitted dependencies-first (an SCC is
    // completed only after every SCC it can reach).
    let mut index: HashMap<InstanceId, u32> = HashMap::with_capacity(nodes.len());
    let mut lowlink: HashMap<InstanceId, u32> = HashMap::with_capacity(nodes.len());
    let mut on_stack: BTreeSet<InstanceId> = BTreeSet::new();
    let mut stack: Vec<InstanceId> = Vec::new();
    let mut next_index: u32 = 0;
    let mut sccs: Vec<Vec<InstanceId>> = Vec::new();
    // Map node → SCC index (filled as SCCs pop).
    let mut scc_of: HashMap<InstanceId, usize> = HashMap::with_capacity(nodes.len());

    // Explicit DFS frames: (node, next neighbour position).
    let mut frames: Vec<(InstanceId, usize)> = Vec::new();

    for &root in nodes.keys() {
        if index.contains_key(&root) {
            continue;
        }
        frames.push((root, 0));
        index.insert(root, next_index);
        lowlink.insert(root, next_index);
        next_index += 1;
        stack.push(root);
        on_stack.insert(root);

        while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
            let neighbours = &adj[&v];
            if *pos < neighbours.len() {
                let w = neighbours[*pos];
                *pos += 1;
                if let std::collections::hash_map::Entry::Vacant(e) = index.entry(w) {
                    frames.push((w, 0));
                    e.insert(next_index);
                    lowlink.insert(w, next_index);
                    next_index += 1;
                    stack.push(w);
                    on_stack.insert(w);
                } else if on_stack.contains(&w) {
                    let lw = index[&w];
                    let lv = lowlink[&v];
                    if lw < lv {
                        lowlink.insert(v, lw);
                    }
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    let lv = lowlink[&v];
                    let lp = lowlink[&parent];
                    if lv < lp {
                        lowlink.insert(parent, lv);
                    }
                }
                if lowlink[&v] == index[&v] {
                    // Pop a complete SCC.
                    let mut component = Vec::new();
                    loop {
                        let w = stack.pop().expect("stack underflow");
                        on_stack.remove(&w);
                        scc_of.insert(w, sccs.len());
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(component);
                }
            }
        }
    }

    // Propagate blockage: process SCCs in emission (dependencies-first)
    // order; an SCC is blocked if a member is directly blocked or points to
    // a blocked SCC.
    let mut scc_blocked = vec![false; sccs.len()];
    let mut units = Vec::new();
    for (i, component) in sccs.iter().enumerate() {
        let mut blocked = component.iter().any(|n| directly_blocked.contains(n));
        if !blocked {
            'outer: for n in component {
                for w in &adj[n] {
                    let target = scc_of[w];
                    if target != i && scc_blocked[target] {
                        blocked = true;
                        break 'outer;
                    }
                }
            }
        }
        scc_blocked[i] = blocked;
        if blocked {
            continue;
        }
        // Inside an SCC: sequence-number order, ties by instance-space id
        // then slot (slot cannot actually tie: ids are unique).
        let mut members = component.clone();
        members.sort_by_key(|m| (nodes[m].seq, m.space, m.slot));
        units.push(members);
    }
    units
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezbft_smr::ReplicaId;

    fn inst(space: u8, slot: u64) -> InstanceId {
        InstanceId::new(ReplicaId::new(space), slot)
    }

    fn node(seq: u64, deps: &[InstanceId]) -> ExecNode {
        ExecNode {
            seq,
            deps: deps.iter().copied().collect(),
        }
    }

    fn order(nodes: &BTreeMap<InstanceId, ExecNode>, executed: &[InstanceId]) -> Vec<InstanceId> {
        let executed: BTreeSet<_> = executed.iter().copied().collect();
        execution_order(nodes, |d| executed.contains(&d))
    }

    #[test]
    fn empty_graph() {
        assert!(order(&BTreeMap::new(), &[]).is_empty());
    }

    #[test]
    fn independent_nodes_all_execute() {
        let mut nodes = BTreeMap::new();
        nodes.insert(inst(0, 0), node(1, &[]));
        nodes.insert(inst(1, 0), node(1, &[]));
        let o = order(&nodes, &[]);
        assert_eq!(o.len(), 2);
    }

    #[test]
    fn chain_executes_dependency_first() {
        // c depends on b depends on a.
        let (a, b, c) = (inst(0, 0), inst(1, 0), inst(2, 0));
        let mut nodes = BTreeMap::new();
        nodes.insert(a, node(1, &[]));
        nodes.insert(b, node(2, &[a]));
        nodes.insert(c, node(3, &[b]));
        assert_eq!(order(&nodes, &[]), vec![a, b, c]);
    }

    #[test]
    fn cycle_broken_by_sequence_number() {
        // The paper's Fig. 2 scenario: L1 and L2 depend on each other;
        // both end with seq 2 vs 2? In Fig. 2 both get seq 2 and replica ids
        // break the tie; here give distinct seqs first.
        let (l1, l2) = (inst(0, 0), inst(3, 0));
        let mut nodes = BTreeMap::new();
        nodes.insert(l1, node(1, &[l2]));
        nodes.insert(l2, node(2, &[l1]));
        assert_eq!(order(&nodes, &[]), vec![l1, l2]);
    }

    #[test]
    fn cycle_equal_seq_broken_by_replica_id() {
        // Fig. 2: "Since the sequence numbers for both the commands are the
        // same …, the replica IDs are used. Thus, L1 gets precedence."
        let (l1, l2) = (inst(0, 0), inst(3, 0));
        let mut nodes = BTreeMap::new();
        nodes.insert(l1, node(2, &[l2]));
        nodes.insert(l2, node(2, &[l1]));
        assert_eq!(order(&nodes, &[]), vec![l1, l2]);
    }

    #[test]
    fn executed_dependencies_are_satisfied() {
        let (a, b) = (inst(0, 0), inst(1, 0));
        let mut nodes = BTreeMap::new();
        nodes.insert(b, node(2, &[a]));
        // a is not in the committed set but already executed.
        assert_eq!(order(&nodes, &[a]), vec![b]);
    }

    #[test]
    fn missing_dependency_blocks_transitively() {
        // b → a(missing), c → b: both blocked; d independent executes.
        let (a, b, c, d) = (inst(0, 0), inst(1, 0), inst(2, 0), inst(3, 0));
        let mut nodes = BTreeMap::new();
        nodes.insert(b, node(1, &[a]));
        nodes.insert(c, node(2, &[b]));
        nodes.insert(d, node(1, &[]));
        assert_eq!(order(&nodes, &[]), vec![d]);
    }

    #[test]
    fn blocked_cycle_excluded_entirely() {
        // Cycle {b, c} where b also depends on missing a: whole SCC blocked.
        let (a, b, c) = (inst(0, 0), inst(1, 0), inst(2, 0));
        let mut nodes = BTreeMap::new();
        nodes.insert(b, node(1, &[a, c]));
        nodes.insert(c, node(2, &[b]));
        assert!(order(&nodes, &[]).is_empty());
    }

    #[test]
    fn diamond_order_is_deterministic() {
        //   d depends on b, c; b and c depend on a.
        let (a, b, c, d) = (inst(0, 0), inst(1, 0), inst(2, 0), inst(3, 0));
        let mut nodes = BTreeMap::new();
        nodes.insert(a, node(1, &[]));
        nodes.insert(b, node(2, &[a]));
        nodes.insert(c, node(3, &[a]));
        nodes.insert(d, node(4, &[b, c]));
        let o = order(&nodes, &[]);
        assert_eq!(o.len(), 4);
        let pos = |x: InstanceId| o.iter().position(|&y| y == x).unwrap();
        assert!(pos(a) < pos(b));
        assert!(pos(a) < pos(c));
        assert!(pos(b) < pos(d));
        assert!(pos(c) < pos(d));
        // Rerunning yields the identical order (determinism).
        assert_eq!(o, order(&nodes, &[]));
    }

    #[test]
    fn three_cycle_sorted_by_seq_then_space() {
        let (x, y, z) = (inst(2, 0), inst(0, 0), inst(1, 0));
        let mut nodes = BTreeMap::new();
        nodes.insert(x, node(5, &[y]));
        nodes.insert(y, node(5, &[z]));
        nodes.insert(z, node(4, &[x]));
        // One SCC; z has the smallest seq, then tie (5,R0) < (5,R2).
        assert_eq!(order(&nodes, &[]), vec![z, y, x]);
    }

    #[test]
    fn long_chain_does_not_overflow_stack() {
        // 10_000-deep dependency chain — the iterative Tarjan must cope.
        let mut nodes = BTreeMap::new();
        let mut prev: Option<InstanceId> = None;
        for slot in 0..10_000u64 {
            let id = inst((slot % 4) as u8, slot / 4);
            let deps: Vec<_> = prev.into_iter().collect();
            nodes.insert(id, node(slot + 1, &deps));
            prev = Some(id);
        }
        let o = order(&nodes, &[]);
        assert_eq!(o.len(), 10_000);
        // Seq increases along the chain, so order follows seq.
        for w in o.windows(2) {
            assert!(nodes[&w[0]].seq < nodes[&w[1]].seq);
        }
    }

    #[test]
    fn units_group_sccs_and_flatten_to_order() {
        // Cycle {x, y} is one unit; z (depending on the cycle) is its own
        // unit after it; w independent is its own unit.
        let (x, y, z, w) = (inst(0, 0), inst(1, 0), inst(2, 0), inst(3, 0));
        let mut nodes = BTreeMap::new();
        nodes.insert(x, node(1, &[y]));
        nodes.insert(y, node(2, &[x]));
        nodes.insert(z, node(3, &[x]));
        nodes.insert(w, node(1, &[]));
        let units = execution_units(&nodes, |_| false);
        assert_eq!(units.iter().map(Vec::len).sum::<usize>(), 4);
        let cycle = units
            .iter()
            .find(|u| u.contains(&x))
            .expect("cycle unit present");
        assert_eq!(cycle, &vec![x, y], "cycle is one unit in seq order");
        let flat: Vec<_> = units.iter().flatten().copied().collect();
        assert_eq!(flat, order(&nodes, &[]), "order is the unit flattening");
        let pos = |v: InstanceId| flat.iter().position(|&i| i == v).unwrap();
        assert!(pos(x) < pos(z) && pos(y) < pos(z));
    }

    #[test]
    fn self_dependency_is_ignored() {
        let a = inst(0, 0);
        let mut nodes = BTreeMap::new();
        nodes.insert(a, node(1, &[a]));
        assert_eq!(order(&nodes, &[]), vec![a]);
    }
}
